//! The §5.1/§5.2 extensions in action: sequence groupings, correlated
//! queries, and ordering-domain collapse.
//!
//! 1. The correlated Example 1.1: "for which volcano eruptions was the
//!    strength of the most recent earthquake *in the same region* greater
//!    than 7.0?" — evaluated by partitioning on the region and running a
//!    per-group stream plan.
//! 2. A grouping query: which regions ever recorded a quake above 8.5?
//! 3. Ordering domains: collapse the daily quake sequence to weekly maxima.
//!
//! ```sh
//! cargo run --release --example regional_monitor
//! ```

use seqproc::prelude::*;
use seqproc::seq_group::{collapse, correlated_join, partition_by, CollapseAttr};
use seqproc::seq_workload::{generate_regional, WeatherSpec};

fn main() -> Result<(), SeqError> {
    let span = Span::new(1, 400_000);
    let spec = WeatherSpec::new(span, 12_000, 2_500, 11);
    let world = generate_regional(&spec, 6);
    println!(
        "world: {} quakes, {} eruptions across 6 regions",
        world.quakes.record_count(),
        world.volcanos.record_count()
    );

    // --- 1. the correlated query --------------------------------------------
    let rows = correlated_join(
        &world.volcanos,
        "Volcanos",
        &world.quakes,
        "Quakes",
        "region",
        &|| {
            SeqQuery::base("Volcanos")
                .compose_with(SeqQuery::base("Quakes").previous())
                .select(Expr::attr("strength").gt(Expr::lit(7.0)))
                .project(["name", "region", "strength"])
                .build()
        },
        span,
        &OptimizerConfig::new(span),
    )?;
    println!(
        "\n[correlated] {} eruptions followed a >7.0 quake in their own region; first few:",
        rows.len()
    );
    for (region, pos, rec) in rows.iter().take(5) {
        println!(
            "  {region}: {} at position {pos} (last regional quake {:.2})",
            rec.value(0)?.as_str()?,
            rec.value(2)?.as_f64()?,
        );
    }

    // --- 2. the grouping query ----------------------------------------------
    let quake_groups = partition_by(&world.quakes, "region")?;
    let severe = quake_groups.members_satisfying(
        "Q",
        &|| SeqQuery::base("Q").select(Expr::attr("strength").gt(Expr::lit(8.5))).build(),
        span,
        &OptimizerConfig::new(span),
    )?;
    println!(
        "\n[grouping] regions with any quake above 8.5: {severe:?} (of {})",
        quake_groups.len()
    );

    // --- 3. ordering domains -------------------------------------------------
    // Treat positions as days; collapse to weeks, keeping the weekly maximum
    // strength and the count of quakes.
    let weekly = collapse(
        &world.quakes,
        7,
        &[
            ("strength", CollapseAttr::Agg(AggFunc::Max)),
            ("strength", CollapseAttr::Agg(AggFunc::Count)),
        ],
    )?;
    println!(
        "\n[ordering] collapsed {} daily quakes into {} weekly buckets",
        world.quakes.record_count(),
        weekly.entries().len()
    );
    // Query the weekly domain with the ordinary algebra: the worst 3 weeks.
    let mut catalog = Catalog::new();
    catalog.register("WeeklyQuakes", &weekly);
    let q =
        SeqQuery::base("WeeklyQuakes").select(Expr::attr("strength").gt(Expr::lit(8.9))).build();
    use seqproc::seq_core::Sequence;
    let weekly_span = weekly.meta().span;
    let optimized = optimize(&q, &CatalogRef(&catalog), &OptimizerConfig::new(weekly_span))?;
    let bad_weeks = execute(&optimized.plan, &ExecContext::new(&catalog))?;
    println!("weeks with a quake above 8.9: {}", bad_weeks.len());
    for (week, rec) in bad_weeks.iter().take(3) {
        println!(
            "  week {week}: max strength {:.2} over {} quakes",
            rec.value(0)?.as_f64()?,
            rec.value(1)?.as_i64()?,
        );
    }
    Ok(())
}
