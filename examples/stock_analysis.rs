//! The Table 1 stock-market world: Figure 3's span optimization and
//! Figure 5's caching strategies, with EXPLAIN output and measured access
//! counts.
//!
//! ```sh
//! cargo run --example stock_analysis
//! ```

use seq_workload::{queries, table1_catalog};
use seqproc::prelude::*;

fn main() -> Result<(), SeqError> {
    // Table 1 at scale 20: IBM [4000,10000] d=.95, DEC [20,7000] d=.7,
    // HP [20,15000] d=1.0.
    let scale = 20;
    let catalog = table1_catalog(scale, 7, 64);
    for name in ["IBM", "DEC", "HP"] {
        let m = catalog.meta(name)?;
        println!("{name:>4}: {m}");
    }

    // --- Figure 3: bidirectional span propagation ---------------------------
    let query = queries::fig3_span_query();
    let range = Span::all();
    let with = optimize(&query, &CatalogRef(&catalog), &OptimizerConfig::new(range))?;
    let mut cfg_without = OptimizerConfig::new(range);
    cfg_without.span_propagation = false;
    let without = optimize(&query, &CatalogRef(&catalog), &cfg_without)?;

    println!("\n== Figure 3: DEC where IBM.close > HP.close ==");
    println!("-- with span propagation --\n{}", with.plan.render());
    catalog.reset_measurement();
    let rows_with = execute(&with.plan, &ExecContext::new(&catalog))?;
    let s_with = catalog.stats().snapshot();
    catalog.reset_measurement();
    let rows_without = execute(&without.plan, &ExecContext::new(&catalog))?;
    let s_without = catalog.stats().snapshot();
    assert_eq!(rows_with, rows_without);
    println!("answers: {}", rows_with.len());
    println!("  span propagation ON : {s_with}");
    println!("  span propagation OFF: {s_without}");
    println!(
        "  page reads reduced {:.1}x",
        s_without.page_reads as f64 / s_with.page_reads.max(1) as f64
    );

    // --- Figure 5.A: six-position moving sum with Cache-Strategy-A ----------
    println!("\n== Figure 5.A: SUM(IBM.close) over the last 6 positions ==");
    let query = queries::fig5a_moving_sum(6);
    let ibm_span = catalog.meta("IBM")?.span;
    let range = Span::new(ibm_span.start(), ibm_span.end() + 5);
    let cached = optimize(&query, &CatalogRef(&catalog), &OptimizerConfig::new(range))?;
    let mut naive_cfg = OptimizerConfig::new(range);
    naive_cfg.naive_aggregates = true;
    let naive = optimize(&query, &CatalogRef(&catalog), &naive_cfg)?;

    catalog.reset_measurement();
    let ctx = ExecContext::new(&catalog);
    let a = execute(&cached.plan, &ctx)?;
    let s_cached = catalog.stats().snapshot();
    catalog.reset_measurement();
    let ctx = ExecContext::new(&catalog);
    let b = execute(&naive.plan, &ctx)?;
    let s_naive = catalog.stats().snapshot();
    assert_eq!(a, b);
    println!("outputs: {}", a.len());
    println!("  Cache-Strategy-A: {s_cached}");
    println!("  naive probing   : {s_naive}");
    println!("  probes avoided: {} -> {}", s_naive.probes, s_cached.probes);

    // --- Figure 5.B: Previous over a derived sequence -----------------------
    println!("\n== Figure 5.B: DEC with the most recent (IBM.close > HP.close) day ==");
    let query = queries::fig5b_previous_derived();
    let range = catalog.meta("DEC")?.span;
    let cache_b = optimize(&query, &CatalogRef(&catalog), &OptimizerConfig::new(range))?;
    let mut naive_cfg = OptimizerConfig::new(range);
    naive_cfg.cache_strategy_b = false;
    let naive_b = optimize(&query, &CatalogRef(&catalog), &naive_cfg)?;

    catalog.reset_measurement();
    let ctx = ExecContext::new(&catalog);
    let a = execute(&cache_b.plan, &ctx)?;
    let exec_a = ctx.stats.snapshot();
    let s_b = catalog.stats().snapshot();
    catalog.reset_measurement();
    let ctx = ExecContext::new(&catalog);
    let bb = execute(&naive_b.plan, &ctx)?;
    let exec_b = ctx.stats.snapshot();
    let s_naive_b = catalog.stats().snapshot();
    assert_eq!(a, bb);
    println!("outputs: {}", a.len());
    println!("  Cache-Strategy-B: {s_b} | exec: {exec_a}");
    println!("  naive rederivation: {s_naive_b} | exec: {exec_b}");
    println!(
        "  naive walked {} derived positions; the incremental cache walked {}",
        exec_b.naive_walk_steps, exec_a.naive_walk_steps
    );
    Ok(())
}
