//! Quickstart: store a sequence, declare a windowed query, optimize, run.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use seqproc::prelude::*;

fn main() -> Result<(), SeqError> {
    // 1. Build and register a base sequence: 60 trading days of a price
    //    series with a few gaps (days 13, 26, 39, 52 have no trade).
    let base = BaseSequence::from_entries(
        schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
        (1..=60)
            .filter(|d| d % 13 != 0)
            .map(|d| (d, record![d, 100.0 + (d as f64 * 0.7).sin() * 10.0 + d as f64 * 0.3]))
            .collect(),
    )?;
    let mut catalog = Catalog::new();
    catalog.register("ACME", &base);

    // 2. Declare the query: days where the 7-day moving average exceeded the
    //    previous day's close (a simple momentum signal).
    let query = SeqQuery::base("ACME")
        .aggregate(AggFunc::Avg, "close", Window::trailing(7))
        .compose_filtered(
            SeqQuery::base("ACME").previous(),
            Expr::attr("avg_close").gt(Expr::attr("close")),
        )
        .build();

    // 3. Optimize over a position range (the query template of the paper's
    //    Figure 6) and inspect the chosen plan.
    let cfg = OptimizerConfig::new(Span::new(1, 60));
    let optimized = optimize(&query, &CatalogRef(&catalog), &cfg)?;
    println!("== selected plan (estimated cost {:.1}) ==", optimized.est_cost);
    println!("{}", optimized.plan.render());

    // 4. Execute with the stream-access Start operator.
    let ctx = ExecContext::new(&catalog);
    let rows = execute(&optimized.plan, &ctx)?;
    println!("== {} momentum days ==", rows.len());
    for (day, row) in rows.iter().take(8) {
        println!(
            "  day {day}: 7-day avg {:.2} > previous close {:.2}",
            row.value(0)?.as_f64()?,
            row.value(2)?.as_f64()?,
        );
    }
    if rows.len() > 8 {
        println!("  ... and {} more", rows.len() - 8);
    }

    // 5. What did that cost physically?
    println!("== storage accesses ==\n  {}", catalog.stats().snapshot());
    Ok(())
}
