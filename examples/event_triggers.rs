//! The §5.3 extension: queries as triggers over dynamic sequences.
//!
//! Example 1.1 turned into a standing trigger: as earthquake and volcano
//! events arrive one at a time, the engine maintains O(scope) state per
//! operator and fires the moment an eruption qualifies — no rescans.
//!
//! ```sh
//! cargo run --release --example event_triggers
//! ```

use seqproc::prelude::*;
use seqproc::seq_exec::TriggerEngine;
use seqproc::seq_workload::{generate_weather, WeatherSpec};

fn main() -> Result<(), SeqError> {
    // The standing query: volcano eruptions whose most recent earthquake
    // exceeded 7.0 Richter. Optimize it once against the expected meta-data.
    let span = Span::new(1, 600_000);
    let spec = WeatherSpec::new(span, 20_000, 4_000, 7);
    let world = generate_weather(&spec);
    let mut catalog = Catalog::new();
    catalog.register("Quakes", &world.quakes);
    catalog.register("Volcanos", &world.volcanos);

    let query = seqproc::seq_workload::queries::example_1_1(7.0);
    let optimized = optimize(&query, &CatalogRef(&catalog), &OptimizerConfig::new(span))?;
    println!("standing trigger plan:\n{}", optimized.plan.render());

    // Turn the plan into a push-mode engine and replay the event stream.
    let mut engine = TriggerEngine::new(&optimized.plan)?;
    println!("listening to bases: {:?}", engine.bases());

    let mut feed: Vec<(i64, &str, Record)> = Vec::new();
    for (p, r) in world.quakes.entries() {
        feed.push((*p, "Quakes", r.clone()));
    }
    for (p, r) in world.volcanos.entries() {
        feed.push((*p, "Volcanos", r.clone()));
    }
    feed.sort_by_key(|(p, _, _)| *p);

    let start = std::time::Instant::now();
    let mut fired = 0usize;
    let mut first_few = Vec::new();
    for (pos, base, rec) in &feed {
        for (at, out) in engine.arrive(base, *pos, rec)? {
            fired += 1;
            if first_few.len() < 5 {
                first_few.push(format!(
                    "  position {at}: {} (recorded at {}) erupted after a >7.0 quake",
                    out.value(0)?.as_str()?,
                    out.value(1)?.as_i64()?,
                ));
            }
        }
    }
    fired += engine.flush()?.len();
    let elapsed = start.elapsed();

    println!(
        "\nprocessed {} arrivals in {:.1}ms ({:.2}µs/event), trigger fired {fired} times",
        engine.arrivals(),
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e6 / engine.arrivals() as f64,
    );
    for line in &first_few {
        println!("{line}");
    }

    // Cross-check against batch evaluation.
    let batch = execute(&optimized.plan, &ExecContext::new(&catalog))?;
    assert_eq!(batch.len(), fired);
    println!("\nbatch evaluation agrees: {} outputs", batch.len());
    Ok(())
}
