//! A realistic composite workload: golden-cross detection over generated
//! market data — the short moving average of a price series crossing above
//! the long one.
//!
//! ```sh
//! cargo run --example trading_signals
//! ```

use seq_core::Sequence;
use seq_workload::{queries, SeqSpec};
use seqproc::prelude::*;

fn main() -> Result<(), SeqError> {
    // Five years of daily data (~1250 trading days among ~1800 calendar
    // positions: weekends/holidays are empty positions).
    let span = Span::new(1, 1_800);
    let spec = SeqSpec::new(span, 0.7, 2024).with_walk(100.0, 2.5);
    let base = spec.generate();
    println!(
        "generated {} trading days over {span} (density {:.2})",
        base.record_count(),
        base.meta().density
    );

    let mut catalog = Catalog::new();
    catalog.register("ACME", &base);

    // Signal: 10-day average exceeds the 50-day average by more than 1.0.
    let query = queries::golden_cross("ACME", 10, 50, 1.0);
    let optimized = optimize(&query, &CatalogRef(&catalog), &OptimizerConfig::new(span))?;
    println!("\n== plan ==\n{}", optimized.plan.render());

    let ctx = ExecContext::new(&catalog);
    let rows = execute(&optimized.plan, &ctx)?;

    // Compress runs of consecutive signal days into entry points.
    let mut entries = Vec::new();
    let mut last = i64::MIN;
    for (pos, row) in &rows {
        if *pos > last + 1 {
            entries.push((*pos, row.value(0)?.as_f64()?, row.value(1)?.as_f64()?));
        }
        last = *pos;
    }
    println!("\n{} signal days forming {} golden-cross entries:", rows.len(), entries.len());
    for (pos, short, long) in entries.iter().take(10) {
        println!("  day {pos}: 10-day {short:.2} vs 50-day {long:.2}");
    }
    if entries.len() > 10 {
        println!("  ... and {} more", entries.len() - 10);
    }

    println!("\nstorage accesses: {}", catalog.stats().snapshot());
    println!("executor counters: {}", ctx.stats.snapshot());
    Ok(())
}
