//! Example 1.1 of the paper, end to end: "For which volcano eruptions was
//! the strength of the most recent earthquake greater than 7.0 on the
//! Richter scale?"
//!
//! Runs the sequence plan (single lock-step scan with a Cache-Strategy-B
//! Previous) against the relational nested-subquery plan the paper says a
//! conventional optimizer would produce, and reports the access counts.
//!
//! ```sh
//! cargo run --example weather_monitor
//! ```

use seq_relational::{indexed_nested_plan, nested_subquery_plan, RelStats, Relation};
use seq_workload::{queries, weather_catalog, WeatherSpec};
use seqproc::prelude::*;

fn main() -> Result<(), SeqError> {
    let span = Span::new(1, 200_000);
    let spec = WeatherSpec::new(span, 5_000, 1_000, 42);
    let (catalog, world) = weather_catalog(&spec, 64);
    println!(
        "world: {} earthquakes, {} volcano eruptions over positions {span}",
        world.quakes.record_count(),
        world.volcanos.record_count()
    );

    // --- The sequence plan -------------------------------------------------
    let query = queries::example_1_1(7.0);
    let cfg = OptimizerConfig::new(span);
    let optimized = optimize(&query, &CatalogRef(&catalog), &cfg)?;
    println!("\n== sequence plan ==\n{}", optimized.plan.render());

    catalog.reset_measurement();
    let ctx = ExecContext::new(&catalog);
    let rows = execute(&optimized.plan, &ctx)?;
    let seq_stats = catalog.stats().snapshot();
    println!("answers: {} eruptions", rows.len());
    for (pos, row) in rows.iter().take(5) {
        println!("  {} (recorded at position {pos})", row.value(0)?.as_str()?);
    }
    println!("sequence-plan accesses: {seq_stats}");

    // --- The relational baselines ------------------------------------------
    let volcanos =
        Relation::from_sequence_entries(world.volcanos.schema().clone(), world.volcanos.entries())?;
    let quakes =
        Relation::from_sequence_entries(world.quakes.schema().clone(), world.quakes.entries())?;

    let naive_stats = RelStats::new();
    let naive = nested_subquery_plan(&volcanos, &quakes, 7.0, &naive_stats)?;
    println!(
        "\nrelational nested-subquery plan: {} answers, {} tuples scanned, {} subquery invocations",
        naive.len(),
        naive_stats.tuples_scanned(),
        naive_stats.subquery_invocations()
    );

    let idx_stats = RelStats::new();
    let indexed = indexed_nested_plan(&volcanos, &quakes, 7.0, &idx_stats)?;
    println!(
        "relational indexed plan: {} answers, {} tuples scanned, {} index probes",
        indexed.len(),
        idx_stats.tuples_scanned(),
        idx_stats.index_probes()
    );

    // --- Agreement + the headline ratio -------------------------------------
    assert_eq!(rows.len(), naive.len());
    assert_eq!(rows.len(), indexed.len());
    let seq_work = seq_stats.stream_records + seq_stats.probes;
    println!(
        "\nthe sequence plan touched {seq_work} records; the naive relational plan touched {} — a {:.0}x reduction",
        naive_stats.tuples_scanned(),
        naive_stats.tuples_scanned() as f64 / seq_work.max(1) as f64
    );
    Ok(())
}
