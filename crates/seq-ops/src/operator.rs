//! The logical sequence operators of §2.1.
//!
//! All operators are compositional: they consume input sequences and define a
//! single derived output sequence. Each operator knows its arity, its output
//! schema, and its [`ScopeShape`] on each input.

use std::fmt;

use seq_core::{AttrType, Field, Record, Result, Schema, SeqError, Value};

use crate::expr::Expr;
use crate::scope::ScopeShape;

/// Aggregate functions permitted by the model (§2.1): Avg, Count, Min, Max,
/// Sum. Null records in the window are ignored; if every record in the window
/// is Null, the output is Null.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Arithmetic mean (FLOAT output).
    Avg,
    /// Count of non-Null records (INT output).
    Count,
    /// Smallest value (total order; NaN sorts greatest).
    Min,
    /// Largest value.
    Max,
    /// Sum (INT stays INT, otherwise FLOAT).
    Sum,
}

impl AggFunc {
    /// The output type of the aggregate given its input attribute type.
    pub fn output_type(self, input: AttrType) -> Result<AttrType> {
        match self {
            AggFunc::Count => Ok(AttrType::Int),
            AggFunc::Avg => {
                if !input.is_numeric() {
                    return Err(SeqError::Type(format!(
                        "AVG requires a numeric attribute, found {input}"
                    )));
                }
                Ok(AttrType::Float)
            }
            AggFunc::Sum => {
                if !input.is_numeric() {
                    return Err(SeqError::Type(format!(
                        "SUM requires a numeric attribute, found {input}"
                    )));
                }
                Ok(input)
            }
            AggFunc::Min | AggFunc::Max => {
                if input == AttrType::Bool {
                    return Err(SeqError::Type("MIN/MAX over BOOL is not supported".into()));
                }
                Ok(input)
            }
        }
    }

    /// Apply the aggregate to the non-Null values collected from the scope.
    /// Returns `None` (a Null output record) when the iterator is empty.
    pub fn apply<'a>(self, values: impl Iterator<Item = &'a Value>) -> Result<Option<Value>> {
        let mut count: i64 = 0;
        let mut sum_f = 0.0f64;
        let mut sum_i: i64 = 0;
        let mut all_int = true;
        let mut best: Option<Value> = None;
        for v in values {
            count += 1;
            match self {
                AggFunc::Count => {}
                AggFunc::Sum | AggFunc::Avg => {
                    match v {
                        Value::Int(i) => {
                            sum_i = sum_i.wrapping_add(*i);
                            sum_f += *i as f64;
                        }
                        Value::Float(f) => {
                            all_int = false;
                            sum_f += f;
                        }
                        other => {
                            return Err(SeqError::Type(format!(
                                "{self} requires numeric values, found {}",
                                other.attr_type()
                            )))
                        }
                    };
                }
                AggFunc::Min | AggFunc::Max => match &best {
                    None => best = Some(v.clone()),
                    Some(b) => {
                        let ord = v.total_cmp(b)?;
                        let better = if self == AggFunc::Min { ord.is_lt() } else { ord.is_gt() };
                        if better {
                            best = Some(v.clone());
                        }
                    }
                },
            }
        }
        if count == 0 {
            return Ok(None);
        }
        Ok(Some(match self {
            AggFunc::Count => Value::Int(count),
            AggFunc::Avg => Value::Float(sum_f / count as f64),
            AggFunc::Sum => {
                if all_int {
                    Value::Int(sum_i)
                } else {
                    Value::Float(sum_f)
                }
            }
            AggFunc::Min | AggFunc::Max => best.expect("count > 0"),
        }))
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Avg => "AVG",
            AggFunc::Count => "COUNT",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Sum => "SUM",
        };
        f.write_str(s)
    }
}

/// The `agg_pos` function of an aggregate operator (§2.1): which input
/// positions contribute to the output at position `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Window {
    /// Relative window `[i+lo, i+hi]` (e.g. the moving 3-position average has
    /// `lo = -2, hi = 0`).
    Sliding {
        /// Lower relative offset.
        lo: i64,
        /// Upper relative offset.
        hi: i64,
    },
    /// All positions up to and including `i`.
    Cumulative,
    /// All positions in the valid range (the "agg_pos always true" special
    /// case).
    WholeSpan,
}

impl Window {
    /// A trailing window of `n` positions ending at the current position.
    pub fn trailing(n: u32) -> Window {
        assert!(n >= 1, "window must contain at least one position");
        Window::Sliding { lo: -i64::from(n - 1), hi: 0 }
    }

    /// A leading window of `n` positions starting at the current position.
    pub fn leading(n: u32) -> Window {
        assert!(n >= 1, "window must contain at least one position");
        Window::Sliding { lo: 0, hi: i64::from(n - 1) }
    }

    /// The scope shape this window induces.
    pub fn scope(&self) -> ScopeShape {
        match self {
            Window::Sliding { lo, hi } => ScopeShape::Interval { lo: Some(*lo), hi: *hi },
            Window::Cumulative => ScopeShape::Interval { lo: None, hi: 0 },
            Window::WholeSpan => ScopeShape::WholeSpan,
        }
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Window::Sliding { lo, hi } => write!(f, "[i{lo:+}, i{hi:+}]"),
            Window::Cumulative => write!(f, "cumulative"),
            Window::WholeSpan => write!(f, "whole-span"),
        }
    }
}

/// A logical sequence operator (§2.1).
#[derive(Debug, Clone, PartialEq)]
pub enum SeqOperator {
    /// Keep records satisfying the predicate; other positions become empty.
    Select {
        /// Boolean predicate over the input record.
        predicate: Expr,
    },
    /// Keep a subset of attributes (by name; resolved during annotation).
    Project {
        /// Names of the attributes to keep, in output order.
        attrs: Vec<String>,
    },
    /// `Out(i) = In(i + offset)` — shift the sequence.
    PositionalOffset {
        /// The shift amount.
        offset: i64,
    },
    /// `Out(i)` = the record at the |offset|-th non-empty input position
    /// strictly before (`offset < 0`, Previous = −1) or after (`offset > 0`,
    /// Next = +1) position `i`.
    ValueOffset {
        /// Non-zero offset; sign is the direction.
        offset: i64,
    },
    /// Windowed aggregate of one attribute.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// Input attribute name.
        attr: String,
        /// The `agg_pos` window.
        window: Window,
        /// Output attribute name.
        output_name: String,
    },
    /// Positional join: compose the records of both inputs at each position,
    /// optionally filtered by a join predicate over the composed record
    /// (§2.1: "the Compose operator would probably allow the specification of
    /// additional join predicates").
    Compose {
        /// Optional join predicate over the composed record.
        predicate: Option<Expr>,
    },
}

impl SeqOperator {
    /// Convenience constructor for an aggregate with a default output name
    /// like `sum_close`.
    pub fn aggregate(func: AggFunc, attr: impl Into<String>, window: Window) -> SeqOperator {
        let attr = attr.into();
        let output_name = format!("{}_{}", func.to_string().to_lowercase(), attr);
        SeqOperator::Aggregate { func, attr, window, output_name }
    }

    /// The Previous operator (value offset of −1).
    pub fn previous() -> SeqOperator {
        SeqOperator::ValueOffset { offset: -1 }
    }

    /// The Next operator (value offset of +1).
    pub fn next_op() -> SeqOperator {
        SeqOperator::ValueOffset { offset: 1 }
    }

    /// Number of input sequences.
    pub fn arity(&self) -> usize {
        match self {
            SeqOperator::Compose { .. } => 2,
            _ => 1,
        }
    }

    /// Type-check and compute the output schema from the input schemas
    /// (Step 2.a of the optimization algorithm performs this bottom-up).
    pub fn output_schema(&self, inputs: &[Schema]) -> Result<Schema> {
        if inputs.len() != self.arity() {
            return Err(SeqError::InvalidGraph(format!(
                "{self} expects {} input(s), got {}",
                self.arity(),
                inputs.len()
            )));
        }
        match self {
            SeqOperator::Select { predicate } => {
                let bound = predicate.bind(&inputs[0])?;
                let t = bound.infer_type(&inputs[0])?;
                if t != AttrType::Bool {
                    return Err(SeqError::Type(format!(
                        "selection predicate must be BOOL, found {t}"
                    )));
                }
                Ok(inputs[0].clone())
            }
            SeqOperator::Project { attrs } => {
                let idx =
                    attrs.iter().map(|a| inputs[0].index_of(a)).collect::<Result<Vec<_>>>()?;
                inputs[0].project(&idx)
            }
            SeqOperator::PositionalOffset { .. } => Ok(inputs[0].clone()),
            SeqOperator::ValueOffset { offset } => {
                if *offset == 0 {
                    return Err(SeqError::InvalidGraph(
                        "value offset of 0 is the identity; use no operator".into(),
                    ));
                }
                Ok(inputs[0].clone())
            }
            SeqOperator::Aggregate { func, attr, output_name, .. } => {
                let idx = inputs[0].index_of(attr)?;
                let out_ty = func.output_type(inputs[0].field(idx)?.ty)?;
                Ok(Schema::new(vec![Field::new(output_name.clone(), out_ty)]))
            }
            SeqOperator::Compose { predicate } => {
                let composed = inputs[0].compose(&inputs[1]);
                if let Some(p) = predicate {
                    let bound = p.bind(&composed)?;
                    let t = bound.infer_type(&composed)?;
                    if t != AttrType::Bool {
                        return Err(SeqError::Type(format!(
                            "compose predicate must be BOOL, found {t}"
                        )));
                    }
                }
                Ok(composed)
            }
        }
    }

    /// The scope shape of this operator over input `input_idx` (§2.3).
    pub fn scope(&self, input_idx: usize) -> ScopeShape {
        debug_assert!(input_idx < self.arity());
        match self {
            SeqOperator::Select { .. }
            | SeqOperator::Project { .. }
            | SeqOperator::Compose { .. } => ScopeShape::Point(0),
            SeqOperator::PositionalOffset { offset } => ScopeShape::Point(*offset),
            SeqOperator::ValueOffset { offset } => {
                if *offset < 0 {
                    ScopeShape::VariableBack
                } else {
                    ScopeShape::VariableFwd
                }
            }
            SeqOperator::Aggregate { window, .. } => window.scope(),
        }
    }

    /// Whether this operator has unit scope on all inputs — the property that
    /// decides query-block boundaries (§3.1: "the non-unit scope operators
    /// therefore break up the query into blocks"). Positional offsets have
    /// unit scope and therefore live *inside* blocks.
    pub fn is_unit_scope(&self) -> bool {
        (0..self.arity()).all(|i| self.scope(i).size().is_unit())
    }

    /// Apply a unit-scope operator's record function to already-aligned input
    /// records (§2.3's `OpFunc` for the unit-scope operators). Non-unit-scope
    /// operators (aggregates, value offsets) aggregate over their scope and
    /// are handled by their evaluators.
    pub fn apply_unit(&self, inputs: &[Option<&Record>]) -> Result<Option<Record>> {
        match self {
            SeqOperator::Select { predicate } => {
                let Some(rec) = inputs[0] else { return Ok(None) };
                if predicate.eval_predicate(rec)? {
                    Ok(Some(rec.clone()))
                } else {
                    Ok(None)
                }
            }
            SeqOperator::Project { .. } => Err(SeqError::Unsupported(
                "projection requires resolved indices; use apply_project".into(),
            )),
            SeqOperator::PositionalOffset { .. } => Ok(inputs[0].cloned()),
            SeqOperator::Compose { predicate } => {
                let (Some(l), Some(r)) = (inputs[0], inputs[1]) else {
                    return Ok(None);
                };
                let joined = l.compose(r);
                if let Some(p) = predicate {
                    if !p.eval_predicate(&joined)? {
                        return Ok(None);
                    }
                }
                Ok(Some(joined))
            }
            SeqOperator::ValueOffset { .. } | SeqOperator::Aggregate { .. } => {
                Err(SeqError::Unsupported(format!("{self} is not a unit-scope operator")))
            }
        }
    }
}

impl fmt::Display for SeqOperator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqOperator::Select { predicate } => write!(f, "Select({predicate})"),
            SeqOperator::Project { attrs } => write!(f, "Project({})", attrs.join(", ")),
            SeqOperator::PositionalOffset { offset } => write!(f, "PosOffset({offset:+})"),
            SeqOperator::ValueOffset { offset } => match offset {
                -1 => write!(f, "Previous"),
                1 => write!(f, "Next"),
                l => write!(f, "ValueOffset({l:+})"),
            },
            SeqOperator::Aggregate { func, attr, window, .. } => {
                write!(f, "{func}({attr}) over {window}")
            }
            SeqOperator::Compose { predicate: None } => write!(f, "Compose"),
            SeqOperator::Compose { predicate: Some(p) } => write!(f, "Compose[{p}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::ScopeSize;
    use seq_core::{record, schema};

    fn stock() -> Schema {
        schema(&[("time", AttrType::Int), ("close", AttrType::Float)])
    }

    #[test]
    fn agg_apply_semantics() {
        let vals = [Value::Float(1.0), Value::Float(2.0), Value::Float(4.0)];
        assert_eq!(AggFunc::Sum.apply(vals.iter()).unwrap(), Some(Value::Float(7.0)));
        assert_eq!(AggFunc::Avg.apply(vals.iter()).unwrap(), Some(Value::Float(7.0 / 3.0)));
        assert_eq!(AggFunc::Count.apply(vals.iter()).unwrap(), Some(Value::Int(3)));
        assert_eq!(AggFunc::Min.apply(vals.iter()).unwrap(), Some(Value::Float(1.0)));
        assert_eq!(AggFunc::Max.apply(vals.iter()).unwrap(), Some(Value::Float(4.0)));
        // Empty scope yields a Null output record.
        assert_eq!(AggFunc::Sum.apply([].iter()).unwrap(), None);
    }

    #[test]
    fn int_sum_stays_int() {
        let vals = [Value::Int(1), Value::Int(2)];
        assert_eq!(AggFunc::Sum.apply(vals.iter()).unwrap(), Some(Value::Int(3)));
        let mixed = [Value::Int(1), Value::Float(0.5)];
        assert_eq!(AggFunc::Sum.apply(mixed.iter()).unwrap(), Some(Value::Float(1.5)));
    }

    #[test]
    fn agg_type_errors() {
        let vals = [Value::str("x")];
        assert!(AggFunc::Sum.apply(vals.iter()).is_err());
        assert!(AggFunc::Avg.output_type(AttrType::Str).is_err());
        assert!(AggFunc::Min.output_type(AttrType::Bool).is_err());
        assert_eq!(AggFunc::Count.output_type(AttrType::Str).unwrap(), AttrType::Int);
        assert_eq!(AggFunc::Sum.output_type(AttrType::Int).unwrap(), AttrType::Int);
        assert_eq!(AggFunc::Avg.output_type(AttrType::Int).unwrap(), AttrType::Float);
    }

    #[test]
    fn min_max_on_strings() {
        let vals = [Value::str("b"), Value::str("a")];
        assert_eq!(AggFunc::Min.apply(vals.iter()).unwrap(), Some(Value::str("a")));
        assert_eq!(AggFunc::Max.apply(vals.iter()).unwrap(), Some(Value::str("b")));
    }

    #[test]
    fn window_constructors() {
        assert_eq!(Window::trailing(3), Window::Sliding { lo: -2, hi: 0 });
        assert_eq!(Window::leading(2), Window::Sliding { lo: 0, hi: 1 });
        assert_eq!(Window::trailing(1), Window::Sliding { lo: 0, hi: 0 });
    }

    #[test]
    fn operator_scopes_match_paper() {
        let sel = SeqOperator::Select { predicate: Expr::lit(true) };
        assert!(sel.scope(0).size().is_unit());
        assert!(sel.is_unit_scope());

        let off = SeqOperator::PositionalOffset { offset: -5 };
        assert!(off.is_unit_scope());
        assert!(!off.scope(0).sequential());

        let prev = SeqOperator::previous();
        assert_eq!(prev.scope(0).size(), ScopeSize::Variable);
        assert!(!prev.is_unit_scope());

        let agg = SeqOperator::aggregate(AggFunc::Sum, "close", Window::trailing(6));
        assert_eq!(agg.scope(0).size(), ScopeSize::Fixed(6));
        assert!(agg.scope(0).sequential());
        assert!(!agg.is_unit_scope());

        let comp = SeqOperator::Compose { predicate: None };
        assert!(comp.is_unit_scope());
        assert!(comp.scope(1).size().is_unit());
    }

    #[test]
    fn output_schemas() {
        let s = stock();
        let sel = SeqOperator::Select { predicate: Expr::attr("close").gt(Expr::lit(7.0)) };
        assert_eq!(sel.output_schema(std::slice::from_ref(&s)).unwrap(), s);

        let proj = SeqOperator::Project { attrs: vec!["close".into()] };
        assert_eq!(proj.output_schema(std::slice::from_ref(&s)).unwrap().arity(), 1);

        let agg = SeqOperator::aggregate(AggFunc::Sum, "close", Window::trailing(6));
        let out = agg.output_schema(std::slice::from_ref(&s)).unwrap();
        assert_eq!(out.field(0).unwrap().name, "sum_close");
        assert_eq!(out.field(0).unwrap().ty, AttrType::Float);

        let comp = SeqOperator::Compose { predicate: None };
        assert_eq!(comp.output_schema(&[s.clone(), s.clone()]).unwrap().arity(), 4);
    }

    #[test]
    fn output_schema_rejects_bad_queries() {
        let s = stock();
        // Non-boolean selection predicate.
        let sel = SeqOperator::Select { predicate: Expr::attr("close") };
        assert!(sel.output_schema(std::slice::from_ref(&s)).is_err());
        // Unknown projected attribute.
        let proj = SeqOperator::Project { attrs: vec!["nope".into()] };
        assert!(proj.output_schema(std::slice::from_ref(&s)).is_err());
        // Wrong arity.
        let comp = SeqOperator::Compose { predicate: None };
        assert!(comp.output_schema(std::slice::from_ref(&s)).is_err());
        // Zero value offset.
        let vo = SeqOperator::ValueOffset { offset: 0 };
        assert!(vo.output_schema(std::slice::from_ref(&s)).is_err());
        // Aggregate over a string.
        let agg = SeqOperator::aggregate(AggFunc::Sum, "time", Window::trailing(2));
        assert!(agg.output_schema(&[schema(&[("time", AttrType::Str)])]).is_err());
    }

    #[test]
    fn apply_unit_select_compose() {
        let s = stock();
        let pred = Expr::attr("close").gt(Expr::lit(2.0)).bind(&s).unwrap();
        let sel = SeqOperator::Select { predicate: pred };
        let hit = record![1i64, 3.0];
        let miss = record![1i64, 1.0];
        assert!(sel.apply_unit(&[Some(&hit)]).unwrap().is_some());
        assert!(sel.apply_unit(&[Some(&miss)]).unwrap().is_none());
        assert!(sel.apply_unit(&[None]).unwrap().is_none());

        let comp = SeqOperator::Compose { predicate: None };
        let out = comp.apply_unit(&[Some(&hit), Some(&miss)]).unwrap().unwrap();
        assert_eq!(out.arity(), 4);
        assert!(comp.apply_unit(&[Some(&hit), None]).unwrap().is_none());
    }

    #[test]
    fn display_forms() {
        assert_eq!(SeqOperator::previous().to_string(), "Previous");
        assert_eq!(SeqOperator::next_op().to_string(), "Next");
        assert_eq!(
            SeqOperator::aggregate(AggFunc::Sum, "close", Window::trailing(6)).to_string(),
            "SUM(close) over [i-5, i+0]"
        );
        assert_eq!(SeqOperator::PositionalOffset { offset: -5 }.to_string(), "PosOffset(-5)");
    }
}
