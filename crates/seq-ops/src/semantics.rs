//! The reference (denotational) evaluator.
//!
//! Evaluates a resolved query graph *directly from the definitions of §2.1*:
//! the output record at position `i` is computed by structural recursion,
//! with no caching, no access-mode selection, and no rewriting. It is
//! deliberately naive — its only job is to be obviously correct, serving as
//! the ground truth that the physical executor (`seq-exec`) and the optimizer
//! (`seq-opt`) are differentially tested against.

use std::collections::HashMap;
use std::sync::Arc;

use seq_core::{Record, Result, SeqError, Sequence, Span};

use crate::graph::{BoundOp, NodeId, ResolvedGraph, ResolvedKind};
use crate::operator::Window;
use crate::spanrules::output_span;

/// Provides materialized base sequences by name.
pub trait SequenceProvider {
    /// The sequence registered under `name`.
    fn sequence(&self, name: &str) -> Result<Arc<dyn Sequence>>;
}

impl SequenceProvider for HashMap<String, Arc<dyn Sequence>> {
    fn sequence(&self, name: &str) -> Result<Arc<dyn Sequence>> {
        self.get(name).cloned().ok_or_else(|| SeqError::UnknownSequence(name.to_string()))
    }
}

/// The reference evaluator over one resolved graph.
pub struct ReferenceEvaluator<'a> {
    graph: &'a ResolvedGraph,
    /// Base sequence handle per node (None for non-base nodes).
    bases: Vec<Option<Arc<dyn Sequence>>>,
    /// Bottom-up output span per node.
    spans: Vec<Span>,
}

impl<'a> ReferenceEvaluator<'a> {
    /// Bind the graph's base leaves and derive per-node spans.
    pub fn new(
        graph: &'a ResolvedGraph,
        provider: &dyn SequenceProvider,
    ) -> Result<ReferenceEvaluator<'a>> {
        let mut bases: Vec<Option<Arc<dyn Sequence>>> = vec![None; graph.len()];
        let mut spans = vec![Span::empty(); graph.len()];
        for id in graph.postorder() {
            match &graph.node(id).kind {
                ResolvedKind::Base { name } => {
                    let seq = provider.sequence(name)?;
                    spans[id] = seq.meta().span;
                    bases[id] = Some(seq);
                }
                ResolvedKind::Constant { .. } => {
                    spans[id] = Span::all();
                }
                ResolvedKind::Op { op, inputs } => {
                    let in_spans: Vec<Span> = inputs.iter().map(|&i| spans[i]).collect();
                    spans[id] = output_span(op, &in_spans);
                }
            }
        }
        Ok(ReferenceEvaluator { graph, bases, spans })
    }

    /// The (conservative) span of the query's output sequence.
    pub fn output_span(&self) -> Span {
        self.spans[self.graph.root()]
    }

    /// The span of an arbitrary node.
    pub fn node_span(&self, id: NodeId) -> Span {
        self.spans[id]
    }

    /// Evaluate the query output at a single position.
    pub fn eval(&self, pos: i64) -> Result<Option<Record>> {
        self.eval_at(self.graph.root(), pos)
    }

    /// Evaluate node `id` at position `pos` by structural recursion.
    pub fn eval_at(&self, id: NodeId, pos: i64) -> Result<Option<Record>> {
        match &self.graph.node(id).kind {
            ResolvedKind::Base { .. } => {
                Ok(self.bases[id].as_ref().expect("base resolved").get(pos))
            }
            ResolvedKind::Constant { record } => Ok(Some(record.clone())),
            ResolvedKind::Op { op, inputs } => self.eval_op(op, inputs, pos),
        }
    }

    fn eval_op(&self, op: &BoundOp, inputs: &[NodeId], pos: i64) -> Result<Option<Record>> {
        match op {
            BoundOp::Select { predicate } => {
                let Some(rec) = self.eval_at(inputs[0], pos)? else { return Ok(None) };
                if predicate.eval_predicate(&rec)? {
                    Ok(Some(rec))
                } else {
                    Ok(None)
                }
            }
            BoundOp::Project { indices } => {
                let Some(rec) = self.eval_at(inputs[0], pos)? else { return Ok(None) };
                Ok(Some(rec.project(indices)?))
            }
            BoundOp::PositionalOffset { offset } => {
                self.eval_at(inputs[0], pos.saturating_add(*offset))
            }
            BoundOp::ValueOffset { offset } => self.eval_value_offset(inputs[0], *offset, pos),
            BoundOp::Aggregate { func, attr_index, window, .. } => {
                let in_span = self.spans[inputs[0]];
                let scan = match window {
                    Window::Sliding { lo, hi } => {
                        Span::new(pos.saturating_add(*lo), pos.saturating_add(*hi))
                            .intersect(&in_span)
                    }
                    Window::Cumulative => Span::new(in_span.start(), pos).intersect(&in_span),
                    Window::WholeSpan => in_span,
                };
                if !scan.is_empty() && !scan.is_bounded() {
                    return Err(SeqError::Unsupported(
                        "reference evaluation of an aggregate over an unbounded scope".into(),
                    ));
                }
                let mut values = Vec::new();
                for p in scan.positions() {
                    if let Some(rec) = self.eval_at(inputs[0], p)? {
                        values.push(rec.value(*attr_index)?.clone());
                    }
                }
                Ok(func.apply(values.iter())?.map(|v| Record::new(vec![v])))
            }
            BoundOp::Compose { .. } => {
                let l = self.eval_at(inputs[0], pos)?;
                let r = self.eval_at(inputs[1], pos)?;
                op.apply_unit_records(l.as_ref(), r.as_ref())
            }
        }
    }

    fn eval_value_offset(&self, input: NodeId, offset: i64, pos: i64) -> Result<Option<Record>> {
        let span = self.spans[input];
        if span.is_empty() {
            return Ok(None);
        }
        let mut remaining = offset.unsigned_abs();
        if offset < 0 {
            if span.start() == seq_core::NEG_INF {
                return Err(SeqError::Unsupported(
                    "reference evaluation of a backward value offset over an unbounded input"
                        .into(),
                ));
            }
            let mut j = pos - 1;
            while j >= span.start() {
                if let Some(rec) = self.eval_at(input, j)? {
                    remaining -= 1;
                    if remaining == 0 {
                        return Ok(Some(rec));
                    }
                }
                j -= 1;
            }
            Ok(None)
        } else {
            if span.end() == seq_core::POS_INF {
                return Err(SeqError::Unsupported(
                    "reference evaluation of a forward value offset over an unbounded input".into(),
                ));
            }
            let mut j = pos + 1;
            while j <= span.end() {
                if let Some(rec) = self.eval_at(input, j)? {
                    remaining -= 1;
                    if remaining == 0 {
                        return Ok(Some(rec));
                    }
                }
                j += 1;
            }
            Ok(None)
        }
    }

    /// Materialize every non-Null output in `span` (bounded), in order.
    pub fn materialize(&self, span: Span) -> Result<Vec<(i64, Record)>> {
        let bounded = span.intersect(&self.output_span());
        if !bounded.is_empty() && !bounded.is_bounded() {
            return Err(SeqError::Unsupported(
                "cannot materialize an unbounded span; supply a position range".into(),
            ));
        }
        let mut out = Vec::new();
        for pos in bounded.positions() {
            if let Some(rec) = self.eval(pos)? {
                out.push((pos, rec));
            }
        }
        Ok(out)
    }
}

impl BoundOp {
    /// Apply a compose/select-style unit operator to optional records
    /// (mirrors `SeqOperator::apply_unit` for bound operators).
    pub fn apply_unit_records(
        &self,
        left: Option<&Record>,
        right: Option<&Record>,
    ) -> Result<Option<Record>> {
        match self {
            BoundOp::Compose { predicate } => {
                let (Some(l), Some(r)) = (left, right) else { return Ok(None) };
                let joined = l.compose(r);
                if let Some(p) = predicate {
                    if !p.eval_predicate(&joined)? {
                        return Ok(None);
                    }
                }
                Ok(Some(joined))
            }
            other => Err(SeqError::Unsupported(format!(
                "apply_unit_records only applies to Compose, got {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::graph::QueryGraph;
    use crate::operator::{AggFunc, SeqOperator, Window};
    use seq_core::{record, schema, AttrType, BaseSequence, Schema, Value};

    fn stock_schema() -> Schema {
        schema(&[("time", AttrType::Int), ("close", AttrType::Float)])
    }

    fn db(seqs: Vec<(&str, Vec<(i64, f64)>)>) -> HashMap<String, Arc<dyn Sequence>> {
        let mut m: HashMap<String, Arc<dyn Sequence>> = HashMap::new();
        for (name, data) in seqs {
            let base = BaseSequence::from_entries(
                stock_schema(),
                data.into_iter().map(|(p, v)| (p, record![p, v])).collect(),
            )
            .unwrap();
            m.insert(name.to_string(), Arc::new(base));
        }
        m
    }

    fn schemas(db: &HashMap<String, Arc<dyn Sequence>>) -> HashMap<String, Schema> {
        db.iter().map(|(k, v)| (k.clone(), v.schema().clone())).collect()
    }

    #[test]
    fn selection_filters_positions() {
        let db = db(vec![("S", vec![(1, 5.0), (2, 1.0), (3, 9.0)])]);
        let mut g = QueryGraph::new();
        let s = g.add_base("S");
        g.add_op(
            SeqOperator::Select { predicate: Expr::attr("close").gt(Expr::lit(4.0)) },
            vec![s],
        )
        .unwrap();
        let r = g.resolve(&schemas(&db)).unwrap();
        let ev = ReferenceEvaluator::new(&r, &db).unwrap();
        let out = ev.materialize(Span::all()).unwrap();
        let pos: Vec<i64> = out.iter().map(|(p, _)| *p).collect();
        assert_eq!(pos, vec![1, 3]);
    }

    #[test]
    fn positional_offset_shifts() {
        let db = db(vec![("S", vec![(1, 1.0), (2, 2.0), (3, 3.0)])]);
        let mut g = QueryGraph::new();
        let s = g.add_base("S");
        g.add_op(SeqOperator::PositionalOffset { offset: 1 }, vec![s]).unwrap();
        let r = g.resolve(&schemas(&db)).unwrap();
        let ev = ReferenceEvaluator::new(&r, &db).unwrap();
        // Out(i) = In(i+1): Out(0)=In(1), Out(2)=In(3).
        assert_eq!(ev.output_span(), Span::new(0, 2));
        let out = ev.materialize(Span::all()).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].0, 0);
        assert_eq!(out[0].1.value(1).unwrap(), &Value::Float(1.0));
    }

    #[test]
    fn previous_finds_most_recent() {
        // Positions 1,3,7 — Previous at 7 must skip back over the gap to 3.
        let db = db(vec![("S", vec![(1, 1.0), (3, 3.0), (7, 7.0)])]);
        let mut g = QueryGraph::new();
        let s = g.add_base("S");
        g.add_op(SeqOperator::previous(), vec![s]).unwrap();
        let r = g.resolve(&schemas(&db)).unwrap();
        let ev = ReferenceEvaluator::new(&r, &db).unwrap();
        assert!(ev.eval(1).unwrap().is_none()); // nothing before position 1
        let at2 = ev.eval(2).unwrap().unwrap();
        assert_eq!(at2.value(0).unwrap(), &Value::Int(1));
        let at7 = ev.eval(7).unwrap().unwrap();
        assert_eq!(at7.value(0).unwrap(), &Value::Int(3)); // strictly before 7
        let at9 = ev.eval(9).unwrap().unwrap();
        assert_eq!(at9.value(0).unwrap(), &Value::Int(7));
    }

    #[test]
    fn value_offset_minus_two() {
        let db = db(vec![("S", vec![(1, 1.0), (3, 3.0), (7, 7.0)])]);
        let mut g = QueryGraph::new();
        let s = g.add_base("S");
        g.add_op(SeqOperator::ValueOffset { offset: -2 }, vec![s]).unwrap();
        let r = g.resolve(&schemas(&db)).unwrap();
        let ev = ReferenceEvaluator::new(&r, &db).unwrap();
        assert!(ev.eval(3).unwrap().is_none()); // only one record before 3
        let at7 = ev.eval(7).unwrap().unwrap();
        assert_eq!(at7.value(0).unwrap(), &Value::Int(1)); // 2nd most recent
    }

    #[test]
    fn next_looks_forward() {
        let db = db(vec![("S", vec![(1, 1.0), (3, 3.0)])]);
        let mut g = QueryGraph::new();
        let s = g.add_base("S");
        g.add_op(SeqOperator::next_op(), vec![s]).unwrap();
        let r = g.resolve(&schemas(&db)).unwrap();
        let ev = ReferenceEvaluator::new(&r, &db).unwrap();
        let at1 = ev.eval(1).unwrap().unwrap();
        assert_eq!(at1.value(0).unwrap(), &Value::Int(3));
        assert!(ev.eval(3).unwrap().is_none());
    }

    #[test]
    fn moving_sum_ignores_nulls() {
        // Fig 5.A shape: six-position moving sum.
        let db = db(vec![("IBM", vec![(1, 1.0), (2, 2.0), (4, 4.0)])]);
        let mut g = QueryGraph::new();
        let s = g.add_base("IBM");
        g.add_op(SeqOperator::aggregate(AggFunc::Sum, "close", Window::trailing(3)), vec![s])
            .unwrap();
        let r = g.resolve(&schemas(&db)).unwrap();
        let ev = ReferenceEvaluator::new(&r, &db).unwrap();
        // At position 4: window {2,3,4} -> 2.0 + 4.0.
        assert_eq!(ev.eval(4).unwrap().unwrap().value(0).unwrap(), &Value::Float(6.0));
        // At position 3: window {1,2,3} -> 3.0.
        assert_eq!(ev.eval(3).unwrap().unwrap().value(0).unwrap(), &Value::Float(3.0));
        // At position 6: window {4,5,6} -> 4.0.
        assert_eq!(ev.eval(6).unwrap().unwrap().value(0).unwrap(), &Value::Float(4.0));
        // At position 7: window {5,6,7} all empty -> Null.
        assert!(ev.eval(7).unwrap().is_none());
    }

    #[test]
    fn cumulative_and_whole_span() {
        let db = db(vec![("S", vec![(1, 1.0), (2, 2.0), (3, 3.0)])]);
        let mut g = QueryGraph::new();
        let s = g.add_base("S");
        g.add_op(SeqOperator::aggregate(AggFunc::Sum, "close", Window::Cumulative), vec![s])
            .unwrap();
        let r = g.resolve(&schemas(&db)).unwrap();
        let ev = ReferenceEvaluator::new(&r, &db).unwrap();
        assert_eq!(ev.eval(2).unwrap().unwrap().value(0).unwrap(), &Value::Float(3.0));
        assert_eq!(ev.eval(9).unwrap().unwrap().value(0).unwrap(), &Value::Float(6.0));

        let db2 = db_clone_whole();
        let mut g2 = QueryGraph::new();
        let s2 = g2.add_base("S");
        g2.add_op(SeqOperator::aggregate(AggFunc::Max, "close", Window::WholeSpan), vec![s2])
            .unwrap();
        let r2 = g2.resolve(&schemas(&db2)).unwrap();
        let ev2 = ReferenceEvaluator::new(&r2, &db2).unwrap();
        assert_eq!(ev2.eval(1).unwrap().unwrap().value(0).unwrap(), &Value::Float(3.0));
    }

    fn db_clone_whole() -> HashMap<String, Arc<dyn Sequence>> {
        db(vec![("S", vec![(1, 1.0), (2, 2.0), (3, 3.0)])])
    }

    #[test]
    fn compose_with_predicate() {
        let db = db(vec![
            ("A", vec![(1, 1.0), (2, 5.0), (3, 3.0)]),
            ("B", vec![(2, 2.0), (3, 9.0), (4, 1.0)]),
        ]);
        let mut g = QueryGraph::new();
        let a = g.add_base("A");
        let b = g.add_base("B");
        g.add_op(
            SeqOperator::Compose { predicate: Some(Expr::attr("close").gt(Expr::attr("close_r"))) },
            vec![a, b],
        )
        .unwrap();
        let r = g.resolve(&schemas(&db)).unwrap();
        let ev = ReferenceEvaluator::new(&r, &db).unwrap();
        let out = ev.materialize(Span::all()).unwrap();
        // Common positions: 2 (5.0 > 2.0 ✓), 3 (3.0 > 9.0 ✗).
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 2);
        assert_eq!(out[0].1.arity(), 4);
    }

    #[test]
    fn example_1_1_volcano_earthquake() {
        // Example 1.1 with compose over Previous: "for which volcano
        // eruptions was the strength of the most recent earthquake > 7.0".
        let quake_schema = schema(&[("time", AttrType::Int), ("strength", AttrType::Float)]);
        let volcano_schema = schema(&[("time", AttrType::Int), ("name", AttrType::Str)]);
        let quakes = BaseSequence::from_entries(
            quake_schema,
            vec![(10, record![10i64, 6.0]), (20, record![20i64, 8.0]), (40, record![40i64, 5.0])],
        )
        .unwrap();
        let volcanos = BaseSequence::from_entries(
            volcano_schema,
            vec![
                (15, record![15i64, "etna"]),    // most recent quake 6.0 — no
                (25, record![25i64, "fuji"]),    // most recent quake 8.0 — yes
                (45, record![45i64, "rainier"]), // most recent quake 5.0 — no
            ],
        )
        .unwrap();
        let mut dbm: HashMap<String, Arc<dyn Sequence>> = HashMap::new();
        dbm.insert("Quakes".into(), Arc::new(quakes));
        dbm.insert("Volcanos".into(), Arc::new(volcanos));

        let mut g = QueryGraph::new();
        let v = g.add_base("Volcanos");
        let q = g.add_base("Quakes");
        let prev = g.add_op(SeqOperator::previous(), vec![q]).unwrap();
        let joined = g.add_op(SeqOperator::Compose { predicate: None }, vec![v, prev]).unwrap();
        let sel = g
            .add_op(
                SeqOperator::Select { predicate: Expr::attr("strength").gt(Expr::lit(7.0)) },
                vec![joined],
            )
            .unwrap();
        g.add_op(SeqOperator::Project { attrs: vec!["name".into()] }, vec![sel]).unwrap();

        let schemas: HashMap<String, Schema> =
            dbm.iter().map(|(k, v)| (k.clone(), v.schema().clone())).collect();
        let r = g.resolve(&schemas).unwrap();
        let ev = ReferenceEvaluator::new(&r, &dbm).unwrap();
        let out = ev.materialize(Span::new(0, 100)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 25);
        assert_eq!(out[0].1.value(0).unwrap().as_str().unwrap(), "fuji");
    }

    #[test]
    fn materialize_rejects_unbounded() {
        let db = db(vec![("S", vec![(1, 1.0)])]);
        let mut g = QueryGraph::new();
        let s = g.add_base("S");
        g.add_op(SeqOperator::previous(), vec![s]).unwrap();
        let r = g.resolve(&schemas(&db)).unwrap();
        let ev = ReferenceEvaluator::new(&r, &db).unwrap();
        // Previous output span is [2, +inf): materializing all of it fails...
        assert!(ev.materialize(Span::all()).is_err());
        // ...but a clamped range works.
        assert_eq!(ev.materialize(Span::new(0, 10)).unwrap().len(), 9);
    }
}
