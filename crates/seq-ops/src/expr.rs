//! Scalar expressions over record attributes.
//!
//! Selection predicates (σ in §2.1), compose-operator join predicates, and
//! projection expressions are all built from this small expression language.
//! Expressions are written against attribute *names* and bound to attribute
//! *indices* once the input schema is known; only bound expressions evaluate.

use std::fmt;

use seq_core::{AttrType, CmpOp, Record, Result, RowRef, Schema, SeqError, SeqMeta, Value};

/// Anything a bound expression can read column values from: a materialized
/// [`Record`] or a borrowed row of a columnar [`seq_core::RecordBatch`].
pub trait ValueSource {
    /// The value in column `idx`.
    fn source_value(&self, idx: usize) -> Result<&Value>;
}

impl ValueSource for Record {
    fn source_value(&self, idx: usize) -> Result<&Value> {
        self.value(idx)
    }
}

impl ValueSource for RowRef<'_> {
    fn source_value(&self, idx: usize) -> Result<&Value> {
        self.value(idx)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (always FLOAT).
    Div,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Boolean conjunction (short-circuiting).
    And,
    /// Boolean disjunction (short-circuiting).
    Or,
}

impl BinOp {
    fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    fn is_arithmetic(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
    }

    fn as_cmp(self) -> Option<CmpOp> {
        Some(match self {
            BinOp::Eq => CmpOp::Eq,
            BinOp::Ne => CmpOp::Ne,
            BinOp::Lt => CmpOp::Lt,
            BinOp::Le => CmpOp::Le,
            BinOp::Gt => CmpOp::Gt,
            BinOp::Ge => CmpOp::Ge,
            _ => return None,
        })
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        f.write_str(s)
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Unresolved attribute reference by name.
    Attr(String),
    /// Resolved attribute reference by index (post-binding).
    Col(usize),
    /// Literal value.
    Lit(Value),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Boolean negation.
    Not(Box<Expr>),
}

impl Expr {
    /// An unresolved attribute reference.
    pub fn attr(name: impl Into<String>) -> Expr {
        Expr::Attr(name.into())
    }

    /// A literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// A binary operation node.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Bin(op, Box::new(l), Box::new(r))
    }

    /// `self > r`
    pub fn gt(self, r: Expr) -> Expr {
        Expr::bin(BinOp::Gt, self, r)
    }

    /// `self >= r`
    pub fn ge(self, r: Expr) -> Expr {
        Expr::bin(BinOp::Ge, self, r)
    }

    /// `self < r`
    pub fn lt(self, r: Expr) -> Expr {
        Expr::bin(BinOp::Lt, self, r)
    }

    /// `self <= r`
    pub fn le(self, r: Expr) -> Expr {
        Expr::bin(BinOp::Le, self, r)
    }

    /// `self = r`
    pub fn eq(self, r: Expr) -> Expr {
        Expr::bin(BinOp::Eq, self, r)
    }

    /// `self != r`
    pub fn ne(self, r: Expr) -> Expr {
        Expr::bin(BinOp::Ne, self, r)
    }

    /// `self AND r`
    pub fn and(self, r: Expr) -> Expr {
        Expr::bin(BinOp::And, self, r)
    }

    /// `self OR r`
    pub fn or(self, r: Expr) -> Expr {
        Expr::bin(BinOp::Or, self, r)
    }

    /// `self + r`
    #[allow(clippy::should_implement_trait)] // builder method, not arithmetic on Expr values
    pub fn add(self, r: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, r)
    }

    /// `self - r`
    #[allow(clippy::should_implement_trait)] // builder method, not arithmetic on Expr values
    pub fn sub(self, r: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, r)
    }

    /// `self * r`
    #[allow(clippy::should_implement_trait)] // builder method, not arithmetic on Expr values
    pub fn mul(self, r: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, r)
    }

    /// `self / r`
    #[allow(clippy::should_implement_trait)] // builder method, not arithmetic on Expr values
    pub fn div(self, r: Expr) -> Expr {
        Expr::bin(BinOp::Div, self, r)
    }

    /// `NOT self`
    pub fn negate(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Resolve attribute names against `schema`, producing a bound expression
    /// in which every reference is a [`Expr::Col`].
    pub fn bind(&self, schema: &Schema) -> Result<Expr> {
        Ok(match self {
            Expr::Attr(name) => Expr::Col(schema.index_of(name)?),
            Expr::Col(i) => {
                schema.field(*i)?;
                Expr::Col(*i)
            }
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Bin(op, l, r) => Expr::bin(*op, l.bind(schema)?, r.bind(schema)?),
            Expr::Not(e) => Expr::Not(Box::new(e.bind(schema)?)),
        })
    }

    /// Infer the result type against a schema (works on bound or unbound
    /// expressions; used for query type-checking in Step 2.a of §4).
    pub fn infer_type(&self, schema: &Schema) -> Result<AttrType> {
        match self {
            Expr::Attr(name) => Ok(schema.field(schema.index_of(name)?)?.ty),
            Expr::Col(i) => Ok(schema.field(*i)?.ty),
            Expr::Lit(v) => Ok(v.attr_type()),
            Expr::Not(e) => {
                let t = e.infer_type(schema)?;
                if t != AttrType::Bool {
                    return Err(SeqError::Type(format!("NOT requires BOOL, found {t}")));
                }
                Ok(AttrType::Bool)
            }
            Expr::Bin(op, l, r) => {
                let lt = l.infer_type(schema)?;
                let rt = r.infer_type(schema)?;
                if op.is_comparison() {
                    let compatible = lt == rt || (lt.is_numeric() && rt.is_numeric());
                    if !compatible {
                        return Err(SeqError::Type(format!("cannot compare {lt} with {rt}")));
                    }
                    Ok(AttrType::Bool)
                } else if op.is_arithmetic() {
                    if !lt.is_numeric() || !rt.is_numeric() {
                        return Err(SeqError::Type(format!("{op} requires numeric operands")));
                    }
                    if lt == AttrType::Float || rt == AttrType::Float || *op == BinOp::Div {
                        Ok(AttrType::Float)
                    } else {
                        Ok(AttrType::Int)
                    }
                } else {
                    // And / Or
                    if lt != AttrType::Bool || rt != AttrType::Bool {
                        return Err(SeqError::Type(format!("{op} requires BOOL operands")));
                    }
                    Ok(AttrType::Bool)
                }
            }
        }
    }

    /// Evaluate a bound expression against a record.
    pub fn eval(&self, rec: &Record) -> Result<Value> {
        self.eval_src(rec)
    }

    /// Evaluate a bound expression against a borrowed batch row without
    /// materializing a [`Record`] — the vectorized path's entry point.
    pub fn eval_row(&self, row: &RowRef<'_>) -> Result<Value> {
        self.eval_src(row)
    }

    /// Evaluate a bound boolean predicate against a borrowed batch row.
    pub fn eval_predicate_row(&self, row: &RowRef<'_>) -> Result<bool> {
        self.eval_src(row)?.as_bool()
    }

    /// Recognize the single-comparison shape `Col <op> Lit` (either operand
    /// order), the form a vectorized selection can run as a tight column
    /// kernel instead of a per-row expression-tree walk.
    pub fn as_col_cmp_lit(&self) -> Option<(usize, CmpOp, Value)> {
        let Expr::Bin(op, l, r) = self else { return None };
        let cmp = op.as_cmp()?;
        match (l.as_ref(), r.as_ref()) {
            (Expr::Col(i), Expr::Lit(v)) => Some((*i, cmp, v.clone())),
            (Expr::Lit(v), Expr::Col(i)) => Some((*i, cmp.mirrored(), v.clone())),
            _ => None,
        }
    }

    /// Recognize a conjunction of `Col <op> Lit` comparisons: `And` trees
    /// whose every leaf is a single comparison, flattened left-to-right.
    /// This is the pushdown-eligible shape — each term is value-only (not
    /// position-dependent) and null-rejecting, so a storage scan may skip
    /// any page whose zone map refutes one term, and a vectorized selection
    /// can run the whole predicate as tight column kernels. `None` for any
    /// other shape (disjunctions, negations, arithmetic, unbound attrs).
    pub fn as_conjunctive_col_cmp_lits(&self) -> Option<Vec<(usize, CmpOp, Value)>> {
        fn collect(e: &Expr, out: &mut Vec<(usize, CmpOp, Value)>) -> bool {
            if let Expr::Bin(BinOp::And, l, r) = e {
                return collect(l, out) && collect(r, out);
            }
            match e.as_col_cmp_lit() {
                Some(term) => {
                    out.push(term);
                    true
                }
                None => false,
            }
        }
        let mut terms = Vec::new();
        collect(self, &mut terms).then_some(terms)
    }

    /// Evaluate against any column-indexed value source (a materialized
    /// [`Record`] or a [`RowRef`] into a column batch).
    fn eval_src<S: ValueSource + ?Sized>(&self, rec: &S) -> Result<Value> {
        match self {
            Expr::Attr(name) => Err(SeqError::Type(format!(
                "unbound attribute {name:?}: call Expr::bind before evaluation"
            ))),
            Expr::Col(i) => Ok(rec.source_value(*i)?.clone()),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Not(e) => Ok(Value::Bool(!e.eval_src(rec)?.as_bool()?)),
            Expr::Bin(op, l, r) => {
                if *op == BinOp::And {
                    // Short-circuit.
                    return Ok(Value::Bool(
                        l.eval_src(rec)?.as_bool()? && r.eval_src(rec)?.as_bool()?,
                    ));
                }
                if *op == BinOp::Or {
                    return Ok(Value::Bool(
                        l.eval_src(rec)?.as_bool()? || r.eval_src(rec)?.as_bool()?,
                    ));
                }
                let lv = l.eval_src(rec)?;
                let rv = r.eval_src(rec)?;
                if let Some(cmp) = op.as_cmp() {
                    return Ok(Value::Bool(cmp.holds(lv.total_cmp(&rv)?)));
                }
                // Arithmetic. Ints stay ints except for division.
                match (&lv, &rv, op) {
                    (Value::Int(a), Value::Int(b), BinOp::Add) => {
                        Ok(Value::Int(a.wrapping_add(*b)))
                    }
                    (Value::Int(a), Value::Int(b), BinOp::Sub) => {
                        Ok(Value::Int(a.wrapping_sub(*b)))
                    }
                    (Value::Int(a), Value::Int(b), BinOp::Mul) => {
                        Ok(Value::Int(a.wrapping_mul(*b)))
                    }
                    _ => {
                        let a = lv.as_f64()?;
                        let b = rv.as_f64()?;
                        let v = match op {
                            BinOp::Add => a + b,
                            BinOp::Sub => a - b,
                            BinOp::Mul => a * b,
                            BinOp::Div => a / b,
                            _ => unreachable!("comparisons handled above"),
                        };
                        Ok(Value::Float(v))
                    }
                }
            }
        }
    }

    /// Evaluate a bound boolean predicate.
    pub fn eval_predicate(&self, rec: &Record) -> Result<bool> {
        self.eval(rec)?.as_bool()
    }

    /// The set of attribute indices a bound expression reads — the attributes
    /// that *participate* in the operator (§3.1, footnote 4).
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Col(i) => {
                if !out.contains(i) {
                    out.push(*i);
                }
            }
            Expr::Attr(_) | Expr::Lit(_) => {}
            Expr::Bin(_, l, r) => {
                l.referenced_columns(out);
                r.referenced_columns(out);
            }
            Expr::Not(e) => e.referenced_columns(out),
        }
    }

    /// Rewrite the column indices of a bound expression through `mapping`
    /// (`mapping[old] = new`), used when predicates are pushed through
    /// projections or compose operators.
    pub fn remap_columns(&self, mapping: &dyn Fn(usize) -> Option<usize>) -> Option<Expr> {
        Some(match self {
            Expr::Col(i) => Expr::Col(mapping(*i)?),
            Expr::Attr(a) => Expr::Attr(a.clone()),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Bin(op, l, r) => {
                Expr::bin(*op, l.remap_columns(mapping)?, r.remap_columns(mapping)?)
            }
            Expr::Not(e) => Expr::Not(Box::new(e.remap_columns(mapping)?)),
        })
    }

    /// Estimate the selectivity of this (boolean) expression using column
    /// statistics (§3: "used to determine the selectivity of predicates").
    pub fn estimate_selectivity(&self, meta: &SeqMeta) -> f64 {
        match self {
            Expr::Lit(Value::Bool(true)) => 1.0,
            Expr::Lit(Value::Bool(false)) => 0.0,
            Expr::Not(e) => 1.0 - e.estimate_selectivity(meta),
            Expr::Bin(BinOp::And, l, r) => {
                l.estimate_selectivity(meta) * r.estimate_selectivity(meta)
            }
            Expr::Bin(BinOp::Or, l, r) => {
                let a = l.estimate_selectivity(meta);
                let b = r.estimate_selectivity(meta);
                (a + b - a * b).clamp(0.0, 1.0)
            }
            Expr::Bin(op, l, r) if op.is_comparison() => {
                let cmp = op.as_cmp().expect("comparison");
                match (l.as_ref(), r.as_ref()) {
                    (Expr::Col(i), Expr::Lit(v)) => meta.column(*i).range_selectivity(v, cmp),
                    (Expr::Lit(v), Expr::Col(i)) => meta.column(*i).range_selectivity(v, flip(cmp)),
                    // Column-to-column comparisons: System R style defaults.
                    _ => cmp.default_selectivity(),
                }
            }
            _ => 1.0 / 3.0,
        }
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Attr(a) => write!(f, "{a}"),
            Expr::Col(i) => write!(f, "${i}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Bin(op, l, r) => write!(f, "({l} {op} {r})"),
            Expr::Not(e) => write!(f, "NOT {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::{record, schema, ColumnStats, Span};

    fn stock_schema() -> Schema {
        schema(&[("time", AttrType::Int), ("close", AttrType::Float)])
    }

    #[test]
    fn bind_resolves_names() {
        let e = Expr::attr("close").gt(Expr::lit(7.0));
        let b = e.bind(&stock_schema()).unwrap();
        assert_eq!(b.to_string(), "($1 > 7)");
        assert!(Expr::attr("nope").bind(&stock_schema()).is_err());
    }

    #[test]
    fn eval_requires_binding() {
        let e = Expr::attr("close");
        assert!(e.eval(&record![1i64, 2.0]).is_err());
    }

    #[test]
    fn comparison_and_arithmetic() {
        let s = stock_schema();
        let e = Expr::attr("close").mul(Expr::lit(2.0)).gt(Expr::lit(5.0)).bind(&s).unwrap();
        assert!(e.eval_predicate(&record![1i64, 3.0]).unwrap());
        assert!(!e.eval_predicate(&record![1i64, 2.0]).unwrap());
    }

    #[test]
    fn integer_arithmetic_stays_integer() {
        let s = schema(&[("a", AttrType::Int), ("b", AttrType::Int)]);
        let e = Expr::attr("a").add(Expr::attr("b")).bind(&s).unwrap();
        assert_eq!(e.eval(&record![2i64, 3i64]).unwrap(), Value::Int(5));
        let d = Expr::attr("a").div(Expr::attr("b")).bind(&s).unwrap();
        assert_eq!(d.eval(&record![7i64, 2i64]).unwrap(), Value::Float(3.5));
    }

    #[test]
    fn boolean_connectives_short_circuit() {
        let s = schema(&[("flag", AttrType::Bool)]);
        // Right operand would be a type error if evaluated.
        let e = Expr::attr("flag").or(Expr::lit(1i64).eq(Expr::lit("x"))).bind(&s).unwrap();
        assert!(e.eval_predicate(&record![true]).unwrap());
        assert!(e.eval_predicate(&record![false]).is_err());
    }

    #[test]
    fn type_inference() {
        let s = stock_schema();
        assert_eq!(Expr::attr("close").gt(Expr::lit(1.0)).infer_type(&s).unwrap(), AttrType::Bool);
        assert_eq!(Expr::attr("time").add(Expr::lit(1i64)).infer_type(&s).unwrap(), AttrType::Int);
        assert_eq!(
            Expr::attr("time").add(Expr::attr("close")).infer_type(&s).unwrap(),
            AttrType::Float
        );
        assert!(Expr::attr("close").and(Expr::lit(true)).infer_type(&s).is_err());
        assert!(Expr::attr("close").gt(Expr::lit("x")).infer_type(&s).is_err());
    }

    #[test]
    fn referenced_columns_and_remap() {
        let s = stock_schema();
        let e = Expr::attr("close").gt(Expr::attr("close")).bind(&s).unwrap();
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(cols, vec![1]);
        let remapped = e.remap_columns(&|i| if i == 1 { Some(0) } else { None }).unwrap();
        assert_eq!(remapped.to_string(), "($0 > $0)");
        assert!(e.remap_columns(&|_| None).is_none());
    }

    #[test]
    fn selectivity_with_stats() {
        let meta = SeqMeta::new(
            Span::new(1, 100),
            1.0,
            vec![
                ColumnStats::unknown(),
                ColumnStats::bounded(Value::Float(0.0), Value::Float(10.0), 50),
            ],
        );
        let e = Expr::Col(1).gt(Expr::lit(7.0));
        assert!((e.estimate_selectivity(&meta) - 0.3).abs() < 1e-9);
        // Flipped literal side.
        let e = Expr::lit(7.0).lt(Expr::Col(1));
        assert!((e.estimate_selectivity(&meta) - 0.3).abs() < 1e-9);
        // Conjunction multiplies.
        let e = Expr::Col(1).gt(Expr::lit(7.0)).and(Expr::Col(1).gt(Expr::lit(7.0)));
        assert!((e.estimate_selectivity(&meta) - 0.09).abs() < 1e-9);
    }

    #[test]
    fn display_round_trip_shape() {
        let e = Expr::attr("a").gt(Expr::lit(1i64)).and(Expr::attr("b").eq(Expr::lit("x")));
        assert_eq!(e.to_string(), "((a > 1) AND (b = \"x\"))");
    }

    #[test]
    fn conjunctive_col_cmp_lits_flatten() {
        // Single comparison, either operand order.
        let e = Expr::Col(1).gt(Expr::lit(5.0));
        assert_eq!(
            e.as_conjunctive_col_cmp_lits().unwrap(),
            vec![(1, CmpOp::Gt, Value::Float(5.0))]
        );
        // Nested conjunction flattens left-to-right; mirrored literal side.
        let e = Expr::Col(0)
            .ge(Expr::lit(2i64))
            .and(Expr::lit(9i64).gt(Expr::Col(0)).and(Expr::Col(1).ne(Expr::lit(0.0))));
        assert_eq!(
            e.as_conjunctive_col_cmp_lits().unwrap(),
            vec![
                (0, CmpOp::Ge, Value::Int(2)),
                (0, CmpOp::Lt, Value::Int(9)),
                (1, CmpOp::Ne, Value::Float(0.0)),
            ]
        );
        // Any non-comparison leaf disqualifies the whole conjunction.
        assert!(Expr::Col(0)
            .gt(Expr::lit(1i64))
            .or(Expr::Col(1).gt(Expr::lit(2.0)))
            .as_conjunctive_col_cmp_lits()
            .is_none());
        assert!(Expr::Col(0)
            .gt(Expr::lit(1i64))
            .and(Expr::Col(1).add(Expr::lit(1.0)).gt(Expr::lit(2.0)))
            .as_conjunctive_col_cmp_lits()
            .is_none());
        assert!(Expr::Not(Box::new(Expr::Col(0).gt(Expr::lit(1i64))))
            .as_conjunctive_col_cmp_lits()
            .is_none());
    }
}
