//! Sequence query graphs (§2.2).
//!
//! A sequence query is an acyclic graph of operators whose leaves are base or
//! constant sequences. As in the paper, the graph is restricted to a *tree*:
//! no operator output feeds more than one consumer (§2.2; DAGs are discussed
//! as an extension in §5.2).
//!
//! Queries are built as [`QueryGraph`]s over named attributes, then
//! [`QueryGraph::resolve`]d against a [`SchemaProvider`] into a
//! [`ResolvedGraph`] in which every expression is bound to attribute indices
//! and every node carries its output schema — the representation the
//! reference evaluator, the optimizer, and the executor all share.

use std::fmt;

use seq_core::{Record, Result, Schema, SeqError};

use crate::expr::Expr;
use crate::operator::{AggFunc, SeqOperator, Window};
use crate::scope::ScopeShape;

/// Index of a node within its graph's arena.
pub type NodeId = usize;

/// A node of an unresolved query graph.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryNode {
    /// A named base sequence (resolved through the catalog).
    Base {
        /// Catalog name.
        name: String,
    },
    /// An inline constant sequence.
    Constant {
        /// The constant's record schema.
        schema: Schema,
        /// The record at every position.
        record: Record,
    },
    /// An operator over earlier nodes.
    Op {
        /// The operator.
        op: SeqOperator,
        /// Its input node ids.
        inputs: Vec<NodeId>,
    },
}

/// Provides schemas for named base sequences during resolution.
pub trait SchemaProvider {
    /// The schema registered under `name`.
    fn schema_of(&self, name: &str) -> Result<Schema>;
}

impl SchemaProvider for std::collections::HashMap<String, Schema> {
    fn schema_of(&self, name: &str) -> Result<Schema> {
        self.get(name).cloned().ok_or_else(|| SeqError::UnknownSequence(name.to_string()))
    }
}

/// An unresolved sequence query: an arena of nodes plus a root.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryGraph {
    nodes: Vec<QueryNode>,
    root: Option<NodeId>,
}

impl QueryGraph {
    /// An empty graph.
    pub fn new() -> QueryGraph {
        QueryGraph::default()
    }

    /// Add a base-sequence leaf.
    pub fn add_base(&mut self, name: impl Into<String>) -> NodeId {
        self.push(QueryNode::Base { name: name.into() })
    }

    /// Add a constant-sequence leaf.
    pub fn add_constant(&mut self, schema: Schema, record: Record) -> NodeId {
        self.push(QueryNode::Constant { schema, record })
    }

    /// Add an operator node. Input ids must already exist; arity is checked.
    pub fn add_op(&mut self, op: SeqOperator, inputs: Vec<NodeId>) -> Result<NodeId> {
        if inputs.len() != op.arity() {
            return Err(SeqError::InvalidGraph(format!(
                "{op} expects {} input(s), got {}",
                op.arity(),
                inputs.len()
            )));
        }
        for &i in &inputs {
            if i >= self.nodes.len() {
                return Err(SeqError::InvalidGraph(format!("input node {i} does not exist")));
            }
        }
        Ok(self.push(QueryNode::Op { op, inputs }))
    }

    fn push(&mut self, node: QueryNode) -> NodeId {
        self.nodes.push(node);
        let id = self.nodes.len() - 1;
        self.root = Some(id);
        id
    }

    /// Override the root (by default the most recently added node).
    pub fn set_root(&mut self, id: NodeId) -> Result<()> {
        if id >= self.nodes.len() {
            return Err(SeqError::InvalidGraph(format!("node {id} does not exist")));
        }
        self.root = Some(id);
        Ok(())
    }

    /// The root node (the query output).
    pub fn root(&self) -> Result<NodeId> {
        self.root.ok_or_else(|| SeqError::InvalidGraph("empty query graph".into()))
    }

    /// The node stored at `id`.
    pub fn node(&self, id: NodeId) -> &QueryNode {
        &self.nodes[id]
    }

    /// Number of nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Check the tree restriction of §2.2: starting from the root, every node
    /// is consumed exactly once and every arena node is reachable.
    pub fn validate_tree(&self) -> Result<()> {
        let root = self.root()?;
        let mut consumers = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            if let QueryNode::Op { inputs, .. } = node {
                for &i in inputs {
                    consumers[i] += 1;
                }
            }
        }
        if consumers[root] != 0 {
            return Err(SeqError::InvalidGraph("root node is consumed by another operator".into()));
        }
        for (id, &n) in consumers.iter().enumerate() {
            if id != root && n == 0 {
                return Err(SeqError::InvalidGraph(format!(
                    "node {id} is unreachable from the root"
                )));
            }
            if n > 1 {
                return Err(SeqError::InvalidGraph(format!(
                    "node {id} feeds {n} consumers; the query graph must be a tree (§2.2)"
                )));
            }
        }
        Ok(())
    }

    /// Resolve the query against base-sequence schemas: type-check every
    /// operator, bind every expression, and compute every node's output
    /// schema (the type-checking half of Step 2.a in §4).
    pub fn resolve(&self, provider: &dyn SchemaProvider) -> Result<ResolvedGraph> {
        self.validate_tree()?;
        let mut nodes: Vec<ResolvedNode> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let resolved = match node {
                QueryNode::Base { name } => ResolvedNode {
                    kind: ResolvedKind::Base { name: name.clone() },
                    schema: provider.schema_of(name)?,
                },
                QueryNode::Constant { schema, record } => {
                    Record::checked(record.values().to_vec(), schema)?;
                    ResolvedNode {
                        kind: ResolvedKind::Constant { record: record.clone() },
                        schema: schema.clone(),
                    }
                }
                QueryNode::Op { op, inputs } => {
                    let in_schemas: Vec<Schema> =
                        inputs.iter().map(|&i| nodes[i].schema.clone()).collect();
                    let schema = op.output_schema(&in_schemas)?;
                    let bound = BoundOp::bind(op, &in_schemas, &schema)?;
                    ResolvedNode {
                        kind: ResolvedKind::Op { op: bound, inputs: inputs.clone() },
                        schema,
                    }
                }
            };
            nodes.push(resolved);
        }
        Ok(ResolvedGraph { nodes, root: self.root()? })
    }
}

/// An operator whose expressions are bound and attributes resolved.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundOp {
    /// σ with a bound predicate.
    Select {
        /// Bound boolean predicate.
        predicate: Expr,
    },
    /// π with resolved attribute indices.
    Project {
        /// Input attribute indices, in output order.
        indices: Vec<usize>,
    },
    /// Positional shift.
    PositionalOffset {
        /// The shift amount.
        offset: i64,
    },
    /// Previous/Next-style value offset.
    ValueOffset {
        /// Non-zero offset; sign is the direction.
        offset: i64,
    },
    /// Windowed aggregate with a resolved input attribute.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// Resolved input attribute index.
        attr_index: usize,
        /// The `agg_pos` window.
        window: Window,
        /// Output attribute name.
        output_name: String,
    },
    /// Positional join with an optionally bound predicate.
    Compose {
        /// Bound join predicate over the composed record, if any.
        predicate: Option<Expr>,
    },
}

impl BoundOp {
    fn bind(op: &SeqOperator, inputs: &[Schema], _output: &Schema) -> Result<BoundOp> {
        Ok(match op {
            SeqOperator::Select { predicate } => {
                BoundOp::Select { predicate: predicate.bind(&inputs[0])? }
            }
            SeqOperator::Project { attrs } => BoundOp::Project {
                indices: attrs.iter().map(|a| inputs[0].index_of(a)).collect::<Result<_>>()?,
            },
            SeqOperator::PositionalOffset { offset } => {
                BoundOp::PositionalOffset { offset: *offset }
            }
            SeqOperator::ValueOffset { offset } => BoundOp::ValueOffset { offset: *offset },
            SeqOperator::Aggregate { func, attr, window, output_name } => BoundOp::Aggregate {
                func: *func,
                attr_index: inputs[0].index_of(attr)?,
                window: *window,
                output_name: output_name.clone(),
            },
            SeqOperator::Compose { predicate } => {
                let composed = inputs[0].compose(&inputs[1]);
                BoundOp::Compose {
                    predicate: predicate.as_ref().map(|p| p.bind(&composed)).transpose()?,
                }
            }
        })
    }

    /// Number of input sequences.
    pub fn arity(&self) -> usize {
        match self {
            BoundOp::Compose { .. } => 2,
            _ => 1,
        }
    }

    /// Scope shape over input `input_idx` (§2.3); mirrors
    /// [`SeqOperator::scope`].
    pub fn scope(&self, input_idx: usize) -> ScopeShape {
        debug_assert!(input_idx < self.arity());
        match self {
            BoundOp::Select { .. } | BoundOp::Project { .. } | BoundOp::Compose { .. } => {
                ScopeShape::Point(0)
            }
            BoundOp::PositionalOffset { offset } => ScopeShape::Point(*offset),
            BoundOp::ValueOffset { offset } => {
                if *offset < 0 {
                    ScopeShape::VariableBack
                } else {
                    ScopeShape::VariableFwd
                }
            }
            BoundOp::Aggregate { window, .. } => window.scope(),
        }
    }

    /// Unit scope on every input (block-boundary test, §3.1).
    pub fn is_unit_scope(&self) -> bool {
        (0..self.arity()).all(|i| self.scope(i).size().is_unit())
    }
}

impl fmt::Display for BoundOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundOp::Select { predicate } => write!(f, "Select({predicate})"),
            BoundOp::Project { indices } => {
                write!(f, "Project(")?;
                for (i, idx) in indices.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "${idx}")?;
                }
                write!(f, ")")
            }
            BoundOp::PositionalOffset { offset } => write!(f, "PosOffset({offset:+})"),
            BoundOp::ValueOffset { offset } => match offset {
                -1 => write!(f, "Previous"),
                1 => write!(f, "Next"),
                l => write!(f, "ValueOffset({l:+})"),
            },
            BoundOp::Aggregate { func, attr_index, window, .. } => {
                write!(f, "{func}(${attr_index}) over {window}")
            }
            BoundOp::Compose { predicate: None } => write!(f, "Compose"),
            BoundOp::Compose { predicate: Some(p) } => write!(f, "Compose[{p}]"),
        }
    }
}

/// What a resolved node is.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolvedKind {
    /// A named base sequence.
    Base {
        /// Catalog name.
        name: String,
    },
    /// An inline constant sequence.
    Constant {
        /// The record at every position.
        record: Record,
    },
    /// A bound operator over earlier nodes.
    Op {
        /// The bound operator.
        op: BoundOp,
        /// Its input node ids.
        inputs: Vec<NodeId>,
    },
}

/// A resolved node: its kind plus its output schema.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedNode {
    /// What the node is.
    pub kind: ResolvedKind,
    /// The node's output schema.
    pub schema: Schema,
}

impl ResolvedNode {
    /// Input node ids (empty for leaves).
    pub fn inputs(&self) -> &[NodeId] {
        match &self.kind {
            ResolvedKind::Op { inputs, .. } => inputs,
            _ => &[],
        }
    }
}

/// A resolved, type-checked query tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedGraph {
    nodes: Vec<ResolvedNode>,
    root: NodeId,
}

impl ResolvedGraph {
    /// Reassemble a resolved graph from nodes (used by the optimizer's
    /// rewrite rules). Checks structural validity: every input id precedes
    /// its consumer and arities match.
    pub fn assemble(nodes: Vec<ResolvedNode>, root: NodeId) -> Result<ResolvedGraph> {
        if root >= nodes.len() {
            return Err(SeqError::InvalidGraph(format!("root {root} out of bounds")));
        }
        for (id, node) in nodes.iter().enumerate() {
            if let ResolvedKind::Op { op, inputs } = &node.kind {
                if inputs.len() != op.arity() {
                    return Err(SeqError::InvalidGraph(format!(
                        "node {id}: {op} expects {} inputs, got {}",
                        op.arity(),
                        inputs.len()
                    )));
                }
                for &i in inputs {
                    if i >= id {
                        return Err(SeqError::InvalidGraph(format!(
                            "node {id} consumes node {i}, which does not precede it"
                        )));
                    }
                }
            }
        }
        Ok(ResolvedGraph { nodes, root })
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The resolved node at `id`.
    pub fn node(&self, id: NodeId) -> &ResolvedNode {
        &self.nodes[id]
    }

    /// Mutable access to the resolved node at `id`.
    pub fn node_mut(&mut self, id: NodeId) -> &mut ResolvedNode {
        &mut self.nodes[id]
    }

    /// Number of nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Output schema of node `id`.
    pub fn schema(&self, id: NodeId) -> &Schema {
        &self.nodes[id].schema
    }

    /// Schema of the query output.
    pub fn output_schema(&self) -> &Schema {
        self.schema(self.root)
    }

    /// Node ids in bottom-up (post-) order from the root.
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![(self.root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                out.push(id);
                continue;
            }
            stack.push((id, true));
            for &child in self.node(id).inputs() {
                stack.push((child, false));
            }
        }
        out
    }

    /// Names of the base sequences used, in leaf order.
    pub fn base_names(&self) -> Vec<&str> {
        self.postorder()
            .into_iter()
            .filter_map(|id| match &self.node(id).kind {
                ResolvedKind::Base { name } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    /// The composed scope (§2.3) of the whole query over each base leaf:
    /// the complex-operator scope from the root down to that leaf, built with
    /// [`ScopeShape::compose`]. Returns `(leaf NodeId, base name, shape)`.
    pub fn composed_base_scopes(&self) -> Vec<(NodeId, String, ScopeShape)> {
        let mut out = Vec::new();
        self.walk_scopes(self.root, ScopeShape::Point(0), &mut out);
        out
    }

    fn walk_scopes(
        &self,
        id: NodeId,
        acc: ScopeShape,
        out: &mut Vec<(NodeId, String, ScopeShape)>,
    ) {
        match &self.node(id).kind {
            ResolvedKind::Base { name } => out.push((id, name.clone(), acc)),
            ResolvedKind::Constant { .. } => {}
            ResolvedKind::Op { op, inputs } => {
                for (k, &child) in inputs.iter().enumerate() {
                    let combined = ScopeShape::compose(op.scope(k), acc);
                    self.walk_scopes(child, combined, out);
                }
            }
        }
    }

    /// Render the tree, one node per line, for EXPLAIN output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(self.root, 0, &mut out);
        out
    }

    fn render_node(&self, id: NodeId, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match &self.node(id).kind {
            ResolvedKind::Base { name } => {
                let _ = writeln!(out, "{pad}Base({name}) :: {}", self.schema(id));
            }
            ResolvedKind::Constant { record } => {
                let _ = writeln!(out, "{pad}Constant({record}) :: {}", self.schema(id));
            }
            ResolvedKind::Op { op, inputs } => {
                let _ = writeln!(out, "{pad}{op} :: {}", self.schema(id));
                for &c in inputs {
                    self.render_node(c, depth + 1, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::{record, schema, AttrType};
    use std::collections::HashMap;

    fn provider() -> HashMap<String, Schema> {
        let stock = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
        let mut m = HashMap::new();
        m.insert("IBM".to_string(), stock.clone());
        m.insert("HP".to_string(), stock.clone());
        m.insert("DEC".to_string(), stock);
        m
    }

    /// Figure 5.B's query: Compose(DEC, Previous(Select(Compose(IBM, HP)))).
    fn fig5b() -> QueryGraph {
        let mut g = QueryGraph::new();
        let ibm = g.add_base("IBM");
        let hp = g.add_base("HP");
        let joined = g.add_op(SeqOperator::Compose { predicate: None }, vec![ibm, hp]).unwrap();
        let sel = g
            .add_op(
                SeqOperator::Select { predicate: Expr::attr("close").gt(Expr::attr("close_r")) },
                vec![joined],
            )
            .unwrap();
        let prev = g.add_op(SeqOperator::previous(), vec![sel]).unwrap();
        let dec = g.add_base("DEC");
        g.add_op(SeqOperator::Compose { predicate: None }, vec![dec, prev]).unwrap();
        g
    }

    #[test]
    fn build_and_resolve_fig5b() {
        let g = fig5b();
        assert!(g.validate_tree().is_ok());
        let r = g.resolve(&provider()).unwrap();
        // DEC(2) + [IBM ∘ HP](4) composed = 6 attributes.
        assert_eq!(r.output_schema().arity(), 6);
        assert_eq!(r.base_names().len(), 3);
        let rendered = r.render();
        assert!(rendered.contains("Previous"));
        assert!(rendered.contains("Base(DEC)"));
    }

    #[test]
    fn tree_validation_rejects_shared_nodes() {
        let mut g = QueryGraph::new();
        let ibm = g.add_base("IBM");
        // IBM used by two composes: a DAG, not a tree.
        let c = g.add_op(SeqOperator::Compose { predicate: None }, vec![ibm, ibm]);
        // Arity is fine (2 inputs) but sharing violates the tree restriction.
        assert!(c.is_ok());
        assert!(g.validate_tree().is_err());
    }

    #[test]
    fn rejects_unreachable_and_missing_nodes() {
        let mut g = QueryGraph::new();
        let a = g.add_base("IBM");
        let _orphan = g.add_base("HP");
        g.set_root(a).unwrap();
        assert!(g.validate_tree().is_err());

        let mut g2 = QueryGraph::new();
        assert!(g2.root().is_err());
        assert!(g2.set_root(0).is_err());
        let b = g2.add_base("IBM");
        assert!(g2.add_op(SeqOperator::previous(), vec![b + 10]).is_err());
    }

    #[test]
    fn arity_checked_at_add() {
        let mut g = QueryGraph::new();
        let a = g.add_base("IBM");
        assert!(g.add_op(SeqOperator::Compose { predicate: None }, vec![a]).is_err());
    }

    #[test]
    fn resolve_reports_unknown_base() {
        let mut g = QueryGraph::new();
        g.add_base("MSFT");
        assert!(matches!(g.resolve(&provider()), Err(SeqError::UnknownSequence(_))));
    }

    #[test]
    fn resolve_binds_predicates() {
        let g = fig5b();
        let r = g.resolve(&provider()).unwrap();
        // Find the Select node and check its predicate is bound (Col refs).
        let bound = r.postorder().into_iter().find_map(|id| match &r.node(id).kind {
            ResolvedKind::Op { op: BoundOp::Select { predicate }, .. } => Some(predicate.clone()),
            _ => None,
        });
        let p = bound.expect("select node present");
        assert_eq!(p.to_string(), "($1 > $3)");
    }

    #[test]
    fn postorder_visits_children_first() {
        let g = fig5b();
        let r = g.resolve(&provider()).unwrap();
        let order = r.postorder();
        assert_eq!(order.len(), r.len());
        assert_eq!(*order.last().unwrap(), r.root());
        // Every node appears after all of its inputs.
        let pos: HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for &id in &order {
            for &c in r.node(id).inputs() {
                assert!(pos[&c] < pos[&id]);
            }
        }
    }

    #[test]
    fn composed_scope_through_fig5b() {
        let g = fig5b();
        let r = g.resolve(&provider()).unwrap();
        let scopes = r.composed_base_scopes();
        assert_eq!(scopes.len(), 3);
        // DEC is reached through Compose only: unit scope.
        let dec = scopes.iter().find(|(_, n, _)| n == "DEC").unwrap();
        assert_eq!(dec.2, ScopeShape::Point(0));
        // IBM and HP are reached through Previous: backward-variable.
        let ibm = scopes.iter().find(|(_, n, _)| n == "IBM").unwrap();
        assert_eq!(ibm.2, ScopeShape::VariableBack);
    }

    #[test]
    fn constant_nodes_resolve() {
        let mut g = QueryGraph::new();
        let c = g.add_constant(schema(&[("k", AttrType::Float)]), record![7.0]);
        let ibm = g.add_base("IBM");
        g.add_op(SeqOperator::Compose { predicate: None }, vec![ibm, c]).unwrap();
        let r = g.resolve(&provider()).unwrap();
        assert_eq!(r.output_schema().arity(), 3);
    }

    #[test]
    fn constant_schema_mismatch_fails() {
        let mut g = QueryGraph::new();
        g.add_constant(schema(&[("k", AttrType::Int)]), record![7.0]);
        assert!(g.resolve(&provider()).is_err());
    }
}
