//! Operator scope (§2.3): which input positions an operator inspects to
//! produce the output record at a given position.
//!
//! A scope is characterized by three properties the optimizer reasons about:
//!
//! - **size** — unit, fixed, or variable (data-dependent);
//! - **sequentiality** — `Scope(i) ⊆ Scope(i-1) ∪ {i}` for all `i`;
//! - **relativity** — scope positions are constant offsets from `i`.
//!
//! Proposition 2.1 states these properties are closed under operator
//! composition; [`ScopeShape::compose`] implements that composition and the
//! property tests in this module verify the closure.

use std::fmt;

/// The size classification of a scope (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeSize {
    /// Exactly one position (the "unit scope" special case).
    Unit,
    /// A fixed number of positions, independent of `i` and of the data.
    Fixed(u64),
    /// Data-dependent size.
    Variable,
}

impl ScopeSize {
    /// Unit or fixed (not data-dependent).
    pub fn is_fixed(self) -> bool {
        matches!(self, ScopeSize::Unit | ScopeSize::Fixed(_))
    }

    /// Exactly one position.
    pub fn is_unit(self) -> bool {
        matches!(self, ScopeSize::Unit) || matches!(self, ScopeSize::Fixed(1))
    }
}

/// The shape of an operator's scope over one input, sufficient to derive all
/// three scope properties and the *effective scope* of §3.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeShape {
    /// A single relative offset: `Scope(i) = {i + offset}`.
    /// Selection/projection/compose have `Point(0)`; a positional offset of
    /// `l` has `Point(l)`.
    Point(i64),
    /// A dense interval of relative offsets `[lo, hi]`; `lo = None` means
    /// unbounded below (cumulative aggregates). A trailing `w`-position
    /// aggregate has `Interval { lo: Some(-(w-1)), hi: 0 }`.
    Interval {
        /// Lower relative offset (`None` = unbounded below).
        lo: Option<i64>,
        /// Upper relative offset.
        hi: i64,
    },
    /// Data-dependent positions strictly before `i` (backward value offsets
    /// such as Previous).
    VariableBack,
    /// Data-dependent positions strictly after `i` (forward value offsets
    /// such as Next).
    VariableFwd,
    /// Every position in the valid range (aggregates whose `agg_pos` is
    /// always true). The only non-relative shape in the basic algebra.
    WholeSpan,
}

impl ScopeShape {
    /// Scope size (§2.3).
    pub fn size(&self) -> ScopeSize {
        match self {
            ScopeShape::Point(_) => ScopeSize::Unit,
            ScopeShape::Interval { lo: Some(lo), hi } => {
                let n = (hi - lo).unsigned_abs() + 1;
                if n == 1 {
                    ScopeSize::Unit
                } else {
                    ScopeSize::Fixed(n)
                }
            }
            ScopeShape::Interval { lo: None, .. } => ScopeSize::Variable,
            ScopeShape::VariableBack | ScopeShape::VariableFwd | ScopeShape::WholeSpan => {
                ScopeSize::Variable
            }
        }
    }

    /// Strict sequentiality per Definition in §2.3:
    /// `Scope(i) ⊆ Scope(i-1) ∪ {i}`.
    pub fn sequential(&self) -> bool {
        match self {
            // {i+l} ⊆ {i-1+l} ∪ {i} only when l = 0.
            ScopeShape::Point(l) => *l == 0,
            // [i+lo, i+hi] ⊆ [i-1+lo, i-1+hi] ∪ {i} exactly when hi = 0.
            ScopeShape::Interval { hi, .. } => *hi == 0,
            // The minimal determining set for a backward value offset at i
            // includes i-1, which Scope(i-1) excludes.
            ScopeShape::VariableBack | ScopeShape::VariableFwd => false,
            // Constant scope: Scope(i) = Scope(i-1).
            ScopeShape::WholeSpan => true,
        }
    }

    /// Relativity per §2.3: all scope positions are constant offsets from `i`.
    pub fn relative(&self) -> bool {
        !matches!(self, ScopeShape::WholeSpan)
    }

    /// The minimal *sequential, fixed-size effective scope* (§3.4) as a
    /// relative window `[lo, hi]` with `hi <= 0` — after shifting output
    /// emission so the executor lags the input by `hi` positions, a cache of
    /// `hi - lo + 1` records suffices (Lemma 3.2). `None` when no fixed-size
    /// effective scope exists (variable scopes).
    ///
    /// For the paper's example, a positional offset of −5 (`Point(-5)`) has
    /// effective scope `[-5, 0]` of size six.
    pub fn effective_window(&self) -> Option<(i64, i64)> {
        match self {
            ScopeShape::Point(l) => Some(((*l).min(0), (*l).max(0))),
            ScopeShape::Interval { lo: Some(lo), hi } => Some(((*lo).min(0), (*hi).max(0))),
            _ => None,
        }
    }

    /// Whether the incremental evaluation of §3.5 (Cache-Strategy-B) applies:
    /// the output at `i` derives from the output at `i-1` plus locally new
    /// input — true for backward value offsets and cumulative aggregates.
    pub fn incremental(&self) -> bool {
        matches!(self, ScopeShape::VariableBack | ScopeShape::Interval { lo: None, hi: 0 })
    }

    /// Scope composition (§2.3): if operator `A` consumes the real input with
    /// scope `inner` and operator `B` consumes `A`'s output with scope
    /// `outer`, the complex operator `B∘A` inspects
    /// `⋃_{k ∈ outer(i)} inner(k)`. Proposition 2.1's closure properties are
    /// consequences of this definition.
    pub fn compose(inner: ScopeShape, outer: ScopeShape) -> ScopeShape {
        use ScopeShape::*;
        match (outer, inner) {
            (WholeSpan, _) | (_, WholeSpan) => WholeSpan,
            (Point(b), Point(a)) => Point(a + b),
            (Point(b), Interval { lo, hi }) => Interval { lo: lo.map(|l| l + b), hi: hi + b },
            (Interval { lo, hi }, Point(a)) => Interval { lo: lo.map(|l| l + a), hi: hi + a },
            (Interval { lo: blo, hi: bhi }, Interval { lo: alo, hi: ahi }) => Interval {
                lo: match (blo, alo) {
                    (Some(b), Some(a)) => Some(a + b),
                    _ => None,
                },
                hi: ahi + bhi,
            },
            // Compositions involving data-dependent scopes stay variable;
            // direction is preserved when both sides agree, otherwise we
            // conservatively treat the result as backward-unbounded via an
            // unbounded interval reaching the composed upper edge.
            (VariableBack, s) | (s, VariableBack) => match s {
                Point(l) if l <= 0 => VariableBack,
                Interval { hi, .. } if hi <= 0 => VariableBack,
                VariableBack => VariableBack,
                _ => Interval { lo: None, hi: upper_edge(s).unwrap_or(0).max(0) },
            },
            (VariableFwd, s) | (s, VariableFwd) => match s {
                Point(l) if l >= 0 => VariableFwd,
                Interval { lo: Some(lo), .. } if lo >= 0 => VariableFwd,
                VariableFwd => VariableFwd,
                _ => Interval { lo: None, hi: i64::MAX / 4 },
            },
        }
    }
}

fn upper_edge(s: ScopeShape) -> Option<i64> {
    match s {
        ScopeShape::Point(l) => Some(l),
        ScopeShape::Interval { hi, .. } => Some(hi),
        _ => None,
    }
}

impl fmt::Display for ScopeShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScopeShape::Point(l) => write!(f, "{{i{l:+}}}"),
            ScopeShape::Interval { lo: Some(lo), hi } => write!(f, "[i{lo:+}, i{hi:+}]"),
            ScopeShape::Interval { lo: None, hi } => write!(f, "(-inf, i{hi:+}]"),
            ScopeShape::VariableBack => write!(f, "variable<i"),
            ScopeShape::VariableFwd => write!(f, "variable>i"),
            ScopeShape::WholeSpan => write!(f, "whole-span"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ScopeShape::*;

    #[test]
    fn sizes() {
        assert_eq!(Point(0).size(), ScopeSize::Unit);
        assert_eq!(Point(-5).size(), ScopeSize::Unit);
        assert_eq!(Interval { lo: Some(-2), hi: 0 }.size(), ScopeSize::Fixed(3));
        assert_eq!(Interval { lo: Some(0), hi: 0 }.size(), ScopeSize::Unit);
        assert_eq!(Interval { lo: None, hi: 0 }.size(), ScopeSize::Variable);
        assert_eq!(VariableBack.size(), ScopeSize::Variable);
        assert_eq!(WholeSpan.size(), ScopeSize::Variable);
    }

    #[test]
    fn sequentiality_matches_paper_examples() {
        // "the scope of an aggregate over the most recent three positions is
        // sequential, while the scope of a positional offset operator is not"
        assert!(Interval { lo: Some(-2), hi: 0 }.sequential());
        assert!(!Point(-5).sequential());
        assert!(Point(0).sequential());
        assert!(!Interval { lo: Some(-2), hi: 1 }.sequential());
        assert!(Interval { lo: None, hi: 0 }.sequential());
        assert!(WholeSpan.sequential());
        assert!(!VariableBack.sequential());
    }

    #[test]
    fn relativity() {
        assert!(Point(3).relative());
        assert!(Interval { lo: Some(-1), hi: 1 }.relative());
        assert!(VariableBack.relative());
        assert!(!WholeSpan.relative());
    }

    #[test]
    fn effective_window_broadens_to_sequential() {
        // The paper's §3.4 example: positional offset −5 gains effective
        // scope of the current and five most recent positions (size six).
        assert_eq!(Point(-5).effective_window(), Some((-5, 0)));
        assert_eq!(Point(3).effective_window(), Some((0, 3)));
        assert_eq!(Point(0).effective_window(), Some((0, 0)));
        assert_eq!(Interval { lo: Some(-2), hi: 0 }.effective_window(), Some((-2, 0)));
        assert_eq!(Interval { lo: Some(1), hi: 4 }.effective_window(), Some((0, 4)));
        assert_eq!(VariableBack.effective_window(), None);
        assert_eq!(Interval { lo: None, hi: 0 }.effective_window(), None);
    }

    #[test]
    fn incremental_strategies() {
        assert!(VariableBack.incremental());
        assert!(Interval { lo: None, hi: 0 }.incremental());
        assert!(!Point(-1).incremental());
        assert!(!VariableFwd.incremental());
    }

    #[test]
    fn composition_examples() {
        // Offset(-2) over Offset(-3) = Offset(-5).
        assert_eq!(ScopeShape::compose(Point(-3), Point(-2)), Point(-5));
        // Trailing 3-aggregate over Offset(-1): window shifts back by one.
        assert_eq!(
            ScopeShape::compose(Point(-1), Interval { lo: Some(-2), hi: 0 }),
            Interval { lo: Some(-3), hi: -1 }
        );
        // Aggregate over aggregate: windows add.
        assert_eq!(
            ScopeShape::compose(Interval { lo: Some(-2), hi: 0 }, Interval { lo: Some(-4), hi: 0 }),
            Interval { lo: Some(-6), hi: 0 }
        );
        // Anything through a whole-span aggregate sees the whole span.
        assert_eq!(ScopeShape::compose(Point(-1), WholeSpan), WholeSpan);
        // Previous over a selection stays backward-variable.
        assert_eq!(ScopeShape::compose(Point(0), VariableBack), VariableBack);
        assert_eq!(ScopeShape::compose(VariableBack, Point(-1)), VariableBack);
    }

    fn arb_shapes() -> Vec<ScopeShape> {
        vec![
            Point(0),
            Point(-5),
            Point(3),
            Interval { lo: Some(-2), hi: 0 },
            Interval { lo: Some(-7), hi: -1 },
            Interval { lo: Some(0), hi: 4 },
            Interval { lo: None, hi: 0 },
            VariableBack,
            VariableFwd,
            WholeSpan,
        ]
    }

    /// Proposition 2.1: fixedness, sequentiality, and relativity are each
    /// closed under composition.
    #[test]
    fn proposition_2_1_closure() {
        for &a in &arb_shapes() {
            for &b in &arb_shapes() {
                let c = ScopeShape::compose(a, b);
                if a.size().is_fixed() && b.size().is_fixed() {
                    assert!(c.size().is_fixed(), "fixed closure failed: {a} ∘ {b} = {c}");
                }
                if a.sequential() && b.sequential() {
                    assert!(c.sequential(), "sequential closure failed: {a} ∘ {b} = {c}");
                }
                if a.relative() && b.relative() {
                    assert!(c.relative(), "relative closure failed: {a} ∘ {b} = {c}");
                }
            }
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Point(-5).to_string(), "{i-5}");
        assert_eq!(Interval { lo: Some(-2), hi: 0 }.to_string(), "[i-2, i+0]");
        assert_eq!(Interval { lo: None, hi: 0 }.to_string(), "(-inf, i+0]");
        assert_eq!(WholeSpan.to_string(), "whole-span");
    }
}
