//! Span and density propagation rules (§3.2, Step 2 of §4).
//!
//! "For every operator, given the span of the input sequences, the span of
//! the output sequence can be determined. Similarly, if the span of the
//! output sequence is known, the spans of the inputs may be modified, while
//! retaining equivalence to the original query." (§3.2)
//!
//! These rules are *semantic* facts about the operators, so they live beside
//! the operator definitions; the optimizer (`seq-opt`) orchestrates the
//! bottom-up and top-down passes over them. Bottom-up spans are conservative
//! (they contain every possibly non-Null output position); top-down spans are
//! exact requirements (the positions the consumer could ever ask about).

use seq_core::{SeqMeta, Span};

use crate::graph::BoundOp;
use crate::operator::Window;

/// Bottom-up: the span of the operator's output sequence given its inputs'
/// spans.
pub fn output_span(op: &BoundOp, inputs: &[Span]) -> Span {
    match op {
        BoundOp::Select { .. } | BoundOp::Project { .. } => inputs[0],
        // Out(i) = In(i + l): out span is the input span shifted by -l.
        BoundOp::PositionalOffset { offset } => inputs[0].shift(-offset),
        BoundOp::ValueOffset { offset } => {
            let s = inputs[0];
            if s.is_empty() {
                return Span::empty();
            }
            if *offset < 0 {
                // The |l|-th previous record exists only once |l| input
                // positions lie strictly below i, and then remains defined at
                // every later position.
                Span::new(s.start().saturating_add(-offset), seq_core::POS_INF)
            } else {
                Span::new(seq_core::NEG_INF, s.end().saturating_sub(*offset))
            }
        }
        BoundOp::Aggregate { window, .. } => match window {
            Window::Sliding { lo, hi } => inputs[0].widen_by_window(*lo, *hi),
            Window::Cumulative => inputs[0].unbounded_above(),
            Window::WholeSpan => inputs[0],
        },
        BoundOp::Compose { .. } => inputs[0].intersect(&inputs[1]),
    }
}

/// Top-down: the input span the operator needs on input `input_idx` in order
/// to produce every output position in `required`, intersected with the
/// input's own span.
pub fn required_input_span(
    op: &BoundOp,
    required: &Span,
    input_idx: usize,
    input_span: &Span,
) -> Span {
    debug_assert!(input_idx < op.arity());
    let needed = match op {
        BoundOp::Select { .. } | BoundOp::Project { .. } | BoundOp::Compose { .. } => *required,
        // Out(i) reads In(i + l): needed input positions are required + l.
        BoundOp::PositionalOffset { offset } => required.shift(*offset),
        BoundOp::ValueOffset { offset } => {
            if required.is_empty() {
                Span::empty()
            } else if *offset < 0 {
                // Outputs up to required.end read inputs strictly below it;
                // how far back is data-dependent, so everything from the
                // input's own start may be needed.
                Span::new(input_span.start(), required.end().saturating_sub(1))
            } else {
                Span::new(required.start().saturating_add(1), input_span.end())
            }
        }
        BoundOp::Aggregate { window, .. } => match window {
            Window::Sliding { lo, hi } => {
                if required.is_empty() {
                    Span::empty()
                } else {
                    // Output at i reads [i+lo, i+hi].
                    Span::new(
                        required.start().saturating_add(*lo),
                        required.end().saturating_add(*hi),
                    )
                }
            }
            Window::Cumulative => {
                if required.is_empty() {
                    Span::empty()
                } else {
                    Span::new(input_span.start(), required.end())
                }
            }
            Window::WholeSpan => *input_span,
        },
    };
    needed.intersect(input_span)
}

/// Bottom-up: the meta-data (span, density, column statistics) of the
/// operator's output given its inputs' meta-data (Step 2.a of §4).
///
/// Density rules follow §4 Step 2.a: aggregates produce Null only when every
/// scope record is Null; a positional join's output density is the product of
/// the input densities and the join-predicate selectivity (independence of
/// Null positions is assumed unless the caller supplies a correlation factor
/// through the cost model).
pub fn output_meta(op: &BoundOp, inputs: &[SeqMeta]) -> SeqMeta {
    let span = output_span(op, &inputs.iter().map(|m| m.span).collect::<Vec<_>>());
    match op {
        BoundOp::Select { predicate } => {
            let sel = predicate.estimate_selectivity(&inputs[0]);
            SeqMeta::new(span, inputs[0].density * sel, inputs[0].columns.clone())
        }
        BoundOp::Project { indices } => {
            let columns = indices.iter().map(|&i| inputs[0].column(i)).collect();
            SeqMeta::new(span, inputs[0].density, columns)
        }
        BoundOp::PositionalOffset { .. } => {
            SeqMeta::new(span, inputs[0].density, inputs[0].columns.clone())
        }
        BoundOp::ValueOffset { .. } => {
            // Defined at (almost) every position once the first |l| records
            // have appeared: density approaches one within the output span.
            SeqMeta::new(span, 1.0, inputs[0].columns.clone())
        }
        BoundOp::Aggregate { window, .. } => {
            let d = inputs[0].density;
            let density = match window {
                Window::Sliding { lo, hi } => {
                    let w = (hi - lo).unsigned_abs() + 1;
                    // Null only if all w scope positions are Null.
                    1.0 - (1.0 - d).powi(w.min(1_000_000) as i32)
                }
                Window::Cumulative | Window::WholeSpan => 1.0,
            };
            // Aggregate outputs get fresh (unknown) column statistics.
            SeqMeta::new(span, density, vec![])
        }
        BoundOp::Compose { predicate } => {
            let mut columns = inputs[0].columns.clone();
            // Right-hand columns follow the composed schema's concatenation.
            columns.extend(inputs[1].columns.iter().cloned());
            let composed = SeqMeta::new(span, 1.0, columns);
            let sel = predicate.as_ref().map(|p| p.estimate_selectivity(&composed)).unwrap_or(1.0);
            let density = inputs[0].density * inputs[1].density * sel;
            SeqMeta::new(span, density, composed.columns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::operator::AggFunc;
    use seq_core::POS_INF;

    fn meta(lo: i64, hi: i64, d: f64) -> SeqMeta {
        SeqMeta::with_span(Span::new(lo, hi), d)
    }

    #[test]
    fn select_keeps_span_scales_density() {
        let op = BoundOp::Select { predicate: Expr::lit(true) };
        let m = output_meta(&op, &[meta(1, 100, 0.8)]);
        assert_eq!(m.span, Span::new(1, 100));
        assert!((m.density - 0.8).abs() < 1e-9); // TRUE has selectivity 1
    }

    #[test]
    fn positional_offset_shifts_span_both_directions() {
        let op = BoundOp::PositionalOffset { offset: 5 };
        assert_eq!(output_span(&op, &[Span::new(10, 20)]), Span::new(5, 15));
        let back = BoundOp::PositionalOffset { offset: -5 };
        assert_eq!(output_span(&back, &[Span::new(10, 20)]), Span::new(15, 25));
        // Top-down: to produce [5,15] with offset +5 we need inputs [10,20].
        let need = required_input_span(&op, &Span::new(5, 15), 0, &Span::new(10, 20));
        assert_eq!(need, Span::new(10, 20));
    }

    #[test]
    fn value_offset_spans() {
        let prev = BoundOp::ValueOffset { offset: -1 };
        let out = output_span(&prev, &[Span::new(10, 20)]);
        assert_eq!(out.start(), 11);
        assert_eq!(out.end(), POS_INF);
        let next = BoundOp::ValueOffset { offset: 2 };
        let out = output_span(&next, &[Span::new(10, 20)]);
        assert_eq!(out.end(), 18);

        // Top-down for Previous: everything from the input start up to one
        // before the last required output.
        let need = required_input_span(&prev, &Span::new(15, 30), 0, &Span::new(10, 20));
        assert_eq!(need, Span::new(10, 20));
        let need = required_input_span(&prev, &Span::new(15, 18), 0, &Span::new(10, 20));
        assert_eq!(need, Span::new(10, 17));
    }

    #[test]
    fn aggregate_spans_and_density() {
        let agg = BoundOp::Aggregate {
            func: AggFunc::Sum,
            attr_index: 0,
            window: Window::Sliding { lo: -5, hi: 0 },
            output_name: "s".into(),
        };
        assert_eq!(output_span(&agg, &[Span::new(100, 200)]), Span::new(100, 205));
        let m = output_meta(&agg, &[meta(100, 200, 0.5)]);
        assert!((m.density - (1.0 - 0.5f64.powi(6))).abs() < 1e-9);
        // Top-down: outputs [150, 160] read inputs [145, 160].
        let need = required_input_span(&agg, &Span::new(150, 160), 0, &Span::new(100, 200));
        assert_eq!(need, Span::new(145, 160));
    }

    #[test]
    fn cumulative_aggregate_needs_history() {
        let agg = BoundOp::Aggregate {
            func: AggFunc::Sum,
            attr_index: 0,
            window: Window::Cumulative,
            output_name: "s".into(),
        };
        let out = output_span(&agg, &[Span::new(10, 20)]);
        assert_eq!(out.start(), 10);
        assert_eq!(out.end(), POS_INF);
        let need = required_input_span(&agg, &Span::new(15, 16), 0, &Span::new(10, 20));
        assert_eq!(need, Span::new(10, 16));
    }

    #[test]
    fn compose_intersects_fig3() {
        // Figure 3: composing IBM [200,500] with HP [1,750] under DEC [1,350].
        let comp = BoundOp::Compose { predicate: None };
        let ibm_hp = output_span(&comp, &[Span::new(200, 500), Span::new(1, 750)]);
        assert_eq!(ibm_hp, Span::new(200, 500));
        let final_span = output_span(&comp, &[Span::new(1, 350), ibm_hp]);
        assert_eq!(final_span, Span::new(200, 350));
        // Top-down: each input is restricted to the output's span.
        let need = required_input_span(&comp, &final_span, 1, &Span::new(200, 500));
        assert_eq!(need, Span::new(200, 350));
    }

    #[test]
    fn compose_density_multiplies() {
        let comp = BoundOp::Compose { predicate: None };
        let m = output_meta(&comp, &[meta(1, 100, 0.7), meta(1, 100, 0.5)]);
        assert!((m.density - 0.35).abs() < 1e-9);
    }

    #[test]
    fn project_propagates_selected_columns() {
        use seq_core::{ColumnStats, Value};
        let mut m = meta(1, 10, 1.0);
        m.columns = vec![
            ColumnStats::bounded(Value::Int(0), Value::Int(9), 10),
            ColumnStats::bounded(Value::Float(1.0), Value::Float(2.0), 5),
        ];
        let op = BoundOp::Project { indices: vec![1] };
        let out = output_meta(&op, &[m]);
        assert_eq!(out.columns.len(), 1);
        assert_eq!(out.columns[0].ndv, 5);
    }

    #[test]
    fn empty_input_spans_stay_empty() {
        let comp = BoundOp::Compose { predicate: None };
        assert!(output_span(&comp, &[Span::empty(), Span::new(1, 5)]).is_empty());
        let prev = BoundOp::ValueOffset { offset: -1 };
        assert!(output_span(&prev, &[Span::empty()]).is_empty());
        assert!(required_input_span(&prev, &Span::empty(), 0, &Span::new(1, 5)).is_empty());
    }
}
