//! A fluent builder for sequence queries.
//!
//! ```
//! use seq_ops::builder::SeqQuery;
//! use seq_ops::expr::Expr;
//! use seq_ops::operator::{AggFunc, Window};
//!
//! // Figure 5.A: six-position moving sum of IBM's close.
//! let query = SeqQuery::base("IBM")
//!     .aggregate(AggFunc::Sum, "close", Window::trailing(6))
//!     .build();
//! assert_eq!(query.len(), 2);
//!
//! // Figure 3: DEC price when IBM's close beats HP's close.
//! let query = SeqQuery::base("DEC")
//!     .compose_with(
//!         SeqQuery::base("IBM").compose_filtered(
//!             SeqQuery::base("HP"),
//!             Expr::attr("close").gt(Expr::attr("close_r")),
//!         ),
//!     )
//!     .build();
//! assert_eq!(query.len(), 5);
//! ```

use seq_core::{Record, Schema};

use crate::expr::Expr;
use crate::graph::{NodeId, QueryGraph};
use crate::operator::{AggFunc, SeqOperator, Window};

/// A query under construction: a graph plus the id of the current tip.
#[derive(Debug, Clone)]
pub struct SeqQuery {
    graph: QueryGraph,
    tip: NodeId,
}

impl SeqQuery {
    /// Start from a named base sequence.
    pub fn base(name: impl Into<String>) -> SeqQuery {
        let mut graph = QueryGraph::new();
        let tip = graph.add_base(name);
        SeqQuery { graph, tip }
    }

    /// Start from an inline constant sequence.
    pub fn constant(schema: Schema, record: Record) -> SeqQuery {
        let mut graph = QueryGraph::new();
        let tip = graph.add_constant(schema, record);
        SeqQuery { graph, tip }
    }

    fn apply(mut self, op: SeqOperator) -> SeqQuery {
        let tip = self.graph.add_op(op, vec![self.tip]).expect("unary operator over existing tip");
        SeqQuery { graph: self.graph, tip }
    }

    /// σ — keep records satisfying `predicate`.
    pub fn select(self, predicate: Expr) -> SeqQuery {
        self.apply(SeqOperator::Select { predicate })
    }

    /// π — keep the named attributes.
    pub fn project<S: Into<String>>(self, attrs: impl IntoIterator<Item = S>) -> SeqQuery {
        self.apply(SeqOperator::Project { attrs: attrs.into_iter().map(Into::into).collect() })
    }

    /// Shift by `offset` positions: `Out(i) = In(i + offset)`.
    pub fn positional_offset(self, offset: i64) -> SeqQuery {
        self.apply(SeqOperator::PositionalOffset { offset })
    }

    /// Value offset (Previous = −1, Next = +1).
    pub fn value_offset(self, offset: i64) -> SeqQuery {
        self.apply(SeqOperator::ValueOffset { offset })
    }

    /// The Previous operator.
    pub fn previous(self) -> SeqQuery {
        self.value_offset(-1)
    }

    /// The Next operator.
    pub fn next_record(self) -> SeqQuery {
        self.value_offset(1)
    }

    /// Windowed aggregate over one attribute.
    pub fn aggregate(self, func: AggFunc, attr: impl Into<String>, window: Window) -> SeqQuery {
        self.apply(SeqOperator::aggregate(func, attr, window))
    }

    /// Positional join with another query.
    pub fn compose_with(self, right: SeqQuery) -> SeqQuery {
        self.compose_impl(right, None)
    }

    /// Positional join with an additional join predicate over the composed
    /// record (right-hand attributes that clash are suffixed `_r`).
    pub fn compose_filtered(self, right: SeqQuery, predicate: Expr) -> SeqQuery {
        self.compose_impl(right, Some(predicate))
    }

    fn compose_impl(mut self, right: SeqQuery, predicate: Option<Expr>) -> SeqQuery {
        // Splice the right-hand graph into ours, remapping its node ids.
        let offset = self.graph.len();
        for id in 0..right.graph.len() {
            match right.graph.node(id).clone() {
                crate::graph::QueryNode::Base { name } => {
                    self.graph.add_base(name);
                }
                crate::graph::QueryNode::Constant { schema, record } => {
                    self.graph.add_constant(schema, record);
                }
                crate::graph::QueryNode::Op { op, inputs } => {
                    let remapped = inputs.into_iter().map(|i| i + offset).collect();
                    self.graph.add_op(op, remapped).expect("valid spliced op");
                }
            }
        }
        let right_tip = right.tip + offset;
        let tip = self
            .graph
            .add_op(SeqOperator::Compose { predicate }, vec![self.tip, right_tip])
            .expect("compose over existing tips");
        SeqQuery { graph: self.graph, tip }
    }

    /// Finish: returns the query graph rooted at the current tip.
    pub fn build(mut self) -> QueryGraph {
        self.graph.set_root(self.tip).expect("tip exists");
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SchemaProvider;
    use seq_core::{schema, AttrType};
    use std::collections::HashMap;

    fn provider() -> HashMap<String, Schema> {
        let stock = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
        ["IBM", "HP", "DEC"].iter().map(|n| (n.to_string(), stock.clone())).collect()
    }

    #[test]
    fn linear_chain() {
        let g = SeqQuery::base("IBM")
            .select(Expr::attr("close").gt(Expr::lit(100.0)))
            .project(["close"])
            .build();
        assert_eq!(g.len(), 3);
        let r = g.resolve(&provider()).unwrap();
        assert_eq!(r.output_schema().arity(), 1);
    }

    #[test]
    fn compose_splices_graphs() {
        let g = SeqQuery::base("DEC")
            .compose_with(
                SeqQuery::base("IBM")
                    .compose_filtered(
                        SeqQuery::base("HP"),
                        Expr::attr("close").gt(Expr::attr("close_r")),
                    )
                    .project(["close"]),
            )
            .build();
        assert!(g.validate_tree().is_ok());
        let r = g.resolve(&provider()).unwrap();
        // DEC(2) + projected(1) = 3.
        assert_eq!(r.output_schema().arity(), 3);
        assert_eq!(r.base_names().len(), 3);
    }

    #[test]
    fn fig5a_moving_sum() {
        let g = SeqQuery::base("IBM").aggregate(AggFunc::Sum, "close", Window::trailing(6)).build();
        let r = g.resolve(&provider()).unwrap();
        assert_eq!(r.output_schema().field(0).unwrap().name, "sum_close");
    }

    #[test]
    fn previous_and_offsets() {
        let g = SeqQuery::base("IBM").previous().positional_offset(-5).build();
        assert_eq!(g.len(), 3);
        assert!(g.resolve(&provider()).is_ok());
        let p = provider();
        assert!(p.schema_of("IBM").is_ok());
    }

    #[test]
    fn nested_compose_on_both_sides() {
        let left = SeqQuery::base("IBM").select(Expr::attr("close").gt(Expr::lit(1.0)));
        let right = SeqQuery::base("HP").previous();
        let g = left.compose_with(right).build();
        let r = g.resolve(&provider()).unwrap();
        assert_eq!(r.base_names().len(), 2);
        assert_eq!(r.output_schema().arity(), 4);
    }
}
