//! # seq-ops — the logical sequence algebra
//!
//! The declarative layer of the stack (§2 of the paper):
//!
//! - [`expr`] — scalar expressions used by selections, projections, and
//!   compose (positional-join) predicates, with binding, type inference, and
//!   selectivity estimation;
//! - [`operator`] — the operator set of §2.1 (Selection, Projection,
//!   Positional Offset, Value Offset, windowed Aggregates, Compose);
//! - [`scope`] — operator scope (§2.3): size / sequentiality / relativity,
//!   scope composition (Proposition 2.1), and effective scopes (§3.4);
//! - [`graph`] — query graphs (§2.2) and their resolved, type-checked form;
//! - [`spanrules`] — bottom-up and top-down span/density propagation rules
//!   (§3.2, Step 2 of §4);
//! - [`semantics`] — the naive reference evaluator, the ground truth for all
//!   differential testing;
//! - [`builder`] — a fluent construction API.

pub mod builder;
pub mod expr;
pub mod graph;
pub mod operator;
pub mod scope;
pub mod semantics;
pub mod spanrules;

pub use builder::SeqQuery;
pub use expr::{BinOp, Expr, ValueSource};
pub use graph::{
    BoundOp, NodeId, QueryGraph, QueryNode, ResolvedGraph, ResolvedKind, ResolvedNode,
    SchemaProvider,
};
pub use operator::{AggFunc, SeqOperator, Window};
pub use scope::{ScopeShape, ScopeSize};
pub use semantics::{ReferenceEvaluator, SequenceProvider};
