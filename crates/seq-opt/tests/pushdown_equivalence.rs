//! Differential property test for selection pushdown.
//!
//! Zone-map page skipping is a pure storage-side optimization: for any
//! predicate and any data distribution, a plan optimized with pushdown on
//! must produce exactly the rows of the same plan optimized with pushdown
//! off, on every execution path (record-at-a-time, vectorized batch,
//! morsel-driven parallel). The only counter allowed to move is the page
//! traffic split: every page the filtered scan *doesn't* read it must
//! charge to `pages_skipped`, so
//!
//! ```text
//! page_reads(on) + pages_skipped(on) == page_reads(off)
//! ```
//!
//! holds exactly, per path, and `pages_skipped` is identically zero with
//! pushdown off. Derived work (records streamed, predicate evaluations)
//! may only shrink when pushdown is on — skipping a page never creates
//! work.

use seq_core::{record, schema, AttrType, BaseSequence, Record, Span};
use seq_exec::{
    execute, execute_batched_with, execute_parallel_with, ExecContext, ParallelConfig, PhysPlan,
};
use seq_ops::{Expr, SeqQuery};
use seq_opt::{optimize, CatalogRef, OptimizerConfig};
use seq_storage::{Catalog, StatsSnapshot};
use seq_workload::Rng;

const N: i64 = 2000;

/// Deterministic catalog: five sequences over 1..=N with distributions
/// chosen to exercise the zone maps — and the page encodings — differently.
///
/// * `CLUST` — dense, values ramp with position (plus small noise), so
///   range predicates refute long page runs: the zone maps' best case;
/// * `UNI` — dense, values uniform per record, so almost every page
///   straddles any threshold: the zone maps' worst case;
/// * `SPARSE` — 20% density, mixed-sign uniform values;
/// * `STEP` — dense, values constant over 64-position steps, so every
///   16-capacity page holds a single run: RLE-encoded pages whose zones
///   refute exactly;
/// * `QUANT` — dense, values drawn from eight fixed levels: dictionary-
///   encoded pages where thresholds fall between code points.
fn catalog(seed: u64) -> Catalog {
    let mut rng = Rng::seed_from_u64(seed);
    let mut c = Catalog::new();
    c.set_page_capacity(16);
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    let mut clustered = Vec::new();
    let mut uniform = Vec::new();
    let mut sparse = Vec::new();
    let mut stepped = Vec::new();
    let mut quantized = Vec::new();
    for p in 1i64..=N {
        let ramp = (p as f64) / (N as f64) * 100.0 + rng.gen_range(-2.0..2.0);
        clustered.push((p, record![p, ramp]));
        uniform.push((p, record![p, rng.gen_range(0.0..100.0)]));
        if rng.gen_bool(0.2) {
            sparse.push((p, record![p, rng.gen_range(-50.0..50.0)]));
        }
        stepped.push((p, record![p, (p / 64) as f64 * 3.5 - 50.0]));
        quantized.push((p, record![p, rng.gen_range(0..8) as f64 * 12.5]));
    }
    c.register("CLUST", &BaseSequence::from_entries(sch.clone(), clustered).unwrap());
    c.register("UNI", &BaseSequence::from_entries(sch.clone(), uniform).unwrap());
    c.register("SPARSE", &BaseSequence::from_entries(sch.clone(), sparse).unwrap());
    c.register("STEP", &BaseSequence::from_entries(sch.clone(), stepped).unwrap());
    c.register("QUANT", &BaseSequence::from_entries(sch, quantized).unwrap());
    c
}

/// The shaped sequences must actually live on encoded pages, or the trials
/// below exercise the plain decode path five ways.
#[test]
fn shaped_sequences_land_in_the_intended_encodings() {
    let c = catalog(7);
    for (name, value_encoding) in [("STEP", "rle"), ("QUANT", "dict")] {
        let stored = c.get(name).unwrap();
        let comp = stored.compression();
        assert!(
            comp.ratio() < 0.75,
            "{name}: expected compressed pages, got ratio {:.2}",
            comp.ratio()
        );
        assert_eq!(comp.columns[0].dominant(), "delta", "{name}: time column");
        assert_eq!(comp.columns[1].dominant(), value_encoding, "{name}: close column");
    }
}

/// A random pushdown-eligible predicate: a conjunction of one or two
/// column-vs-literal comparisons with random operators and thresholds
/// (spanning always-true through always-false selectivities).
fn random_predicate(rng: &mut Rng) -> Expr {
    let term = |rng: &mut Rng| {
        let lhs = if rng.gen_bool(0.3) { Expr::attr("time") } else { Expr::attr("close") };
        let lit = if rng.gen_bool(0.3) {
            Expr::lit(rng.gen_range(-100..(N + 100)))
        } else {
            Expr::lit(rng.gen_range(-120.0..120.0))
        };
        match rng.gen_range(0..4usize) {
            0 => lhs.gt(lit),
            1 => lhs.ge(lit),
            2 => lhs.lt(lit),
            _ => lhs.le(lit),
        }
    };
    let first = term(rng);
    if rng.gen_bool(0.4) {
        first.and(term(rng))
    } else {
        first
    }
}

struct Run {
    rows: Vec<(i64, Record)>,
    output_records: u64,
    predicate_evals: u64,
    storage: StatsSnapshot,
}

/// Execute `plan` on one path against a fresh catalog and capture the
/// rows plus every counter the equivalence claims speak about.
fn drive(plan: &PhysPlan, seed: u64, path: &str) -> Run {
    let c = catalog(seed);
    let ctx = ExecContext::new(&c);
    let rows = match path {
        "tuple" => execute(plan, &ctx).unwrap(),
        "batch" => execute_batched_with(plan, &ctx, 48).unwrap(),
        "parallel" => {
            let config = ParallelConfig { workers: 4, batch_size: 48, morsel_positions: 96 };
            execute_parallel_with(plan, &ctx, config).unwrap()
        }
        other => panic!("unknown path {other}"),
    };
    let exec = ctx.stats.snapshot();
    Run {
        rows,
        output_records: exec.output_records,
        predicate_evals: exec.predicate_evals,
        storage: c.stats().snapshot(),
    }
}

#[test]
fn pushdown_is_invisible_except_for_page_skips() {
    let mut rng = Rng::seed_from_u64(0x5EED);
    pushdown_differential(&mut rng);
}

fn pushdown_differential(rng: &mut Rng) {
    let info_catalog = catalog(7);
    let info = CatalogRef(&info_catalog);
    let range = Span::new(1, N);
    let on = OptimizerConfig::new(range);
    let mut off = OptimizerConfig::new(range);
    off.pushdown = false;
    assert!(on.pushdown, "pushdown must default on");

    let mut fused_at_least_once = false;
    let mut skipped_at_least_once = false;
    for trial in 0..40 {
        let name = ["CLUST", "UNI", "SPARSE", "STEP", "QUANT"][trial % 5];
        let pred = random_predicate(rng);
        let query = SeqQuery::base(name).select(pred.clone()).build();

        let opt_on = optimize(&query, &info, &on).unwrap();
        let opt_off = optimize(&query, &info, &off).unwrap();
        assert_eq!(opt_off.est_pages_skipped, 0.0, "off must not predict skips");
        fused_at_least_once |= opt_on.est_pages_skipped > 0.0;

        for path in ["tuple", "batch", "parallel"] {
            let label = format!("trial {trial}: {name} where {pred} [{path}]");
            let got_on = drive(&opt_on.plan, 7, path);
            let got_off = drive(&opt_off.plan, 7, path);

            assert_eq!(got_on.rows, got_off.rows, "{label}: rows diverged");
            assert_eq!(got_on.output_records, got_off.output_records, "{label}: rows_out");

            assert_eq!(got_off.storage.pages_skipped, 0, "{label}: skips with pushdown off");
            assert_eq!(
                got_on.storage.page_reads + got_on.storage.pages_skipped,
                got_off.storage.page_reads,
                "{label}: a skipped page must be exactly one forgone read"
            );
            assert!(
                got_on.storage.stream_records <= got_off.storage.stream_records,
                "{label}: pushdown streamed more records"
            );
            assert!(
                got_on.predicate_evals <= got_off.predicate_evals,
                "{label}: pushdown evaluated the predicate more often"
            );
            skipped_at_least_once |= got_on.storage.pages_skipped > 0;
        }
    }
    // The trial mix must actually exercise the machinery, or the asserts
    // above are vacuous.
    assert!(fused_at_least_once, "no trial fused a selection");
    assert!(skipped_at_least_once, "no trial skipped a page");
}

#[test]
fn pushdown_off_plan_contains_no_fused_scan() {
    let info_catalog = catalog(7);
    let info = CatalogRef(&info_catalog);
    let query = SeqQuery::base("CLUST").select(Expr::attr("close").gt(Expr::lit(90.0))).build();
    let mut off = OptimizerConfig::new(Span::new(1, N));
    off.pushdown = false;
    let opt = optimize(&query, &info, &off).unwrap();
    assert!(!opt.plan.render().contains("FusedScan"), "{}", opt.plan.render());

    let on = OptimizerConfig::new(Span::new(1, N));
    let opt = optimize(&query, &info, &on).unwrap();
    assert!(opt.plan.render().contains("FusedScan"), "{}", opt.plan.render());
    assert!(opt.est_pages_skipped > 0.0);
}
