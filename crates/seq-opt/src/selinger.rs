//! Step 5 of the optimization algorithm: block-wise plan generation (§4.1).
//!
//! For each join block, a bottom-up dynamic program in the spirit of the
//! Selinger algorithm \[SMALP79\] enumerates left-deep join orders over the
//! block's inputs. For every subset of inputs the cheapest *stream-mode* and
//! cheapest *probed-mode* plans are retained (the sequence analogue of
//! "interesting orders"), and extensions are priced with the §4.1.3
//! formulas. Predicates are applied at the lowest join where all referenced
//! inputs are present; single-input predicates are pushed onto the input
//! itself.
//!
//! The DP proceeds level by level (subset size k → k+1), freeing finished
//! levels, which realizes Property 4.1's space bound of
//! `O(C(N, ⌈N/2⌉))` live plans; the counters in [`DpStats`] let the
//! Property 4.1 experiment compare measured against the closed forms.

use std::collections::HashMap;
use std::rc::Rc;

use seq_core::{Result, SeqError, SeqMeta, Span};
use seq_exec::{AggStrategy, JoinStrategy, PhysNode, ValueOffsetStrategy};
use seq_ops::{BoundOp, Expr, Window};

use crate::blocks::{BlockInput, InputSource, JoinBlock, NonUnitBlock};
use crate::cost::{
    base_access_costs, constant_access_costs, price_fixed_aggregate, price_join,
    price_unbounded_aggregate, price_value_offset, AccessCosts, CostParams, JoinSide,
};

/// Counters for Property 4.1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpStats {
    /// Join plans evaluated: one per (subset, added input) extension priced.
    pub plans_evaluated: u64,
    /// Peak number of subset entries simultaneously retained.
    pub peak_plans_stored: u64,
}

impl DpStats {
    /// Accumulate another block's counters (sum evaluated, max stored).
    pub fn merge(&mut self, other: &DpStats) {
        self.plans_evaluated += other.plans_evaluated;
        self.peak_plans_stored = self.peak_plans_stored.max(other.peak_plans_stored);
    }
}

/// The planned output of one block: the cheapest plan and cost per access
/// mode, plus the meta the consuming block needs.
#[derive(Debug, Clone)]
pub struct BlockPhys {
    /// Estimated cost of the cheapest stream-mode plan.
    pub stream_cost: f64,
    /// The cheapest stream-mode plan.
    pub stream_phys: PhysNode,
    /// Estimated cost of the cheapest probed-mode plan.
    pub probed_cost: f64,
    /// The cheapest probed-mode plan.
    pub probed_phys: PhysNode,
    /// Output density of the block.
    pub density: f64,
    /// Restricted output span of the block.
    pub span: Span,
}

/// Planner knobs relevant to block planning.
#[derive(Debug, Clone)]
pub struct PlanOptions {
    /// Cost-model unit costs.
    pub params: CostParams,
    /// Enumerate join orders (Selinger DP). When false, join in syntactic
    /// order — the "no join reordering" ablation.
    pub reorder_joins: bool,
    /// Force one join strategy everywhere (Figure 4 ablations).
    pub forced_join_strategy: Option<JoinStrategy>,
    /// Use incremental accumulators inside Cache-Strategy-A.
    pub incremental_aggregates: bool,
    /// Allow Cache-Strategy-B for value offsets (off = the Figure 5.B naive
    /// baseline).
    pub allow_cache_b: bool,
    /// Force naive per-output probing for aggregates (Figure 5.A baseline).
    pub force_naive_aggregates: bool,
}

impl Default for PlanOptions {
    fn default() -> PlanOptions {
        PlanOptions {
            params: CostParams::default(),
            reorder_joins: true,
            forced_join_strategy: None,
            incremental_aggregates: false,
            allow_cache_b: true,
            force_naive_aggregates: false,
        }
    }
}

/// One prepared join-block input: physical access plans (one per access
/// mode — they differ when the input is a lower block whose cheapest stream
/// and probed plans have different shapes) plus costing info.
struct PreparedInput {
    phys_stream: PhysNode,
    phys_probed: PhysNode,
    costs: AccessCosts,
    density: f64,
    span: Span,
    arity: usize,
}

/// A join-order tree fixed by the DP. `swapped` matters only for probed
/// plans (which side a `ComposeProbe` visits first).
#[derive(Debug)]
enum JoinTree {
    Input(usize),
    Node { left: Rc<JoinTree>, right: usize, strategy: JoinStrategy, swapped: bool },
}

#[derive(Clone)]
struct Entry {
    mask: u32,
    stream_cost: f64,
    stream_tree: Rc<JoinTree>,
    probed_cost: f64,
    probed_tree: Rc<JoinTree>,
    density: f64,
}

/// Plan one join block given the already-planned lower blocks.
pub fn plan_join_block(
    jb: &JoinBlock,
    lower: &[BlockPhys],
    page_capacity: usize,
    opts: &PlanOptions,
    stats: &mut DpStats,
) -> Result<BlockPhys> {
    let n = jb.inputs.len();
    if n == 0 || n > 20 {
        return Err(SeqError::Unsupported(format!(
            "join blocks must have 1..=20 inputs, found {n}"
        )));
    }
    let offsets = jb.input_offsets();

    // Selectivity of each predicate, over the virtual concatenated meta.
    let virtual_meta = concat_meta(jb);
    let selectivities: Vec<f64> =
        jb.predicates.iter().map(|p| p.expr.estimate_selectivity(&virtual_meta)).collect();

    // Prepare inputs: physical access + costs, single-input predicates
    // pushed onto them.
    let prepared: Vec<PreparedInput> = (0..n)
        .map(|i| prepare_input(jb, i, &offsets, lower, page_capacity, opts, &selectivities))
        .collect::<Result<Vec<_>>>()?;

    // Degenerate single-input block.
    let full_mask: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let best = if n == 1 {
        let p = &prepared[0];
        Entry {
            mask: 1,
            stream_cost: p.costs.stream,
            stream_tree: Rc::new(JoinTree::Input(0)),
            probed_cost: p.costs.probed,
            probed_tree: Rc::new(JoinTree::Input(0)),
            density: p.density,
        }
    } else if opts.reorder_joins {
        dp_enumerate(jb, &prepared, &selectivities, opts, stats)?
    } else {
        syntactic_order(jb, &prepared, &selectivities, opts, stats)?
    };
    debug_assert_eq!(best.mask, full_mask);

    // Reconstruct physical plans (stream-mode and probed-mode trees may
    // differ in shape).
    let stream_phys = reconstruct(jb, &prepared, &offsets, &best.stream_tree, false)?;
    let probed_phys = reconstruct(jb, &prepared, &offsets, &best.probed_tree, true)?;

    Ok(BlockPhys {
        stream_cost: best.stream_cost,
        stream_phys,
        probed_cost: best.probed_cost,
        probed_phys,
        density: jb.meta.density.min(best.density),
        span: jb.span,
    })
}

fn concat_meta(jb: &JoinBlock) -> SeqMeta {
    let mut columns = Vec::new();
    for i in &jb.inputs {
        for a in 0..i.arity {
            columns.push(i.meta.column(a));
        }
    }
    SeqMeta::new(jb.span, 1.0, columns)
}

fn prepare_input(
    jb: &JoinBlock,
    i: usize,
    offsets: &[usize],
    lower: &[BlockPhys],
    page_capacity: usize,
    opts: &PlanOptions,
    selectivities: &[f64],
) -> Result<PreparedInput> {
    let input: &BlockInput = &jb.inputs[i];
    let (mut phys_stream, mut phys_probed, mut costs, mut density) = match &input.source {
        InputSource::Base { name } => {
            let phys = PhysNode::Base { name: name.clone(), span: input.meta.span };
            let costs = base_access_costs(&input.meta, page_capacity, &opts.params);
            (phys.clone(), phys, costs, input.meta.density)
        }
        InputSource::Constant { record, .. } => {
            // A constant is defined everywhere; bound it by the block span
            // (mapped into the constant's own coordinates).
            let span = jb.span.shift(input.shift);
            let phys = PhysNode::Constant { record: record.clone(), span };
            let costs = constant_access_costs(&span, &opts.params);
            (phys.clone(), phys, costs, 1.0)
        }
        InputSource::Block(id) => {
            let b = &lower[*id];
            (
                b.stream_phys.clone(),
                b.probed_phys.clone(),
                AccessCosts { stream: b.stream_cost, probed: b.probed_cost },
                b.density,
            )
        }
    };

    // Positional shift: the input participates as In(i + shift).
    if input.shift != 0 {
        let wrap = |phys: PhysNode| PhysNode::PosOffset {
            input: Box::new(phys),
            offset: input.shift,
            span: input.block_span,
        };
        phys_stream = wrap(phys_stream);
        phys_probed = wrap(phys_probed);
    }

    // Push single-input predicates onto the input.
    let span_len =
        if input.block_span.is_bounded() { input.block_span.len() as f64 } else { f64::INFINITY };
    for (p, sel) in jb.predicates.iter().zip(selectivities) {
        if p.mask == (1u32 << i) {
            let local = p
                .expr
                .remap_columns(&|c| c.checked_sub(offsets[i]).filter(|a| *a < input.arity))
                .ok_or_else(|| {
                    SeqError::InvalidGraph("single-input predicate out of range".into())
                })?;
            let wrap = |phys: PhysNode, predicate: Expr| PhysNode::Select {
                span: phys.span(),
                input: Box::new(phys),
                predicate,
            };
            phys_stream = wrap(phys_stream, local.clone());
            phys_probed = wrap(phys_probed, local);
            let applications = density * span_len;
            if applications.is_finite() {
                costs.stream += applications * opts.params.predicate_k;
                costs.probed += applications * opts.params.predicate_k;
            }
            density *= sel;
        }
    }

    Ok(PreparedInput {
        phys_stream,
        phys_probed,
        costs,
        density,
        span: input.block_span,
        arity: input.arity,
    })
}

/// Density and newly-applicable predicate info for a subset.
fn subset_density(
    jb: &JoinBlock,
    prepared: &[PreparedInput],
    selectivities: &[f64],
    mask: u32,
) -> f64 {
    let mut d = 1.0;
    for (i, p) in prepared.iter().enumerate() {
        if mask & (1 << i) != 0 {
            d *= p.density;
        }
    }
    for (p, sel) in jb.predicates.iter().zip(selectivities) {
        // Multi-input predicates applied once all referenced inputs joined;
        // single-input ones are already folded into the prepared density.
        if p.mask.count_ones() > 1 && p.mask & mask == p.mask {
            d *= sel;
        }
    }
    d.clamp(0.0, 1.0)
}

fn subset_span(jb: &JoinBlock, prepared: &[PreparedInput], mask: u32) -> Span {
    let mut span = jb.span;
    for (i, p) in prepared.iter().enumerate() {
        if mask & (1 << i) != 0 {
            span = span.intersect(&p.span);
        }
    }
    span
}

/// Predicates newly applicable when extending `old_mask` with input `j`.
fn newly_applicable(jb: &JoinBlock, old_mask: u32, j: usize) -> (f64, usize, Vec<usize>) {
    let new_mask = old_mask | (1 << j);
    let mut sel = 1.0;
    let mut count = 0;
    let mut idx = Vec::new();
    for (pi, p) in jb.predicates.iter().enumerate() {
        if p.mask.count_ones() > 1 && p.mask & new_mask == p.mask && p.mask & old_mask != p.mask {
            count += 1;
            idx.push(pi);
            sel *= 1.0; // selectivity folded via subset_density
        }
    }
    (sel, count, idx)
}

fn extend_entry(
    jb: &JoinBlock,
    prepared: &[PreparedInput],
    selectivities: &[f64],
    entry: &Entry,
    j: usize,
    opts: &PlanOptions,
) -> Entry {
    let new_mask = entry.mask | (1 << j);
    let out_span = subset_span(jb, prepared, new_mask);
    let (_, n_preds, pred_idx) = newly_applicable(jb, entry.mask, j);
    let extra_sel: f64 = pred_idx.iter().map(|&pi| selectivities[pi]).product();

    let left = JoinSide {
        costs: AccessCosts { stream: entry.stream_cost, probed: entry.probed_cost },
        density: entry.density,
    };
    let right = JoinSide { costs: prepared[j].costs, density: prepared[j].density };
    let pricing = price_join(
        &left,
        &right,
        &out_span,
        extra_sel,
        n_preds,
        &opts.params,
        opts.forced_join_strategy,
    );

    let stream_tree = Rc::new(JoinTree::Node {
        left: match pricing.stream_strategy {
            // When the subset side is probed, embed its probed-best tree.
            JoinStrategy::StreamRightProbeLeft => entry.probed_tree.clone(),
            _ => entry.stream_tree.clone(),
        },
        right: j,
        strategy: pricing.stream_strategy,
        swapped: false,
    });
    let probed_tree = Rc::new(JoinTree::Node {
        left: entry.probed_tree.clone(),
        right: j,
        strategy: JoinStrategy::LockStep, // ignored in probe mode
        swapped: pricing.probe_right_first,
    });

    Entry {
        mask: new_mask,
        stream_cost: pricing.stream_cost,
        stream_tree,
        probed_cost: pricing.probed_cost,
        probed_tree,
        density: subset_density(jb, prepared, selectivities, new_mask),
    }
}

fn singleton_entry(prepared: &[PreparedInput], i: usize) -> Entry {
    let p = &prepared[i];
    Entry {
        mask: 1 << i,
        stream_cost: p.costs.stream,
        stream_tree: Rc::new(JoinTree::Input(i)),
        probed_cost: p.costs.probed,
        probed_tree: Rc::new(JoinTree::Input(i)),
        density: p.density,
    }
}

fn dp_enumerate(
    jb: &JoinBlock,
    prepared: &[PreparedInput],
    selectivities: &[f64],
    opts: &PlanOptions,
    stats: &mut DpStats,
) -> Result<Entry> {
    let n = prepared.len();
    let mut level: HashMap<u32, Entry> =
        (0..n).map(|i| (1u32 << i, singleton_entry(prepared, i))).collect();
    stats.peak_plans_stored = stats.peak_plans_stored.max(level.len() as u64);

    for _size in 1..n {
        let mut next: HashMap<u32, Entry> = HashMap::new();
        for entry in level.values() {
            for j in 0..n {
                if entry.mask & (1 << j) != 0 {
                    continue;
                }
                stats.plans_evaluated += 1;
                let cand = extend_entry(jb, prepared, selectivities, entry, j, opts);
                match next.get_mut(&cand.mask) {
                    None => {
                        next.insert(cand.mask, cand);
                    }
                    Some(best) => {
                        if cand.stream_cost < best.stream_cost {
                            best.stream_cost = cand.stream_cost;
                            best.stream_tree = cand.stream_tree.clone();
                        }
                        if cand.probed_cost < best.probed_cost {
                            best.probed_cost = cand.probed_cost;
                            best.probed_tree = cand.probed_tree;
                        }
                    }
                }
            }
        }
        stats.peak_plans_stored = stats.peak_plans_stored.max((level.len() + next.len()) as u64);
        level = next; // previous level freed here (Property 4.1b)
    }
    level.into_values().next().ok_or_else(|| SeqError::InvalidGraph("empty DP level".into()))
}

fn syntactic_order(
    jb: &JoinBlock,
    prepared: &[PreparedInput],
    selectivities: &[f64],
    opts: &PlanOptions,
    stats: &mut DpStats,
) -> Result<Entry> {
    let mut entry = singleton_entry(prepared, 0);
    stats.peak_plans_stored = stats.peak_plans_stored.max(1);
    for j in 1..prepared.len() {
        stats.plans_evaluated += 1;
        entry = extend_entry(jb, prepared, selectivities, &entry, j, opts);
    }
    Ok(entry)
}

/// Rebuild a [`PhysNode`] from a join tree, attaching multi-input predicates
/// at the lowest node where they apply and finishing with the block's output
/// projection. Returns the node whose layout equals `jb.output`.
fn reconstruct(
    jb: &JoinBlock,
    prepared: &[PreparedInput],
    offsets: &[usize],
    tree: &JoinTree,
    probed_shape: bool,
) -> Result<PhysNode> {
    let (phys, layout, _mask) = build(jb, prepared, offsets, tree, probed_shape)?;
    // Final projection to the declared output layout.
    let indices: Vec<usize> =
        jb.output
            .iter()
            .map(|target| {
                layout.iter().position(|x| x == target).ok_or_else(|| {
                    SeqError::InvalidGraph("output column missing from layout".into())
                })
            })
            .collect::<Result<_>>()?;
    let identity =
        indices.len() == layout.len() && indices.iter().enumerate().all(|(k, &v)| k == v);
    if identity {
        Ok(phys)
    } else {
        Ok(PhysNode::Project { span: phys.span(), input: Box::new(phys), indices })
    }
}

#[allow(clippy::type_complexity)]
fn build(
    jb: &JoinBlock,
    prepared: &[PreparedInput],
    offsets: &[usize],
    tree: &JoinTree,
    probed_shape: bool,
) -> Result<(PhysNode, Vec<(usize, usize)>, u32)> {
    match tree {
        JoinTree::Input(i) => {
            let layout: Vec<(usize, usize)> = (0..prepared[*i].arity).map(|a| (*i, a)).collect();
            let phys = if probed_shape {
                prepared[*i].phys_probed.clone()
            } else {
                prepared[*i].phys_stream.clone()
            };
            Ok((phys, layout, 1 << i))
        }
        JoinTree::Node { left, right, strategy, swapped } => {
            // Which mode each child is opened in follows the strategy: a
            // probed-shape tree probes everything; in a stream-shape tree,
            // StreamLeftProbeRight probes the added input and
            // StreamRightProbeLeft probes the whole left subtree.
            let (left_probed, right_probed) = if probed_shape {
                (true, true)
            } else {
                match strategy {
                    JoinStrategy::LockStep => (false, false),
                    JoinStrategy::StreamLeftProbeRight => (false, true),
                    JoinStrategy::StreamRightProbeLeft => (true, false),
                }
            };
            let (lphys, llayout, lmask) = build(jb, prepared, offsets, left, left_probed)?;
            let rlayout: Vec<(usize, usize)> =
                (0..prepared[*right].arity).map(|a| (*right, a)).collect();
            let rphys = if right_probed {
                prepared[*right].phys_probed.clone()
            } else {
                prepared[*right].phys_stream.clone()
            };
            let mask = lmask | (1 << *right);

            let (a, b, alayout, blayout) = if probed_shape && *swapped {
                (rphys, lphys, rlayout, llayout)
            } else {
                (lphys, rphys, llayout, rlayout)
            };
            let mut layout = alayout;
            layout.extend(blayout);

            // Predicates newly applicable at this node, remapped to the
            // actual layout.
            let mut predicate: Option<Expr> = None;
            for p in &jb.predicates {
                if p.mask.count_ones() > 1 && p.mask & mask == p.mask && p.mask & lmask != p.mask {
                    let remapped = p
                        .expr
                        .remap_columns(&|c| {
                            let (input, attr) = decode(offsets, jb, c);
                            layout.iter().position(|&x| x == (input, attr))
                        })
                        .ok_or_else(|| {
                            SeqError::InvalidGraph("predicate column missing in layout".into())
                        })?;
                    predicate = Some(match predicate {
                        None => remapped,
                        Some(acc) => acc.and(remapped),
                    });
                }
            }

            let span = a.span().intersect(&b.span()).intersect(&jb.span);
            let phys = PhysNode::Compose {
                left: Box::new(a),
                right: Box::new(b),
                predicate,
                strategy: *strategy,
                span,
            };
            Ok((phys, layout, mask))
        }
    }
}

/// Decode a discovery-order concatenated coordinate into `(input, attr)`.
fn decode(offsets: &[usize], jb: &JoinBlock, c: usize) -> (usize, usize) {
    let mut input = 0;
    for (i, &off) in offsets.iter().enumerate() {
        if c >= off && c < off + jb.inputs[i].arity {
            input = i;
            break;
        }
    }
    (input, c - offsets[input])
}

/// Plan a non-unit-scope singleton block (§4.1.2).
pub fn plan_nonunit_block(
    nb: &NonUnitBlock,
    lower: &[BlockPhys],
    page_capacity: usize,
    opts: &PlanOptions,
) -> Result<BlockPhys> {
    // Resolve the input's physical access and costs.
    let (in_stream_phys, in_probed_phys, in_costs, in_density) = match &nb.input {
        InputSource::Base { name } => {
            let phys = PhysNode::Base { name: name.clone(), span: nb.input_meta.span };
            let costs = base_access_costs(&nb.input_meta, page_capacity, &opts.params);
            (phys.clone(), phys, costs, nb.input_meta.density)
        }
        InputSource::Constant { record, .. } => {
            let phys = PhysNode::Constant { record: record.clone(), span: nb.input_meta.span };
            let costs = constant_access_costs(&nb.input_meta.span, &opts.params);
            (phys.clone(), phys, costs, 1.0)
        }
        InputSource::Block(id) => {
            let b = &lower[*id];
            (
                b.stream_phys.clone(),
                b.probed_phys.clone(),
                AccessCosts { stream: b.stream_cost, probed: b.probed_cost },
                b.density,
            )
        }
    };
    let side = JoinSide { costs: in_costs, density: in_density.max(1e-9) };
    let in_span = nb.input_meta.span;
    let out_span = nb.span;
    let params = &opts.params;

    match &nb.op {
        BoundOp::Aggregate { func, attr_index, window, .. } => {
            let (costs, strategy) = match window {
                Window::Sliding { lo, hi } => {
                    let w = (hi - lo).unsigned_abs() + 1;
                    let costs = price_fixed_aggregate(
                        &side,
                        &in_span,
                        &out_span,
                        nb.meta.density,
                        w,
                        params,
                    );
                    let strat = if opts.force_naive_aggregates {
                        AggStrategy::NaiveProbe
                    } else if opts.incremental_aggregates {
                        AggStrategy::CacheAIncremental
                    } else {
                        AggStrategy::CacheA
                    };
                    (costs, strat)
                }
                Window::Cumulative | Window::WholeSpan => {
                    let costs = price_unbounded_aggregate(
                        &side,
                        &in_span,
                        &out_span,
                        matches!(window, Window::WholeSpan),
                        params,
                    );
                    let strat = if opts.force_naive_aggregates {
                        AggStrategy::NaiveProbe
                    } else {
                        AggStrategy::CacheA
                    };
                    (costs, strat)
                }
            };
            let stream_cost = if opts.force_naive_aggregates { costs.probed } else { costs.stream };
            let mk = |input: PhysNode, strat: AggStrategy| PhysNode::Aggregate {
                input: Box::new(input),
                func: *func,
                attr_index: *attr_index,
                window: *window,
                strategy: strat,
                span: out_span,
            };
            Ok(BlockPhys {
                stream_cost,
                stream_phys: mk(
                    if strategy == AggStrategy::NaiveProbe {
                        in_probed_phys.clone()
                    } else {
                        in_stream_phys
                    },
                    strategy,
                ),
                probed_cost: costs.probed,
                probed_phys: mk(in_probed_phys, AggStrategy::NaiveProbe),
                density: nb.meta.density,
                span: out_span,
            })
        }
        BoundOp::ValueOffset { offset } => {
            let costs =
                price_value_offset(&side, &in_span, &out_span, offset.unsigned_abs(), params);
            let use_incremental = opts.allow_cache_b;
            let stream_cost = if use_incremental { costs.stream } else { costs.probed };
            let strategy = if use_incremental {
                ValueOffsetStrategy::IncrementalCacheB
            } else {
                ValueOffsetStrategy::NaiveProbe
            };
            let mk = |input: PhysNode, strat: ValueOffsetStrategy| PhysNode::ValueOffset {
                input: Box::new(input),
                offset: *offset,
                strategy: strat,
                span: out_span,
            };
            Ok(BlockPhys {
                stream_cost,
                stream_phys: mk(
                    if use_incremental { in_stream_phys } else { in_probed_phys.clone() },
                    strategy,
                ),
                probed_cost: costs.probed,
                probed_phys: mk(in_probed_phys, ValueOffsetStrategy::NaiveProbe),
                density: nb.meta.density,
                span: out_span,
            })
        }
        other => Err(SeqError::InvalidGraph(format!("{other} is not a non-unit-scope operator"))),
    }
}
