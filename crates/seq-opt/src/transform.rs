//! Step 3 of the optimization algorithm: query transformations (§3.1).
//!
//! Equivalence-preserving rewrites, applied heuristically:
//!
//! - merge successive selections / projections / positional offsets;
//! - push selections down through projections, positional offsets, and
//!   compose operators (into the join predicate when they straddle sides);
//! - push projections down through positional offsets, value offsets, and
//!   compose operators (when every participating attribute survives);
//! - push positional offsets through any operator of relative scope on all
//!   its inputs (selection, projection, compose, aggregates, value offsets).
//!
//! The incorrect transformations the paper lists — selections through
//! non-unit-scope operators, aggregates/value offsets through compose —
//! are deliberately *absent*; tests pin that they are never applied.
//!
//! Rules only ever move operators downward or merge adjacent ones, so
//! repeated application terminates.

use std::collections::BTreeMap;

use seq_core::{Field, Result, Schema, SeqError};
use seq_ops::{BoundOp, Expr, ResolvedGraph, ResolvedKind, ResolvedNode};

/// An owned operator tree (the rewrite engine's working form).
#[derive(Debug, Clone, PartialEq)]
enum TNode {
    Leaf(ResolvedNode),
    Op { op: BoundOp, schema: Schema, children: Vec<TNode> },
}

impl TNode {
    fn schema(&self) -> &Schema {
        match self {
            TNode::Leaf(n) => &n.schema,
            TNode::Op { schema, .. } => schema,
        }
    }
}

/// Compute an operator's output schema from its children (mirrors
/// `SeqOperator::output_schema` for bound operators).
fn op_schema(op: &BoundOp, children: &[TNode]) -> Result<Schema> {
    Ok(match op {
        BoundOp::Select { .. } | BoundOp::PositionalOffset { .. } | BoundOp::ValueOffset { .. } => {
            children[0].schema().clone()
        }
        BoundOp::Project { indices } => children[0].schema().project(indices)?,
        BoundOp::Aggregate { func, attr_index, output_name, .. } => {
            let in_ty = children[0].schema().field(*attr_index)?.ty;
            Schema::new(vec![Field::new(output_name.clone(), func.output_type(in_ty)?)])
        }
        BoundOp::Compose { .. } => children[0].schema().compose(children[1].schema()),
    })
}

fn op_node(op: BoundOp, children: Vec<TNode>) -> Result<TNode> {
    let schema = op_schema(&op, &children)?;
    Ok(TNode::Op { op, schema, children })
}

/// Which rewrite rules fired, by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransformReport {
    /// Rule name → number of times it fired.
    pub applied: BTreeMap<&'static str, usize>,
}

impl TransformReport {
    /// Total rule applications.
    pub fn total(&self) -> usize {
        self.applied.values().sum()
    }

    fn bump(&mut self, rule: &'static str) {
        *self.applied.entry(rule).or_insert(0) += 1;
    }
}

/// Apply the §3.1 transformations to fixpoint.
pub fn apply_transformations(graph: &ResolvedGraph) -> Result<(ResolvedGraph, TransformReport)> {
    let mut tree = build_tree(graph, graph.root());
    let mut report = TransformReport::default();
    // Each rule strictly moves an operator downward or merges two operators,
    // so a fixpoint exists; the cap is a defensive bound.
    let cap = 16 * graph.len().max(4);
    for _ in 0..cap {
        let (new_tree, fired) = rewrite_once(tree, &mut report)?;
        tree = new_tree;
        if !fired {
            break;
        }
    }
    let rebuilt = rebuild_graph(tree)?;
    Ok((rebuilt, report))
}

fn build_tree(graph: &ResolvedGraph, id: usize) -> TNode {
    let node = graph.node(id);
    match &node.kind {
        ResolvedKind::Op { op, inputs } => TNode::Op {
            op: op.clone(),
            schema: node.schema.clone(),
            children: inputs.iter().map(|&c| build_tree(graph, c)).collect(),
        },
        _ => TNode::Leaf(node.clone()),
    }
}

fn rebuild_graph(tree: TNode) -> Result<ResolvedGraph> {
    let mut nodes = Vec::new();
    let root = push_tree(tree, &mut nodes);
    ResolvedGraph::assemble(nodes, root)
}

fn push_tree(tree: TNode, nodes: &mut Vec<ResolvedNode>) -> usize {
    match tree {
        TNode::Leaf(n) => {
            nodes.push(n);
            nodes.len() - 1
        }
        TNode::Op { op, schema, children } => {
            let inputs = children.into_iter().map(|c| push_tree(c, nodes)).collect();
            nodes.push(ResolvedNode { kind: ResolvedKind::Op { op, inputs }, schema });
            nodes.len() - 1
        }
    }
}

/// One top-down pass; returns the rewritten tree and whether any rule fired.
fn rewrite_once(tree: TNode, report: &mut TransformReport) -> Result<(TNode, bool)> {
    if let Some(rewritten) = try_rules(&tree, report)? {
        return Ok((rewritten, true));
    }
    match tree {
        TNode::Op { op, schema, children } => {
            let mut fired = false;
            let mut new_children = Vec::with_capacity(children.len());
            for c in children {
                let (nc, f) = rewrite_once(c, report)?;
                fired |= f;
                new_children.push(nc);
            }
            Ok((TNode::Op { op, schema, children: new_children }, fired))
        }
        leaf => Ok((leaf, false)),
    }
}

/// Try every rule at the root of `tree`.
fn try_rules(tree: &TNode, report: &mut TransformReport) -> Result<Option<TNode>> {
    let TNode::Op { op, children, .. } = tree else { return Ok(None) };

    match (op, children.as_slice()) {
        // ---- merges -------------------------------------------------------
        (
            BoundOp::Select { predicate: p1 },
            [TNode::Op { op: BoundOp::Select { predicate: p2 }, children: inner, .. }],
        ) => {
            report.bump("merge-selects");
            let merged = p2.clone().and(p1.clone());
            Ok(Some(op_node(BoundOp::Select { predicate: merged }, inner.clone())?))
        }
        (
            BoundOp::Project { indices: outer },
            [TNode::Op { op: BoundOp::Project { indices: inner_idx }, children: inner, .. }],
        ) => {
            report.bump("merge-projects");
            let composed: Vec<usize> = outer.iter().map(|&i| inner_idx[i]).collect();
            Ok(Some(op_node(BoundOp::Project { indices: composed }, inner.clone())?))
        }
        (
            BoundOp::PositionalOffset { offset: a },
            [TNode::Op { op: BoundOp::PositionalOffset { offset: b }, children: inner, .. }],
        ) => {
            report.bump("merge-offsets");
            let total = a + b;
            if total == 0 {
                Ok(Some(inner[0].clone()))
            } else {
                Ok(Some(op_node(BoundOp::PositionalOffset { offset: total }, inner.clone())?))
            }
        }

        // ---- selection pushdown -------------------------------------------
        (
            BoundOp::Select { predicate },
            [TNode::Op { op: BoundOp::Project { indices }, children: inner, .. }],
        ) => {
            // σ(π(x)) → π(σ'(x)), remapping columns through the projection.
            let remapped =
                predicate.remap_columns(&|c| indices.get(c).copied()).ok_or_else(|| {
                    SeqError::InvalidGraph("projection narrower than predicate".into())
                })?;
            report.bump("push-select-through-project");
            let selected = op_node(BoundOp::Select { predicate: remapped }, inner.clone())?;
            Ok(Some(op_node(BoundOp::Project { indices: indices.clone() }, vec![selected])?))
        }
        (
            BoundOp::Select { predicate },
            [TNode::Op { op: BoundOp::PositionalOffset { offset }, children: inner, .. }],
        ) => {
            report.bump("push-select-through-offset");
            let selected =
                op_node(BoundOp::Select { predicate: predicate.clone() }, inner.clone())?;
            Ok(Some(op_node(BoundOp::PositionalOffset { offset: *offset }, vec![selected])?))
        }
        (
            BoundOp::Select { predicate },
            [TNode::Op { op: BoundOp::Compose { predicate: jp }, children: inner, .. }],
        ) => {
            let na = inner[0].schema().arity();
            let mut cols = Vec::new();
            predicate.referenced_columns(&mut cols);
            if !cols.is_empty() && cols.iter().all(|&c| c < na) {
                // Entirely left-side: push into the left child.
                report.bump("push-select-into-compose-left");
                let pushed = op_node(
                    BoundOp::Select { predicate: predicate.clone() },
                    vec![inner[0].clone()],
                )?;
                Ok(Some(op_node(
                    BoundOp::Compose { predicate: jp.clone() },
                    vec![pushed, inner[1].clone()],
                )?))
            } else if !cols.is_empty() && cols.iter().all(|&c| c >= na) {
                report.bump("push-select-into-compose-right");
                let remapped =
                    predicate.remap_columns(&|c| Some(c - na)).expect("all columns right-side");
                let pushed =
                    op_node(BoundOp::Select { predicate: remapped }, vec![inner[1].clone()])?;
                Ok(Some(op_node(
                    BoundOp::Compose { predicate: jp.clone() },
                    vec![inner[0].clone(), pushed],
                )?))
            } else {
                // Straddles both sides (or is constant): fold into the join
                // predicate so it is applied during the positional join.
                report.bump("merge-select-into-join-predicate");
                let combined = match jp {
                    Some(j) => j.clone().and(predicate.clone()),
                    None => predicate.clone(),
                };
                Ok(Some(op_node(BoundOp::Compose { predicate: Some(combined) }, inner.clone())?))
            }
        }

        // ---- projection pushdown ------------------------------------------
        (
            BoundOp::Project { indices },
            [TNode::Op {
                op: inner_op @ (BoundOp::PositionalOffset { .. } | BoundOp::ValueOffset { .. }),
                children: inner,
                ..
            }],
        ) => {
            report.bump("push-project-through-offset");
            let projected = op_node(BoundOp::Project { indices: indices.clone() }, inner.clone())?;
            Ok(Some(op_node(inner_op.clone(), vec![projected])?))
        }
        (
            BoundOp::Project { indices },
            [TNode::Op { op: BoundOp::Compose { predicate: jp }, children: inner, .. }],
        ) => push_project_through_compose(indices, jp, inner, report),

        // ---- positional-offset pushdown ------------------------------------
        (
            BoundOp::PositionalOffset { offset },
            [TNode::Op { op: inner_op, children: inner, .. }],
        ) => {
            // A positional offset can be pushed through any operator of
            // relative scope on all its inputs (§3.1). Whole-span aggregates
            // are the one non-relative scope in the algebra. Selections and
            // projections are excluded here — they commute with offsets, but
            // the selection-pushdown rules move them *below* offsets, and
            // pushing the offset back through them would cycle; the
            // canonical order is select/project above offsets above
            // composes/aggregates/value offsets.
            if matches!(inner_op, BoundOp::Select { .. } | BoundOp::Project { .. }) {
                return Ok(None);
            }
            let relative = (0..inner_op.arity()).all(|k| inner_op.scope(k).relative());
            if !relative {
                return Ok(None);
            }
            report.bump("push-offset-down");
            let shifted: Vec<TNode> = inner
                .iter()
                .map(|c| op_node(BoundOp::PositionalOffset { offset: *offset }, vec![c.clone()]))
                .collect::<Result<_>>()?;
            Ok(Some(op_node(inner_op.clone(), shifted)?))
        }

        _ => Ok(None),
    }
}

fn push_project_through_compose(
    indices: &[usize],
    jp: &Option<Expr>,
    inner: &[TNode],
    report: &mut TransformReport,
) -> Result<Option<TNode>> {
    let na = inner[0].schema().arity();
    let nb = inner[1].schema().arity();
    // Attributes that participate in the compose (its join predicate) must
    // survive the pushed projections (§3.1).
    let mut needed: Vec<usize> = indices.to_vec();
    if let Some(p) = jp {
        p.referenced_columns(&mut needed);
    }
    needed.sort_unstable();
    needed.dedup();
    let keep_left: Vec<usize> = needed.iter().copied().filter(|&c| c < na).collect();
    let keep_right: Vec<usize> =
        needed.iter().copied().filter(|&c| c >= na).map(|c| c - na).collect();
    if keep_left.len() == na && keep_right.len() == nb {
        // Nothing would be dropped: the rewrite only reorders, skip it to
        // guarantee termination.
        return Ok(None);
    }
    report.bump("push-project-through-compose");
    let left = op_node(BoundOp::Project { indices: keep_left.clone() }, vec![inner[0].clone()])?;
    let right = op_node(BoundOp::Project { indices: keep_right.clone() }, vec![inner[1].clone()])?;
    // Remap a pre-push column index into the narrowed composed layout.
    let remap = |c: usize| -> Option<usize> {
        if c < na {
            keep_left.iter().position(|&k| k == c)
        } else {
            keep_right.iter().position(|&k| k == c - na).map(|p| p + keep_left.len())
        }
    };
    let new_jp = match jp {
        Some(p) => Some(p.remap_columns(&remap).ok_or_else(|| {
            SeqError::InvalidGraph("join predicate column lost in pushdown".into())
        })?),
        None => None,
    };
    let composed = op_node(BoundOp::Compose { predicate: new_jp }, vec![left, right])?;
    let outer: Vec<usize> =
        indices.iter().map(|&c| remap(c).expect("projected columns are kept")).collect();
    Ok(Some(op_node(BoundOp::Project { indices: outer }, vec![composed])?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::{schema, AttrType, Schema};
    use seq_ops::{AggFunc, Expr, QueryGraph, ResolvedGraph, SeqQuery, Window};
    use std::collections::HashMap;

    fn provider() -> HashMap<String, Schema> {
        let stock = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
        ["IBM", "HP", "DEC"].iter().map(|n| (n.to_string(), stock.clone())).collect()
    }

    fn resolve(g: QueryGraph) -> ResolvedGraph {
        g.resolve(&provider()).unwrap()
    }

    fn ops_of(g: &ResolvedGraph) -> Vec<String> {
        g.postorder()
            .into_iter()
            .filter_map(|id| match &g.node(id).kind {
                ResolvedKind::Op { op, .. } => Some(op.to_string()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn merges_adjacent_selects() {
        let g = resolve(
            SeqQuery::base("IBM")
                .select(Expr::attr("close").gt(Expr::lit(1.0)))
                .select(Expr::attr("close").lt(Expr::lit(9.0)))
                .build(),
        );
        let (t, report) = apply_transformations(&g).unwrap();
        assert_eq!(report.applied["merge-selects"], 1);
        let ops = ops_of(&t);
        assert_eq!(ops.len(), 1);
        assert!(ops[0].contains("AND"));
    }

    #[test]
    fn merges_projects_and_offsets() {
        let g = resolve(
            SeqQuery::base("IBM")
                .project(["time", "close"])
                .project(["close"])
                .positional_offset(3)
                .positional_offset(-3)
                .build(),
        );
        let (t, report) = apply_transformations(&g).unwrap();
        assert_eq!(report.applied["merge-projects"], 1);
        assert_eq!(report.applied["merge-offsets"], 1);
        let ops = ops_of(&t);
        // Offsets cancelled entirely; a single projection remains.
        assert_eq!(ops, vec!["Project($1)"]);
    }

    #[test]
    fn pushes_select_to_compose_sides() {
        // σ(left.close > 7)(IBM ∘ HP) → (σ IBM) ∘ HP.
        let g = resolve(
            SeqQuery::base("IBM")
                .compose_with(SeqQuery::base("HP"))
                .select(Expr::attr("close").gt(Expr::lit(7.0)))
                .build(),
        );
        let (t, report) = apply_transformations(&g).unwrap();
        assert_eq!(report.applied["push-select-into-compose-left"], 1);
        let rendered = t.render();
        // The select must now sit under the compose.
        let compose_line = rendered.lines().position(|l| l.contains("Compose")).unwrap();
        let select_line = rendered.lines().position(|l| l.contains("Select")).unwrap();
        assert!(select_line > compose_line, "select pushed below compose:\n{rendered}");
    }

    #[test]
    fn pushes_right_side_select_with_remap() {
        // close_r refers to HP's close (column 3 of the composed schema).
        let g = resolve(
            SeqQuery::base("IBM")
                .compose_with(SeqQuery::base("HP"))
                .select(Expr::attr("close_r").gt(Expr::lit(7.0)))
                .build(),
        );
        let (t, report) = apply_transformations(&g).unwrap();
        assert_eq!(report.applied["push-select-into-compose-right"], 1);
        // The pushed predicate must reference HP's local column 1.
        let pushed = t
            .postorder()
            .into_iter()
            .find_map(|id| match &t.node(id).kind {
                ResolvedKind::Op { op: BoundOp::Select { predicate }, .. } => {
                    Some(predicate.to_string())
                }
                _ => None,
            })
            .unwrap();
        assert_eq!(pushed, "($1 > 7)");
    }

    #[test]
    fn straddling_select_merges_into_join_predicate() {
        let g = resolve(
            SeqQuery::base("IBM")
                .compose_with(SeqQuery::base("HP"))
                .select(Expr::attr("close").gt(Expr::attr("close_r")))
                .build(),
        );
        let (t, report) = apply_transformations(&g).unwrap();
        assert_eq!(report.applied["merge-select-into-join-predicate"], 1);
        let ops = ops_of(&t);
        assert_eq!(ops.len(), 1);
        assert!(ops[0].starts_with("Compose["));
    }

    #[test]
    fn select_does_not_cross_aggregate_or_value_offset() {
        // σ over an aggregate must stay put (incorrect transformation, §3.1).
        let g = resolve(
            SeqQuery::base("IBM")
                .aggregate(AggFunc::Sum, "close", Window::trailing(6))
                .select(Expr::attr("sum_close").gt(Expr::lit(0.0)))
                .build(),
        );
        let (t, report) = apply_transformations(&g).unwrap();
        assert_eq!(report.total(), 0);
        assert_eq!(ops_of(&g), ops_of(&t));

        let g = resolve(
            SeqQuery::base("IBM").previous().select(Expr::attr("close").gt(Expr::lit(0.0))).build(),
        );
        let (_, report) = apply_transformations(&g).unwrap();
        assert_eq!(report.total(), 0);
    }

    #[test]
    fn offset_pushes_through_compose_and_aggregate() {
        let g = resolve(
            SeqQuery::base("IBM").compose_with(SeqQuery::base("HP")).positional_offset(5).build(),
        );
        let (t, report) = apply_transformations(&g).unwrap();
        assert!(report.applied["push-offset-down"] >= 1);
        let rendered = t.render();
        let compose_line = rendered.lines().position(|l| l.contains("Compose")).unwrap();
        let first_offset = rendered.lines().position(|l| l.contains("PosOffset")).unwrap();
        assert!(first_offset > compose_line, "offsets below compose:\n{rendered}");

        let g = resolve(
            SeqQuery::base("IBM")
                .aggregate(AggFunc::Sum, "close", Window::trailing(3))
                .positional_offset(2)
                .build(),
        );
        let (t, report) = apply_transformations(&g).unwrap();
        assert_eq!(report.applied["push-offset-down"], 1);
        let rendered = t.render();
        let agg_line = rendered.lines().position(|l| l.contains("SUM")).unwrap();
        let off_line = rendered.lines().position(|l| l.contains("PosOffset")).unwrap();
        assert!(off_line > agg_line);
    }

    #[test]
    fn offset_does_not_push_through_whole_span_aggregate() {
        let g = resolve(
            SeqQuery::base("IBM")
                .aggregate(AggFunc::Max, "close", Window::WholeSpan)
                .positional_offset(2)
                .build(),
        );
        let (_, report) = apply_transformations(&g).unwrap();
        assert_eq!(report.applied.get("push-offset-down"), None);
    }

    #[test]
    fn project_pushes_through_compose_narrowing_inputs() {
        let g = resolve(
            SeqQuery::base("IBM")
                .compose_filtered(
                    SeqQuery::base("HP"),
                    Expr::attr("close").gt(Expr::attr("close_r")),
                )
                .project(["close"])
                .build(),
        );
        let (t, report) = apply_transformations(&g).unwrap();
        assert_eq!(report.applied["push-project-through-compose"], 1);
        // Both inputs should now be narrowed to their close column, and the
        // join predicate remapped to the narrowed layout.
        let rendered = t.render();
        assert!(rendered.contains("Project($1)"), "{rendered}");
        let jp = t
            .postorder()
            .into_iter()
            .find_map(|id| match &t.node(id).kind {
                ResolvedKind::Op { op: BoundOp::Compose { predicate: Some(p) }, .. } => {
                    Some(p.to_string())
                }
                _ => None,
            })
            .unwrap();
        assert_eq!(jp, "($0 > $1)");
        // Output schema is unchanged.
        assert_eq!(t.output_schema().arity(), 1);
    }

    #[test]
    fn chain_of_rules_reaches_fixpoint() {
        // Selection over projection over compose: select pushes through the
        // projection, then into a compose side; projection pushes through the
        // compose; merges clean up.
        let g = resolve(
            SeqQuery::base("IBM")
                .compose_with(SeqQuery::base("HP"))
                .project(["close", "close_r"])
                .select(Expr::attr("close").gt(Expr::lit(5.0)))
                .build(),
        );
        let (t, report) = apply_transformations(&g).unwrap();
        assert!(report.total() >= 3, "report: {:?}", report.applied);
        // Applying again changes nothing.
        let (t2, r2) = apply_transformations(&t).unwrap();
        assert_eq!(r2.total(), 0);
        assert_eq!(ops_of(&t), ops_of(&t2));
    }

    #[test]
    fn preserves_output_schema() {
        let queries = vec![
            SeqQuery::base("IBM")
                .compose_with(SeqQuery::base("HP"))
                .project(["close", "time_r"])
                .select(Expr::attr("close").gt(Expr::lit(5.0)))
                .build(),
            SeqQuery::base("DEC")
                .compose_with(
                    SeqQuery::base("IBM")
                        .compose_filtered(
                            SeqQuery::base("HP"),
                            Expr::attr("close").gt(Expr::attr("close_r")),
                        )
                        .project(["close"]),
                )
                .build(),
        ];
        for q in queries {
            let g = resolve(q);
            let (t, _) = apply_transformations(&g).unwrap();
            // Rewrites preserve the positional schema (arity and types).
            // Attribute *names* may be re-derived: compose disambiguates
            // clashes (`_r` suffix) based on its immediate inputs, which
            // narrowing projections legitimately change. All post-binding
            // consumers are positional, so this is invisible to execution.
            let types = |s: &Schema| s.fields().iter().map(|f| f.ty).collect::<Vec<_>>();
            assert_eq!(types(g.output_schema()), types(t.output_schema()));
        }
    }
}
