//! Step 2 of the optimization algorithm (§4): meta-information propagation.
//!
//! - **Step 2.a — bottom-up annotation**: type checking happened during
//!   resolution; here every node is adorned with its output meta-data (span,
//!   density, column statistics) using the rules in `seq_ops::spanrules`.
//! - **Step 2.b — top-down annotation**: starting from the root (whose span
//!   is intersected with the query template's position range, Figure 6),
//!   every operator restricts its inputs' spans to what the consumer can
//!   ever ask about — the global span optimization of §3.2 / Figure 3.

use seq_core::{Result, SeqMeta, Span};
use seq_ops::spanrules::{output_meta, required_input_span};
use seq_ops::{ResolvedGraph, ResolvedKind};

use crate::info::CatalogInfo;

/// A resolved graph adorned with meta-data and restricted spans.
#[derive(Debug, Clone)]
pub struct Annotated {
    /// The (possibly transformed) resolved query tree.
    pub graph: ResolvedGraph,
    /// Bottom-up meta per node (full, unrestricted spans).
    pub metas: Vec<SeqMeta>,
    /// Top-down restricted span per node. Always a subset of the bottom-up
    /// span; equals it when the top-down pass is disabled.
    pub restricted: Vec<Span>,
}

impl Annotated {
    /// The restricted meta of a node: bottom-up meta with the restricted span.
    pub fn restricted_meta(&self, id: usize) -> SeqMeta {
        self.metas[id].restrict_span(&self.restricted[id])
    }
}

/// Run Step 2 over a resolved graph. `range` is the position range the Start
/// operator requests; `top_down` toggles Step 2.b (off = the ablation the
/// Figure 3 experiment measures).
pub fn annotate(
    graph: ResolvedGraph,
    info: &dyn CatalogInfo,
    range: Span,
    top_down: bool,
) -> Result<Annotated> {
    let n = graph.len();
    let mut metas: Vec<Option<SeqMeta>> = vec![None; n];

    // Step 2.a: bottom-up.
    for id in graph.postorder() {
        let meta = match &graph.node(id).kind {
            ResolvedKind::Base { name } => info.meta_of(name)?,
            ResolvedKind::Constant { .. } => SeqMeta::constant(),
            ResolvedKind::Op { op, inputs } => {
                let in_metas: Vec<SeqMeta> = inputs
                    .iter()
                    .map(|&i| metas[i].clone().expect("postorder visits inputs first"))
                    .collect();
                output_meta(op, &in_metas)
            }
        };
        metas[id] = Some(meta);
    }
    let metas: Vec<SeqMeta> = metas.into_iter().map(|m| m.expect("annotated")).collect();

    // Step 2.b: top-down.
    let mut restricted: Vec<Span> = metas.iter().map(|m| m.span).collect();
    let root = graph.root();
    restricted[root] = metas[root].span.intersect(&range);
    if top_down {
        // Pre-order: visit each node after its consumer. Reverse postorder
        // works because the graph is a tree.
        let mut order = graph.postorder();
        order.reverse();
        for id in order {
            if let ResolvedKind::Op { op, inputs } = &graph.node(id).kind {
                let required = restricted[id];
                for (k, &child) in inputs.iter().enumerate() {
                    let child_span = metas[child].span;
                    restricted[child] = required_input_span(op, &required, k, &child_span);
                }
            }
        }
    }

    Ok(Annotated { graph, metas, restricted })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::info::StaticCatalogInfo;
    use seq_core::{schema, AttrType, Schema};
    use seq_ops::{AggFunc, Expr, SeqQuery, Window};

    fn stock() -> Schema {
        schema(&[("time", AttrType::Int), ("close", AttrType::Float)])
    }

    fn table1() -> StaticCatalogInfo {
        let mut info = StaticCatalogInfo::new(64);
        info.insert("IBM", stock(), SeqMeta::with_span(Span::new(200, 500), 0.95));
        info.insert("DEC", stock(), SeqMeta::with_span(Span::new(1, 350), 0.7));
        info.insert("HP", stock(), SeqMeta::with_span(Span::new(1, 750), 1.0));
        info
    }

    /// The Figure 3 query: DEC composed with σ(IBM ∘ HP).
    fn fig3_query() -> seq_ops::QueryGraph {
        SeqQuery::base("DEC")
            .compose_with(SeqQuery::base("IBM").compose_filtered(
                SeqQuery::base("HP"),
                Expr::attr("close").gt(Expr::attr("close_r")),
            ))
            .build()
    }

    #[test]
    fn figure3_span_restriction() {
        let info = table1();
        let resolved = fig3_query().resolve(&info).unwrap();
        let ann = annotate(resolved, &info, Span::all(), true).unwrap();

        // Figure 3.B: every base restricted to [200, 350].
        let g = &ann.graph;
        for id in g.postorder() {
            if let ResolvedKind::Base { name } = &g.node(id).kind {
                assert_eq!(
                    ann.restricted[id],
                    Span::new(200, 350),
                    "base {name} should be restricted to [200,350]"
                );
            }
        }
        // Root output span is the intersection too.
        assert_eq!(ann.restricted[g.root()], Span::new(200, 350));
    }

    #[test]
    fn figure3_without_top_down_keeps_full_spans() {
        let info = table1();
        let resolved = fig3_query().resolve(&info).unwrap();
        let ann = annotate(resolved, &info, Span::all(), false).unwrap();
        let g = &ann.graph;
        for id in g.postorder() {
            if let ResolvedKind::Base { name } = &g.node(id).kind {
                let expected = info.meta_of(name).unwrap().span;
                assert_eq!(ann.restricted[id], expected, "base {name}");
            }
        }
    }

    #[test]
    fn range_clamps_root_and_propagates() {
        let info = table1();
        let resolved = fig3_query().resolve(&info).unwrap();
        let ann = annotate(resolved, &info, Span::new(300, 320), true).unwrap();
        let g = &ann.graph;
        assert_eq!(ann.restricted[g.root()], Span::new(300, 320));
        for id in g.postorder() {
            if matches!(&g.node(id).kind, ResolvedKind::Base { .. }) {
                assert_eq!(ann.restricted[id], Span::new(300, 320));
            }
        }
    }

    #[test]
    fn aggregate_widens_required_input() {
        let info = table1();
        let q = SeqQuery::base("IBM").aggregate(AggFunc::Sum, "close", Window::trailing(6)).build();
        let resolved = q.resolve(&info).unwrap();
        let ann = annotate(resolved, &info, Span::new(300, 310), true).unwrap();
        let g = &ann.graph;
        let base = g
            .postorder()
            .into_iter()
            .find(|&id| matches!(g.node(id).kind, ResolvedKind::Base { .. }))
            .unwrap();
        // Outputs [300, 310] over a trailing-6 window read inputs [295, 310].
        assert_eq!(ann.restricted[base], Span::new(295, 310));
        // Bottom-up density of the aggregate output.
        let agg_meta = &ann.metas[g.root()];
        assert!(agg_meta.density > 0.95);
    }

    #[test]
    fn restricted_meta_keeps_density() {
        let info = table1();
        let resolved = fig3_query().resolve(&info).unwrap();
        let ann = annotate(resolved, &info, Span::all(), true).unwrap();
        let g = &ann.graph;
        for id in g.postorder() {
            if let ResolvedKind::Base { name } = &g.node(id).kind {
                if name == "DEC" {
                    let m = ann.restricted_meta(id);
                    assert_eq!(m.span, Span::new(200, 350));
                    assert!((m.density - 0.7).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn previous_requires_full_history() {
        let info = table1();
        let q = SeqQuery::base("IBM").previous().build();
        let resolved = q.resolve(&info).unwrap();
        let ann = annotate(resolved, &info, Span::new(400, 410), true).unwrap();
        let g = &ann.graph;
        let base = g
            .postorder()
            .into_iter()
            .find(|&id| matches!(g.node(id).kind, ResolvedKind::Base { .. }))
            .unwrap();
        // The most recent record before 400 may lie anywhere back to the
        // input's start: [200, 409].
        assert_eq!(ann.restricted[base], Span::new(200, 409));
    }
}

#[cfg(test)]
mod histogram_estimation_tests {
    use super::*;
    use crate::info::CatalogRef;
    use seq_core::{record, schema, AttrType, BaseSequence};
    use seq_ops::{Expr, SeqQuery};
    use seq_storage::Catalog;

    /// Registered (materialized) sequences carry histograms, so the
    /// annotated density of a selection tracks the *actual* skewed
    /// distribution, not the uniform assumption.
    #[test]
    fn skewed_selection_density_estimate_uses_histogram() {
        // 90% of closes below 10, a thin tail up to 100.
        let entries: Vec<(i64, seq_core::Record)> = (1..=1000)
            .map(|p| {
                let v = if p % 10 == 0 { 50.0 + (p % 500) as f64 / 10.0 } else { (p % 10) as f64 };
                (p, record![p, v])
            })
            .collect();
        let truth =
            entries.iter().filter(|(_, r)| r.value(1).unwrap().as_f64().unwrap() > 40.0).count()
                as f64
                / 1000.0;
        let base = BaseSequence::from_entries(
            schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
            entries,
        )
        .unwrap();
        let mut catalog = Catalog::new();
        catalog.register("S", &base);
        let info = CatalogRef(&catalog);

        let q = SeqQuery::base("S").select(Expr::attr("close").gt(Expr::lit(40.0))).build();
        let resolved = q.resolve(&info).unwrap();
        let ann = annotate(resolved, &info, Span::all(), true).unwrap();
        let est_density = ann.metas[ann.graph.root()].density;
        // Input density 1.0, so the estimated selection density is the
        // estimated selectivity. The uniform model would say ~0.6; the truth
        // (and the histogram estimate) is ~0.1.
        assert!(
            (est_density - truth).abs() < 0.03,
            "histogram estimate {est_density:.3} vs truth {truth:.3}"
        );
    }
}
