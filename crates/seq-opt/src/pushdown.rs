//! Selection pushdown into storage scans (zone-map page skipping).
//!
//! A lowering pass that runs after Step 6's plan selection: every
//! `Select` sitting directly on a `Base` scan whose predicate decomposes
//! into a conjunction of `Col <op> Lit` terms is fused into a single
//! [`PhysNode::FusedScan`]. The fused scan hands the terms to the storage
//! layer as a [`seq_storage::ScanFilter`], which consults each page's
//! per-column zone map (min/max) before materializing it — refuted pages
//! are skipped wholesale (charged to `pages_skipped`, never read) — and
//! re-applies the full predicate as a residual filter over the rows of
//! surviving pages, so results are identical to the unfused plan.
//!
//! Eligibility is exactly [`seq_ops::Expr::as_conjunctive_col_cmp_lits`]:
//! And-trees of column-vs-literal comparisons. Such predicates are
//! value-only (position-independent) and null-rejecting, which is what
//! makes skipping a page on its value bounds sound. Anything else —
//! disjunctions, arithmetic, column-column comparisons — stays a plain
//! `Select`.
//!
//! The pass also re-prices the fused scan: the expected fraction of
//! skippable pages is [`crate::cost::zone_skip_fraction`]`(s, k)` for
//! predicate selectivity `s` and `k` records per page, and each skipped
//! page refunds one sequential page I/O from the plan's estimated cost.
//! The estimate is reported per plan (and compared against the measured
//! `pages_skipped` counter by EXPLAIN ANALYZE).

use seq_exec::PhysNode;

use crate::cost::{zone_skip_fraction, CostParams};
use crate::info::CatalogInfo;

/// What the pushdown pass did to one plan.
#[derive(Debug, Clone, Copy, Default)]
pub struct PushdownReport {
    /// Number of Select-over-Base pairs fused into scans.
    pub fused: usize,
    /// Expected pages the fused scans skip (summed over all fused scans).
    pub est_pages_skipped: f64,
    /// Cost-model refund: `est_pages_skipped × seq_page_io`.
    pub est_cost_discount: f64,
}

/// Rewrite `node` bottom-up, fusing eligible `Select(Base)` pairs into
/// [`PhysNode::FusedScan`] and accumulating the expected skip payoff into
/// `report`. Plans without an eligible pair are returned unchanged.
pub fn fuse_selects(
    node: PhysNode,
    info: &dyn CatalogInfo,
    params: &CostParams,
    report: &mut PushdownReport,
) -> PhysNode {
    match node {
        PhysNode::Select { input, predicate, span } => {
            let input = fuse_selects(*input, info, params, report);
            if let PhysNode::Base { name, span: base_span } = &input {
                if let Some(terms) = predicate.as_conjunctive_col_cmp_lits() {
                    report.fused += 1;
                    // Price the expected skips; an unknown base (hypothetical
                    // catalogs) just forgoes the discount.
                    if let Ok(meta) = info.meta_of(name) {
                        let meta = meta.restrict_span(base_span);
                        // Execution feedback, when attached, replaces both
                        // model terms with last run's measurements: the
                        // predicate's actual selectivity and the actual
                        // fraction of candidate pages the scan skipped.
                        let s = info
                            .measured_selectivity(name)
                            .unwrap_or_else(|| predicate.estimate_selectivity(&meta));
                        let k = info.page_capacity().max(1);
                        let pages = (meta.expected_records() / k as f64).ceil();
                        let frac = info
                            .measured_skip_fraction(name)
                            .unwrap_or_else(|| zone_skip_fraction(s, k));
                        let skipped = pages * frac;
                        report.est_pages_skipped += skipped;
                        report.est_cost_discount += skipped * params.seq_page_io;
                    }
                    return PhysNode::FusedScan {
                        name: name.clone(),
                        predicate,
                        terms,
                        span: span.intersect(base_span),
                    };
                }
            }
            PhysNode::Select { input: Box::new(input), predicate, span }
        }
        PhysNode::Project { input, indices, span } => PhysNode::Project {
            input: Box::new(fuse_selects(*input, info, params, report)),
            indices,
            span,
        },
        PhysNode::PosOffset { input, offset, span } => PhysNode::PosOffset {
            input: Box::new(fuse_selects(*input, info, params, report)),
            offset,
            span,
        },
        PhysNode::ValueOffset { input, offset, strategy, span } => PhysNode::ValueOffset {
            input: Box::new(fuse_selects(*input, info, params, report)),
            offset,
            strategy,
            span,
        },
        PhysNode::Aggregate { input, func, attr_index, window, strategy, span } => {
            PhysNode::Aggregate {
                input: Box::new(fuse_selects(*input, info, params, report)),
                func,
                attr_index,
                window,
                strategy,
                span,
            }
        }
        PhysNode::Compose { left, right, predicate, strategy, span } => PhysNode::Compose {
            left: Box::new(fuse_selects(*left, info, params, report)),
            right: Box::new(fuse_selects(*right, info, params, report)),
            predicate,
            strategy,
            span,
        },
        leaf @ (PhysNode::Base { .. } | PhysNode::FusedScan { .. } | PhysNode::Constant { .. }) => {
            leaf
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::info::StaticCatalogInfo;
    use seq_core::{schema, AttrType, SeqMeta, Span};
    use seq_ops::Expr;

    fn info() -> StaticCatalogInfo {
        let mut i = StaticCatalogInfo::new(16);
        i.insert(
            "S",
            schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
            SeqMeta::with_span(Span::new(1, 1600), 1.0),
        );
        i
    }

    fn select_over_base(predicate: Expr) -> PhysNode {
        let span = Span::new(1, 1600);
        PhysNode::Select {
            input: Box::new(PhysNode::Base { name: "S".into(), span }),
            predicate,
            span,
        }
    }

    #[test]
    fn fuses_conjunctive_comparison_into_scan() {
        let pred = Expr::Col(0).gt(Expr::lit(100)).and(Expr::Col(1).le(Expr::lit(5.0)));
        let mut report = PushdownReport::default();
        let fused = fuse_selects(
            select_over_base(pred.clone()),
            &info(),
            &CostParams::default(),
            &mut report,
        );
        let PhysNode::FusedScan { name, predicate, terms, span } = fused else {
            panic!("expected FusedScan");
        };
        assert_eq!(name, "S");
        assert_eq!(predicate, pred);
        assert_eq!(terms.len(), 2);
        assert_eq!(span, Span::new(1, 1600));
        assert_eq!(report.fused, 1);
        assert!(report.est_pages_skipped > 0.0);
        assert!(report.est_cost_discount > 0.0);
    }

    #[test]
    fn ineligible_predicates_stay_selects() {
        // A disjunction cannot be refuted term-by-term: not fused.
        let pred = Expr::Col(0).gt(Expr::lit(100)).or(Expr::Col(1).le(Expr::lit(5.0)));
        let mut report = PushdownReport::default();
        let out =
            fuse_selects(select_over_base(pred), &info(), &CostParams::default(), &mut report);
        assert!(matches!(out, PhysNode::Select { .. }));
        assert_eq!(report.fused, 0);
        assert_eq!(report.est_pages_skipped, 0.0);
    }

    #[test]
    fn fuses_under_other_operators() {
        let span = Span::new(1, 1600);
        let plan = PhysNode::Project {
            input: Box::new(select_over_base(Expr::Col(0).ge(Expr::lit(1500)))),
            indices: vec![1],
            span,
        };
        let mut report = PushdownReport::default();
        let out = fuse_selects(plan, &info(), &CostParams::default(), &mut report);
        let PhysNode::Project { input, .. } = out else { panic!("expected Project") };
        assert!(matches!(*input, PhysNode::FusedScan { .. }));
        assert_eq!(report.fused, 1);
    }

    #[test]
    fn select_over_derived_input_is_untouched() {
        let span = Span::new(1, 1600);
        let plan = PhysNode::Select {
            input: Box::new(PhysNode::PosOffset {
                input: Box::new(PhysNode::Base { name: "S".into(), span }),
                offset: -1,
                span,
            }),
            predicate: Expr::Col(0).gt(Expr::lit(100)),
            span,
        };
        let mut report = PushdownReport::default();
        let out = fuse_selects(plan, &info(), &CostParams::default(), &mut report);
        assert!(matches!(out, PhysNode::Select { .. }));
        assert_eq!(report.fused, 0);
    }
}
