//! EXPLAIN ANALYZE: run a plan under seq-trace instrumentation and render
//! the Step-6 plan annotated with actuals next to the optimizer's estimates.
//!
//! The §4.1 cost model prices counted quantities — pages, records, predicate
//! applications, cache operations. [`explain_analyze`] executes the chosen
//! plan with a [`QueryProfile`] attached, re-derives the optimizer's
//! per-operator cardinality estimates (the Step-2.a meta-data rules of
//! `seq_ops::spanrules`, applied to the *physical* tree), and puts the two
//! side by side: estimated rows vs. actual rows per operator (divergence
//! flagged), and the plan's estimated cost vs. the cost-model price of the
//! *measured* counters. That last comparison validates the model itself: if
//! the estimated and measured prices differ, the estimation (not the
//! weights) is off; if measured price and wall time rank plans differently,
//! the weights are off.

use std::sync::Arc;
use std::time::Instant;

use seq_core::{Result, SeqMeta};
use seq_exec::{ExecContext, PhysNode, QueryProfile};
use seq_ops::Window;

use crate::cost::CostParams;
use crate::info::{CatalogInfo, CatalogRef, FeedbackStats, StatsOverlay};
use crate::planner::Optimized;

/// Estimate/actual row counts are flagged as divergent when they disagree by
/// more than this factor (on +1-smoothed counts, so empty operators don't
/// divide by zero).
pub const DIVERGENCE_FACTOR: f64 = 2.0;

/// One operator's estimate-vs-actual comparison.
#[derive(Debug, Clone)]
pub struct OpAnalysis {
    /// Pre-order node id (matches [`QueryProfile`] ids).
    pub id: usize,
    /// Execution mode the operator lowered onto: "batch" (native vectorized
    /// kernel), "batch+sel" / "batch+compact" (a vectorized filter carrying
    /// a selection vector vs gathering survivors densely — the costed
    /// carry-vs-compact decision), "tuple" (record-at-a-time, possibly
    /// behind an adapter), or "fused" (predicate fused into the scan).
    pub mode: &'static str,
    /// Optimizer-estimated output rows (Step 2.a meta-data rules).
    pub est_rows: f64,
    /// Measured output rows.
    pub actual_rows: u64,
    /// Whether estimate and actual disagree by more than
    /// [`DIVERGENCE_FACTOR`].
    pub divergent: bool,
    /// Signed per-record cost margin behind the lowering choice
    /// (`tuple_cost - batch_cost`; positive favors the batch path). See
    /// [`crate::lowering::OpModeDecision::margin`].
    pub mode_margin: f64,
}

/// The result of [`explain_analyze`]: the query output plus the annotated
/// plan, per-operator comparisons, and the raw profile.
pub struct AnalyzeReport {
    /// The query result rows.
    pub rows: Vec<(i64, seq_core::Record)>,
    /// End-to-end wall time of the execution.
    pub wall: std::time::Duration,
    /// The optimizer's estimated cost of the executed (stream) plan.
    pub est_cost: f64,
    /// The §4.1 cost model priced on the *measured* counters.
    pub measured_cost: f64,
    /// The optimizer's expected zone-map page skips for the plan's fused
    /// scans (0 when nothing was fused).
    pub est_pages_skipped: f64,
    /// Pages the fused scans actually skipped during this execution.
    pub actual_pages_skipped: u64,
    /// Per-operator estimate-vs-actual comparisons, in pre-order.
    pub per_op: Vec<OpAnalysis>,
    /// The raw per-operator/per-worker profile.
    pub profile: Arc<QueryProfile>,
    /// Refreshed per-sequence statistics, when the caller folded this run
    /// into a [`StatsOverlay`] (see [`absorb_feedback`]) and wants the JSON
    /// export to carry them. Empty when feedback is off.
    pub refreshed: Vec<(String, FeedbackStats)>,
    /// Human-readable annotated plan (the `\analyze` output).
    pub text: String,
}

impl AnalyzeReport {
    /// Machine-readable JSON export: summary + per-operator comparisons +
    /// the embedded [`QueryProfile::to_json`] object. Hand-rolled, no serde.
    pub fn to_json(&self, exec_mode: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"exec_mode\": \"{}\",\n  \"rows\": {},\n  \"wall_ms\": {:.3},\n  \
             \"est_cost\": {:.3},\n  \"measured_cost\": {:.3},\n  \
             \"est_pages_skipped\": {:.1},\n  \"actual_pages_skipped\": {},\n  \"estimates\": [",
            exec_mode,
            self.rows.len(),
            self.wall.as_secs_f64() * 1e3,
            self.est_cost,
            self.measured_cost,
            self.est_pages_skipped,
            self.actual_pages_skipped
        );
        for (i, op) in self.per_op.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"id\": {}, \"mode\": \"{}\", \"mode_margin\": {:.4}, \
                 \"est_rows\": {:.1}, \"actual_rows\": {}, \"divergent\": {}}}",
                op.id, op.mode, op.mode_margin, op.est_rows, op.actual_rows, op.divergent
            );
        }
        out.push_str("\n  ],\n  \"feedback\": [");
        for (i, (name, f)) in self.refreshed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let fmt_opt = |v: Option<f64>| match v {
                Some(x) => format!("{x:.4}"),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "\n    {{\"sequence\": \"{}\", \"density\": {}, \"selectivity\": {}, \
                 \"skip_fraction\": {}, \"observed_rows\": {}, \"refreshes\": {}}}",
                name,
                fmt_opt(f.density),
                fmt_opt(f.selectivity),
                fmt_opt(f.skip_fraction),
                f.observed_rows,
                f.refreshes
            );
        }
        out.push_str("\n  ],\n  \"profile\": ");
        // QueryProfile::to_json emits a complete object; indentation inside
        // it is cosmetic only.
        out.push_str(self.profile.to_json().trim_end());
        out.push_str("\n}\n");
        out
    }
}

/// Run the optimized plan on its Step-6 execution path with per-operator
/// instrumentation, and compare the optimizer's estimates against actuals.
///
/// Charges `ctx`'s executor and catalog counters exactly as an unprofiled
/// run would (profiling scopes tee into them); `ctx` is left unprofiled on
/// return.
pub fn explain_analyze(
    opt: &Optimized,
    ctx: &mut ExecContext<'_>,
    params: &CostParams,
) -> Result<AnalyzeReport> {
    let info = CatalogRef(ctx.catalog);
    explain_analyze_with(opt, ctx, params, &info)
}

/// [`explain_analyze`] with an explicit [`CatalogInfo`], so callers can
/// estimate against a feedback-layered view
/// ([`crate::info::WithFeedback`]) instead of the raw catalog: measured
/// densities and selectivities then drive the per-operator row estimates,
/// which is how a second profiled run of the same template shows its
/// divergence flags shrinking.
pub fn explain_analyze_with(
    opt: &Optimized,
    ctx: &mut ExecContext<'_>,
    params: &CostParams,
    info: &dyn CatalogInfo,
) -> Result<AnalyzeReport> {
    let mut est_rows = Vec::with_capacity(opt.plan.root.subtree_size());
    let root_meta = estimate_node(&opt.plan.root, info, &mut est_rows)?;
    // The Start operator clamps the root to the plan's position range.
    let range = opt.plan.range.intersect(&opt.plan.root.span());
    est_rows[0] = root_meta.restrict_span(&range).expected_records();

    let profile = ctx.enable_profiling(&opt.plan);
    let analyze_start = ctx.telemetry.as_ref().map(|m| m.now_nanos());
    let start = Instant::now();
    let result = opt.execute(ctx);
    let wall = start.elapsed();
    // The profiled run already recorded the query itself through the execute
    // entry point; the analyze span wraps it so the trace shows the
    // estimate-vs-actual run as one lifecycle unit.
    if let (Some(m), Some(t0)) = (&ctx.telemetry, analyze_start) {
        m.record_span("analyze".to_string(), "phase", t0, wall, 0, Vec::new());
    }
    ctx.profile = None;
    let rows = result?;

    let measured_cost = measured_model_cost(&profile, params);
    let per_op: Vec<OpAnalysis> = profile
        .op_reports()
        .iter()
        .zip(&est_rows)
        .enumerate()
        .map(|(id, (op, &est))| {
            let ratio = (op.rows_out as f64 + 1.0) / (est + 1.0);
            OpAnalysis {
                id,
                mode: op.mode,
                est_rows: est,
                actual_rows: op.rows_out,
                divergent: !(1.0 / DIVERGENCE_FACTOR..=DIVERGENCE_FACTOR).contains(&ratio),
                mode_margin: opt.op_modes.get(id).map(|d| d.margin()).unwrap_or(0.0),
            }
        })
        .collect();

    let actual_pages_skipped = profile.total_storage().pages_skipped;
    let text = render(opt, &profile, &per_op, rows.len(), wall, measured_cost);
    Ok(AnalyzeReport {
        rows,
        wall,
        est_cost: opt.est_cost,
        measured_cost,
        est_pages_skipped: opt.est_pages_skipped,
        actual_pages_skipped,
        per_op,
        profile,
        refreshed: Vec::new(),
        text,
    })
}

/// Fold a profiled run's measured per-operator facts into `overlay`, keyed
/// by base-sequence name — the estimate→actual feedback loop:
///
/// - a `FusedScan` yields the predicate's *measured* selectivity (rows out
///   over records scanned) and the scan's *measured* skip fraction (pages
///   skipped over candidate pages);
/// - a `Select` directly over a `Base` attributes its measured selectivity
///   to that base;
/// - a plain `Base` scan yields the *measured* density of its scanned span.
///
/// Densities assume the profiled run consumed its scans fully (true for
/// every stream-driven plan; a probed or truncated subtree simply records a
/// conservative lower density from what it did stream). Returns how many
/// measurements were folded. Re-planning through
/// [`crate::info::WithFeedback`] then prices with these numbers.
pub fn absorb_feedback(
    opt: &Optimized,
    report: &AnalyzeReport,
    overlay: &mut StatsOverlay,
) -> usize {
    let mut nodes = Vec::with_capacity(opt.plan.root.subtree_size());
    collect_preorder(&opt.plan.root, &mut nodes);
    let ops = report.profile.op_reports();
    let mut folded = 0;
    for (id, node) in nodes.iter().enumerate() {
        let Some(op) = ops.get(id) else { break };
        match node {
            PhysNode::FusedScan { name, .. } => {
                let mut fb = FeedbackStats { observed_rows: op.rows_out, ..Default::default() };
                let scanned = op.storage.stream_records;
                // Skipped pages hide their records; extrapolate them at the
                // surviving pages' average fill so the measured selectivity
                // refers to the whole candidate span, not just survivors.
                let pages_read = op.storage.page_reads + op.storage.page_hits;
                let hidden = if pages_read > 0 {
                    op.storage.pages_skipped as f64 * (scanned as f64 / pages_read as f64)
                } else {
                    0.0
                };
                let candidates_recs = scanned as f64 + hidden;
                if candidates_recs > 0.0 {
                    fb.selectivity = Some(op.rows_out as f64 / candidates_recs);
                }
                let candidates =
                    op.storage.page_reads + op.storage.page_hits + op.storage.pages_skipped;
                if candidates > 0 {
                    fb.skip_fraction = Some(op.storage.pages_skipped as f64 / candidates as f64);
                }
                // Pre-filter density of the scanned span — only measurable
                // when no page was skipped (skipped records go unseen).
                let sp = if id == 0 { opt.plan.range.intersect(&node.span()) } else { node.span() };
                if op.storage.pages_skipped == 0 && sp.is_bounded() && !sp.is_empty() && scanned > 0
                {
                    fb.density = Some(scanned as f64 / sp.len() as f64);
                }
                if fb.selectivity.is_some() || fb.skip_fraction.is_some() {
                    overlay.record(name.clone(), fb);
                    folded += 1;
                }
            }
            PhysNode::Select { input, .. } => {
                if let PhysNode::Base { name, .. } = &**input {
                    let child_rows = ops.get(id + 1).map(|c| c.rows_out).unwrap_or(0);
                    if child_rows > 0 {
                        overlay.record(
                            name.clone(),
                            FeedbackStats {
                                selectivity: Some(op.rows_out as f64 / child_rows as f64),
                                observed_rows: op.rows_out,
                                ..Default::default()
                            },
                        );
                        folded += 1;
                    }
                }
            }
            PhysNode::Base { name, .. } => {
                // The root is additionally clamped by the Start range.
                let sp = if id == 0 { opt.plan.range.intersect(&node.span()) } else { node.span() };
                if op.touches_storage && sp.is_bounded() && !sp.is_empty() {
                    overlay.record(
                        name.clone(),
                        FeedbackStats {
                            density: Some(op.rows_out as f64 / sp.len() as f64),
                            observed_rows: op.rows_out,
                            ..Default::default()
                        },
                    );
                    folded += 1;
                }
            }
            _ => {}
        }
    }
    folded
}

fn collect_preorder<'a>(node: &'a PhysNode, out: &mut Vec<&'a PhysNode>) {
    out.push(node);
    for child in node.children() {
        collect_preorder(child, out);
    }
}

/// Price the measured counters with the §4.1 cost model (same formula the
/// benchmark harness uses for estimate-vs-measured comparisons).
fn measured_model_cost(profile: &QueryProfile, p: &CostParams) -> f64 {
    let st = profile.total_storage();
    let ex = profile.total_exec();
    let probe_pages = st.probes.min(st.page_reads);
    let stream_pages = st.page_reads - probe_pages;
    stream_pages as f64 * p.seq_page_io
        + st.probes as f64 * p.rand_page_io
        + st.stream_records as f64 * p.record_cpu
        + ex.predicate_evals as f64 * p.predicate_k
        + (ex.cache_stores + ex.cache_probes) as f64 * p.cache_op
}

/// Bottom-up per-node output meta-data over the *physical* tree, mirroring
/// the Step-2.a rules (`seq_ops::spanrules::output_meta`). Fills `est_rows`
/// in pre-order (the profiler's node ids) and returns the node's meta.
fn estimate_node(
    node: &PhysNode,
    info: &dyn CatalogInfo,
    est_rows: &mut Vec<f64>,
) -> Result<SeqMeta> {
    let id = est_rows.len();
    est_rows.push(0.0);
    let meta = match node {
        PhysNode::Base { name, span } => info.meta_of(name)?.restrict_span(span),
        PhysNode::FusedScan { name, predicate, span, .. } => {
            // σ fused into the scan: base meta thinned by the predicate's
            // selectivity, exactly as the unfused Select-over-Base pair.
            // A measured selectivity from a previous profiled run (catalog
            // feedback) takes precedence over the model estimate.
            let m = info.meta_of(name)?.restrict_span(span);
            let sel = info
                .measured_selectivity(name)
                .unwrap_or_else(|| predicate.estimate_selectivity(&m));
            SeqMeta::new(*span, m.density * sel, m.columns)
        }
        PhysNode::Constant { span, .. } => SeqMeta::with_span(*span, 1.0),
        PhysNode::Select { input, predicate, span } => {
            let m = estimate_node(input, info, est_rows)?;
            let measured = match &**input {
                PhysNode::Base { name, .. } => info.measured_selectivity(name),
                _ => None,
            };
            let sel = measured.unwrap_or_else(|| predicate.estimate_selectivity(&m));
            SeqMeta::new(*span, m.density * sel, m.columns)
        }
        PhysNode::Project { input, indices, span } => {
            let m = estimate_node(input, info, est_rows)?;
            let columns = indices.iter().map(|&i| m.column(i)).collect();
            SeqMeta::new(*span, m.density, columns)
        }
        PhysNode::PosOffset { input, span, .. } => {
            let m = estimate_node(input, info, est_rows)?;
            SeqMeta::new(*span, m.density, m.columns)
        }
        PhysNode::ValueOffset { input, span, .. } => {
            // Defined at (almost) every position once |offset| records have
            // appeared: density approaches one within the output span.
            let m = estimate_node(input, info, est_rows)?;
            SeqMeta::new(*span, 1.0, m.columns)
        }
        PhysNode::Aggregate { input, window, span, .. } => {
            let m = estimate_node(input, info, est_rows)?;
            let density = match window {
                Window::Sliding { lo, hi } => {
                    let w = (hi - lo).unsigned_abs() + 1;
                    // Null only if all w scope positions are Null.
                    1.0 - (1.0 - m.density).powi(w.min(1_000_000) as i32)
                }
                Window::Cumulative | Window::WholeSpan => 1.0,
            };
            SeqMeta::new(*span, density, vec![])
        }
        PhysNode::Compose { left, right, predicate, span, .. } => {
            let lm = estimate_node(left, info, est_rows)?;
            let rm = estimate_node(right, info, est_rows)?;
            let mut columns = lm.columns.clone();
            columns.extend(rm.columns.iter().cloned());
            let composed = SeqMeta::new(*span, 1.0, columns);
            let sel = predicate.as_ref().map(|p| p.estimate_selectivity(&composed)).unwrap_or(1.0);
            SeqMeta::new(*span, lm.density * rm.density * sel, composed.columns)
        }
    };
    est_rows[id] = meta.expected_records();
    Ok(meta)
}

/// Render the annotated plan: the Step-6 tree with, under each operator,
/// estimated vs. actual rows (divergence flagged `<<`), wall time, and the
/// attributed executor/storage counters.
fn render(
    opt: &Optimized,
    profile: &QueryProfile,
    per_op: &[OpAnalysis],
    out_rows: usize,
    wall: std::time::Duration,
    measured_cost: f64,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "EXPLAIN ANALYZE  mode={}  wall={:.3}ms  rows={}",
        opt.exec_mode,
        wall.as_secs_f64() * 1e3,
        out_rows
    );
    let _ = writeln!(out, "Start range={}", opt.plan.range);
    for (op, a) in profile.op_reports().iter().zip(per_op) {
        let pad = "  ".repeat(op.depth + 1);
        let _ = writeln!(
            out,
            "{pad}{} span={} mode={} margin={:+.4}",
            op.label, op.span, a.mode, a.mode_margin
        );
        let flag = if a.divergent { "  << divergent" } else { "" };
        let _ = write!(
            out,
            "{pad}  est rows={:.1}  actual rows={}{flag}\n{pad}  time={:.3}ms calls={}",
            a.est_rows,
            a.actual_rows,
            op.busy.as_secs_f64() * 1e3,
            op.calls
        );
        if op.batches_out > 0 {
            let _ = write!(out, " batches={}", op.batches_out);
        }
        if op.exec.predicate_evals > 0 {
            let _ = write!(out, " preds={}", op.exec.predicate_evals);
        }
        if op.exec.cache_probes + op.exec.cache_stores > 0 {
            let _ = write!(out, " cache={}p/{}s", op.exec.cache_probes, op.exec.cache_stores);
        }
        if op.exec.naive_walk_steps > 0 {
            let _ = write!(out, " naive_steps={}", op.exec.naive_walk_steps);
        }
        if op.touches_storage {
            let _ = write!(
                out,
                " pages={}r/{}h probes={} stream_recs={}",
                op.storage.page_reads,
                op.storage.page_hits,
                op.storage.probes,
                op.storage.stream_records
            );
            if op.storage.pages_skipped > 0 {
                let _ = write!(out, " skipped={}", op.storage.pages_skipped);
            }
        }
        let _ = writeln!(out);
    }
    let workers = profile.worker_reports();
    if !workers.is_empty() {
        let _ = writeln!(
            out,
            "parallel: {} morsels over {} workers, merge wait {:.3}ms",
            profile.morsels_planned(),
            workers.len(),
            profile.merge_wait().as_secs_f64() * 1e3
        );
        for w in &workers {
            let _ = writeln!(
                out,
                "  worker {}: morsels={} rows={} busy={:.3}ms claim_wait={:.3}ms",
                w.worker,
                w.morsels,
                w.rows,
                w.busy.as_secs_f64() * 1e3,
                w.claim_wait.as_secs_f64() * 1e3
            );
        }
    }
    let actual_skipped = profile.total_storage().pages_skipped;
    if opt.est_pages_skipped > 0.0 || actual_skipped > 0 {
        let _ = writeln!(
            out,
            "pushdown: est pages skipped={:.1}  actual={}",
            opt.est_pages_skipped, actual_skipped
        );
    }
    let ratio = if opt.est_cost > 0.0 { measured_cost / opt.est_cost } else { f64::NAN };
    let _ = writeln!(
        out,
        "cost: estimated={:.1}  measured(model)={:.1}  ratio={:.2}{}",
        opt.est_cost,
        measured_cost,
        ratio,
        if !(1.0 / DIVERGENCE_FACTOR..=DIVERGENCE_FACTOR).contains(&ratio) {
            "  << divergent"
        } else {
            ""
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{optimize, OptimizerConfig};
    use seq_core::{record, schema, AttrType, BaseSequence, Span};
    use seq_lang::parse_query;
    use seq_storage::Catalog;

    // Large enough that the parallel driver splits the range into several
    // default-sized morsels (each a batch-size multiple).
    const N: i64 = 5_000;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.set_page_capacity(16);
        let base = BaseSequence::from_entries(
            schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
            (1..=N).map(|p| (p, record![p, (p % 100) as f64])).collect(),
        )
        .unwrap();
        c.register("S", &base);
        c
    }

    fn analyze(query: &str, parallelism: usize) -> (AnalyzeReport, Optimized) {
        let c = catalog();
        let q = parse_query(query).unwrap();
        let mut cfg = OptimizerConfig::new(Span::new(1, N));
        cfg.parallelism = parallelism.max(1);
        let opt = optimize(&q, &CatalogRef(&c), &cfg).unwrap();
        let mut ctx = ExecContext::new(&c);
        let report = explain_analyze(&opt, &mut ctx, &cfg.cost).unwrap();
        (report, opt)
    }

    #[test]
    fn annotates_estimates_and_actuals() {
        let (report, opt) =
            analyze("(select (> avg_close 49.0) (agg avg close (trailing 8) (base S)))", 0);
        // Root select: ~50% selectivity over a dense aggregate.
        assert_eq!(report.per_op.len(), opt.plan.root.subtree_size());
        assert!(report.rows.len() > 200);
        assert_eq!(report.per_op[0].actual_rows, report.rows.len() as u64);
        assert!(report.per_op[0].est_rows > 0.0);
        assert!(!report.per_op[0].divergent, "uniform data should estimate well");
        assert!(report.text.contains("est rows="));
        assert!(report.text.contains("actual rows="));
        assert!(report.text.contains("cost: estimated="));
        assert!(report.measured_cost > 0.0);
    }

    #[test]
    fn parallel_path_reports_workers() {
        let (report, opt) =
            analyze("(select (> avg_close 49.0) (agg avg close (trailing 8) (base S)))", 2);
        assert!(matches!(opt.exec_mode, crate::lowering::ExecMode::Parallel { .. }));
        let workers = report.profile.worker_reports();
        assert_eq!(workers.len(), 2);
        let claimed: u64 = workers.iter().map(|w| w.morsels).sum();
        assert_eq!(claimed, report.profile.morsels_planned());
        assert!(report.text.contains("worker 0:"));
        // Root actuals survive the per-morsel clamping.
        assert_eq!(report.per_op[0].actual_rows, report.rows.len() as u64);
    }

    #[test]
    fn full_native_stack_lowers_with_zero_adapters() {
        // Compose + value offset + cumulative aggregate: every stream-
        // strategy operator now has a native batch kernel, so the lowered
        // plan must contain no batch<->tuple adapter boundary — every
        // \analyze mode annotation reads "batch" (or "fused"), never
        // "tuple".
        let mut c = Catalog::new();
        c.set_page_capacity(16);
        let base = BaseSequence::from_entries(
            schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
            (1..=N).map(|p| (p, record![p, (p % 100) as f64])).collect(),
        )
        .unwrap();
        c.register("S", &base);
        c.register("T", &base);
        let q =
            parse_query("(agg avg close cumulative (prev (compose (base S) (base T))))").unwrap();
        let cfg = OptimizerConfig::new(Span::new(1, N));
        let opt = optimize(&q, &CatalogRef(&c), &cfg).unwrap();
        // Not partitionable (value offset + cumulative agg), so the whole
        // stack runs on the sequential vectorized path.
        assert!(matches!(opt.exec_mode, crate::lowering::ExecMode::Batched));
        let mut ctx = ExecContext::new(&c);
        let report = explain_analyze(&opt, &mut ctx, &cfg.cost).unwrap();
        assert_eq!(report.per_op.len(), opt.plan.root.subtree_size());
        for a in &report.per_op {
            assert!(
                a.mode.starts_with("batch") || a.mode == "fused",
                "operator {} fell back to {} mode — an adapter boundary survived",
                a.id,
                a.mode
            );
        }
        assert!(report.text.contains("mode=batch"));
        let json = report.to_json(&opt.exec_mode.to_string());
        assert!(json.contains("\"mode\": \"batch\""));
    }

    #[test]
    fn json_embeds_profile_and_estimates() {
        let (report, opt) = analyze("(select (> close 90.0) (base S))", 0);
        let json = report.to_json(&opt.exec_mode.to_string());
        assert!(json.contains("\"est_cost\""));
        assert!(json.contains("\"estimates\": ["));
        assert!(json.contains("\"mode_margin\""));
        assert!(json.contains("\"feedback\": ["));
        assert!(json.contains("\"profile\": {"));
        assert!(json.contains("\"profile_version\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn feedback_roundtrip_shrinks_divergence() {
        use crate::info::WithFeedback;

        // Intra-bucket skew: the 32-bucket equi-width histogram spans
        // [0, 32], so nearly all mass sits at 16.05 — the left edge of the
        // bucket the predicate value 16.5 cuts through. Uniform
        // interpolation inside that bucket estimates ~50% selectivity; the
        // truth is ~2.6%, so the first run must flag divergence and the
        // absorbed measurement must clear it on re-planning.
        let mut c = Catalog::new();
        c.set_page_capacity(16);
        let skew = BaseSequence::from_entries(
            schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
            (1..=500i64)
                .map(|p| {
                    let v = if p <= 10 {
                        0.0 // stretch the histogram's low edge
                    } else if p == 500 {
                        32.0 // ... and its high edge
                    } else if p % 40 == 0 {
                        24.0 // the handful of rows that actually qualify
                    } else {
                        16.05
                    };
                    (p, record![p, v])
                })
                .collect(),
        )
        .unwrap();
        c.register("S", &skew);
        let q = parse_query("(select (> close 16.5) (base S))").unwrap();
        let cfg = OptimizerConfig::new(Span::new(1, 500));
        let base_info = CatalogRef(&c);

        let opt1 = optimize(&q, &base_info, &cfg).unwrap();
        let mut ctx = ExecContext::new(&c);
        let rep1 = explain_analyze(&opt1, &mut ctx, &cfg.cost).unwrap();
        let div1 = rep1.per_op.iter().filter(|a| a.divergent).count();
        assert!(div1 >= 1, "skewed data must diverge on the first run:\n{}", rep1.text);

        // Close the loop.
        let mut overlay = StatsOverlay::new();
        let folded = absorb_feedback(&opt1, &rep1, &mut overlay);
        assert!(folded >= 1, "the profiled scan must contribute feedback");
        let fb = overlay.get("S").expect("feedback recorded for S");
        let sel = fb.selectivity.expect("measured selectivity recorded");
        assert!(sel < 0.05, "measured selectivity should be ~0.02, got {sel}");

        let info = WithFeedback::new(&base_info, &overlay);
        let opt2 = optimize(&q, &info, &cfg).unwrap();
        let mut ctx = ExecContext::new(&c);
        let rep2 = explain_analyze_with(&opt2, &mut ctx, &cfg.cost, &info).unwrap();
        assert_eq!(rep2.rows, rep1.rows, "feedback must never change results");
        let div2 = rep2.per_op.iter().filter(|a| a.divergent).count();
        assert!(
            div2 < div1,
            "divergence flags must strictly shrink: {div1} -> {div2}\n{}",
            rep2.text
        );
    }
}
