//! EXPLAIN ANALYZE: run a plan under seq-trace instrumentation and render
//! the Step-6 plan annotated with actuals next to the optimizer's estimates.
//!
//! The §4.1 cost model prices counted quantities — pages, records, predicate
//! applications, cache operations. [`explain_analyze`] executes the chosen
//! plan with a [`QueryProfile`] attached, re-derives the optimizer's
//! per-operator cardinality estimates (the Step-2.a meta-data rules of
//! `seq_ops::spanrules`, applied to the *physical* tree), and puts the two
//! side by side: estimated rows vs. actual rows per operator (divergence
//! flagged), and the plan's estimated cost vs. the cost-model price of the
//! *measured* counters. That last comparison validates the model itself: if
//! the estimated and measured prices differ, the estimation (not the
//! weights) is off; if measured price and wall time rank plans differently,
//! the weights are off.

use std::sync::Arc;
use std::time::Instant;

use seq_core::{Result, SeqMeta};
use seq_exec::{ExecContext, PhysNode, QueryProfile};
use seq_ops::Window;

use crate::cost::CostParams;
use crate::info::{CatalogInfo, CatalogRef};
use crate::planner::Optimized;

/// Estimate/actual row counts are flagged as divergent when they disagree by
/// more than this factor (on +1-smoothed counts, so empty operators don't
/// divide by zero).
pub const DIVERGENCE_FACTOR: f64 = 2.0;

/// One operator's estimate-vs-actual comparison.
#[derive(Debug, Clone)]
pub struct OpAnalysis {
    /// Pre-order node id (matches [`QueryProfile`] ids).
    pub id: usize,
    /// Execution mode the operator lowered onto: "batch" (native vectorized
    /// kernel), "tuple" (record-at-a-time, possibly behind an adapter), or
    /// "fused" (predicate fused into the scan).
    pub mode: &'static str,
    /// Optimizer-estimated output rows (Step 2.a meta-data rules).
    pub est_rows: f64,
    /// Measured output rows.
    pub actual_rows: u64,
    /// Whether estimate and actual disagree by more than
    /// [`DIVERGENCE_FACTOR`].
    pub divergent: bool,
}

/// The result of [`explain_analyze`]: the query output plus the annotated
/// plan, per-operator comparisons, and the raw profile.
pub struct AnalyzeReport {
    /// The query result rows.
    pub rows: Vec<(i64, seq_core::Record)>,
    /// End-to-end wall time of the execution.
    pub wall: std::time::Duration,
    /// The optimizer's estimated cost of the executed (stream) plan.
    pub est_cost: f64,
    /// The §4.1 cost model priced on the *measured* counters.
    pub measured_cost: f64,
    /// The optimizer's expected zone-map page skips for the plan's fused
    /// scans (0 when nothing was fused).
    pub est_pages_skipped: f64,
    /// Pages the fused scans actually skipped during this execution.
    pub actual_pages_skipped: u64,
    /// Per-operator estimate-vs-actual comparisons, in pre-order.
    pub per_op: Vec<OpAnalysis>,
    /// The raw per-operator/per-worker profile.
    pub profile: Arc<QueryProfile>,
    /// Human-readable annotated plan (the `\analyze` output).
    pub text: String,
}

impl AnalyzeReport {
    /// Machine-readable JSON export: summary + per-operator comparisons +
    /// the embedded [`QueryProfile::to_json`] object. Hand-rolled, no serde.
    pub fn to_json(&self, exec_mode: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"exec_mode\": \"{}\",\n  \"rows\": {},\n  \"wall_ms\": {:.3},\n  \
             \"est_cost\": {:.3},\n  \"measured_cost\": {:.3},\n  \
             \"est_pages_skipped\": {:.1},\n  \"actual_pages_skipped\": {},\n  \"estimates\": [",
            exec_mode,
            self.rows.len(),
            self.wall.as_secs_f64() * 1e3,
            self.est_cost,
            self.measured_cost,
            self.est_pages_skipped,
            self.actual_pages_skipped
        );
        for (i, op) in self.per_op.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"id\": {}, \"mode\": \"{}\", \"est_rows\": {:.1}, \
                 \"actual_rows\": {}, \"divergent\": {}}}",
                op.id, op.mode, op.est_rows, op.actual_rows, op.divergent
            );
        }
        out.push_str("\n  ],\n  \"profile\": ");
        // QueryProfile::to_json emits a complete object; indentation inside
        // it is cosmetic only.
        out.push_str(self.profile.to_json().trim_end());
        out.push_str("\n}\n");
        out
    }
}

/// Run the optimized plan on its Step-6 execution path with per-operator
/// instrumentation, and compare the optimizer's estimates against actuals.
///
/// Charges `ctx`'s executor and catalog counters exactly as an unprofiled
/// run would (profiling scopes tee into them); `ctx` is left unprofiled on
/// return.
pub fn explain_analyze(
    opt: &Optimized,
    ctx: &mut ExecContext<'_>,
    params: &CostParams,
) -> Result<AnalyzeReport> {
    let info = CatalogRef(ctx.catalog);
    let mut est_rows = Vec::with_capacity(opt.plan.root.subtree_size());
    let root_meta = estimate_node(&opt.plan.root, &info, &mut est_rows)?;
    // The Start operator clamps the root to the plan's position range.
    let range = opt.plan.range.intersect(&opt.plan.root.span());
    est_rows[0] = root_meta.restrict_span(&range).expected_records();

    let profile = ctx.enable_profiling(&opt.plan);
    let start = Instant::now();
    let result = opt.execute(ctx);
    let wall = start.elapsed();
    ctx.profile = None;
    let rows = result?;

    let measured_cost = measured_model_cost(&profile, params);
    let per_op: Vec<OpAnalysis> = profile
        .op_reports()
        .iter()
        .zip(&est_rows)
        .enumerate()
        .map(|(id, (op, &est))| {
            let ratio = (op.rows_out as f64 + 1.0) / (est + 1.0);
            OpAnalysis {
                id,
                mode: op.mode,
                est_rows: est,
                actual_rows: op.rows_out,
                divergent: !(1.0 / DIVERGENCE_FACTOR..=DIVERGENCE_FACTOR).contains(&ratio),
            }
        })
        .collect();

    let actual_pages_skipped = profile.total_storage().pages_skipped;
    let text = render(opt, &profile, &per_op, rows.len(), wall, measured_cost);
    Ok(AnalyzeReport {
        rows,
        wall,
        est_cost: opt.est_cost,
        measured_cost,
        est_pages_skipped: opt.est_pages_skipped,
        actual_pages_skipped,
        per_op,
        profile,
        text,
    })
}

/// Price the measured counters with the §4.1 cost model (same formula the
/// benchmark harness uses for estimate-vs-measured comparisons).
fn measured_model_cost(profile: &QueryProfile, p: &CostParams) -> f64 {
    let st = profile.total_storage();
    let ex = profile.total_exec();
    let probe_pages = st.probes.min(st.page_reads);
    let stream_pages = st.page_reads - probe_pages;
    stream_pages as f64 * p.seq_page_io
        + st.probes as f64 * p.rand_page_io
        + st.stream_records as f64 * p.record_cpu
        + ex.predicate_evals as f64 * p.predicate_k
        + (ex.cache_stores + ex.cache_probes) as f64 * p.cache_op
}

/// Bottom-up per-node output meta-data over the *physical* tree, mirroring
/// the Step-2.a rules (`seq_ops::spanrules::output_meta`). Fills `est_rows`
/// in pre-order (the profiler's node ids) and returns the node's meta.
fn estimate_node(
    node: &PhysNode,
    info: &dyn CatalogInfo,
    est_rows: &mut Vec<f64>,
) -> Result<SeqMeta> {
    let id = est_rows.len();
    est_rows.push(0.0);
    let meta = match node {
        PhysNode::Base { name, span } => info.meta_of(name)?.restrict_span(span),
        PhysNode::FusedScan { name, predicate, span, .. } => {
            // σ fused into the scan: base meta thinned by the predicate's
            // selectivity, exactly as the unfused Select-over-Base pair.
            let m = info.meta_of(name)?.restrict_span(span);
            let sel = predicate.estimate_selectivity(&m);
            SeqMeta::new(*span, m.density * sel, m.columns)
        }
        PhysNode::Constant { span, .. } => SeqMeta::with_span(*span, 1.0),
        PhysNode::Select { input, predicate, span } => {
            let m = estimate_node(input, info, est_rows)?;
            let sel = predicate.estimate_selectivity(&m);
            SeqMeta::new(*span, m.density * sel, m.columns)
        }
        PhysNode::Project { input, indices, span } => {
            let m = estimate_node(input, info, est_rows)?;
            let columns = indices.iter().map(|&i| m.column(i)).collect();
            SeqMeta::new(*span, m.density, columns)
        }
        PhysNode::PosOffset { input, span, .. } => {
            let m = estimate_node(input, info, est_rows)?;
            SeqMeta::new(*span, m.density, m.columns)
        }
        PhysNode::ValueOffset { input, span, .. } => {
            // Defined at (almost) every position once |offset| records have
            // appeared: density approaches one within the output span.
            let m = estimate_node(input, info, est_rows)?;
            SeqMeta::new(*span, 1.0, m.columns)
        }
        PhysNode::Aggregate { input, window, span, .. } => {
            let m = estimate_node(input, info, est_rows)?;
            let density = match window {
                Window::Sliding { lo, hi } => {
                    let w = (hi - lo).unsigned_abs() + 1;
                    // Null only if all w scope positions are Null.
                    1.0 - (1.0 - m.density).powi(w.min(1_000_000) as i32)
                }
                Window::Cumulative | Window::WholeSpan => 1.0,
            };
            SeqMeta::new(*span, density, vec![])
        }
        PhysNode::Compose { left, right, predicate, span, .. } => {
            let lm = estimate_node(left, info, est_rows)?;
            let rm = estimate_node(right, info, est_rows)?;
            let mut columns = lm.columns.clone();
            columns.extend(rm.columns.iter().cloned());
            let composed = SeqMeta::new(*span, 1.0, columns);
            let sel = predicate.as_ref().map(|p| p.estimate_selectivity(&composed)).unwrap_or(1.0);
            SeqMeta::new(*span, lm.density * rm.density * sel, composed.columns)
        }
    };
    est_rows[id] = meta.expected_records();
    Ok(meta)
}

/// Render the annotated plan: the Step-6 tree with, under each operator,
/// estimated vs. actual rows (divergence flagged `<<`), wall time, and the
/// attributed executor/storage counters.
fn render(
    opt: &Optimized,
    profile: &QueryProfile,
    per_op: &[OpAnalysis],
    out_rows: usize,
    wall: std::time::Duration,
    measured_cost: f64,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "EXPLAIN ANALYZE  mode={}  wall={:.3}ms  rows={}",
        opt.exec_mode,
        wall.as_secs_f64() * 1e3,
        out_rows
    );
    let _ = writeln!(out, "Start range={}", opt.plan.range);
    for (op, a) in profile.op_reports().iter().zip(per_op) {
        let pad = "  ".repeat(op.depth + 1);
        let _ = writeln!(out, "{pad}{} span={} mode={}", op.label, op.span, a.mode);
        let flag = if a.divergent { "  << divergent" } else { "" };
        let _ = write!(
            out,
            "{pad}  est rows={:.1}  actual rows={}{flag}\n{pad}  time={:.3}ms calls={}",
            a.est_rows,
            a.actual_rows,
            op.busy.as_secs_f64() * 1e3,
            op.calls
        );
        if op.batches_out > 0 {
            let _ = write!(out, " batches={}", op.batches_out);
        }
        if op.exec.predicate_evals > 0 {
            let _ = write!(out, " preds={}", op.exec.predicate_evals);
        }
        if op.exec.cache_probes + op.exec.cache_stores > 0 {
            let _ = write!(out, " cache={}p/{}s", op.exec.cache_probes, op.exec.cache_stores);
        }
        if op.exec.naive_walk_steps > 0 {
            let _ = write!(out, " naive_steps={}", op.exec.naive_walk_steps);
        }
        if op.touches_storage {
            let _ = write!(
                out,
                " pages={}r/{}h probes={} stream_recs={}",
                op.storage.page_reads,
                op.storage.page_hits,
                op.storage.probes,
                op.storage.stream_records
            );
            if op.storage.pages_skipped > 0 {
                let _ = write!(out, " skipped={}", op.storage.pages_skipped);
            }
        }
        let _ = writeln!(out);
    }
    let workers = profile.worker_reports();
    if !workers.is_empty() {
        let _ = writeln!(
            out,
            "parallel: {} morsels over {} workers, merge wait {:.3}ms",
            profile.morsels_planned(),
            workers.len(),
            profile.merge_wait().as_secs_f64() * 1e3
        );
        for w in &workers {
            let _ = writeln!(
                out,
                "  worker {}: morsels={} rows={} busy={:.3}ms claim_wait={:.3}ms",
                w.worker,
                w.morsels,
                w.rows,
                w.busy.as_secs_f64() * 1e3,
                w.claim_wait.as_secs_f64() * 1e3
            );
        }
    }
    let actual_skipped = profile.total_storage().pages_skipped;
    if opt.est_pages_skipped > 0.0 || actual_skipped > 0 {
        let _ = writeln!(
            out,
            "pushdown: est pages skipped={:.1}  actual={}",
            opt.est_pages_skipped, actual_skipped
        );
    }
    let ratio = if opt.est_cost > 0.0 { measured_cost / opt.est_cost } else { f64::NAN };
    let _ = writeln!(
        out,
        "cost: estimated={:.1}  measured(model)={:.1}  ratio={:.2}{}",
        opt.est_cost,
        measured_cost,
        ratio,
        if !(1.0 / DIVERGENCE_FACTOR..=DIVERGENCE_FACTOR).contains(&ratio) {
            "  << divergent"
        } else {
            ""
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{optimize, OptimizerConfig};
    use seq_core::{record, schema, AttrType, BaseSequence, Span};
    use seq_lang::parse_query;
    use seq_storage::Catalog;

    // Large enough that the parallel driver splits the range into several
    // default-sized morsels (each a batch-size multiple).
    const N: i64 = 5_000;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.set_page_capacity(16);
        let base = BaseSequence::from_entries(
            schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
            (1..=N).map(|p| (p, record![p, (p % 100) as f64])).collect(),
        )
        .unwrap();
        c.register("S", &base);
        c
    }

    fn analyze(query: &str, parallelism: usize) -> (AnalyzeReport, Optimized) {
        let c = catalog();
        let q = parse_query(query).unwrap();
        let mut cfg = OptimizerConfig::new(Span::new(1, N));
        cfg.parallelism = parallelism.max(1);
        let opt = optimize(&q, &CatalogRef(&c), &cfg).unwrap();
        let mut ctx = ExecContext::new(&c);
        let report = explain_analyze(&opt, &mut ctx, &cfg.cost).unwrap();
        (report, opt)
    }

    #[test]
    fn annotates_estimates_and_actuals() {
        let (report, opt) =
            analyze("(select (> avg_close 49.0) (agg avg close (trailing 8) (base S)))", 0);
        // Root select: ~50% selectivity over a dense aggregate.
        assert_eq!(report.per_op.len(), opt.plan.root.subtree_size());
        assert!(report.rows.len() > 200);
        assert_eq!(report.per_op[0].actual_rows, report.rows.len() as u64);
        assert!(report.per_op[0].est_rows > 0.0);
        assert!(!report.per_op[0].divergent, "uniform data should estimate well");
        assert!(report.text.contains("est rows="));
        assert!(report.text.contains("actual rows="));
        assert!(report.text.contains("cost: estimated="));
        assert!(report.measured_cost > 0.0);
    }

    #[test]
    fn parallel_path_reports_workers() {
        let (report, opt) =
            analyze("(select (> avg_close 49.0) (agg avg close (trailing 8) (base S)))", 2);
        assert!(matches!(opt.exec_mode, crate::lowering::ExecMode::Parallel { .. }));
        let workers = report.profile.worker_reports();
        assert_eq!(workers.len(), 2);
        let claimed: u64 = workers.iter().map(|w| w.morsels).sum();
        assert_eq!(claimed, report.profile.morsels_planned());
        assert!(report.text.contains("worker 0:"));
        // Root actuals survive the per-morsel clamping.
        assert_eq!(report.per_op[0].actual_rows, report.rows.len() as u64);
    }

    #[test]
    fn full_native_stack_lowers_with_zero_adapters() {
        // Compose + value offset + cumulative aggregate: every stream-
        // strategy operator now has a native batch kernel, so the lowered
        // plan must contain no batch<->tuple adapter boundary — every
        // \analyze mode annotation reads "batch" (or "fused"), never
        // "tuple".
        let mut c = Catalog::new();
        c.set_page_capacity(16);
        let base = BaseSequence::from_entries(
            schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
            (1..=N).map(|p| (p, record![p, (p % 100) as f64])).collect(),
        )
        .unwrap();
        c.register("S", &base);
        c.register("T", &base);
        let q =
            parse_query("(agg avg close cumulative (prev (compose (base S) (base T))))").unwrap();
        let cfg = OptimizerConfig::new(Span::new(1, N));
        let opt = optimize(&q, &CatalogRef(&c), &cfg).unwrap();
        // Not partitionable (value offset + cumulative agg), so the whole
        // stack runs on the sequential vectorized path.
        assert!(matches!(opt.exec_mode, crate::lowering::ExecMode::Batched));
        let mut ctx = ExecContext::new(&c);
        let report = explain_analyze(&opt, &mut ctx, &cfg.cost).unwrap();
        assert_eq!(report.per_op.len(), opt.plan.root.subtree_size());
        for a in &report.per_op {
            assert!(
                a.mode == "batch" || a.mode == "fused",
                "operator {} fell back to {} mode — an adapter boundary survived",
                a.id,
                a.mode
            );
        }
        assert!(report.text.contains("mode=batch"));
        let json = report.to_json(&opt.exec_mode.to_string());
        assert!(json.contains("\"mode\": \"batch\""));
    }

    #[test]
    fn json_embeds_profile_and_estimates() {
        let (report, opt) = analyze("(select (> close 90.0) (base S))", 0);
        let json = report.to_json(&opt.exec_mode.to_string());
        assert!(json.contains("\"est_cost\""));
        assert!(json.contains("\"estimates\": ["));
        assert!(json.contains("\"profile\": {"));
        assert!(json.contains("\"profile_version\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
