//! # seq-opt — the cost-based sequence query optimizer
//!
//! The six-step optimization algorithm of §4 of *Sequence Query Processing*:
//!
//! 1. query specification (resolution lives in `seq-ops`);
//! 2. meta-information propagation — [`mod@annotate`] (bottom-up spans/densities
//!    and top-down span restriction, §3.2);
//! 3. query transformations — [`transform`] (§3.1 rewrites);
//! 4. identification of query blocks — [`blocks`];
//! 5. block-wise plan generation — [`selinger`] (Selinger-style DP over
//!    positional-join orders with the §4.1 cost model in [`cost`]);
//! 6. plan selection — [`planner::optimize`] returns the cheapest
//!    stream-access plan as an executable [`seq_exec::PhysPlan`].
//!
//! Every technique is independently toggleable via
//! [`planner::OptimizerConfig`] so experiments can ablate exactly one.

pub mod analyze;
pub mod annotate;
pub mod blocks;
pub mod cost;
pub mod info;
pub mod lowering;
pub mod planner;
pub mod pushdown;
pub mod selinger;
pub mod transform;

pub use analyze::{
    absorb_feedback, explain_analyze, explain_analyze_with, AnalyzeReport, OpAnalysis,
    DIVERGENCE_FACTOR,
};
pub use annotate::{annotate, Annotated};
pub use blocks::{identify_blocks, Block, Blocks, InputSource, JoinBlock, NonUnitBlock};
pub use cost::{
    base_access_costs, encoded_access_costs, price_join, zone_skip_fraction, AccessCosts,
    CostParams, JoinSide,
};
pub use info::{
    CatalogInfo, CatalogRef, FeedbackStats, StaticCatalogInfo, StatsOverlay, WithFeedback,
};
pub use lowering::{
    batch_run_len, choose_exec_mode, choose_exec_mode_with, choose_op_modes,
    decode_costs_per_record, ExecMode, OpModeDecision,
};
pub use planner::{optimize, Optimized, OptimizerConfig};
pub use pushdown::{fuse_selects, PushdownReport};
pub use selinger::{BlockPhys, DpStats, PlanOptions};
pub use transform::{apply_transformations, TransformReport};
