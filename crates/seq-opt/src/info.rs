//! Catalog information the optimizer consumes.
//!
//! The optimizer needs, per base sequence: schema, meta-data (span, density,
//! column statistics — §3/Table 1), and the physical profile that prices the
//! two access modes (§4.1.1). [`CatalogRef`] adapts the storage catalog.

use seq_core::{Result, Schema, SeqMeta};
use seq_ops::SchemaProvider;
use seq_storage::Catalog;

/// Everything the optimizer needs to know about the stored world.
pub trait CatalogInfo: SchemaProvider {
    /// Meta-data of a base sequence.
    fn meta_of(&self, name: &str) -> Result<SeqMeta>;

    /// Records per page, used to convert record counts into page I/Os.
    fn page_capacity(&self) -> usize;

    /// Compression ratio (encoded bytes over plain bytes, `<= 1.0`) of a
    /// base sequence's columnar pages. Hypothetical catalogs default to
    /// uncompressed, which makes every encoded-cost formula collapse to its
    /// plain-layout counterpart.
    fn compression_ratio(&self, _name: &str) -> f64 {
        1.0
    }

    /// Measured selectivity of the last profiled predicate over this base
    /// sequence, when execution feedback is attached (see [`WithFeedback`]).
    /// `None` means "no measurement": estimators fall back to the model.
    fn measured_selectivity(&self, _name: &str) -> Option<f64> {
        None
    }

    /// Measured fraction of this base sequence's candidate pages that
    /// zone-map/encoded-domain checks skipped in the last profiled run,
    /// when execution feedback is attached. `None` means "no measurement".
    fn measured_skip_fraction(&self, _name: &str) -> Option<f64> {
        None
    }
}

/// Measured per-sequence statistics captured from one profiled run, the
/// unit [`StatsOverlay`] stores. All fields are optional because a single
/// run need not observe every statistic (an unfiltered scan measures
/// density but no selectivity; a scan that entered every page measures no
/// skip fraction).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeedbackStats {
    /// Measured record density over the scanned span (rows seen / length).
    pub density: Option<f64>,
    /// Measured selectivity of the applied predicate (rows out / rows in).
    pub selectivity: Option<f64>,
    /// Measured fraction of candidate pages skipped without being read.
    pub skip_fraction: Option<f64>,
    /// Rows the measuring scan actually produced.
    pub observed_rows: u64,
    /// How many profiled runs have been folded into this entry.
    pub refreshes: u32,
}

impl FeedbackStats {
    /// Fold a newer measurement over this one: fresh `Some` fields replace
    /// stale ones (latest run wins), absent fields keep earlier values, and
    /// the refresh counter advances.
    pub fn merge(&mut self, newer: &FeedbackStats) {
        if let Some(d) = newer.density {
            self.density = Some(d.clamp(0.0, 1.0));
        }
        if let Some(s) = newer.selectivity {
            self.selectivity = Some(s.clamp(0.0, 1.0));
        }
        if let Some(f) = newer.skip_fraction {
            self.skip_fraction = Some(f.clamp(0.0, 1.0));
        }
        self.observed_rows = newer.observed_rows;
        self.refreshes += 1;
    }
}

/// Mutable store of measured per-sequence statistics, keyed by catalog
/// name. Populated from profiled runs (see `analyze::absorb_feedback`) and
/// layered over any [`CatalogInfo`] with [`WithFeedback`] so re-planning
/// the same template prices with measured numbers instead of defaults.
#[derive(Debug, Clone, Default)]
pub struct StatsOverlay {
    entries: std::collections::HashMap<String, FeedbackStats>,
}

impl StatsOverlay {
    /// An empty overlay.
    pub fn new() -> StatsOverlay {
        StatsOverlay::default()
    }

    /// Fold one run's measurement for `name` into the overlay.
    pub fn record(&mut self, name: impl Into<String>, stats: FeedbackStats) {
        self.entries.entry(name.into()).or_default().merge(&stats);
    }

    /// Measured statistics for `name`, if any run has been absorbed.
    pub fn get(&self, name: &str) -> Option<&FeedbackStats> {
        self.entries.get(name)
    }

    /// Whether no measurements have been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All measured entries in name order (stable for display).
    pub fn iter_sorted(&self) -> Vec<(&str, &FeedbackStats)> {
        let mut v: Vec<_> = self.entries.iter().map(|(k, f)| (k.as_str(), f)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Drop every measurement.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// A [`CatalogInfo`] view that layers a [`StatsOverlay`] of measured
/// statistics over a base catalog: measured densities replace the stored
/// meta-data density, and measured selectivities / skip fractions surface
/// through the `measured_*` accessors the estimators consult first.
pub struct WithFeedback<'a, I: CatalogInfo> {
    inner: &'a I,
    overlay: &'a StatsOverlay,
}

impl<'a, I: CatalogInfo> WithFeedback<'a, I> {
    /// Layer `overlay` over `inner`.
    pub fn new(inner: &'a I, overlay: &'a StatsOverlay) -> WithFeedback<'a, I> {
        WithFeedback { inner, overlay }
    }
}

impl<I: CatalogInfo> SchemaProvider for WithFeedback<'_, I> {
    fn schema_of(&self, name: &str) -> Result<Schema> {
        self.inner.schema_of(name)
    }
}

impl<I: CatalogInfo> CatalogInfo for WithFeedback<'_, I> {
    fn meta_of(&self, name: &str) -> Result<SeqMeta> {
        let mut meta = self.inner.meta_of(name)?;
        if let Some(d) = self.overlay.get(name).and_then(|f| f.density) {
            meta.density = d.clamp(0.0, 1.0);
        }
        Ok(meta)
    }

    fn page_capacity(&self) -> usize {
        self.inner.page_capacity()
    }

    fn compression_ratio(&self, name: &str) -> f64 {
        self.inner.compression_ratio(name)
    }

    fn measured_selectivity(&self, name: &str) -> Option<f64> {
        self.overlay.get(name).and_then(|f| f.selectivity)
    }

    fn measured_skip_fraction(&self, name: &str) -> Option<f64> {
        self.overlay.get(name).and_then(|f| f.skip_fraction)
    }
}

/// Adapter implementing the optimizer traits over a storage [`Catalog`].
pub struct CatalogRef<'a>(pub &'a Catalog);

impl SchemaProvider for CatalogRef<'_> {
    fn schema_of(&self, name: &str) -> Result<Schema> {
        Ok(seq_core::Sequence::schema(self.0.get(name)?.as_ref()).clone())
    }
}

impl CatalogInfo for CatalogRef<'_> {
    fn meta_of(&self, name: &str) -> Result<SeqMeta> {
        self.0.meta(name)
    }

    fn page_capacity(&self) -> usize {
        self.0.page_capacity()
    }

    fn compression_ratio(&self, name: &str) -> f64 {
        self.0.get(name).map(|s| s.compression().ratio()).unwrap_or(1.0)
    }
}

/// A self-contained catalog description for tests and for optimizing against
/// hypothetical data (e.g. the paper's Table 1 without materializing it).
#[derive(Debug, Clone, Default)]
pub struct StaticCatalogInfo {
    entries: std::collections::HashMap<String, (Schema, SeqMeta)>,
    page_capacity: usize,
}

impl StaticCatalogInfo {
    /// An empty description with the given page capacity.
    pub fn new(page_capacity: usize) -> StaticCatalogInfo {
        StaticCatalogInfo { entries: Default::default(), page_capacity: page_capacity.max(1) }
    }

    /// Describe a (hypothetical) base sequence.
    pub fn insert(&mut self, name: impl Into<String>, schema: Schema, meta: SeqMeta) {
        self.entries.insert(name.into(), (schema, meta));
    }
}

impl SchemaProvider for StaticCatalogInfo {
    fn schema_of(&self, name: &str) -> Result<Schema> {
        self.entries
            .get(name)
            .map(|(s, _)| s.clone())
            .ok_or_else(|| seq_core::SeqError::UnknownSequence(name.to_string()))
    }
}

impl CatalogInfo for StaticCatalogInfo {
    fn meta_of(&self, name: &str) -> Result<SeqMeta> {
        self.entries
            .get(name)
            .map(|(_, m)| m.clone())
            .ok_or_else(|| seq_core::SeqError::UnknownSequence(name.to_string()))
    }

    fn page_capacity(&self) -> usize {
        self.page_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::{record, schema, AttrType, BaseSequence, Span};

    #[test]
    fn catalog_ref_exposes_schema_and_meta() {
        let mut c = Catalog::new();
        c.set_page_capacity(16);
        let base = BaseSequence::from_entries(
            schema(&[("x", AttrType::Int)]),
            (1..=10).map(|p| (p, record![p])).collect(),
        )
        .unwrap();
        c.register("S", &base);
        let info = CatalogRef(&c);
        assert_eq!(info.schema_of("S").unwrap().arity(), 1);
        assert_eq!(info.meta_of("S").unwrap().span, Span::new(1, 10));
        assert_eq!(info.page_capacity(), 16);
        assert!(info.schema_of("missing").is_err());
        // Delta-friendly integers compress, and the ratio reaches the
        // optimizer; unknown names price as uncompressed instead of failing.
        let ratio = info.compression_ratio("S");
        assert!(ratio > 0.0 && ratio < 1.0, "ratio {ratio}");
        assert_eq!(info.compression_ratio("missing"), 1.0);
    }

    #[test]
    fn feedback_overlay_overrides_defaults() {
        let mut info = StaticCatalogInfo::new(64);
        info.insert(
            "S",
            schema(&[("x", AttrType::Int)]),
            SeqMeta::with_span(Span::new(1, 100), 1.0),
        );
        let mut overlay = StatsOverlay::new();
        assert!(overlay.is_empty());
        overlay.record(
            "S",
            FeedbackStats {
                density: Some(0.5),
                selectivity: Some(0.1),
                skip_fraction: Some(0.25),
                observed_rows: 10,
                refreshes: 0,
            },
        );
        let fb = WithFeedback::new(&info, &overlay);
        assert_eq!(fb.meta_of("S").unwrap().density, 0.5);
        assert_eq!(fb.measured_selectivity("S"), Some(0.1));
        assert_eq!(fb.measured_skip_fraction("S"), Some(0.25));
        assert_eq!(fb.measured_selectivity("missing"), None);
        assert_eq!(fb.page_capacity(), 64);
        // A newer run replaces the fields it measured and keeps the rest.
        overlay.record(
            "S",
            FeedbackStats { selectivity: Some(0.2), observed_rows: 20, ..Default::default() },
        );
        let f = overlay.get("S").unwrap();
        assert_eq!(f.selectivity, Some(0.2));
        assert_eq!(f.density, Some(0.5));
        assert_eq!(f.refreshes, 2);
        assert_eq!(overlay.iter_sorted().len(), 1);
    }

    #[test]
    fn static_info_for_table1() {
        // Table 1 of the paper, without materializing any data.
        let stock = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
        let mut info = StaticCatalogInfo::new(64);
        info.insert("IBM", stock.clone(), SeqMeta::with_span(Span::new(200, 500), 0.95));
        info.insert("DEC", stock.clone(), SeqMeta::with_span(Span::new(1, 350), 0.7));
        info.insert("HP", stock, SeqMeta::with_span(Span::new(1, 750), 1.0));
        assert_eq!(info.meta_of("HP").unwrap().density, 1.0);
        assert_eq!(info.meta_of("IBM").unwrap().span, Span::new(200, 500));
        assert!(info.meta_of("SUN").is_err());
    }
}
