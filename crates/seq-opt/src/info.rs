//! Catalog information the optimizer consumes.
//!
//! The optimizer needs, per base sequence: schema, meta-data (span, density,
//! column statistics — §3/Table 1), and the physical profile that prices the
//! two access modes (§4.1.1). [`CatalogRef`] adapts the storage catalog.

use seq_core::{Result, Schema, SeqMeta};
use seq_ops::SchemaProvider;
use seq_storage::Catalog;

/// Everything the optimizer needs to know about the stored world.
pub trait CatalogInfo: SchemaProvider {
    /// Meta-data of a base sequence.
    fn meta_of(&self, name: &str) -> Result<SeqMeta>;

    /// Records per page, used to convert record counts into page I/Os.
    fn page_capacity(&self) -> usize;

    /// Compression ratio (encoded bytes over plain bytes, `<= 1.0`) of a
    /// base sequence's columnar pages. Hypothetical catalogs default to
    /// uncompressed, which makes every encoded-cost formula collapse to its
    /// plain-layout counterpart.
    fn compression_ratio(&self, _name: &str) -> f64 {
        1.0
    }
}

/// Adapter implementing the optimizer traits over a storage [`Catalog`].
pub struct CatalogRef<'a>(pub &'a Catalog);

impl SchemaProvider for CatalogRef<'_> {
    fn schema_of(&self, name: &str) -> Result<Schema> {
        Ok(seq_core::Sequence::schema(self.0.get(name)?.as_ref()).clone())
    }
}

impl CatalogInfo for CatalogRef<'_> {
    fn meta_of(&self, name: &str) -> Result<SeqMeta> {
        self.0.meta(name)
    }

    fn page_capacity(&self) -> usize {
        self.0.page_capacity()
    }

    fn compression_ratio(&self, name: &str) -> f64 {
        self.0.get(name).map(|s| s.compression().ratio()).unwrap_or(1.0)
    }
}

/// A self-contained catalog description for tests and for optimizing against
/// hypothetical data (e.g. the paper's Table 1 without materializing it).
#[derive(Debug, Clone, Default)]
pub struct StaticCatalogInfo {
    entries: std::collections::HashMap<String, (Schema, SeqMeta)>,
    page_capacity: usize,
}

impl StaticCatalogInfo {
    /// An empty description with the given page capacity.
    pub fn new(page_capacity: usize) -> StaticCatalogInfo {
        StaticCatalogInfo { entries: Default::default(), page_capacity: page_capacity.max(1) }
    }

    /// Describe a (hypothetical) base sequence.
    pub fn insert(&mut self, name: impl Into<String>, schema: Schema, meta: SeqMeta) {
        self.entries.insert(name.into(), (schema, meta));
    }
}

impl SchemaProvider for StaticCatalogInfo {
    fn schema_of(&self, name: &str) -> Result<Schema> {
        self.entries
            .get(name)
            .map(|(s, _)| s.clone())
            .ok_or_else(|| seq_core::SeqError::UnknownSequence(name.to_string()))
    }
}

impl CatalogInfo for StaticCatalogInfo {
    fn meta_of(&self, name: &str) -> Result<SeqMeta> {
        self.entries
            .get(name)
            .map(|(_, m)| m.clone())
            .ok_or_else(|| seq_core::SeqError::UnknownSequence(name.to_string()))
    }

    fn page_capacity(&self) -> usize {
        self.page_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::{record, schema, AttrType, BaseSequence, Span};

    #[test]
    fn catalog_ref_exposes_schema_and_meta() {
        let mut c = Catalog::new();
        c.set_page_capacity(16);
        let base = BaseSequence::from_entries(
            schema(&[("x", AttrType::Int)]),
            (1..=10).map(|p| (p, record![p])).collect(),
        )
        .unwrap();
        c.register("S", &base);
        let info = CatalogRef(&c);
        assert_eq!(info.schema_of("S").unwrap().arity(), 1);
        assert_eq!(info.meta_of("S").unwrap().span, Span::new(1, 10));
        assert_eq!(info.page_capacity(), 16);
        assert!(info.schema_of("missing").is_err());
        // Delta-friendly integers compress, and the ratio reaches the
        // optimizer; unknown names price as uncompressed instead of failing.
        let ratio = info.compression_ratio("S");
        assert!(ratio > 0.0 && ratio < 1.0, "ratio {ratio}");
        assert_eq!(info.compression_ratio("missing"), 1.0);
    }

    #[test]
    fn static_info_for_table1() {
        // Table 1 of the paper, without materializing any data.
        let stock = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
        let mut info = StaticCatalogInfo::new(64);
        info.insert("IBM", stock.clone(), SeqMeta::with_span(Span::new(200, 500), 0.95));
        info.insert("DEC", stock.clone(), SeqMeta::with_span(Span::new(1, 350), 0.7));
        info.insert("HP", stock, SeqMeta::with_span(Span::new(1, 750), 1.0));
        assert_eq!(info.meta_of("HP").unwrap().density, 1.0);
        assert_eq!(info.meta_of("IBM").unwrap().span, Span::new(200, 500));
        assert!(info.meta_of("SUN").is_err());
    }
}
