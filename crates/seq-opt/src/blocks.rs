//! Step 4 of the optimization algorithm: identification of query blocks.
//!
//! "The operators with non-unit scope divide the query into blocks ...
//! ordered in a partial ordering: if the output sequence of a query block A
//! is an input for another block B, then A < B." (§4)
//!
//! A *join block* is a maximal region of unit-scope operators (selections,
//! projections, positional offsets, composes). It is normalized into:
//!
//! - an ordered list of **inputs** (base sequences, constants, or the
//!   outputs of lower blocks), each with the accumulated positional shift of
//!   the offsets on its path;
//! - a conjunction of **predicates**, each expressed over the concatenation
//!   of the input schemas (in input-discovery order) with a bitmask of the
//!   inputs it references;
//! - an **output layout** mapping block-output columns to `(input, attr)`.
//!
//! Non-unit-scope operators (aggregates, value offsets) form singleton
//! blocks. The normalized form is what Step 5's join-order enumeration
//! consumes.

use seq_core::{Record, Result, Schema, SeqError, SeqMeta, Span};
use seq_ops::{BoundOp, Expr, NodeId, ResolvedKind};

use crate::annotate::Annotated;

/// Where a block input comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum InputSource {
    /// A named base sequence.
    Base {
        /// Catalog name.
        name: String,
    },
    /// An inline constant sequence.
    Constant {
        /// The record at every position.
        record: Record,
        /// Its schema.
        schema: Schema,
    },
    /// The output of a lower block (index into [`Blocks::blocks`]).
    Block(usize),
}

/// One input of a join block.
#[derive(Debug, Clone)]
pub struct BlockInput {
    /// Where the input's records come from.
    pub source: InputSource,
    /// Graph node of the leaf (base/constant) or of the lower block's root.
    pub node: NodeId,
    /// Accumulated positional offset: this input participates in the join as
    /// `In(i + shift)`.
    pub shift: i64,
    /// Restricted meta-data of the underlying node.
    pub meta: SeqMeta,
    /// The input's span expressed in block-output coordinates
    /// (`meta.span` shifted by `-shift`).
    pub block_span: Span,
    /// Number of attributes the input contributes.
    pub arity: usize,
}

/// A predicate normalized to block coordinates: columns index into the
/// concatenation of input schemas in discovery order.
#[derive(Debug, Clone)]
pub struct BlockPredicate {
    /// The predicate over block coordinates.
    pub expr: Expr,
    /// Bitmask of the inputs the expression references.
    pub mask: u32,
}

/// A normalized join block.
#[derive(Debug, Clone)]
pub struct JoinBlock {
    /// Graph node producing the block's output.
    pub root: NodeId,
    /// The block's inputs, in discovery order.
    pub inputs: Vec<BlockInput>,
    /// The block's predicates, each with its input mask.
    pub predicates: Vec<BlockPredicate>,
    /// Output columns as `(input, attr)` pairs.
    pub output: Vec<(usize, usize)>,
    /// Restricted output span of the block.
    pub span: Span,
    /// Bottom-up meta of the block output (restricted span applied).
    pub meta: SeqMeta,
}

impl JoinBlock {
    /// Column offset of each input in the discovery-order concatenation.
    pub fn input_offsets(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.inputs.len());
        let mut acc = 0;
        for i in &self.inputs {
            out.push(acc);
            acc += i.arity;
        }
        out
    }
}

/// A singleton block holding one non-unit-scope operator.
#[derive(Debug, Clone)]
pub struct NonUnitBlock {
    /// Graph node of the operator.
    pub root: NodeId,
    /// The aggregate or value-offset operator itself.
    pub op: BoundOp,
    /// Where its input comes from.
    pub input: InputSource,
    /// Graph node of the operator's input.
    pub input_node: NodeId,
    /// Restricted meta of the input.
    pub input_meta: SeqMeta,
    /// Restricted output span/meta of the operator.
    pub span: Span,
    /// Restricted meta of the operator's output.
    pub meta: SeqMeta,
}

/// One block of either kind.
#[derive(Debug, Clone)]
pub enum Block {
    /// A region of positional joins plus unit-scope operators.
    Joins(JoinBlock),
    /// A singleton aggregate/value-offset block.
    NonUnit(NonUnitBlock),
}

impl Block {
    /// Graph node producing this block's output.
    pub fn root(&self) -> NodeId {
        match self {
            Block::Joins(b) => b.root,
            Block::NonUnit(b) => b.root,
        }
    }

    /// Restricted output span of the block.
    pub fn span(&self) -> Span {
        match self {
            Block::Joins(b) => b.span,
            Block::NonUnit(b) => b.span,
        }
    }
}

/// The block decomposition of a query: `blocks` is topologically ordered
/// (inputs before consumers); the last entry produces the query output.
#[derive(Debug, Clone)]
pub struct Blocks {
    /// Topologically ordered blocks (inputs before consumers).
    pub blocks: Vec<Block>,
}

impl Blocks {
    /// The block producing the query output.
    pub fn root_block(&self) -> &Block {
        self.blocks.last().expect("at least one block")
    }
}

/// Decompose an annotated query into blocks.
pub fn identify_blocks(ann: &Annotated) -> Result<Blocks> {
    let mut blocks = Vec::new();
    build_block(ann, ann.graph.root(), &mut blocks)?;
    Ok(Blocks { blocks })
}

/// Whether an operator lives inside a join block. Aggregates and value
/// offsets always form singleton blocks — note this is by operator *kind*:
/// a single-position window aggregate technically has unit scope, but it is
/// still not a positional-join operator.
fn is_join_region_op(op: &BoundOp) -> bool {
    matches!(
        op,
        BoundOp::Select { .. }
            | BoundOp::Project { .. }
            | BoundOp::PositionalOffset { .. }
            | BoundOp::Compose { .. }
    )
}

/// Build the block producing `node`'s output; returns its index.
fn build_block(ann: &Annotated, node: NodeId, blocks: &mut Vec<Block>) -> Result<usize> {
    match &ann.graph.node(node).kind {
        ResolvedKind::Op { op, inputs } if !is_join_region_op(op) => {
            let input_node = inputs[0];
            let (source, input_node) = block_input_source(ann, input_node, blocks)?;
            let b = NonUnitBlock {
                root: node,
                op: op.clone(),
                input: source,
                input_node,
                input_meta: ann.restricted_meta(input_node),
                span: ann.restricted[node],
                meta: ann.restricted_meta(node),
            };
            blocks.push(Block::NonUnit(b));
            Ok(blocks.len() - 1)
        }
        _ => {
            // A unit-scope region (possibly a bare base/constant leaf).
            let mut ctx = Collect { ann, blocks, inputs: Vec::new(), predicates: Vec::new() };
            let layout = ctx.collect(node, 0)?;
            let Collect { inputs, predicates, .. } = ctx;
            let b = JoinBlock {
                root: node,
                inputs,
                predicates,
                output: layout,
                span: ann.restricted[node],
                meta: ann.restricted_meta(node),
            };
            blocks.push(Block::Joins(b));
            Ok(blocks.len() - 1)
        }
    }
}

/// Resolve a node that acts as an input to a block: a base/constant leaf
/// stays a leaf; anything else becomes (or already is under) a lower block.
fn block_input_source(
    ann: &Annotated,
    node: NodeId,
    blocks: &mut Vec<Block>,
) -> Result<(InputSource, NodeId)> {
    match &ann.graph.node(node).kind {
        ResolvedKind::Base { name } => Ok((InputSource::Base { name: name.clone() }, node)),
        ResolvedKind::Constant { record } => Ok((
            InputSource::Constant {
                record: record.clone(),
                schema: ann.graph.node(node).schema.clone(),
            },
            node,
        )),
        ResolvedKind::Op { .. } => {
            let id = build_block(ann, node, blocks)?;
            Ok((InputSource::Block(id), node))
        }
    }
}

struct Collect<'a, 'b> {
    ann: &'a Annotated,
    blocks: &'b mut Vec<Block>,
    inputs: Vec<BlockInput>,
    predicates: Vec<BlockPredicate>,
}

impl Collect<'_, '_> {
    /// Walk the unit-scope region below `node`, accumulating `shift` from
    /// positional offsets. Returns the node's output layout in block
    /// coordinates.
    fn collect(&mut self, node: NodeId, shift: i64) -> Result<Vec<(usize, usize)>> {
        let n = self.ann.graph.node(node);
        match &n.kind {
            ResolvedKind::Base { .. } | ResolvedKind::Constant { .. } => {
                self.add_input(node, shift)
            }
            ResolvedKind::Op { op, inputs } => {
                if !is_join_region_op(op) {
                    // Aggregate/value offset: boundary — its output is a
                    // block input.
                    return self.add_input(node, shift);
                }
                match op {
                    BoundOp::Select { predicate } => {
                        let layout = self.collect(inputs[0], shift)?;
                        self.add_predicate(predicate, &layout)?;
                        Ok(layout)
                    }
                    BoundOp::Project { indices } => {
                        let layout = self.collect(inputs[0], shift)?;
                        Ok(indices.iter().map(|&i| layout[i]).collect())
                    }
                    BoundOp::PositionalOffset { offset } => self.collect(inputs[0], shift + offset),
                    BoundOp::Compose { predicate } => {
                        let mut layout = self.collect(inputs[0], shift)?;
                        let right = self.collect(inputs[1], shift)?;
                        layout.extend(right);
                        if let Some(p) = predicate {
                            self.add_predicate(p, &layout)?;
                        }
                        Ok(layout)
                    }
                    BoundOp::ValueOffset { .. } | BoundOp::Aggregate { .. } => {
                        unreachable!("non-unit scope handled above")
                    }
                }
            }
        }
    }

    fn add_input(&mut self, node: NodeId, shift: i64) -> Result<Vec<(usize, usize)>> {
        // The input is registered once per occurrence (the tree restriction
        // guarantees each node appears once anyway).
        let (source, node) = block_input_source(self.ann, node, self.blocks)?;
        let meta = self.ann.restricted_meta(node);
        let arity = self.ann.graph.node(node).schema.arity();
        let idx = self.inputs.len();
        if idx >= 32 {
            return Err(SeqError::Unsupported(
                "join blocks of more than 32 inputs are not supported".into(),
            ));
        }
        self.inputs.push(BlockInput {
            source,
            node,
            shift,
            block_span: meta.span.shift(-shift),
            meta,
            arity,
        });
        Ok((0..arity).map(|a| (idx, a)).collect())
    }

    fn add_predicate(&mut self, predicate: &Expr, layout: &[(usize, usize)]) -> Result<()> {
        let offsets: Vec<usize> = {
            let mut out = Vec::with_capacity(self.inputs.len());
            let mut acc = 0;
            for i in &self.inputs {
                out.push(acc);
                acc += i.arity;
            }
            out
        };
        let remapped = predicate
            .remap_columns(&|c| layout.get(c).map(|&(input, attr)| offsets[input] + attr))
            .ok_or_else(|| {
                SeqError::InvalidGraph("predicate references a column outside its layout".into())
            })?;
        let mut mask = 0u32;
        let mut cols = Vec::new();
        predicate.referenced_columns(&mut cols);
        for c in cols {
            let (input, _) = layout[c];
            mask |= 1 << input;
        }
        self.predicates.push(BlockPredicate { expr: remapped, mask });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::annotate;
    use crate::info::StaticCatalogInfo;
    use seq_core::{schema, AttrType};
    use seq_ops::{AggFunc, Expr, SeqQuery, Window};

    fn info() -> StaticCatalogInfo {
        let stock = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
        let mut info = StaticCatalogInfo::new(64);
        info.insert("IBM", stock.clone(), SeqMeta::with_span(Span::new(200, 500), 0.95));
        info.insert("DEC", stock.clone(), SeqMeta::with_span(Span::new(1, 350), 0.7));
        info.insert("HP", stock, SeqMeta::with_span(Span::new(1, 750), 1.0));
        info
    }

    fn blocks_for(q: seq_ops::QueryGraph) -> Blocks {
        let i = info();
        let resolved = q.resolve(&i).unwrap();
        let ann = annotate(resolved, &i, Span::all(), true).unwrap();
        identify_blocks(&ann).unwrap()
    }

    #[test]
    fn single_base_is_one_trivial_join_block() {
        let b = blocks_for(SeqQuery::base("IBM").build());
        assert_eq!(b.blocks.len(), 1);
        let Block::Joins(jb) = b.root_block() else { panic!("join block") };
        assert_eq!(jb.inputs.len(), 1);
        assert!(jb.predicates.is_empty());
        assert_eq!(jb.output.len(), 2);
        assert_eq!(jb.inputs[0].shift, 0);
    }

    #[test]
    fn fig3_is_one_block_of_three_inputs() {
        let q = SeqQuery::base("DEC")
            .compose_with(SeqQuery::base("IBM").compose_filtered(
                SeqQuery::base("HP"),
                Expr::attr("close").gt(Expr::attr("close_r")),
            ))
            .build();
        let b = blocks_for(q);
        assert_eq!(b.blocks.len(), 1);
        let Block::Joins(jb) = b.root_block() else { panic!() };
        assert_eq!(jb.inputs.len(), 3);
        assert_eq!(jb.predicates.len(), 1);
        // Predicate references IBM (input 1) and HP (input 2).
        assert_eq!(jb.predicates[0].mask, 0b110);
        // Coordinates: concat is DEC(0,1) IBM(2,3) HP(4,5) — close vs close.
        assert_eq!(jb.predicates[0].expr.to_string(), "($3 > $5)");
        // Restricted span from Figure 3.
        assert_eq!(jb.span, Span::new(200, 350));
        assert_eq!(jb.output.len(), 6);
    }

    #[test]
    fn aggregate_splits_blocks() {
        // Fig 5.A: Sum over IBM — a non-unit block over a trivial one... the
        // base input feeds the aggregate directly (no join block below).
        let q = SeqQuery::base("IBM").aggregate(AggFunc::Sum, "close", Window::trailing(6)).build();
        let b = blocks_for(q);
        assert_eq!(b.blocks.len(), 1);
        let Block::NonUnit(nb) = b.root_block() else { panic!() };
        assert!(matches!(nb.input, InputSource::Base { .. }));
        assert!(matches!(nb.op, BoundOp::Aggregate { .. }));
    }

    #[test]
    fn fig5b_block_structure() {
        // Compose(DEC, Previous(σ(IBM ∘ HP))): three blocks —
        // lower joins (IBM∘HP + σ), Previous, upper joins (DEC ∘ ·).
        let q = SeqQuery::base("DEC")
            .compose_with(
                SeqQuery::base("IBM")
                    .compose_filtered(
                        SeqQuery::base("HP"),
                        Expr::attr("close").gt(Expr::attr("close_r")),
                    )
                    .previous(),
            )
            .build();
        let b = blocks_for(q);
        assert_eq!(b.blocks.len(), 3);
        let Block::Joins(lower) = &b.blocks[0] else { panic!("lower joins") };
        assert_eq!(lower.inputs.len(), 2);
        assert_eq!(lower.predicates.len(), 1);
        let Block::NonUnit(prev) = &b.blocks[1] else { panic!("previous") };
        assert!(matches!(prev.input, InputSource::Block(0)));
        let Block::Joins(upper) = &b.blocks[2] else { panic!("upper joins") };
        assert_eq!(upper.inputs.len(), 2);
        assert!(matches!(upper.inputs[0].source, InputSource::Base { .. }));
        assert!(matches!(upper.inputs[1].source, InputSource::Block(1)));
    }

    #[test]
    fn positional_offsets_become_input_shifts() {
        let q =
            SeqQuery::base("IBM").positional_offset(-5).compose_with(SeqQuery::base("HP")).build();
        let b = blocks_for(q);
        assert_eq!(b.blocks.len(), 1);
        let Block::Joins(jb) = b.root_block() else { panic!() };
        assert_eq!(jb.inputs[0].shift, -5);
        assert_eq!(jb.inputs[1].shift, 0);
        // Block-level span of IBM = [200,500] shifted by +5.
        assert_eq!(jb.inputs[0].block_span, Span::new(205, 505));
    }

    #[test]
    fn offset_above_compose_shifts_both() {
        let q =
            SeqQuery::base("IBM").compose_with(SeqQuery::base("HP")).positional_offset(3).build();
        let b = blocks_for(q);
        let Block::Joins(jb) = b.root_block() else { panic!() };
        assert_eq!(jb.inputs[0].shift, 3);
        assert_eq!(jb.inputs[1].shift, 3);
    }

    #[test]
    fn projection_narrows_output_layout() {
        let q = SeqQuery::base("IBM")
            .compose_with(SeqQuery::base("HP"))
            .project(["close", "close_r"])
            .build();
        let b = blocks_for(q);
        let Block::Joins(jb) = b.root_block() else { panic!() };
        assert_eq!(jb.output, vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn single_input_select_masks_one_bit() {
        let q = SeqQuery::base("IBM")
            .select(Expr::attr("close").gt(Expr::lit(100.0)))
            .compose_with(SeqQuery::base("HP"))
            .build();
        let b = blocks_for(q);
        let Block::Joins(jb) = b.root_block() else { panic!() };
        assert_eq!(jb.predicates.len(), 1);
        assert_eq!(jb.predicates[0].mask, 0b01);
    }
}
