//! The cost model (§4.1).
//!
//! Costs are abstract units anchored on page I/O. Every derived sequence is
//! priced in both access modes:
//!
//! - **base sequences** (§4.1.1): stream cost = pages within the (restricted)
//!   valid range × sequential-page cost; probed cost = positions in the valid
//!   range × average per-probe cost;
//! - **positional joins** (§4.1.3): the paper's formulas verbatim —
//!   `stream = min(A1 + d1·a2, A2 + d2·a1, A1 + A2) + d1·d2·span·K` and
//!   `probed = min(a1 + d1·a2, a2 + d2·a1) + d1·d2·span·K`;
//! - **non-unit-scope operators** (§4.1.2): probed cost = probed input cost ×
//!   scope size; stream cost = input stream cost + cache traffic
//!   (Cache-Strategy-A/B), or the naive estimate driven by the input density
//!   for variable scopes.

use seq_core::{SeqMeta, Span};
use seq_exec::JoinStrategy;

/// Unit costs. Defaults model a random page I/O as twice a sequential one,
/// with CPU work two orders of magnitude cheaper than I/O.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// One sequentially read page.
    pub seq_page_io: f64,
    /// One randomly probed page (per-record probe cost).
    pub rand_page_io: f64,
    /// Per-record CPU handling.
    pub record_cpu: f64,
    /// Storing or retrieving one record in an operator cache.
    pub cache_op: f64,
    /// One application of a join/selection predicate (the K of §4.1.3).
    pub predicate_k: f64,
    /// Correlation factor for Null positions of joined sequences (§3:
    /// "correlations between sequences in the positions of Null records").
    /// 1.0 = independent; >1 = positively correlated (more matches).
    pub null_correlation: f64,
    /// Materializing one value from an encoded page column (delta unpack,
    /// run expansion, dictionary lookup). Charged only for the compressed
    /// fraction of the data: plain-stored columns copy at `record_cpu`.
    pub decode_cpu: f64,
    /// Reading one surviving row through a selection vector (one index
    /// indirection) instead of a dense slot. Charged per survivor when a
    /// filter *carries* its selection downstream.
    pub sel_indirect_cpu: f64,
    /// Gathering one surviving row's column slots into a dense batch — the
    /// per-row price of compacting, whether at the filter itself
    /// (`"batch+compact"`) or at a downstream compaction boundary in front
    /// of a consumer that indexes rows physically.
    pub sel_compact_cpu: f64,
}

impl Default for CostParams {
    fn default() -> CostParams {
        CostParams {
            seq_page_io: 1.0,
            rand_page_io: 2.0,
            record_cpu: 0.01,
            cache_op: 0.005,
            predicate_k: 0.01,
            null_correlation: 1.0,
            decode_cpu: 0.002,
            sel_indirect_cpu: 0.001,
            sel_compact_cpu: 0.004,
        }
    }
}

/// The stream/probed cost pair of one sequence access plan (§4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessCosts {
    /// Cost of one full stream scan over the sequence's span.
    pub stream: f64,
    /// Cost of probing every position in the span once (per-position
    /// average × span length, as in §4.1.1); scale by a density to price a
    /// partial probing pattern.
    pub probed: f64,
}

impl AccessCosts {
    /// Free access (empty spans, constants' probes).
    pub const ZERO: AccessCosts = AccessCosts { stream: 0.0, probed: 0.0 };
}

/// §4.1.1 — access costs to a base sequence within its (restricted) span.
pub fn base_access_costs(meta: &SeqMeta, page_capacity: usize, params: &CostParams) -> AccessCosts {
    let span_len = span_len_f(&meta.span);
    if span_len == 0.0 {
        return AccessCosts::ZERO;
    }
    if !span_len.is_finite() {
        return AccessCosts { stream: f64::INFINITY, probed: f64::INFINITY };
    }
    let records = span_len * meta.density;
    let pages = (records / page_capacity.max(1) as f64).ceil();
    AccessCosts {
        stream: pages * params.seq_page_io + records * params.record_cpu,
        probed: span_len * params.rand_page_io,
    }
}

/// Access costs to a base sequence stored on *encoded* columnar pages with
/// compression ratio `ratio` (encoded bytes over plain bytes, `<= 1.0` by
/// the pick-cheapest heuristic's plain fallback).
///
/// A stream scan over encoded pages moves `ratio`× the bytes of the plain
/// layout — the I/O term shrinks proportionally — but pays `decode_cpu` to
/// materialize each value of the compressed fraction `(1 − ratio)` of the
/// data. Probing is unchanged: a probe touches one page either way. At
/// `ratio = 1.0` (uncompressed) this is exactly [`base_access_costs`].
pub fn encoded_access_costs(
    meta: &SeqMeta,
    page_capacity: usize,
    params: &CostParams,
    ratio: f64,
) -> AccessCosts {
    let base = base_access_costs(meta, page_capacity, params);
    let span_len = span_len_f(&meta.span);
    if span_len == 0.0 || !span_len.is_finite() {
        return base;
    }
    let ratio = ratio.clamp(0.0, 1.0);
    let records = span_len * meta.density;
    let pages = (records / page_capacity.max(1) as f64).ceil();
    AccessCosts {
        stream: pages * params.seq_page_io * ratio
            + records * (params.record_cpu + params.decode_cpu * (1.0 - ratio)),
        probed: base.probed,
    }
}

/// §4.1.1 — "a constant sequence has no access cost and a density of one."
/// Streaming a constant still enumerates positions (CPU only).
pub fn constant_access_costs(span: &Span, params: &CostParams) -> AccessCosts {
    let span_len = span_len_f(span);
    if !span_len.is_finite() {
        return AccessCosts { stream: f64::INFINITY, probed: 0.0 };
    }
    AccessCosts { stream: span_len * params.record_cpu, probed: 0.0 }
}

/// Probability that one page of `rows_per_page` records holds *no* record
/// matching a predicate of selectivity `s` — the fraction of pages a
/// zone-mapped scan can expect to skip. Under the independence assumption
/// each of the page's records matches with probability `s`, so the page is
/// skippable with probability `(1 − s)^k`. Value-clustered data skips far
/// more than this (whole runs of pages refute a range predicate at once), so
/// the term is a conservative discount: pushdown is never priced *better*
/// than the uniform worst case.
pub fn zone_skip_fraction(selectivity: f64, rows_per_page: usize) -> f64 {
    let s = selectivity.clamp(0.0, 1.0);
    (1.0 - s).powi(rows_per_page.clamp(1, 1_000_000) as i32)
}

fn span_len_f(span: &Span) -> f64 {
    if span.is_empty() {
        0.0
    } else if !span.is_bounded() {
        f64::INFINITY
    } else {
        span.len() as f64
    }
}

/// One side of a positional join, as the DP sees it.
#[derive(Debug, Clone, Copy)]
pub struct JoinSide {
    /// Full-span stream/probed access costs of the side.
    pub costs: AccessCosts,
    /// Non-Null density of the side.
    pub density: f64,
}

/// The outcome of pricing one positional join (§4.1.3).
#[derive(Debug, Clone, Copy)]
pub struct JoinPricing {
    /// Cheapest stream-mode cost (§4.1.3's three-way minimum plus K).
    pub stream_cost: f64,
    /// The strategy realizing `stream_cost`.
    pub stream_strategy: JoinStrategy,
    /// Cheapest probed-mode cost (the two-way minimum plus K).
    pub probed_cost: f64,
    /// True when the cheaper probed order probes the *right* side first.
    pub probe_right_first: bool,
    /// Density of the join output (before any extra predicates).
    pub output_density: f64,
}

/// §4.1.3 — price a positional join of two sides over a common output span.
/// `extra_selectivity` multiplies in the selectivities of predicates applied
/// at this join; `n_predicates` is how many predicate applications each
/// joined pair costs.
pub fn price_join(
    left: &JoinSide,
    right: &JoinSide,
    out_span: &Span,
    extra_selectivity: f64,
    n_predicates: usize,
    params: &CostParams,
    forced: Option<JoinStrategy>,
) -> JoinPricing {
    let span = span_len_f(out_span);
    let (d1, d2) = (left.density, right.density);
    let (a_1, a1) = (left.costs.stream, left.costs.probed);
    let (a_2, a2) = (right.costs.stream, right.costs.probed);

    // d1·d2·output_span·K — the join-predicate application term. Every
    // aligned pair costs at least the positional match; extra predicates
    // multiply the per-pair constant.
    let pairs =
        d1 * d2 * params.null_correlation.min(1.0 / d1.max(1e-12)).min(1.0 / d2.max(1e-12)) * span;
    let k_cost = pairs * params.predicate_k * (1 + n_predicates) as f64;

    let candidates = [
        (a_1 + d1 * a2, JoinStrategy::StreamLeftProbeRight),
        (a_2 + d2 * a1, JoinStrategy::StreamRightProbeLeft),
        (a_1 + a_2, JoinStrategy::LockStep),
    ];
    let (stream_raw, stream_strategy) = match forced {
        Some(f) => {
            let c = candidates.iter().find(|(_, s)| *s == f).expect("strategy in set");
            *c
        }
        None => candidates.into_iter().min_by(|a, b| a.0.total_cmp(&b.0)).expect("non-empty"),
    };

    let probe_left_first = a1 + d1 * a2;
    let probe_right_first_cost = a2 + d2 * a1;
    let (probed_raw, probe_right_first) = if probe_right_first_cost < probe_left_first {
        (probe_right_first_cost, true)
    } else {
        (probe_left_first, false)
    };

    let output_density = (d1 * d2 * params.null_correlation * extra_selectivity).clamp(0.0, 1.0);

    JoinPricing {
        stream_cost: stream_raw + k_cost,
        stream_strategy,
        probed_cost: probed_raw + k_cost,
        probe_right_first,
        output_density,
    }
}

/// §4.1.2 — price a fixed-scope aggregate over an input.
/// Returns (Cache-Strategy-A stream cost, naive probed cost).
pub fn price_fixed_aggregate(
    input: &JoinSide,
    input_span: &Span,
    out_span: &Span,
    out_density: f64,
    scope_size: u64,
    params: &CostParams,
) -> AccessCosts {
    let in_records = span_len_f(input_span) * input.density;
    let out_records = span_len_f(out_span) * out_density;
    let stream = input.costs.stream
        + in_records * params.cache_op        // store each input record once
        + out_records * params.cache_op       // one cache access per output
        + out_records * params.record_cpu; // the aggregate computation
                                           // "The probed access cost is the probed access cost of the input
                                           // sequence multiplied by the size of the operator scope."
    let probed = input.costs.probed * scope_size as f64;
    AccessCosts { stream, probed }
}

/// §4.1.2 — price a value offset of magnitude `l` (variable scope).
/// Returns (incremental Cache-Strategy-B stream cost, naive probed cost).
pub fn price_value_offset(
    input: &JoinSide,
    input_span: &Span,
    out_span: &Span,
    magnitude: u64,
    params: &CostParams,
) -> AccessCosts {
    let in_records = span_len_f(input_span) * input.density;
    let out_records = span_len_f(out_span); // density ≈ 1 within the span
    let stream = input.costs.stream + in_records * params.cache_op + out_records * params.cache_op;
    // Naive: each output walks backward until `l` records are found —
    // l / density positions on average, each a probe. Scaling the whole-span
    // probed cost by that factor prices it, as §4.1.2 suggests estimating
    // from the input density.
    let walk = magnitude as f64 / input.density.max(1e-9);
    let per_position_probe = if span_len_f(input_span) > 0.0 && span_len_f(input_span).is_finite() {
        input.costs.probed / span_len_f(input_span)
    } else {
        params.rand_page_io
    };
    let probed = out_records * walk * per_position_probe;
    AccessCosts { stream, probed }
}

/// Price a cumulative or whole-span aggregate: stream = one input scan plus
/// accumulator traffic; probed degenerates to re-scanning the history per
/// probe (span/2 positions on average for cumulative, the whole span for
/// whole-span windows).
pub fn price_unbounded_aggregate(
    input: &JoinSide,
    input_span: &Span,
    out_span: &Span,
    whole_span: bool,
    params: &CostParams,
) -> AccessCosts {
    let in_records = span_len_f(input_span) * input.density;
    let out_records = span_len_f(out_span);
    let stream =
        input.costs.stream + in_records * params.cache_op + out_records * params.record_cpu;
    let per_probe_window =
        if whole_span { span_len_f(input_span) } else { span_len_f(input_span) / 2.0 };
    let per_position_probe = if span_len_f(input_span) > 0.0 && span_len_f(input_span).is_finite() {
        input.costs.probed / span_len_f(input_span)
    } else {
        params.rand_page_io
    };
    let probed = out_records * per_probe_window * per_position_probe;
    AccessCosts { stream, probed }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CostParams {
        CostParams::default()
    }

    #[test]
    fn zone_skip_fraction_bounds_and_monotonicity() {
        // Nothing matches: every page is skippable. Everything matches: none.
        assert_eq!(zone_skip_fraction(0.0, 16), 1.0);
        assert_eq!(zone_skip_fraction(1.0, 16), 0.0);
        // 10% selectivity over 16-record pages: 0.9^16 ≈ 0.185.
        assert!((zone_skip_fraction(0.1, 16) - 0.9f64.powi(16)).abs() < 1e-12);
        // Monotone: higher selectivity or bigger pages → fewer skips.
        assert!(zone_skip_fraction(0.05, 16) > zone_skip_fraction(0.2, 16));
        assert!(zone_skip_fraction(0.1, 8) > zone_skip_fraction(0.1, 64));
        // Out-of-range inputs clamp instead of exploding.
        assert_eq!(zone_skip_fraction(-1.0, 0), 1.0);
        assert_eq!(zone_skip_fraction(2.0, 16), 0.0);
    }

    #[test]
    fn base_costs_scale_with_span_and_density() {
        let p = params();
        let full = base_access_costs(&SeqMeta::with_span(Span::new(1, 6400), 1.0), 64, &p);
        assert_eq!(full.stream, 100.0 + 6400.0 * p.record_cpu);
        assert_eq!(full.probed, 6400.0 * p.rand_page_io);
        // Restricting the span to a quarter quarters both costs (Figure 3's
        // payoff).
        let quarter = base_access_costs(&SeqMeta::with_span(Span::new(1, 1600), 1.0), 64, &p);
        assert!((quarter.stream - full.stream / 4.0).abs() < 1.0);
        assert!((quarter.probed - full.probed / 4.0).abs() < 1e-9);
        // Lower density, fewer pages to stream; probing is span-driven.
        let sparse = base_access_costs(&SeqMeta::with_span(Span::new(1, 6400), 0.25), 64, &p);
        assert!(sparse.stream < full.stream / 3.0);
        assert_eq!(sparse.probed, full.probed);
    }

    #[test]
    fn encoded_costs_reduce_to_base_when_uncompressed() {
        let p = params();
        let meta = SeqMeta::with_span(Span::new(1, 6400), 0.8);
        let base = base_access_costs(&meta, 64, &p);
        let enc = encoded_access_costs(&meta, 64, &p, 1.0);
        assert_eq!(enc, base);
        // Out-of-range ratios clamp instead of inverting the model.
        assert_eq!(encoded_access_costs(&meta, 64, &p, 1.7), base);
        // Degenerate spans defer to the base pricing.
        let empty = SeqMeta::with_span(Span::empty(), 1.0);
        assert_eq!(encoded_access_costs(&empty, 64, &p, 0.5), AccessCosts::ZERO);
    }

    #[test]
    fn encoded_costs_trade_io_for_decode_cpu() {
        let p = params();
        let meta = SeqMeta::with_span(Span::new(1, 6400), 1.0);
        let base = base_access_costs(&meta, 64, &p);
        let enc = encoded_access_costs(&meta, 64, &p, 0.25);
        // Default decode_cpu keeps the trade profitable: a quarter-size scan
        // beats the full-width one even after paying to decode.
        assert!(enc.stream < base.stream, "{} vs {}", enc.stream, base.stream);
        // Probing touches one page regardless of its encoding.
        assert_eq!(enc.probed, base.probed);
        // Monotone: better compression, cheaper scan.
        let enc_half = encoded_access_costs(&meta, 64, &p, 0.5);
        assert!(enc.stream < enc_half.stream && enc_half.stream < base.stream);
        // The decode term is visible: zeroing decode_cpu prices the scan
        // strictly cheaper than with it.
        let mut free_decode = params();
        free_decode.decode_cpu = 0.0;
        assert!(encoded_access_costs(&meta, 64, &free_decode, 0.25).stream < enc.stream);
    }

    #[test]
    fn empty_and_unbounded_spans() {
        let p = params();
        let empty = base_access_costs(&SeqMeta::with_span(Span::empty(), 1.0), 64, &p);
        assert_eq!(empty, AccessCosts::ZERO);
        let unbounded =
            base_access_costs(&SeqMeta::with_span(Span::new(1, 1).unbounded_above(), 1.0), 64, &p);
        assert!(unbounded.stream.is_infinite());
    }

    #[test]
    fn constants_probe_for_free() {
        let p = params();
        let c = constant_access_costs(&Span::new(1, 100), &p);
        assert_eq!(c.probed, 0.0);
        assert!(c.stream > 0.0);
        assert!(constant_access_costs(&Span::all(), &p).stream.is_infinite());
    }

    #[test]
    fn join_prefers_probing_the_sparse_side() {
        let p = params();
        // Dense cheap-to-stream left; sparse expensive-to-stream right.
        let left = JoinSide { costs: AccessCosts { stream: 10.0, probed: 2000.0 }, density: 0.01 };
        let right =
            JoinSide { costs: AccessCosts { stream: 1000.0, probed: 2000.0 }, density: 0.9 };
        let out = price_join(&left, &right, &Span::new(1, 1000), 1.0, 0, &p, None);
        // Streaming left (cost 10) and probing right per left record
        // (0.01 × 2000 = 20) beats lock-step (1010) and the converse.
        assert_eq!(out.stream_strategy, JoinStrategy::StreamLeftProbeRight);
        assert!(out.stream_cost < 100.0);
    }

    #[test]
    fn join_prefers_lockstep_when_both_dense() {
        let p = params();
        let side =
            JoinSide { costs: AccessCosts { stream: 100.0, probed: 12800.0 }, density: 0.95 };
        let out = price_join(&side, &side, &Span::new(1, 6400), 1.0, 0, &p, None);
        assert_eq!(out.stream_strategy, JoinStrategy::LockStep);
    }

    #[test]
    fn forced_strategy_is_respected() {
        let p = params();
        let side =
            JoinSide { costs: AccessCosts { stream: 100.0, probed: 12800.0 }, density: 0.95 };
        let out = price_join(
            &side,
            &side,
            &Span::new(1, 6400),
            1.0,
            0,
            &p,
            Some(JoinStrategy::StreamLeftProbeRight),
        );
        assert_eq!(out.stream_strategy, JoinStrategy::StreamLeftProbeRight);
        assert!(out.stream_cost > 100.0 + 0.9 * 12800.0 * 0.9);
    }

    #[test]
    fn join_density_multiplies_with_selectivity() {
        let p = params();
        let side = JoinSide { costs: AccessCosts { stream: 1.0, probed: 1.0 }, density: 0.5 };
        let out = price_join(&side, &side, &Span::new(1, 100), 0.3, 1, &p, None);
        assert!((out.output_density - 0.5 * 0.5 * 0.3).abs() < 1e-9);
    }

    #[test]
    fn aggregate_probed_scales_with_scope() {
        let p = params();
        let input = JoinSide { costs: AccessCosts { stream: 50.0, probed: 500.0 }, density: 1.0 };
        let span = Span::new(1, 100);
        let c6 = price_fixed_aggregate(&input, &span, &span, 1.0, 6, &p);
        let c12 = price_fixed_aggregate(&input, &span, &span, 1.0, 12, &p);
        assert_eq!(c6.probed, 3000.0);
        assert_eq!(c12.probed, 6000.0);
        assert_eq!(c6.stream, c12.stream); // Cache-A streams once regardless
        assert!(c6.stream < c6.probed);
    }

    #[test]
    fn value_offset_naive_explodes_with_sparsity() {
        let p = params();
        let span = Span::new(1, 1000);
        let dense = JoinSide { costs: AccessCosts { stream: 20.0, probed: 2000.0 }, density: 1.0 };
        let sparse =
            JoinSide { costs: AccessCosts { stream: 20.0, probed: 2000.0 }, density: 0.05 };
        let cd = price_value_offset(&dense, &span, &span, 1, &p);
        let cs = price_value_offset(&sparse, &span, &span, 1, &p);
        // The naive walk is ~1/density long per output.
        assert!(cs.probed > 15.0 * cd.probed);
        // Cache-Strategy-B barely changes (stream + cache traffic).
        assert!(cs.stream <= cd.stream);
        assert!(cd.stream < cd.probed);
    }

    #[test]
    fn unbounded_aggregate_probed_is_quadratic() {
        let p = params();
        let span = Span::new(1, 1000);
        let input = JoinSide { costs: AccessCosts { stream: 20.0, probed: 2000.0 }, density: 1.0 };
        let cum = price_unbounded_aggregate(&input, &span, &span, false, &p);
        let whole = price_unbounded_aggregate(&input, &span, &span, true, &p);
        assert!(cum.probed > 100.0 * cum.stream);
        assert!(whole.probed > cum.probed * 1.5);
    }
}
