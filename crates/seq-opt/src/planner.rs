//! The six-step optimization pipeline of §4, end to end:
//!
//! 1. **Query specification** — a [`seq_ops::QueryGraph`] composed with the
//!    query template's position range (Figure 6);
//! 2. **Meta-information propagation** — bottom-up and top-down annotation
//!    ([`mod@crate::annotate`]);
//! 3. **Query transformations** — the §3.1 rewrites ([`crate::transform`]);
//! 4. **Identification of query blocks** ([`crate::blocks`]);
//! 5. **Block-wise plan generation** — Selinger-style DP per block
//!    ([`crate::selinger`]);
//! 6. **Plan selection** — the cheapest stream-access plan at the Start
//!    operator.
//!
//! Every optimization is independently toggleable through
//! [`OptimizerConfig`], enabling the ablation experiments.

use seq_core::{Result, Span};
use seq_exec::{JoinStrategy, PhysPlan};
use seq_ops::QueryGraph;

use crate::annotate::annotate;
use crate::blocks::{identify_blocks, Block};
use crate::cost::CostParams;
use crate::info::CatalogInfo;
use crate::lowering::ExecMode;
use crate::selinger::{plan_join_block, plan_nonunit_block, BlockPhys, DpStats, PlanOptions};
use crate::transform::{apply_transformations, TransformReport};

/// Optimizer configuration: the position range of the query template plus a
/// toggle per optimization technique.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// The Start operator's position range (Figure 6). Must be bounded for
    /// stream materialization unless the query's own span is bounded.
    pub range: Span,
    /// Step 2.b: top-down span propagation (§3.2). Off = Figure 3 ablation.
    pub span_propagation: bool,
    /// Step 3: §3.1 rewrite rules.
    pub transformations: bool,
    /// Step 5: enumerate join orders; off = syntactic order.
    pub join_reordering: bool,
    /// Force a single join strategy everywhere (Figure 4 sweeps).
    pub forced_join_strategy: Option<JoinStrategy>,
    /// Allow Cache-Strategy-B for value offsets (Figure 5.B ablation).
    pub cache_strategy_b: bool,
    /// Force naive per-output probing for aggregates (Figure 5.A ablation).
    pub naive_aggregates: bool,
    /// Use O(1) incremental accumulators inside Cache-Strategy-A.
    pub incremental_aggregates: bool,
    /// Lower eligible plans onto the vectorized batch execution path.
    pub vectorized: bool,
    /// Fuse eligible selections into base scans (zone-map page skipping).
    pub pushdown: bool,
    /// Worker threads for morsel-driven parallel execution of position-
    /// partitionable plans; `1` keeps everything single-threaded.
    pub parallelism: usize,
    /// Cost-model unit costs.
    pub cost: CostParams,
}

impl OptimizerConfig {
    /// Everything on, over the given position range.
    pub fn new(range: Span) -> OptimizerConfig {
        OptimizerConfig {
            range,
            span_propagation: true,
            transformations: true,
            join_reordering: true,
            forced_join_strategy: None,
            cache_strategy_b: true,
            naive_aggregates: false,
            // Cache-A recompute is the paper-faithful default and is
            // bit-exact w.r.t. the reference semantics; the O(1) incremental
            // accumulators are an opt-in refinement (floating-point sums
            // drift in the last ULPs under add/remove).
            incremental_aggregates: false,
            vectorized: true,
            pushdown: true,
            parallelism: 1,
            cost: CostParams::default(),
        }
    }

    /// Every optimization off: the naive evaluation the paper's Example 1.1
    /// contrasts against (still stream-driven, but unreordered, unrestricted,
    /// and uncached).
    pub fn naive(range: Span) -> OptimizerConfig {
        OptimizerConfig {
            range,
            span_propagation: false,
            transformations: false,
            join_reordering: false,
            forced_join_strategy: None,
            cache_strategy_b: false,
            naive_aggregates: true,
            incremental_aggregates: false,
            vectorized: false,
            pushdown: false,
            parallelism: 1,
            cost: CostParams::default(),
        }
    }
}

/// The optimizer's output: the selected plan, its estimated cost, and the
/// artifacts of each pipeline step (for EXPLAIN and for the experiments).
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The selected stream-access physical plan.
    pub plan: PhysPlan,
    /// Estimated cost of the selected stream-access plan.
    pub est_cost: f64,
    /// Estimated cost of the best probed-mode plan at the root.
    pub est_probed_cost: f64,
    /// Expected pages the plan's fused scans skip via zone maps (0 when
    /// pushdown is off or nothing fused). EXPLAIN ANALYZE compares this to
    /// the measured `pages_skipped` counter.
    pub est_pages_skipped: f64,
    /// Which §3.1 rewrite rules fired in Step 3.
    pub transform_report: TransformReport,
    /// Step 5's Property 4.1 counters.
    pub dp_stats: DpStats,
    /// Number of blocks identified in Step 4.
    pub block_count: usize,
    /// The execution path Step 6 lowered the plan onto.
    pub exec_mode: ExecMode,
    /// Per-operator costed lowering decisions in pre-order (the profiler's
    /// node ids): which mode each node runs in and the per-record cost
    /// margin behind the choice ([`crate::lowering::choose_op_modes`]).
    pub op_modes: Vec<crate::lowering::OpModeDecision>,
    /// Human-readable account of the pipeline.
    pub explain: String,
}

impl Optimized {
    /// Run the selected plan on the execution path Step 6 chose. The
    /// sequential batch path executes the per-operator assignment in
    /// [`Optimized::op_modes`] (adapters at every mode boundary), so what
    /// runs is exactly what EXPLAIN reported.
    pub fn execute(&self, ctx: &seq_exec::ExecContext<'_>) -> Result<Vec<(i64, seq_core::Record)>> {
        match self.exec_mode {
            ExecMode::Parallel { workers } => seq_exec::execute_parallel(&self.plan, ctx, workers),
            ExecMode::Batched => seq_exec::execute_batched_assigned(
                &self.plan,
                ctx,
                seq_core::DEFAULT_BATCH_SIZE,
                &self.op_mode_labels(),
            ),
            ExecMode::RecordAtATime => seq_exec::execute(&self.plan, ctx),
        }
    }

    /// The per-operator mode labels alone, pre-order (feedable to
    /// [`seq_exec::execute_batched_assigned`]).
    pub fn op_mode_labels(&self) -> Vec<&'static str> {
        self.op_modes.iter().map(|d| d.mode).collect()
    }
}

/// The compression ratio of the most compressed base sequence the plan
/// scans (1.0 when it scans none, e.g. pure constants): the base whose
/// decode margin the batch path exploits hardest.
fn scanned_compression_ratio(root: &seq_exec::PhysNode, info: &dyn CatalogInfo) -> f64 {
    let own = match root {
        seq_exec::PhysNode::Base { name, .. } | seq_exec::PhysNode::FusedScan { name, .. } => {
            info.compression_ratio(name)
        }
        _ => 1.0,
    };
    root.children().into_iter().map(|c| scanned_compression_ratio(c, info)).fold(own, f64::min)
}

/// Run the full pipeline on a declarative query.
pub fn optimize(
    query: &QueryGraph,
    info: &dyn CatalogInfo,
    config: &OptimizerConfig,
) -> Result<Optimized> {
    use std::fmt::Write;
    let mut explain = String::new();

    // Step 1: specification (resolution + type checking).
    let resolved = query.resolve(info)?;
    let _ = writeln!(explain, "== Step 1: query ==\n{}", resolved.render());

    // Step 3 runs before annotation so spans are propagated over the final
    // shape (the paper orders annotation first, but transformations preserve
    // spans and re-annotating after rewriting is equivalent and simpler).
    let (resolved, transform_report) = if config.transformations {
        apply_transformations(&resolved)?
    } else {
        (resolved, TransformReport::default())
    };
    if config.transformations {
        let _ = writeln!(
            explain,
            "== Step 3: transformations ({} applied) ==\n{:?}\n{}",
            transform_report.total(),
            transform_report.applied,
            resolved.render()
        );
    }

    // Step 2: meta-information propagation.
    let ann = annotate(resolved, info, config.range, config.span_propagation)?;
    let _ = writeln!(explain, "== Step 2: spans ==");
    for id in ann.graph.postorder() {
        let _ = writeln!(
            explain,
            "  node {id}: span {} density {:.4}",
            ann.restricted[id], ann.metas[id].density
        );
    }

    // Step 4: blocks.
    let blocks = identify_blocks(&ann)?;
    let _ = writeln!(explain, "== Step 4: {} block(s) ==", blocks.blocks.len());

    // Step 5: block-wise plan generation, bottom-up.
    let opts = PlanOptions {
        params: config.cost.clone(),
        reorder_joins: config.join_reordering,
        forced_join_strategy: config.forced_join_strategy,
        incremental_aggregates: config.incremental_aggregates,
        allow_cache_b: config.cache_strategy_b,
        force_naive_aggregates: config.naive_aggregates,
    };
    let mut dp_stats = DpStats::default();
    let mut planned: Vec<BlockPhys> = Vec::with_capacity(blocks.blocks.len());
    for (i, block) in blocks.blocks.iter().enumerate() {
        let bp = match block {
            Block::Joins(jb) => {
                plan_join_block(jb, &planned, info.page_capacity(), &opts, &mut dp_stats)?
            }
            Block::NonUnit(nb) => plan_nonunit_block(nb, &planned, info.page_capacity(), &opts)?,
        };
        let _ = writeln!(
            explain,
            "  block {i}: stream cost {:.2}, probed cost {:.2}, span {}",
            bp.stream_cost, bp.probed_cost, bp.span
        );
        planned.push(bp);
    }

    // Step 6: the Start operator selects the stream-access plan at the root.
    let root = planned.pop().expect("at least one block");
    let mut plan = PhysPlan::new(root.stream_phys, config.range.intersect(&root.span));
    let mut est_cost = root.stream_cost;
    let mut est_pages_skipped = 0.0;

    // Lowering: fuse eligible selections into their base scans so the
    // storage layer can skip zone-map-refuted pages, and refund the expected
    // skips from the estimated cost.
    if config.pushdown {
        let mut report = crate::pushdown::PushdownReport::default();
        plan.root = crate::pushdown::fuse_selects(plan.root, info, &config.cost, &mut report);
        if report.fused > 0 {
            est_pages_skipped = report.est_pages_skipped;
            est_cost = (est_cost - report.est_cost_discount).max(0.0);
            let _ = writeln!(
                explain,
                "== Pushdown: fused {} selection(s) into scans \
                 (est. pages skipped {:.1}, cost {:.2} -> {:.2}) ==",
                report.fused, report.est_pages_skipped, root.stream_cost, est_cost
            );
        }
    }

    // The decode-cost term of the batch-vs-tuple decision prices the most
    // compressed base the plan scans (widest per-record decode margin).
    let ratio = scanned_compression_ratio(&plan.root, info);
    let exec_mode = crate::lowering::choose_exec_mode_with(
        &plan.root,
        config.vectorized,
        config.parallelism,
        plan.range,
        &config.cost,
        ratio,
    );
    let _ = writeln!(explain, "== Step 6: selected plan (est. cost {est_cost:.2}) ==");
    let _ = writeln!(explain, "{}", plan.render());
    let (tuple_cost, batch_cost) = crate::lowering::decode_costs_per_record(&config.cost, ratio);
    let _ = writeln!(
        explain,
        "exec mode: {exec_mode} (batch-capable root run: {}, base compression {:.2}, \
         decode cost/record tuple {:.4} vs batch {:.4})",
        crate::lowering::batch_run_len(&plan.root),
        ratio,
        tuple_cost,
        batch_cost,
    );

    // Per-node lowering: each operator keeps its native kernel only while
    // it wins its own cost comparison (scans priced with their own base's
    // compression ratio); the decisions drive the batched execution path.
    let op_modes = crate::lowering::choose_op_modes(
        &plan.root,
        !matches!(exec_mode, ExecMode::RecordAtATime),
        info,
        &config.cost,
    );
    let _ = writeln!(explain, "per-op modes (pre-order, margin = tuple - batch cost/record):");
    for (id, d) in op_modes.iter().enumerate() {
        let _ = writeln!(
            explain,
            "  op {id}: {} (tuple {:.4} vs batch {:.4}, margin {:+.4})",
            d.mode,
            d.tuple_cost,
            d.batch_cost,
            d.margin(),
        );
    }

    Ok(Optimized {
        plan,
        est_cost,
        est_probed_cost: root.probed_cost,
        est_pages_skipped,
        transform_report,
        dp_stats,
        block_count: blocks.blocks.len(),
        exec_mode,
        op_modes,
        explain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::info::CatalogRef;
    use seq_core::{record, schema, AttrType, BaseSequence, Record, Schema, Value};
    use seq_exec::{execute, ExecContext};
    use seq_ops::{AggFunc, Expr, SeqQuery, Window};
    use seq_storage::Catalog;

    fn stock_schema() -> Schema {
        schema(&[("time", AttrType::Int), ("close", AttrType::Float)])
    }

    /// A catalog materializing something like Table 1.
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.set_page_capacity(16);
        let mk = |lo: i64, hi: i64, keep: &dyn Fn(i64) -> bool, scale: f64| {
            BaseSequence::from_entries(
                stock_schema(),
                (lo..=hi)
                    .filter(|p| keep(*p))
                    .map(|p| (p, record![p, (p as f64) * scale]))
                    .collect(),
            )
            .unwrap()
        };
        c.register("IBM", &mk(200, 500, &|p| p % 20 != 0, 1.0)); // density .95
        c.register("DEC", &mk(1, 350, &|p| p % 10 < 7, 0.5)); // density .7
        c.register("HP", &mk(1, 750, &|_| true, 0.8)); // density 1.0
        c
    }

    fn fig3_query() -> QueryGraph {
        SeqQuery::base("DEC")
            .compose_with(SeqQuery::base("IBM").compose_filtered(
                SeqQuery::base("HP"),
                Expr::attr("close").gt(Expr::attr("close_r")),
            ))
            .build()
    }

    #[test]
    fn optimize_and_execute_fig3() {
        let c = catalog();
        let info = CatalogRef(&c);
        let q = fig3_query();
        let opt = optimize(&q, &info, &OptimizerConfig::new(Span::all())).unwrap();
        assert_eq!(opt.block_count, 1);
        assert!(opt.est_cost.is_finite());
        assert!(opt.explain.contains("Step 6"));

        let ctx = ExecContext::new(&c);
        let out = execute(&opt.plan, &ctx).unwrap();
        assert!(!out.is_empty());
        // Every output is within the restricted span [200, 350].
        assert!(out.iter().all(|(p, _)| (200..=350).contains(p)));
        // Each output composes DEC, IBM, HP records: arity 6.
        assert_eq!(out[0].1.arity(), 6);
        // And IBM.close > HP.close holds (columns 3 and 5).
        for (_, r) in &out {
            let ibm = r.value(3).unwrap().as_f64().unwrap();
            let hp = r.value(5).unwrap().as_f64().unwrap();
            assert!(ibm > hp);
        }
    }

    #[test]
    fn optimized_matches_naive_config() {
        let c = catalog();
        let info = CatalogRef(&c);
        let q = fig3_query();
        let range = Span::new(1, 750);
        let full = optimize(&q, &info, &OptimizerConfig::new(range)).unwrap();
        let naive = optimize(&q, &info, &OptimizerConfig::naive(range)).unwrap();

        let ctx = ExecContext::new(&c);
        let a = execute(&full.plan, &ctx).unwrap();
        let b = execute(&naive.plan, &ctx).unwrap();
        assert_eq!(a.len(), b.len());
        for ((p1, r1), (p2, r2)) in a.iter().zip(b.iter()) {
            assert_eq!(p1, p2);
            assert_eq!(r1, r2);
        }
    }

    #[test]
    fn span_restriction_reduces_measured_accesses() {
        let c = catalog();
        let info = CatalogRef(&c);
        let q = fig3_query();
        let range = Span::all();

        let mut with = OptimizerConfig::new(range);
        with.transformations = false;
        let mut without = with.clone();
        without.span_propagation = false;

        let plan_with = optimize(&q, &info, &with).unwrap();
        let plan_without = optimize(&q, &info, &without).unwrap();

        c.reset_measurement();
        let ctx = ExecContext::new(&c);
        let out_with = execute(&plan_with.plan, &ctx).unwrap();
        let snap_with = c.stats().snapshot();

        c.reset_measurement();
        let ctx = ExecContext::new(&c);
        let out_without = execute(&plan_without.plan, &ctx).unwrap();
        let snap_without = c.stats().snapshot();

        assert_eq!(out_with.len(), out_without.len());
        assert!(
            snap_with.page_reads < snap_without.page_reads,
            "span propagation should reduce page reads: {} vs {}",
            snap_with.page_reads,
            snap_without.page_reads
        );
        assert!(plan_with.est_cost < plan_without.est_cost);
    }

    #[test]
    fn fig5a_moving_sum_plan() {
        let c = catalog();
        let info = CatalogRef(&c);
        let q = SeqQuery::base("IBM").aggregate(AggFunc::Sum, "close", Window::trailing(6)).build();
        let opt = optimize(&q, &info, &OptimizerConfig::new(Span::new(200, 505))).unwrap();
        assert_eq!(opt.block_count, 1);
        let ctx = ExecContext::new(&c);
        let out = execute(&opt.plan, &ctx).unwrap();
        assert!(!out.is_empty());
        // Spot-check one window: positions 200..=205 hold records except
        // multiples of 20: 201..=205 (200 is dropped). Sum at 205 of
        // closes 201+202+203+204+205.
        let at_205 = out.iter().find(|(p, _)| *p == 205).unwrap();
        let expect: f64 = (201..=205).map(|p| p as f64).sum();
        assert_eq!(at_205.1.value(0).unwrap(), &Value::Float(expect));
    }

    #[test]
    fn fig5b_previous_plan_uses_cache_b() {
        let c = catalog();
        let info = CatalogRef(&c);
        let q = SeqQuery::base("DEC")
            .compose_with(
                SeqQuery::base("IBM")
                    .compose_filtered(
                        SeqQuery::base("HP"),
                        Expr::attr("close").gt(Expr::attr("close_r")),
                    )
                    .previous(),
            )
            .build();
        let opt = optimize(&q, &info, &OptimizerConfig::new(Span::new(1, 350))).unwrap();
        assert_eq!(opt.block_count, 3);
        assert!(opt.plan.render().contains("IncrementalCacheB"));

        let ctx = ExecContext::new(&c);
        let out = execute(&opt.plan, &ctx).unwrap();
        assert!(!out.is_empty());
        assert_eq!(out[0].1.arity(), 6);

        // The naive configuration computes the same answer.
        let naive = optimize(&q, &info, &OptimizerConfig::naive(Span::new(1, 350))).unwrap();
        assert!(naive.plan.render().contains("NaiveProbe"));
        let ctx2 = ExecContext::new(&c);
        let out2 = execute(&naive.plan, &ctx2).unwrap();
        assert_eq!(out, out2);
    }

    #[test]
    fn dp_counters_match_closed_forms_small_n() {
        // For N inputs, extensions evaluated = sum_k C(N,k)·(N−k) = N·2^(N−1)
        // minus the singleton level... measured against the formula in the
        // Property 4.1 experiment; here we pin N=3 exactly:
        // level1→2: 3·2=6, level2→3: 3·1=3 ⇒ 9 = 3·2^2 − 3 (singletons are
        // free).
        let c = catalog();
        let info = CatalogRef(&c);
        let q = fig3_query();
        let opt = optimize(&q, &info, &OptimizerConfig::new(Span::all())).unwrap();
        assert_eq!(opt.dp_stats.plans_evaluated, 9);
        assert!(opt.dp_stats.peak_plans_stored >= 3);
    }

    #[test]
    fn constants_join_for_free() {
        let c = catalog();
        let info = CatalogRef(&c);
        let q = SeqQuery::base("IBM")
            .compose_filtered(
                SeqQuery::constant(
                    schema(&[("threshold", AttrType::Float)]),
                    Record::new(vec![Value::Float(300.0)]),
                ),
                Expr::attr("close").gt(Expr::attr("threshold")),
            )
            .build();
        let opt = optimize(&q, &info, &OptimizerConfig::new(Span::all())).unwrap();
        let ctx = ExecContext::new(&c);
        let out = execute(&opt.plan, &ctx).unwrap();
        assert!(!out.is_empty());
        for (_, r) in &out {
            assert!(r.value(1).unwrap().as_f64().unwrap() > 300.0);
        }
    }

    #[test]
    fn projection_of_reordered_join_preserves_layout() {
        let c = catalog();
        let info = CatalogRef(&c);
        // Project DEC close and HP close out of a 3-way join; whatever order
        // the DP picks, the output layout must be (DEC.close, HP.close).
        let q = SeqQuery::base("DEC")
            .compose_with(SeqQuery::base("IBM").compose_with(SeqQuery::base("HP")))
            .project(["close", "close_r_r"])
            .build();
        let opt = optimize(&q, &info, &OptimizerConfig::new(Span::all())).unwrap();
        let ctx = ExecContext::new(&c);
        let out = execute(&opt.plan, &ctx).unwrap();
        assert!(!out.is_empty());
        for (p, r) in &out {
            assert_eq!(r.arity(), 2);
            // DEC.close = p·0.5, HP.close = p·0.8.
            assert_eq!(r.value(0).unwrap(), &Value::Float(*p as f64 * 0.5));
            assert_eq!(r.value(1).unwrap(), &Value::Float(*p as f64 * 0.8));
        }
    }

    #[test]
    fn forced_join_strategy_shows_in_plan() {
        let c = catalog();
        let info = CatalogRef(&c);
        let q = SeqQuery::base("IBM").compose_with(SeqQuery::base("HP")).build();
        for strat in [
            JoinStrategy::LockStep,
            JoinStrategy::StreamLeftProbeRight,
            JoinStrategy::StreamRightProbeLeft,
        ] {
            let mut cfg = OptimizerConfig::new(Span::all());
            cfg.forced_join_strategy = Some(strat);
            let opt = optimize(&q, &info, &cfg).unwrap();
            assert!(
                opt.plan.render().contains(&format!("{strat:?}")),
                "{strat:?} missing from:\n{}",
                opt.plan.render()
            );
            let ctx = ExecContext::new(&c);
            let out = execute(&opt.plan, &ctx).unwrap();
            assert_eq!(out.len(), 285); // |IBM ∩ HP| in [200,500]: 301 − 16 multiples of 20
        }
    }
}
