//! Execution-mode lowering: record-at-a-time vs vectorized.
//!
//! The two execution paths produce identical results, so choosing between
//! them is purely a physical decision, made after plan selection (Step 6).
//! Vectorization pays off proportionally to the length of the contiguous
//! run of batch-capable operators at the plan root — each such operator
//! amortizes its per-record dispatch and counter traffic over a whole
//! batch. Every stream-strategy operator — including compose (both join
//! strategies), Cache-B value offsets, and cumulative/whole-span
//! aggregates — now has a native batch kernel; only the naive probe-walk
//! strategies and constants remain block boundaries that interpose a
//! record-path adapter.

use seq_core::Span;
use seq_exec::PhysNode;

/// Which executor entry point a plan should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Record-at-a-time cursors ([`seq_exec::execute`]).
    RecordAtATime,
    /// Vectorized batch kernels ([`seq_exec::execute_batched`]).
    Batched,
    /// Morsel-driven parallel batch pipelines
    /// ([`seq_exec::execute_parallel`]).
    Parallel {
        /// Worker thread count (always `>= 2` when selected).
        workers: usize,
    },
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::RecordAtATime => write!(f, "record-at-a-time"),
            ExecMode::Batched => write!(f, "batched"),
            ExecMode::Parallel { workers } => write!(f, "parallel({workers})"),
        }
    }
}

/// Length of the contiguous batch-capable operator run at the plan root —
/// the stretch that executes natively vectorized before the first block
/// boundary forces a fallback adapter.
pub fn batch_run_len(node: &PhysNode) -> usize {
    if !node.is_batch_capable() {
        return 0;
    }
    1 + match node {
        PhysNode::Select { input, .. }
        | PhysNode::Project { input, .. }
        | PhysNode::PosOffset { input, .. }
        | PhysNode::Aggregate { input, .. }
        | PhysNode::ValueOffset { input, .. } => batch_run_len(input),
        // A Strategy-A compose only streams its outer side in batches; the
        // probed side is a record-path subtree by construction.
        PhysNode::Compose { left, right, strategy, .. } => match strategy {
            seq_exec::JoinStrategy::LockStep => batch_run_len(left) + batch_run_len(right),
            seq_exec::JoinStrategy::StreamLeftProbeRight => batch_run_len(left),
            seq_exec::JoinStrategy::StreamRightProbeLeft => batch_run_len(right),
        },
        _ => 0,
    }
}

/// Decide the execution mode for a selected plan.
///
/// Parallel wins when the user asked for more than one worker *and* the
/// plan can be evaluated morsel-by-morsel: every operator position-
/// partitionable and the materialized range bounded (morsels are contiguous
/// position intervals). Partitionability, not batch-capability, is the
/// gate — a partitionable plan whose root run is all adapters (e.g. a
/// lock-step join of bases) still splits across workers. Otherwise the
/// vectorized single-threaded path applies when the root run has at least
/// one native batch kernel, and the record path is the final fallback.
pub fn choose_exec_mode(
    root: &PhysNode,
    vectorized: bool,
    parallelism: usize,
    range: Span,
) -> ExecMode {
    choose_exec_mode_with(
        root,
        vectorized,
        parallelism,
        range,
        &crate::cost::CostParams::default(),
        1.0,
    )
}

/// Per-record decode cost of the two sequential paths over pages with
/// compression `ratio` (encoded bytes over plain). The record path
/// materializes every entered page as a full row view — each value is
/// decoded and copied regardless of encoding — while the batch path's bulk
/// decoders stream the encoded representation directly into column vectors
/// (work proportional to encoded size) and its fused select kernels decode
/// only survivors. Returned as `(tuple, batch)` so the lowering decision
/// and EXPLAIN can show the margin.
pub fn decode_costs_per_record(params: &crate::cost::CostParams, ratio: f64) -> (f64, f64) {
    let ratio = ratio.clamp(0.0, 1.0);
    let tuple = params.record_cpu + params.decode_cpu;
    let batch = params.record_cpu + params.decode_cpu * ratio;
    (tuple, batch)
}

/// One operator's costed batch-vs-tuple lowering decision.
///
/// `tuple_cost` and `batch_cost` are per-record CPU prices of running this
/// one operator on each path: scans pay the decode term of
/// [`decode_costs_per_record`] with *their own* base's compression ratio
/// (not the plan-wide minimum), other native kernels pay plain dispatch on
/// either path, and an operator without a batch kernel pays an extra
/// per-record materialize-and-push for the adapter the batch path would
/// interpose. The chosen `mode` is the cheaper side (ties to batch, whose
/// folded counters amortize), which makes the margin the *reason* EXPLAIN
/// and the profile JSON can show next to each node's label.
#[derive(Debug, Clone, PartialEq)]
pub struct OpModeDecision {
    /// The chosen label: `"batch"`, `"batch+sel"`, `"batch+compact"`,
    /// `"tuple"`, or `"fused"`.
    pub mode: &'static str,
    /// Per-record cost of this operator on the record-at-a-time path.
    pub tuple_cost: f64,
    /// Per-record cost of this operator on the batch path (adapter
    /// included when the node has no native kernel).
    pub batch_cost: f64,
}

impl OpModeDecision {
    /// Signed per-record margin, `tuple_cost - batch_cost`: positive favors
    /// the batch path, negative the tuple path.
    pub fn margin(&self) -> f64 {
        self.tuple_cost - self.batch_cost
    }
}

/// Per-operator costed lowering decisions in pre-order (the profiler's node
/// ids). `in_batch` says whether the root enters on the batch path at all
/// (false lowers the whole tree to tuple, as a record-at-a-time or probed
/// root does). Within the batch path each node is priced individually —
/// scans with their own base's compression ratio from `info` — and keeps
/// its native kernel only while it wins the comparison; a losing or
/// kernel-less node drops its subtree to the record path exactly as
/// [`seq_exec::PhysNode::exec_mode_labels`] describes, so the decisions
/// stay label-compatible with what the executor actually lowers (and can be
/// fed to `execute_batched_assigned` verbatim).
pub fn choose_op_modes(
    root: &PhysNode,
    in_batch: bool,
    info: &dyn crate::info::CatalogInfo,
    params: &crate::cost::CostParams,
) -> Vec<OpModeDecision> {
    let mut out = Vec::with_capacity(root.subtree_size());
    // The batch drivers (and the batch→record adapter) consume selection
    // vectors natively, so the root's consumer is never a dense boundary.
    push_op_modes(root, in_batch, false, info, params, &mut out);
    out
}

/// The leftmost base sequence a subtree scans, if any — the sequence whose
/// meta-data (column statistics, feedback selectivity) prices the filters
/// stacked above it.
fn scanned_base(node: &PhysNode) -> Option<&str> {
    match node {
        PhysNode::Base { name, .. } | PhysNode::FusedScan { name, .. } => Some(name),
        _ => node.children().into_iter().find_map(scanned_base),
    }
}

/// Price the carry-vs-compact choice for a native-batch Select whose
/// survivors have selectivity `sel` over `arity`-column rows.
///
/// Carrying attaches a selection vector (no row copies): each survivor pays
/// one index indirection at the consumer, plus — when the nearest physical
/// consumer above indexes rows densely (`dense_above`) — the compaction the
/// lowering inserts at that boundary anyway. Compacting at the filter
/// gathers each survivor's `arity` slots once, and everything above runs
/// dense. Returned as `(carry, compact)` per *input* record so the margin
/// composes with the other per-record costs.
fn select_policy_costs(
    sel: f64,
    arity: usize,
    dense_above: bool,
    params: &crate::cost::CostParams,
) -> (f64, f64) {
    let sel = sel.clamp(0.0, 1.0);
    let compact = sel * arity as f64 * params.sel_compact_cpu;
    let boundary = if dense_above { compact } else { 0.0 };
    let carry = sel * params.sel_indirect_cpu + boundary;
    (carry, compact)
}

fn push_op_modes(
    node: &PhysNode,
    in_batch: bool,
    dense_above: bool,
    info: &dyn crate::info::CatalogInfo,
    params: &crate::cost::CostParams,
    out: &mut Vec<OpModeDecision>,
) {
    let capable = node.is_batch_capable();
    let (mut tuple_cost, mut batch_cost) = match node {
        PhysNode::Base { name, .. } | PhysNode::FusedScan { name, .. } => {
            decode_costs_per_record(params, info.compression_ratio(name))
        }
        _ if capable => (params.record_cpu, params.record_cpu),
        // No native batch kernel: the batch path would run the tuple kernel
        // behind a RecordToBatch adapter, re-materializing every record.
        _ => (params.record_cpu, params.record_cpu * 2.0),
    };
    // A native-batch Select additionally chooses how to hand survivors
    // down: carry a selection vector or gather densely at the filter. Both
    // sides are priced from the scanned base's statistics (feedback
    // overlay first, model estimate otherwise) and the cheaper side's
    // per-record price folds into the batch cost EXPLAIN shows.
    let mut carry_selection = false;
    if capable && in_batch {
        if let PhysNode::Select { input, predicate, .. } = node {
            let (sel, arity) = match scanned_base(input) {
                Some(name) => (
                    info.measured_selectivity(name).unwrap_or_else(|| {
                        info.meta_of(name)
                            .map(|m| predicate.estimate_selectivity(&m))
                            .unwrap_or(1.0)
                    }),
                    info.schema_of(name).map(|s| s.arity()).unwrap_or(1),
                ),
                None => (1.0, 1),
            };
            let (carry, compact) = select_policy_costs(sel, arity, dense_above, params);
            carry_selection = carry <= compact;
            batch_cost += carry.min(compact);
            // The tuple path materializes every surviving record as it
            // passes the filter — the same per-survivor copy the compact
            // policy pays, so the selection margin compares like with like.
            tuple_cost += sel * arity as f64 * params.sel_compact_cpu;
        }
    }
    let native = in_batch && capable && batch_cost <= tuple_cost;
    let mode = match node {
        PhysNode::FusedScan { .. } => "fused",
        PhysNode::Select { .. } if native && carry_selection => "batch+sel",
        PhysNode::Select { .. } if native => "batch+compact",
        _ if native => "batch",
        _ => "tuple",
    };
    out.push(OpModeDecision { mode, tuple_cost, batch_cost });
    // What the *child* sees above it: a Select kernel evaluates through its
    // input's selection vector (and any later compaction is priced at the
    // Select itself), so it is never a dense boundary; the
    // selection-transparent unit-scope operators pass the question through
    // to their own consumer; aggregates, value offsets, and joins index
    // rows physically.
    let child_dense = match node {
        PhysNode::Select { .. } => false,
        PhysNode::Project { .. } | PhysNode::PosOffset { .. } => dense_above,
        _ => true,
    };
    match node {
        PhysNode::Base { .. } | PhysNode::FusedScan { .. } | PhysNode::Constant { .. } => {}
        PhysNode::Select { input, .. }
        | PhysNode::Project { input, .. }
        | PhysNode::PosOffset { input, .. }
        | PhysNode::Aggregate { input, .. }
        | PhysNode::ValueOffset { input, .. } => {
            push_op_modes(input, native, child_dense, info, params, out)
        }
        PhysNode::Compose { left, right, strategy, .. } => {
            let (l, r) = match strategy {
                seq_exec::JoinStrategy::LockStep => (native, native),
                seq_exec::JoinStrategy::StreamLeftProbeRight => (native, false),
                seq_exec::JoinStrategy::StreamRightProbeLeft => (false, native),
            };
            push_op_modes(left, l, child_dense, info, params, out);
            push_op_modes(right, r, child_dense, info, params, out);
        }
    }
}

/// [`choose_exec_mode`] with the decode-cost term made explicit: the
/// batch-vs-tuple decision compares the per-record decode costs of the two
/// paths over pages compressed to `ratio`. With `ratio = 1.0` (or default
/// parameters on uncompressed data) the comparison degenerates to the purely
/// structural rule — batch wherever a native kernel run exists — and
/// compression only ever widens the batch path's margin, so the structural
/// gates (partitionability, bounded range, batch-capable root run) remain
/// the binding conditions.
pub fn choose_exec_mode_with(
    root: &PhysNode,
    vectorized: bool,
    parallelism: usize,
    range: Span,
    params: &crate::cost::CostParams,
    ratio: f64,
) -> ExecMode {
    if vectorized
        && parallelism > 1
        && root.is_position_partitionable()
        && range.intersect(&root.span()).is_bounded()
    {
        return ExecMode::Parallel { workers: parallelism };
    }
    let (tuple_cost, batch_cost) = decode_costs_per_record(params, ratio);
    if vectorized && batch_run_len(root) > 0 && batch_cost <= tuple_cost {
        ExecMode::Batched
    } else {
        ExecMode::RecordAtATime
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::Span;
    use seq_exec::{AggStrategy, JoinStrategy};

    fn base() -> Box<PhysNode> {
        Box::new(PhysNode::Base { name: "A".into(), span: Span::new(1, 10) })
    }

    #[test]
    fn run_length_counts_contiguous_capable_prefix() {
        let span = Span::new(1, 10);
        assert_eq!(batch_run_len(&base()), 1);
        // Lock-step compose streams both sides in batches: it counts itself
        // plus both child runs.
        let compose = PhysNode::Compose {
            left: base(),
            right: base(),
            predicate: None,
            strategy: JoinStrategy::LockStep,
            span,
        };
        assert_eq!(batch_run_len(&compose), 3);
        let stack = PhysNode::Project { input: Box::new(compose), indices: vec![0], span };
        assert_eq!(batch_run_len(&stack), 4);
        // Strategy-A only streams the outer side in batches.
        let stream_probe = PhysNode::Compose {
            left: base(),
            right: base(),
            predicate: None,
            strategy: JoinStrategy::StreamLeftProbeRight,
            span,
        };
        assert_eq!(batch_run_len(&stream_probe), 2);
        let deep = PhysNode::Project {
            input: Box::new(PhysNode::PosOffset { input: base(), offset: -1, span }),
            indices: vec![0],
            span,
        };
        assert_eq!(batch_run_len(&deep), 3);
        // Naive strategies stay block boundaries.
        let naive_voff = PhysNode::ValueOffset {
            input: base(),
            offset: -1,
            strategy: seq_exec::ValueOffsetStrategy::NaiveProbe,
            span,
        };
        assert_eq!(batch_run_len(&naive_voff), 0);
    }

    #[test]
    fn mode_follows_flag_and_run_length() {
        let span = Span::new(1, 10);
        let b = base();
        assert_eq!(choose_exec_mode(&b, true, 1, span), ExecMode::Batched);
        assert_eq!(choose_exec_mode(&b, false, 1, span), ExecMode::RecordAtATime);
        let cum_agg = PhysNode::Aggregate {
            input: base(),
            func: seq_ops::AggFunc::Sum,
            attr_index: 0,
            window: seq_ops::Window::Cumulative,
            strategy: AggStrategy::CacheA,
            span,
        };
        // Cumulative aggregates run vectorized natively now.
        assert_eq!(batch_run_len(&cum_agg), 2);
        assert_eq!(choose_exec_mode(&cum_agg, true, 1, span), ExecMode::Batched);
        // The naive probe-walk strategy is still a block boundary at the root.
        let naive_agg = PhysNode::Aggregate {
            input: base(),
            func: seq_ops::AggFunc::Sum,
            attr_index: 0,
            window: seq_ops::Window::Cumulative,
            strategy: AggStrategy::NaiveProbe,
            span,
        };
        assert_eq!(choose_exec_mode(&naive_agg, true, 1, span), ExecMode::RecordAtATime);
    }

    #[test]
    fn decode_aware_mode_matches_structural_rule() {
        use crate::cost::CostParams;
        let span = Span::new(1, 10);
        let p = CostParams::default();
        let naive_agg = PhysNode::Aggregate {
            input: base(),
            func: seq_ops::AggFunc::Sum,
            attr_index: 0,
            window: seq_ops::Window::Cumulative,
            strategy: AggStrategy::NaiveProbe,
            span,
        };
        // Uncompressed pages: the decode terms cancel and the decision is
        // exactly the structural one, for every scenario.
        for (node, vectorized, workers) in
            [(&*base(), true, 1), (&*base(), false, 1), (&*base(), true, 4), (&naive_agg, true, 1)]
        {
            assert_eq!(
                choose_exec_mode_with(node, vectorized, workers, span, &p, 1.0),
                choose_exec_mode(node, vectorized, workers, span),
            );
        }
        // Compression only widens the batch path's per-record margin — the
        // structural gates stay binding at any ratio.
        let (t1, b1) = decode_costs_per_record(&p, 1.0);
        let (t2, b2) = decode_costs_per_record(&p, 0.2);
        assert_eq!(t1, t2); // row-view decode is encoding-blind
        assert!(b2 < b1 && b1 <= t1);
        assert_eq!(choose_exec_mode_with(&base(), true, 1, span, &p, 0.2), ExecMode::Batched);
        assert_eq!(
            choose_exec_mode_with(&naive_agg, true, 1, span, &p, 0.2),
            ExecMode::RecordAtATime,
        );
    }

    #[test]
    fn per_op_decisions_agree_with_structural_labels() {
        use crate::cost::CostParams;
        use crate::info::StaticCatalogInfo;
        let span = Span::new(1, 10);
        let p = CostParams::default();
        let info = StaticCatalogInfo::new(16);
        // A mixed tree: batch-capable prefix, a naive value offset (no
        // kernel), and a Strategy-A compose whose probed side is a record
        // subtree by construction.
        let naive_voff = PhysNode::ValueOffset {
            input: base(),
            offset: -1,
            strategy: seq_exec::ValueOffsetStrategy::NaiveProbe,
            span,
        };
        let plan = PhysNode::Compose {
            left: Box::new(PhysNode::Project {
                input: Box::new(naive_voff),
                indices: vec![0],
                span,
            }),
            right: base(),
            predicate: None,
            strategy: JoinStrategy::StreamLeftProbeRight,
            span,
        };
        for in_batch in [true, false] {
            let decisions = choose_op_modes(&plan, in_batch, &info, &p);
            let labels: Vec<&str> = decisions.iter().map(|d| d.mode).collect();
            assert_eq!(labels, plan.exec_mode_labels(in_batch), "in_batch={in_batch}");
        }
        let decisions = choose_op_modes(&plan, true, &info, &p);
        // [Compose, Project, ValueOffset(naive), Base, Base(probed)]
        assert_eq!(decisions.len(), 5);
        for d in &decisions {
            match d.mode {
                // Native kernels win (or tie) their comparison.
                "batch" => assert!(d.margin() >= 0.0, "{d:?}"),
                // The naive value offset pays the adapter penalty; the
                // probed base is structural (its costs still favor batch,
                // but Strategy-A opens it in probe mode).
                "tuple" => assert!(d.margin() < 0.0 || d.batch_cost <= d.tuple_cost, "{d:?}"),
                other => panic!("unexpected mode {other}"),
            }
        }
        // The kernel-less node is the one with a strictly negative margin.
        assert!(decisions[2].margin() < 0.0);
        assert_eq!(decisions[2].mode, "tuple");
    }

    #[test]
    fn select_policy_follows_consumer_shape_and_selectivity() {
        use crate::cost::CostParams;
        use crate::info::{FeedbackStats, StaticCatalogInfo, StatsOverlay, WithFeedback};
        use seq_core::{schema, AttrType, SeqMeta};
        let span = Span::new(1, 1000);
        let p = CostParams::default();
        let mut info = StaticCatalogInfo::new(16);
        info.insert(
            "A",
            schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
            SeqMeta::with_span(span, 1.0),
        );
        let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
        let pred = seq_ops::Expr::attr("close").gt(seq_ops::Expr::lit(10.0)).bind(&sch).unwrap();
        let select =
            |input: Box<PhysNode>| PhysNode::Select { input, predicate: pred.clone(), span };

        // Root consumer is sel-aware: carrying the selection is free of any
        // compaction, so the filter carries.
        let carried = select(Box::new(PhysNode::Base { name: "A".into(), span }));
        let modes = choose_op_modes(&carried, true, &info, &p);
        assert_eq!(modes[0].mode, "batch+sel");
        // Stacked filters evaluate through each other's selections: both
        // carry, and the labels match the executor's structural default.
        let stacked = select(Box::new(select(Box::new(PhysNode::Base { name: "A".into(), span }))));
        let modes = choose_op_modes(&stacked, true, &info, &p);
        assert_eq!(
            modes.iter().map(|d| d.mode).collect::<Vec<_>>(),
            stacked.exec_mode_labels(true),
        );
        assert_eq!(modes[0].mode, "batch+sel");
        assert_eq!(modes[1].mode, "batch+sel");

        // An aggregate above indexes rows physically: the boundary would
        // compact anyway, so compacting at the filter is strictly cheaper
        // than carrying plus the boundary copy.
        let agg = PhysNode::Aggregate {
            input: Box::new(select(Box::new(PhysNode::Base { name: "A".into(), span }))),
            func: seq_ops::AggFunc::Sum,
            attr_index: 1,
            window: seq_ops::Window::trailing(4),
            strategy: AggStrategy::CacheA,
            span,
        };
        let modes = choose_op_modes(&agg, true, &info, &p);
        assert_eq!(modes[0].mode, "batch");
        assert_eq!(modes[1].mode, "batch+compact");
        // A projection between filter and aggregate is selection-transparent:
        // the dense boundary still reaches the filter through it.
        let agg_proj = PhysNode::Aggregate {
            input: Box::new(PhysNode::Project {
                input: Box::new(select(Box::new(PhysNode::Base { name: "A".into(), span }))),
                indices: vec![0, 1],
                span,
            }),
            func: seq_ops::AggFunc::Sum,
            attr_index: 1,
            window: seq_ops::Window::trailing(4),
            strategy: AggStrategy::CacheA,
            span,
        };
        let modes = choose_op_modes(&agg_proj, true, &info, &p);
        assert_eq!(modes[2].mode, "batch+compact");

        // The margin is priced from measured selectivity when feedback is
        // attached: the carried side's cost scales with survivors.
        let mut overlay = StatsOverlay::new();
        overlay.record("A", FeedbackStats { selectivity: Some(0.05), ..Default::default() });
        let fb = WithFeedback::new(&info, &overlay);
        let low = choose_op_modes(&carried, true, &fb, &p);
        let mut dense_overlay = StatsOverlay::new();
        dense_overlay.record("A", FeedbackStats { selectivity: Some(1.0), ..Default::default() });
        let fb_hi = WithFeedback::new(&info, &dense_overlay);
        let high = choose_op_modes(&carried, true, &fb_hi, &p);
        assert_eq!(low[0].mode, "batch+sel");
        assert_eq!(high[0].mode, "batch+sel");
        assert!(low[0].batch_cost < high[0].batch_cost);
        // Both policies priced explicitly: (carry, compact) per input record.
        let (carry, compact) = select_policy_costs(0.5, 2, false, &p);
        assert!(carry < compact);
        let (carry_dense, compact_dense) = select_policy_costs(0.5, 2, true, &p);
        assert!(carry_dense > compact_dense);
    }

    #[test]
    fn parallel_mode_needs_partitionable_plan_and_bounded_range() {
        let span = Span::new(1, 10);
        let b = base();
        assert_eq!(choose_exec_mode(&b, true, 4, span), ExecMode::Parallel { workers: 4 });
        // Parallelism 1 is the sequential batch path.
        assert_eq!(choose_exec_mode(&b, true, 1, span), ExecMode::Batched);
        // Vectorization off keeps everything on the record path.
        assert_eq!(choose_exec_mode(&b, false, 4, span), ExecMode::RecordAtATime);
        // Unbounded range: morsels are position intervals, so no parallel —
        // the single-threaded batch path still applies.
        let unbounded = PhysNode::Base { name: "A".into(), span: Span::all() };
        assert_eq!(choose_exec_mode(&unbounded, true, 4, Span::all()), ExecMode::Batched);
        // A non-partitionable root falls back to the sequential batch path
        // (Cache-B value offsets now have a native batch kernel).
        let voff = PhysNode::ValueOffset {
            input: base(),
            offset: -1,
            strategy: seq_exec::ValueOffsetStrategy::IncrementalCacheB,
            span,
        };
        assert_eq!(choose_exec_mode(&voff, true, 4, span), ExecMode::Batched);
        // A partitionable lock-step join of bases parallelizes.
        let compose = PhysNode::Compose {
            left: base(),
            right: base(),
            predicate: None,
            strategy: JoinStrategy::LockStep,
            span,
        };
        assert_eq!(choose_exec_mode(&compose, true, 4, span), ExecMode::Parallel { workers: 4 });
    }
}
