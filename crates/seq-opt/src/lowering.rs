//! Execution-mode lowering: record-at-a-time vs vectorized.
//!
//! The two execution paths produce identical results, so choosing between
//! them is purely a physical decision, made after plan selection (Step 6).
//! Vectorization pays off proportionally to the length of the contiguous
//! run of batch-capable operators at the plan root — each such operator
//! amortizes its per-record dispatch and counter traffic over a whole
//! batch. A plan whose root is a block boundary (compose, value offset,
//! cumulative aggregate) would only interpose an adapter at the top, so it
//! stays on the record path.

use seq_exec::PhysNode;

/// Which executor entry point a plan should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Record-at-a-time cursors ([`seq_exec::execute`]).
    RecordAtATime,
    /// Vectorized batch kernels ([`seq_exec::execute_batched`]).
    Batched,
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::RecordAtATime => write!(f, "record-at-a-time"),
            ExecMode::Batched => write!(f, "batched"),
        }
    }
}

/// Length of the contiguous batch-capable operator run at the plan root —
/// the stretch that executes natively vectorized before the first block
/// boundary forces a fallback adapter.
pub fn batch_run_len(node: &PhysNode) -> usize {
    if !node.is_batch_capable() {
        return 0;
    }
    1 + match node {
        PhysNode::Select { input, .. }
        | PhysNode::Project { input, .. }
        | PhysNode::PosOffset { input, .. }
        | PhysNode::Aggregate { input, .. } => batch_run_len(input),
        _ => 0,
    }
}

/// Decide the execution mode for a selected plan: batched when vectorization
/// is enabled and the root run has at least one native batch kernel.
pub fn choose_exec_mode(root: &PhysNode, vectorized: bool) -> ExecMode {
    if vectorized && batch_run_len(root) > 0 {
        ExecMode::Batched
    } else {
        ExecMode::RecordAtATime
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::Span;
    use seq_exec::{AggStrategy, JoinStrategy};

    fn base() -> Box<PhysNode> {
        Box::new(PhysNode::Base { name: "A".into(), span: Span::new(1, 10) })
    }

    #[test]
    fn run_length_counts_contiguous_capable_prefix() {
        let span = Span::new(1, 10);
        assert_eq!(batch_run_len(&base()), 1);
        let compose = PhysNode::Compose {
            left: base(),
            right: base(),
            predicate: None,
            strategy: JoinStrategy::LockStep,
            span,
        };
        assert_eq!(batch_run_len(&compose), 0);
        // Project over compose: run stops at the block boundary.
        let stack = PhysNode::Project { input: Box::new(compose), indices: vec![0], span };
        assert_eq!(batch_run_len(&stack), 1);
        let deep = PhysNode::Project {
            input: Box::new(PhysNode::PosOffset { input: base(), offset: -1, span }),
            indices: vec![0],
            span,
        };
        assert_eq!(batch_run_len(&deep), 3);
    }

    #[test]
    fn mode_follows_flag_and_run_length() {
        let span = Span::new(1, 10);
        let b = base();
        assert_eq!(choose_exec_mode(&b, true), ExecMode::Batched);
        assert_eq!(choose_exec_mode(&b, false), ExecMode::RecordAtATime);
        let naive_agg = PhysNode::Aggregate {
            input: base(),
            func: seq_ops::AggFunc::Sum,
            attr_index: 0,
            window: seq_ops::Window::Cumulative,
            strategy: AggStrategy::CacheA,
            span,
        };
        // Cumulative aggregates have no batch kernel at the root.
        assert_eq!(choose_exec_mode(&naive_agg, true), ExecMode::RecordAtATime);
    }
}
