//! Execution-mode lowering: record-at-a-time vs vectorized.
//!
//! The two execution paths produce identical results, so choosing between
//! them is purely a physical decision, made after plan selection (Step 6).
//! Vectorization pays off proportionally to the length of the contiguous
//! run of batch-capable operators at the plan root — each such operator
//! amortizes its per-record dispatch and counter traffic over a whole
//! batch. A plan whose root is a block boundary (compose, value offset,
//! cumulative aggregate) would only interpose an adapter at the top, so it
//! stays on the record path.

use seq_core::Span;
use seq_exec::PhysNode;

/// Which executor entry point a plan should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Record-at-a-time cursors ([`seq_exec::execute`]).
    RecordAtATime,
    /// Vectorized batch kernels ([`seq_exec::execute_batched`]).
    Batched,
    /// Morsel-driven parallel batch pipelines
    /// ([`seq_exec::execute_parallel`]).
    Parallel {
        /// Worker thread count (always `>= 2` when selected).
        workers: usize,
    },
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::RecordAtATime => write!(f, "record-at-a-time"),
            ExecMode::Batched => write!(f, "batched"),
            ExecMode::Parallel { workers } => write!(f, "parallel({workers})"),
        }
    }
}

/// Length of the contiguous batch-capable operator run at the plan root —
/// the stretch that executes natively vectorized before the first block
/// boundary forces a fallback adapter.
pub fn batch_run_len(node: &PhysNode) -> usize {
    if !node.is_batch_capable() {
        return 0;
    }
    1 + match node {
        PhysNode::Select { input, .. }
        | PhysNode::Project { input, .. }
        | PhysNode::PosOffset { input, .. }
        | PhysNode::Aggregate { input, .. } => batch_run_len(input),
        _ => 0,
    }
}

/// Decide the execution mode for a selected plan.
///
/// Parallel wins when the user asked for more than one worker *and* the
/// plan can be evaluated morsel-by-morsel: every operator position-
/// partitionable and the materialized range bounded (morsels are contiguous
/// position intervals). Partitionability, not batch-capability, is the
/// gate — a partitionable plan whose root run is all adapters (e.g. a
/// lock-step join of bases) still splits across workers. Otherwise the
/// vectorized single-threaded path applies when the root run has at least
/// one native batch kernel, and the record path is the final fallback.
pub fn choose_exec_mode(
    root: &PhysNode,
    vectorized: bool,
    parallelism: usize,
    range: Span,
) -> ExecMode {
    if vectorized
        && parallelism > 1
        && root.is_position_partitionable()
        && range.intersect(&root.span()).is_bounded()
    {
        return ExecMode::Parallel { workers: parallelism };
    }
    if vectorized && batch_run_len(root) > 0 {
        ExecMode::Batched
    } else {
        ExecMode::RecordAtATime
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::Span;
    use seq_exec::{AggStrategy, JoinStrategy};

    fn base() -> Box<PhysNode> {
        Box::new(PhysNode::Base { name: "A".into(), span: Span::new(1, 10) })
    }

    #[test]
    fn run_length_counts_contiguous_capable_prefix() {
        let span = Span::new(1, 10);
        assert_eq!(batch_run_len(&base()), 1);
        let compose = PhysNode::Compose {
            left: base(),
            right: base(),
            predicate: None,
            strategy: JoinStrategy::LockStep,
            span,
        };
        assert_eq!(batch_run_len(&compose), 0);
        // Project over compose: run stops at the block boundary.
        let stack = PhysNode::Project { input: Box::new(compose), indices: vec![0], span };
        assert_eq!(batch_run_len(&stack), 1);
        let deep = PhysNode::Project {
            input: Box::new(PhysNode::PosOffset { input: base(), offset: -1, span }),
            indices: vec![0],
            span,
        };
        assert_eq!(batch_run_len(&deep), 3);
    }

    #[test]
    fn mode_follows_flag_and_run_length() {
        let span = Span::new(1, 10);
        let b = base();
        assert_eq!(choose_exec_mode(&b, true, 1, span), ExecMode::Batched);
        assert_eq!(choose_exec_mode(&b, false, 1, span), ExecMode::RecordAtATime);
        let naive_agg = PhysNode::Aggregate {
            input: base(),
            func: seq_ops::AggFunc::Sum,
            attr_index: 0,
            window: seq_ops::Window::Cumulative,
            strategy: AggStrategy::CacheA,
            span,
        };
        // Cumulative aggregates have no batch kernel at the root.
        assert_eq!(choose_exec_mode(&naive_agg, true, 1, span), ExecMode::RecordAtATime);
    }

    #[test]
    fn parallel_mode_needs_partitionable_plan_and_bounded_range() {
        let span = Span::new(1, 10);
        let b = base();
        assert_eq!(choose_exec_mode(&b, true, 4, span), ExecMode::Parallel { workers: 4 });
        // Parallelism 1 is the sequential batch path.
        assert_eq!(choose_exec_mode(&b, true, 1, span), ExecMode::Batched);
        // Vectorization off keeps everything on the record path.
        assert_eq!(choose_exec_mode(&b, false, 4, span), ExecMode::RecordAtATime);
        // Unbounded range: morsels are position intervals, so no parallel —
        // the single-threaded batch path still applies.
        let unbounded = PhysNode::Base { name: "A".into(), span: Span::all() };
        assert_eq!(choose_exec_mode(&unbounded, true, 4, Span::all()), ExecMode::Batched);
        // A non-partitionable root falls back to batched/record.
        let voff = PhysNode::ValueOffset {
            input: base(),
            offset: -1,
            strategy: seq_exec::ValueOffsetStrategy::IncrementalCacheB,
            span,
        };
        assert_eq!(choose_exec_mode(&voff, true, 4, span), ExecMode::RecordAtATime);
        // A partitionable plan with no batch kernel at the root (lock-step
        // join of bases) still parallelizes through the adapters.
        let compose = PhysNode::Compose {
            left: base(),
            right: base(),
            predicate: None,
            strategy: JoinStrategy::LockStep,
            span,
        };
        assert_eq!(batch_run_len(&compose), 0);
        assert_eq!(choose_exec_mode(&compose, true, 4, span), ExecMode::Parallel { workers: 4 });
    }
}
