//! Morsel-driven parallel scaling: the batch-path select → project →
//! window-avg plan over a million-record sequence at 1, 2, 4, and 8
//! workers. Degree 1 is exactly the sequential batch path, so speedups are
//! relative to it. Records the sweep in `BENCH_parallel.json` at the repo
//! root, including the host's core count — on a single-core host the
//! workers serialize and the sweep measures coordination overhead, not
//! speedup.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use seq_core::{record, schema, AttrType, BaseSequence, Span};
use seq_exec::{
    execute_batched, execute_parallel_with, AggStrategy, ExecContext, ParallelConfig, PhysNode,
    PhysPlan,
};
use seq_ops::{AggFunc, Expr, Window};
use seq_storage::Catalog;
use seq_workload::Rng;

const N: i64 = 1_000_000;
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn build_catalog() -> Catalog {
    let mut rng = Rng::seed_from_u64(0xb47c);
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    let mut entries = Vec::with_capacity(N as usize);
    for p in 1..=N {
        entries.push((p, record![p, rng.gen_range(0.0..100.0)]));
    }
    let base = BaseSequence::from_entries(sch, entries).unwrap();
    let mut catalog = Catalog::new();
    catalog.register("TICKS", &base);
    catalog
}

/// select(close > 30) → project(close) → 16-day trailing average — the same
/// plan `batch_vs_tuple` measures, and fully position-partitionable.
fn plan() -> PhysPlan {
    let span = Span::new(1, N);
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    let node = PhysNode::Aggregate {
        input: Box::new(PhysNode::Project {
            input: Box::new(PhysNode::Select {
                input: Box::new(PhysNode::Base { name: "TICKS".into(), span }),
                predicate: Expr::attr("close").gt(Expr::lit(30.0)).bind(&sch).unwrap(),
                span,
            }),
            indices: vec![1],
            span,
        }),
        func: AggFunc::Avg,
        attr_index: 0,
        window: Window::trailing(16),
        strategy: AggStrategy::CacheAIncremental,
        span,
    };
    PhysPlan::new(node, span)
}

fn time_once<F: FnMut() -> usize>(f: &mut F) -> Duration {
    let start = Instant::now();
    black_box(f());
    start.elapsed()
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn bench(c: &mut Criterion) {
    let catalog = build_catalog();
    let plan = plan();

    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    for workers in WORKER_SWEEP {
        group.bench_function(format!("workers_{workers}"), |b| {
            b.iter(|| {
                let ctx = ExecContext::new(&catalog);
                execute_parallel_with(&plan, &ctx, ParallelConfig::with_workers(workers))
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();

    // Recorded artifact: interleaved min-of-7 sweep, anchored by a sanity
    // check that every degree returns the sequential batch-path rows.
    let ctx = ExecContext::new(&catalog);
    let rows = execute_batched(&plan, &ctx).unwrap();
    for workers in WORKER_SWEEP {
        let ctx = ExecContext::new(&catalog);
        let got =
            execute_parallel_with(&plan, &ctx, ParallelConfig::with_workers(workers)).unwrap();
        assert_eq!(rows.len(), got.len(), "degree {workers} changed the row count");
        assert!(
            rows.iter().zip(&got).all(|(a, b)| a.0 == b.0),
            "degree {workers} changed the output positions"
        );
    }

    // Speedup is only a meaningful claim when the host can actually run
    // workers concurrently. On one core every degree > 1 just measures
    // coordination overhead, so the multi-degree timing sweep is skipped
    // outright and the artifact says why in a machine-readable field —
    // `"skipped_reason": "single_core"` — instead of recording
    // overhead-only numbers that read like a failed scaling result. (The
    // per-degree row-equivalence assertions above still ran.)
    let cores = host_cores();
    let claim_speedup = cores > 1;
    let timed_sweep: &[usize] = if claim_speedup { &WORKER_SWEEP } else { &WORKER_SWEEP[..1] };

    const SAMPLES: usize = 7;
    let mut best = vec![Duration::MAX; timed_sweep.len()];
    for _ in 0..SAMPLES {
        for (slot, &workers) in timed_sweep.iter().enumerate() {
            let mut run = || {
                let ctx = ExecContext::new(&catalog);
                execute_parallel_with(&plan, &ctx, ParallelConfig::with_workers(workers))
                    .unwrap()
                    .len()
            };
            best[slot] = best[slot].min(time_once(&mut run));
        }
    }

    let base = best[0].as_secs_f64();
    println!("\nparallel_scaling summary ({cores} host cores):");
    if !claim_speedup {
        println!("  single-core host: timing degree 1 only, sweep skipped (single_core)");
    }
    let mut entries = String::new();
    for (slot, &workers) in timed_sweep.iter().enumerate() {
        let ms = best[slot].as_secs_f64() * 1e3;
        let rate = rows.len() as f64 / best[slot].as_secs_f64();
        if slot > 0 {
            entries.push_str(",\n");
        }
        if claim_speedup {
            let speedup = base / best[slot].as_secs_f64();
            println!("  {workers} worker(s): {ms:.2}ms ({speedup:.2}x vs degree 1)");
            entries.push_str(&format!(
                "    {{\"workers\": {workers}, \"ms\": {ms:.3}, \"rows_per_sec\": {rate:.0}, \
                 \"speedup_vs_1\": {speedup:.2}}}"
            ));
        } else {
            println!("  {workers} worker(s): {ms:.2}ms");
            entries.push_str(&format!(
                "    {{\"workers\": {workers}, \"ms\": {ms:.3}, \"rows_per_sec\": {rate:.0}, \
                 \"speedup_vs_1\": null}}"
            ));
        }
    }

    let (skipped_reason, note) = if claim_speedup {
        ("null", "degree 1 is the sequential batch path; speedups are relative to it")
    } else {
        (
            "\"single_core\"",
            "single-core host: multi-degree timings skipped (they would measure coordination \
             overhead, not parallel speedup); row-equivalence was still asserted per degree",
        )
    };
    let json = format!(
        "{{\n  \"benchmark\": \"parallel_scaling\",\n  \"plan\": \"select(close>30) -> \
         project(close) -> avg over trailing(16)\",\n  \"input_records\": {N},\n  \
         \"output_records\": {},\n  \"batch_size\": {},\n  \"host_cores\": {cores},\n  \
         \"available_parallelism\": {cores},\n  \"samples_per_degree\": {SAMPLES},\n  \
         \"statistic\": \"min of interleaved samples\",\n  \
         \"skipped_reason\": {skipped_reason},\n  \"note\": \"{note}\",\n  \
         \"sweep\": [\n{entries}\n  ]\n}}\n",
        rows.len(),
        seq_exec::DEFAULT_BATCH_SIZE,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
