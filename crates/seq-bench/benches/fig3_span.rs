//! E2 — Table 1 / Figure 3: execution with and without bidirectional span
//! propagation, at two scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seq_core::Span;
use seq_exec::{execute, ExecContext};
use seq_opt::{optimize, CatalogRef, OptimizerConfig};
use seq_workload::{queries, table1_catalog};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_span_propagation");
    group.sample_size(30);

    for &scale in &[20i64, 100] {
        let catalog = table1_catalog(scale, 42, 64);
        let query = queries::fig3_span_query();
        let info = CatalogRef(&catalog);
        let on = optimize(&query, &info, &OptimizerConfig::new(Span::all())).unwrap();
        let mut cfg = OptimizerConfig::new(Span::all());
        cfg.span_propagation = false;
        let off = optimize(&query, &info, &cfg).unwrap();

        group.bench_function(BenchmarkId::new("span_propagation_on", scale), |b| {
            b.iter(|| {
                let ctx = ExecContext::new(&catalog);
                execute(&on.plan, &ctx).unwrap().len()
            })
        });
        group.bench_function(BenchmarkId::new("span_propagation_off", scale), |b| {
            b.iter(|| {
                let ctx = ExecContext::new(&catalog);
                execute(&off.plan, &ctx).unwrap().len()
            })
        });
        // The optimization itself (all six steps) is cheap; time it too.
        group.bench_function(BenchmarkId::new("optimize_full_pipeline", scale), |b| {
            b.iter(|| optimize(&query, &info, &OptimizerConfig::new(Span::all())).unwrap().est_cost)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
