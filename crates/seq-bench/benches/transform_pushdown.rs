//! E8 — §3.1 pushdown: a selective predicate applied below vs above a
//! stream-probe positional join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seq_bench::e8_pushdown;
use seq_exec::{execute, ExecContext, JoinStrategy, PhysNode, PhysPlan};
use seq_ops::{Expr, SeqQuery};
use seq_opt::{optimize, CatalogRef, OptimizerConfig};
use seq_storage::Catalog;
use seq_workload::SeqSpec;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("pushdown");
    group.sample_size(20);
    let n = 20_000i64;

    // Shared world, threshold keeping 10% of A.
    let mut catalog = Catalog::new();
    catalog.set_page_capacity(16);
    catalog.register("A", &SeqSpec::new(seq_core::Span::new(1, n), 0.9, 5).generate());
    catalog.register("B", &SeqSpec::new(seq_core::Span::new(1, n), 0.9, 6).generate());
    let threshold = {
        let a = catalog.get("A").unwrap();
        let mut vals: Vec<f64> = seq_core::Sequence::scan(a.as_ref(), seq_core::Span::all())
            .map(|(_, r)| r.value(1).unwrap().as_f64().unwrap())
            .collect();
        vals.sort_by(f64::total_cmp);
        vals[((vals.len() - 1) as f64 * 0.9) as usize]
    };

    let query = SeqQuery::base("A")
        .select(Expr::attr("close").gt(Expr::lit(threshold)))
        .compose_with(SeqQuery::base("B"))
        .build();
    let mut cfg = OptimizerConfig::new(seq_core::Span::new(1, n));
    cfg.forced_join_strategy = Some(JoinStrategy::StreamLeftProbeRight);
    cfg.join_reordering = false;
    let pushed = optimize(&query, &CatalogRef(&catalog), &cfg).unwrap();

    let span = seq_core::Span::new(1, n);
    let late = PhysPlan::new(
        PhysNode::Select {
            input: Box::new(PhysNode::Compose {
                left: Box::new(PhysNode::Base { name: "A".into(), span }),
                right: Box::new(PhysNode::Base { name: "B".into(), span }),
                predicate: None,
                strategy: JoinStrategy::StreamLeftProbeRight,
                span,
            }),
            predicate: Expr::Col(1).gt(Expr::lit(threshold)),
            span,
        },
        span,
    );

    group.bench_function(BenchmarkId::new("selection", "pushed_down"), |b| {
        b.iter(|| {
            let ctx = ExecContext::new(&catalog);
            execute(&pushed.plan, &ctx).unwrap().len()
        })
    });
    group.bench_function(BenchmarkId::new("selection", "applied_late"), |b| {
        b.iter(|| {
            let ctx = ExecContext::new(&catalog);
            execute(&late, &ctx).unwrap().len()
        })
    });

    // And the counter-based sweep (E8's table) as a smoke check.
    let rows = e8_pushdown::run_selectivity(4_000, 0.2);
    assert!(rows.pushed.storage.probes < rows.late.storage.probes);
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
