//! E4 — Figure 5: Cache-Strategy-A (windowed aggregates) and
//! Cache-Strategy-B (value offsets over derived sequences) against their
//! naive counterparts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seq_bench::e4_caching::{agg_catalog, prev_catalog, threshold_at};
use seq_core::Span;
use seq_exec::{execute, ExecContext};
use seq_ops::{Expr, SeqQuery};
use seq_opt::{optimize, CatalogRef, OptimizerConfig};
use seq_workload::queries;

fn bench_fig5a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5a_cache_strategy_a");
    group.sample_size(15);
    let n = 20_000i64;
    let catalog = agg_catalog(n);
    let info = CatalogRef(&catalog);

    for &window in &[6u32, 24] {
        let query = queries::fig5a_moving_sum(window);
        let range = Span::new(1, n + window as i64);
        let cached = optimize(&query, &info, &OptimizerConfig::new(range)).unwrap();
        let mut incr_cfg = OptimizerConfig::new(range);
        incr_cfg.incremental_aggregates = true;
        let incremental = optimize(&query, &info, &incr_cfg).unwrap();
        let mut naive_cfg = OptimizerConfig::new(range);
        naive_cfg.naive_aggregates = true;
        let naive = optimize(&query, &info, &naive_cfg).unwrap();

        group.bench_function(BenchmarkId::new("cache_a_recompute", window), |b| {
            b.iter(|| {
                let ctx = ExecContext::new(&catalog);
                execute(&cached.plan, &ctx).unwrap().len()
            })
        });
        group.bench_function(BenchmarkId::new("cache_a_incremental", window), |b| {
            b.iter(|| {
                let ctx = ExecContext::new(&catalog);
                execute(&incremental.plan, &ctx).unwrap().len()
            })
        });
        group.bench_function(BenchmarkId::new("naive_probe", window), |b| {
            b.iter(|| {
                let ctx = ExecContext::new(&catalog);
                execute(&naive.plan, &ctx).unwrap().len()
            })
        });
    }
    group.finish();
}

fn bench_fig5b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5b_cache_strategy_b");
    group.sample_size(10);
    let n = 4_000i64;
    let catalog = prev_catalog(n);
    let info = CatalogRef(&catalog);
    let threshold = threshold_at(&catalog, 0.5);
    let query = SeqQuery::base("C")
        .compose_with(
            SeqQuery::base("A")
                .compose_with(SeqQuery::base("A2"))
                .select(Expr::attr("close").gt(Expr::lit(threshold)))
                .previous(),
        )
        .build();
    let range = Span::new(1, n);
    let cache_b = optimize(&query, &info, &OptimizerConfig::new(range)).unwrap();
    let mut naive_cfg = OptimizerConfig::new(range);
    naive_cfg.cache_strategy_b = false;
    let naive = optimize(&query, &info, &naive_cfg).unwrap();

    group.bench_function("cache_strategy_b", |b| {
        b.iter(|| {
            let ctx = ExecContext::new(&catalog);
            execute(&cache_b.plan, &ctx).unwrap().len()
        })
    });
    group.bench_function("naive_rederivation", |b| {
        b.iter(|| {
            let ctx = ExecContext::new(&catalog);
            execute(&naive.plan, &ctx).unwrap().len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig5a, bench_fig5b);
criterion_main!(benches);
