//! Compose join strategies, tuple vs batch: the same positional join run
//! under Join-Strategy-B (lock-step merge) and Join-Strategy-A (stream one
//! side, probe the other — both orientations), each on the record-at-a-time
//! and the vectorized path. Two overlap profiles bracket the trade-off:
//!
//! * **dense** — both inputs populate every position, so lock-step streams
//!   both sides once and Strategy-A pays a point probe per match: the
//!   headline case for the batched lock-step kernel;
//! * **sparse** — one side holds ~5% of positions, so Strategy-A streams
//!   the sparse side and probes only where it can match, while lock-step
//!   drags the dense side through every position.
//!
//! Reports tuple→batch speedups per (overlap, strategy) cell and records
//! them in `BENCH_compose.json` at the repo root (same shape as
//! `BENCH_pushdown.json`).

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use seq_core::{record, schema, AttrType, BaseSequence, Span};
use seq_exec::{execute, execute_batched, ExecContext, JoinStrategy, PhysNode, PhysPlan};
use seq_storage::Catalog;
use seq_workload::Rng;

const N: i64 = 1_000_000;
const SPARSE_DENSITY: f64 = 0.05;

fn build_catalog() -> Catalog {
    let mut rng = Rng::seed_from_u64(0xc0_5e);
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    let mut dense_l = Vec::with_capacity(N as usize);
    let mut dense_r = Vec::with_capacity(N as usize);
    let mut sparse = Vec::new();
    for p in 1..=N {
        dense_l.push((p, record![p, rng.gen_range(0.0..100.0)]));
        dense_r.push((p, record![p, rng.gen_range(-50.0..50.0)]));
        if rng.gen_bool(SPARSE_DENSITY) {
            sparse.push((p, record![p, rng.gen_range(0.0..100.0)]));
        }
    }
    let mut catalog = Catalog::new();
    catalog.register("DL", &BaseSequence::from_entries(sch.clone(), dense_l).unwrap());
    catalog.register("DR", &BaseSequence::from_entries(sch.clone(), dense_r).unwrap());
    catalog.register("SP", &BaseSequence::from_entries(sch, sparse).unwrap());
    catalog
}

fn compose_plan(left: &str, right: &str, strategy: JoinStrategy) -> PhysPlan {
    let span = Span::new(1, N);
    let node = PhysNode::Compose {
        left: Box::new(PhysNode::Base { name: left.into(), span }),
        right: Box::new(PhysNode::Base { name: right.into(), span }),
        predicate: None,
        strategy,
        span,
    };
    PhysPlan::new(node, span)
}

/// The benchmark grid: (case label, left, right, strategy).
fn cases() -> Vec<(&'static str, &'static str, &'static str, JoinStrategy)> {
    vec![
        ("dense_lockstep", "DL", "DR", JoinStrategy::LockStep),
        ("dense_stream_left", "DL", "DR", JoinStrategy::StreamLeftProbeRight),
        ("sparse_lockstep", "SP", "DR", JoinStrategy::LockStep),
        ("sparse_stream_left", "SP", "DR", JoinStrategy::StreamLeftProbeRight),
        ("sparse_stream_right", "DL", "SP", JoinStrategy::StreamRightProbeLeft),
    ]
}

fn time_once<F: FnMut() -> usize>(f: &mut F) -> Duration {
    let start = Instant::now();
    black_box(f());
    start.elapsed()
}

/// Interleaved min-of-`SAMPLES` for one cell; returns `(tuple, batch, rows)`.
fn measure(catalog: &Catalog, plan: &PhysPlan) -> (Duration, Duration, usize) {
    const SAMPLES: usize = 7;
    let mut run_tuple = || {
        let ctx = ExecContext::new(catalog);
        execute(plan, &ctx).unwrap().len()
    };
    let mut run_batch = || {
        let ctx = ExecContext::new(catalog);
        execute_batched(plan, &ctx).unwrap().len()
    };
    let (mut t_tuple, mut t_batch) = (Duration::MAX, Duration::MAX);
    for _ in 0..SAMPLES {
        t_tuple = t_tuple.min(time_once(&mut run_tuple));
        t_batch = t_batch.min(time_once(&mut run_batch));
    }
    let rows = run_batch();
    (t_tuple, t_batch, rows)
}

fn bench(c: &mut Criterion) {
    let catalog = build_catalog();

    // Correctness anchors: every strategy yields the same join result, and
    // the batched path is bit-identical to the tuple path on every cell.
    let strategies = [
        JoinStrategy::LockStep,
        JoinStrategy::StreamLeftProbeRight,
        JoinStrategy::StreamRightProbeLeft,
    ];
    for (left, right) in [("DL", "DR"), ("SP", "DR")] {
        let ctx = ExecContext::new(&catalog);
        let reference = execute(&compose_plan(left, right, JoinStrategy::LockStep), &ctx).unwrap();
        for strategy in strategies {
            let plan = compose_plan(left, right, strategy);
            let ctx = ExecContext::new(&catalog);
            assert_eq!(
                execute(&plan, &ctx).unwrap(),
                reference,
                "{left}∘{right} under {strategy:?} diverged from lock-step"
            );
            let ctx = ExecContext::new(&catalog);
            assert_eq!(
                execute_batched(&plan, &ctx).unwrap(),
                reference,
                "batched {left}∘{right} under {strategy:?} diverged from tuple path"
            );
        }
    }

    let mut group = c.benchmark_group("compose_strategies");
    group.sample_size(10);
    for (label, left, right, strategy) in cases() {
        let plan = compose_plan(left, right, strategy);
        group.bench_function(format!("{label}/tuple"), |b| {
            b.iter(|| {
                let ctx = ExecContext::new(&catalog);
                execute(&plan, &ctx).unwrap().len()
            })
        });
        group.bench_function(format!("{label}/batch"), |b| {
            b.iter(|| {
                let ctx = ExecContext::new(&catalog);
                execute_batched(&plan, &ctx).unwrap().len()
            })
        });
    }
    group.finish();

    let mut fields = String::new();
    let mut headline = 0.0f64;
    println!("\ncompose_strategies summary:");
    for (label, left, right, strategy) in cases() {
        let plan = compose_plan(left, right, strategy);
        let (tuple, batch, rows) = measure(&catalog, &plan);
        let speedup = tuple.as_secs_f64() / batch.as_secs_f64();
        if label == "dense_lockstep" {
            headline = speedup;
        }
        println!("  {label}: tuple {tuple:?} -> batch {batch:?} ({speedup:.2}x, {rows} rows)");
        fields.push_str(&format!(
            "  \"{label}_rows\": {rows},\n  \"{label}_tuple_ms\": {:.3},\n  \"{label}_batch_ms\": {:.3},\n  \"{label}_speedup\": {:.2},\n",
            tuple.as_secs_f64() * 1e3,
            batch.as_secs_f64() * 1e3,
            speedup,
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"compose_strategies\",\n  \"plan\": \"positional self-join over 1M dense / ~50k sparse records, Strategy-A both orientations vs Strategy-B, tuple vs batch\",\n  \"input_records\": {N},\n  \"sparse_density\": {SPARSE_DENSITY},\n  \"page_capacity\": {},\n  \"batch_size\": {},\n  \"samples_per_path\": 7,\n  \"statistic\": \"min of interleaved samples\",\n{fields}  \"headline\": \"dense_lockstep batch over tuple\",\n  \"headline_speedup\": {headline:.2}\n}}\n",
        seq_storage::DEFAULT_PAGE_CAPACITY,
        seq_exec::DEFAULT_BATCH_SIZE,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_compose.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
