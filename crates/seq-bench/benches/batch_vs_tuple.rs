//! Batch vs tuple-at-a-time execution: the same select → project →
//! window-avg plan over a million-record sequence, run down the
//! record-at-a-time cursor path and the vectorized batch path. Reports the
//! wall-clock ratio and records it in `BENCH_batch.json` at the repo root.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use seq_core::{record, schema, AttrType, BaseSequence, Span};
use seq_exec::{execute, execute_batched, AggStrategy, ExecContext, PhysNode, PhysPlan};
use seq_ops::{AggFunc, Expr, Window};
use seq_storage::Catalog;
use seq_workload::Rng;

const N: i64 = 1_000_000;

fn build_catalog() -> Catalog {
    let mut rng = Rng::seed_from_u64(0xb47c);
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    let mut entries = Vec::with_capacity(N as usize);
    for p in 1..=N {
        entries.push((p, record![p, rng.gen_range(0.0..100.0)]));
    }
    let base = BaseSequence::from_entries(sch, entries).unwrap();
    let mut catalog = Catalog::new();
    catalog.register("TICKS", &base);
    catalog
}

/// select(close > 30) → project(close) → 16-day trailing average.
fn plan() -> PhysPlan {
    let span = Span::new(1, N);
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    let node = PhysNode::Aggregate {
        input: Box::new(PhysNode::Project {
            input: Box::new(PhysNode::Select {
                input: Box::new(PhysNode::Base { name: "TICKS".into(), span }),
                predicate: Expr::attr("close").gt(Expr::lit(30.0)).bind(&sch).unwrap(),
                span,
            }),
            indices: vec![1],
            span,
        }),
        func: AggFunc::Avg,
        attr_index: 0,
        window: Window::trailing(16),
        strategy: AggStrategy::CacheAIncremental,
        span,
    };
    PhysPlan::new(node, span)
}

fn time_once<F: FnMut() -> usize>(f: &mut F) -> Duration {
    let start = Instant::now();
    black_box(f());
    start.elapsed()
}

fn bench(c: &mut Criterion) {
    let catalog = build_catalog();
    let plan = plan();

    let mut group = c.benchmark_group("batch_vs_tuple");
    group.sample_size(10);
    group.bench_function("tuple_at_a_time", |b| {
        b.iter(|| {
            let ctx = ExecContext::new(&catalog);
            execute(&plan, &ctx).unwrap().len()
        })
    });
    group.bench_function("batched", |b| {
        b.iter(|| {
            let ctx = ExecContext::new(&catalog);
            execute_batched(&plan, &ctx).unwrap().len()
        })
    });
    group.finish();

    // Independent measurement for the recorded artifact, plus a sanity check
    // that both paths agree on the result. Samples are interleaved so ambient
    // machine noise hits both paths alike, and each path reports its best
    // observed time (the min is the least noise-sensitive wall-clock statistic).
    let ctx = ExecContext::new(&catalog);
    let rows = execute(&plan, &ctx).unwrap();
    let ctx = ExecContext::new(&catalog);
    assert_eq!(rows, execute_batched(&plan, &ctx).unwrap());

    const SAMPLES: usize = 7;
    let mut run_tuple = || {
        let ctx = ExecContext::new(&catalog);
        execute(&plan, &ctx).unwrap().len()
    };
    let mut run_batched = || {
        let ctx = ExecContext::new(&catalog);
        execute_batched(&plan, &ctx).unwrap().len()
    };
    let (mut tuple, mut batched) = (Duration::MAX, Duration::MAX);
    for _ in 0..SAMPLES {
        tuple = tuple.min(time_once(&mut run_tuple));
        batched = batched.min(time_once(&mut run_batched));
    }
    let speedup = tuple.as_secs_f64() / batched.as_secs_f64();
    let row_rate = |d: Duration| rows.len() as f64 / d.as_secs_f64();
    println!(
        "\nbatch_vs_tuple summary: tuple {tuple:?}, batched {batched:?}, speedup {speedup:.2}x"
    );

    let json = format!(
        "{{\n  \"benchmark\": \"batch_vs_tuple\",\n  \"plan\": \"select(close>30) -> project(close) -> avg over trailing(16)\",\n  \"input_records\": {N},\n  \"output_records\": {},\n  \"batch_size\": {},\n  \"samples_per_path\": {SAMPLES},\n  \"statistic\": \"min of interleaved samples\",\n  \"tuple_at_a_time_ms\": {:.3},\n  \"batched_ms\": {:.3},\n  \"tuple_rows_per_sec\": {:.0},\n  \"batched_rows_per_sec\": {:.0},\n  \"speedup\": {:.2}\n}}\n",
        rows.len(),
        seq_exec::DEFAULT_BATCH_SIZE,
        tuple.as_secs_f64() * 1e3,
        batched.as_secs_f64() * 1e3,
        row_rate(tuple),
        row_rate(batched),
        speedup,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
