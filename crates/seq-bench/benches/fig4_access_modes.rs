//! E3 — Figure 4: the three positional-join strategies across the density
//! sweep (stream one side + probe the other, both variants, vs lock-step).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seq_bench::e3_access_modes::{build_catalog, STRATEGIES};
use seq_core::Span;
use seq_exec::{execute, ExecContext};
use seq_opt::{optimize, CatalogRef, OptimizerConfig};
use seq_workload::queries;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_join_strategies");
    group.sample_size(15);
    let span_n = 40_000i64;

    for &d2 in &[0.01f64, 0.1, 0.9] {
        let catalog = build_catalog(span_n, 0.9, d2, 7);
        let query = queries::pair_join("A", "B", None);
        let info = CatalogRef(&catalog);
        for strat in STRATEGIES {
            let mut cfg = OptimizerConfig::new(Span::new(1, span_n));
            cfg.forced_join_strategy = Some(strat);
            cfg.join_reordering = false;
            let plan = optimize(&query, &info, &cfg).unwrap().plan;
            group.bench_function(BenchmarkId::new(format!("{strat:?}"), format!("d2={d2}")), |b| {
                b.iter(|| {
                    let ctx = ExecContext::new(&catalog);
                    execute(&plan, &ctx).unwrap().len()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
