//! E1 — Example 1.1 / Figure 1: the sequence plan (lock-step scan +
//! Cache-Strategy-B Previous) against the relational nested-subquery plan
//! and its indexed variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seq_core::{Sequence, Span};
use seq_exec::{execute, ExecContext};
use seq_opt::{optimize, CatalogRef, OptimizerConfig};
use seq_relational::{indexed_nested_plan, nested_subquery_plan, RelStats, Relation};
use seq_workload::{queries, weather_catalog, WeatherSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_example_1_1");
    group.sample_size(20);

    for &(n_quakes, n_volcanos) in &[(1_000usize, 200usize), (5_000, 1_000)] {
        let span = Span::new(1, (n_quakes + n_volcanos) as i64 * 12);
        let (catalog, world) =
            weather_catalog(&WeatherSpec::new(span, n_quakes, n_volcanos, 42), 64);
        let optimized = optimize(
            &queries::example_1_1(7.0),
            &CatalogRef(&catalog),
            &OptimizerConfig::new(span),
        )
        .unwrap();
        let volcanos = Relation::from_sequence_entries(
            world.volcanos.schema().clone(),
            world.volcanos.entries(),
        )
        .unwrap();
        let quakes =
            Relation::from_sequence_entries(world.quakes.schema().clone(), world.quakes.entries())
                .unwrap();
        let label = format!("{n_quakes}q_{n_volcanos}v");

        group.bench_function(BenchmarkId::new("sequence_stream_plan", &label), |b| {
            b.iter(|| {
                let ctx = ExecContext::new(&catalog);
                execute(&optimized.plan, &ctx).unwrap().len()
            })
        });
        group.bench_function(BenchmarkId::new("relational_nested_subquery", &label), |b| {
            b.iter(|| {
                let stats = RelStats::new();
                nested_subquery_plan(&volcanos, &quakes, 7.0, &stats).unwrap().len()
            })
        });
        group.bench_function(BenchmarkId::new("relational_indexed", &label), |b| {
            b.iter(|| {
                let stats = RelStats::new();
                indexed_nested_plan(&volcanos, &quakes, 7.0, &stats).unwrap().len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
