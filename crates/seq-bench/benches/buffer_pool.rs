//! E11 — §3.3: the probe-heavy naive plan under LRU buffer pools of varying
//! size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seq_bench::e11_buffer_pool::run_pool;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_pool_probe_heavy");
    group.sample_size(10);
    for pool in [0usize, 8, 128] {
        group.bench_function(BenchmarkId::new("naive_fig5b_plan", pool), |b| {
            b.iter(|| run_pool(2_000, pool).page_reads)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
