//! Columnar encoded pages vs the row layout they replaced: full scans and
//! in-place filtered scans over four datasets, each shaped so its value
//! column lands in one encoding —
//!
//! * **delta** — a slowly drifting integer tick column (zigzag deltas pack
//!   at one byte);
//! * **rle** — a level column constant over runs longer than a page, so
//!   every page body is a single run;
//! * **dict** — a tag column drawn from eight strings (one code byte per
//!   row);
//! * **plain** — high-entropy floats, where encoding buys nothing and the
//!   columnar path must win on layout alone.
//!
//! The row layout is emulated the way pages stored records before the
//! columnar rewrite: fixed-capacity chunks of `(position, Record)` pairs,
//! scanned by materializing every record into the batch. The columnar side
//! is the real storage engine (`scan_batch` bulk decode, and
//! `next_batch_selected` for the filtered cells, which evaluates the
//! predicate over the encoded representation and decodes survivors only).
//! Results land in `BENCH_columnar.json` with per-encoding compression
//! ratios and speedups.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use seq_core::{record, schema, AttrType, BaseSequence, CmpOp, Record, RecordBatch, Span, Value};
use seq_storage::{Catalog, DEFAULT_PAGE_CAPACITY};
use seq_workload::Rng;

const N: i64 = 500_000;

struct Dataset {
    label: &'static str,
    /// Expected dominant encoding of the value column.
    encoding: &'static str,
    entries: Vec<(i64, Record)>,
    /// Filter on the value column for the in-place cells.
    term: (usize, CmpOp, Value),
}

fn datasets() -> Vec<Dataset> {
    let mut rng = Rng::seed_from_u64(0xC01);
    let tags = ["ACME", "GLOBEX", "INITECH", "HOOLI", "UMBRELLA", "WONKA", "STARK", "TYRELL"];
    let mut tick = 40_000i64;
    let mut make = |f: &mut dyn FnMut(i64, &mut Rng) -> Record| {
        (1..=N).map(|p| (p, f(p, &mut rng))).collect::<Vec<_>>()
    };
    vec![
        Dataset {
            label: "delta",
            encoding: "delta",
            entries: make(&mut |p, rng| {
                tick += rng.gen_range(-60i64..60);
                record![p, tick]
            }),
            term: (1, CmpOp::Gt, Value::Int(40_000)),
        },
        Dataset {
            label: "rle",
            encoding: "rle",
            entries: make(&mut |p, _| record![p, (p / 256) as f64 * 0.5]),
            term: (1, CmpOp::Gt, Value::Float(N as f64 / 256.0 * 0.25)),
        },
        Dataset {
            label: "dict",
            encoding: "dict",
            entries: make(&mut |p, rng| {
                record![p, tags[rng.gen_range(0..tags.len() as u32) as usize]]
            }),
            term: (1, CmpOp::Eq, Value::from("GLOBEX")),
        },
        Dataset {
            label: "plain",
            encoding: "plain",
            entries: make(&mut |p, rng| record![p, rng.gen_range(-100.0..100.0)]),
            term: (1, CmpOp::Gt, Value::Float(0.0)),
        },
    ]
}

fn dataset_schema(label: &str) -> seq_core::Schema {
    match label {
        "delta" => schema(&[("time", AttrType::Int), ("tick", AttrType::Int)]),
        "dict" => schema(&[("time", AttrType::Int), ("tag", AttrType::Str)]),
        _ => schema(&[("time", AttrType::Int), ("level", AttrType::Float)]),
    }
}

/// The pre-columnar page body: a fixed-capacity chunk of owned records.
fn row_chunks(entries: &[(i64, Record)]) -> Vec<Vec<(i64, Record)>> {
    entries.chunks(DEFAULT_PAGE_CAPACITY).map(|c| c.to_vec()).collect()
}

/// Row-layout full scan: materialize every record into fixed-size batches,
/// exactly the per-record work the old layout did on every page.
fn scan_rows(chunks: &[Vec<(i64, Record)>], arity: usize, batch_size: usize) -> usize {
    let mut rows = 0usize;
    let mut batch = RecordBatch::with_capacity(arity, batch_size);
    for chunk in chunks {
        for (pos, rec) in chunk {
            if batch.len() == batch_size {
                rows += batch.len();
                batch = RecordBatch::with_capacity(arity, batch_size);
            }
            batch.push_record(*pos, rec).unwrap();
        }
    }
    rows + black_box(batch).len()
}

/// Row-layout filtered scan: decode every record, evaluate, keep survivors.
fn filter_rows(
    chunks: &[Vec<(i64, Record)>],
    arity: usize,
    batch_size: usize,
    term: &(usize, CmpOp, Value),
) -> usize {
    let (col, op, lit) = term;
    let mut rows = 0usize;
    let mut batch = RecordBatch::with_capacity(arity, batch_size);
    for chunk in chunks {
        for (pos, rec) in chunk {
            if op.holds(rec.values()[*col].total_cmp(lit).unwrap()) {
                if batch.len() == batch_size {
                    rows += batch.len();
                    batch = RecordBatch::with_capacity(arity, batch_size);
                }
                batch.push_record(*pos, rec).unwrap();
            }
        }
    }
    rows + black_box(batch).len()
}

fn time_once<F: FnMut() -> usize>(f: &mut F) -> (Duration, usize) {
    let start = Instant::now();
    let rows = black_box(f());
    (start.elapsed(), rows)
}

/// Interleaved min-of-`SAMPLES` of two closures that must agree on rows.
fn measure<F, G>(label: &str, mut row_path: F, mut col_path: G) -> (Duration, Duration, usize)
where
    F: FnMut() -> usize,
    G: FnMut() -> usize,
{
    const SAMPLES: usize = 7;
    let (mut t_row, mut t_col) = (Duration::MAX, Duration::MAX);
    let (mut rows_row, mut rows_col) = (0usize, 0usize);
    for _ in 0..SAMPLES {
        let (t, r) = time_once(&mut row_path);
        t_row = t_row.min(t);
        rows_row = r;
        let (t, r) = time_once(&mut col_path);
        t_col = t_col.min(t);
        rows_col = r;
    }
    assert_eq!(rows_row, rows_col, "{label}: layouts disagree on row count");
    (t_row, t_col, rows_row)
}

fn bench(c: &mut Criterion) {
    let sets = datasets();
    let span = Span::new(1, N);
    let batch_size = seq_exec::DEFAULT_BATCH_SIZE;

    let mut catalog = Catalog::new();
    for set in &sets {
        let base = BaseSequence::from_entries(dataset_schema(set.label), set.entries.clone());
        catalog.register(set.label, &base.unwrap());
    }

    // Correctness anchors: the encoder picked the intended representation,
    // and the in-place filtered scan returns exactly the rows the
    // decode-then-filter row path keeps.
    for set in &sets {
        let stored = catalog.get(set.label).unwrap();
        assert_eq!(
            stored.compression().columns[1].dominant(),
            set.encoding,
            "{}: value column missed its encoding",
            set.label
        );
        let mut scan = stored.scan_batch(span, batch_size);
        let mut got = Vec::new();
        while let Some((b, _scanned)) =
            scan.next_batch_selected(std::slice::from_ref(&set.term)).unwrap()
        {
            b.append_records_into(&mut got);
        }
        let (_, op, lit) = &set.term;
        let expect: Vec<(i64, Record)> = set
            .entries
            .iter()
            .filter(|(_, r)| op.holds(r.values()[1].total_cmp(lit).unwrap()))
            .cloned()
            .collect();
        assert_eq!(got, expect, "{}: in-place filter diverged from row filter", set.label);
    }

    let mut group = c.benchmark_group("columnar_scan");
    group.sample_size(10);
    for set in &sets {
        let stored = catalog.get(set.label).unwrap();
        let chunks = row_chunks(&set.entries);
        let arity = 2;
        group.bench_function(format!("{}/row", set.label), |b| {
            b.iter(|| scan_rows(&chunks, arity, batch_size))
        });
        group.bench_function(format!("{}/columnar", set.label), |b| {
            b.iter(|| {
                let mut rows = 0usize;
                let mut scan = stored.scan_batch(span, batch_size);
                while let Some(batch) = scan.next_batch() {
                    rows += batch.len();
                }
                rows
            })
        });
    }
    group.finish();

    let mut fields = String::new();
    let mut headline = 0.0f64;
    println!("\ncolumnar_scan summary:");
    for set in &sets {
        let stored = catalog.get(set.label).unwrap();
        let ratio = stored.compression().ratio();
        let chunks = row_chunks(&set.entries);
        let arity = 2;

        let (row_scan, col_scan, rows) = measure(
            set.label,
            || scan_rows(&chunks, arity, batch_size),
            || {
                let mut rows = 0usize;
                let mut scan = stored.scan_batch(span, batch_size);
                while let Some(batch) = scan.next_batch() {
                    rows += batch.len();
                }
                rows
            },
        );
        let scan_speedup = row_scan.as_secs_f64() / col_scan.as_secs_f64();

        let (row_filter, col_filter, kept) = measure(
            set.label,
            || filter_rows(&chunks, arity, batch_size, &set.term),
            || {
                let mut rows = 0usize;
                let mut scan = stored.scan_batch(span, batch_size);
                while let Some((b, _)) =
                    scan.next_batch_selected(std::slice::from_ref(&set.term)).unwrap()
                {
                    rows += b.len();
                }
                rows
            },
        );
        let filter_speedup = row_filter.as_secs_f64() / col_filter.as_secs_f64();

        if set.label == "rle" {
            headline = filter_speedup;
        }
        println!(
            "  {}: ratio {:.2}, scan {row_scan:?} -> {col_scan:?} ({scan_speedup:.2}x), \
             filter {row_filter:?} -> {col_filter:?} ({filter_speedup:.2}x, {kept}/{rows} kept)",
            set.label, ratio,
        );
        fields.push_str(&format!(
            "  \"{0}_encoding\": \"{1}\",\n  \"{0}_compression_ratio\": {ratio:.3},\n  \
             \"{0}_rows\": {rows},\n  \"{0}_scan_row_ms\": {2:.3},\n  \
             \"{0}_scan_columnar_ms\": {3:.3},\n  \"{0}_scan_speedup\": {scan_speedup:.2},\n  \
             \"{0}_filter_kept\": {kept},\n  \"{0}_filter_row_ms\": {4:.3},\n  \
             \"{0}_filter_columnar_ms\": {5:.3},\n  \"{0}_filter_speedup\": {filter_speedup:.2},\n",
            set.label,
            set.encoding,
            row_scan.as_secs_f64() * 1e3,
            col_scan.as_secs_f64() * 1e3,
            row_filter.as_secs_f64() * 1e3,
            col_filter.as_secs_f64() * 1e3,
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"columnar_scan\",\n  \"plan\": \"full + filtered scans of 500k-record sequences, encoded columnar pages vs emulated row-layout pages, one dataset per encoding\",\n  \"input_records\": {N},\n  \"page_capacity\": {},\n  \"batch_size\": {batch_size},\n  \"samples_per_path\": 7,\n  \"statistic\": \"min of interleaved samples\",\n{fields}  \"headline\": \"rle in-place filter over row-layout filter\",\n  \"headline_speedup\": {headline:.2}\n}}\n",
        DEFAULT_PAGE_CAPACITY,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_columnar.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
