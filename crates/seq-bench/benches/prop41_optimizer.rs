//! E5 — Property 4.1: cost of the join-order DP itself as the number of
//! inputs grows, plus the syntactic-order baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seq_bench::e5_prop41::catalog_for;
use seq_core::Span;
use seq_opt::{optimize, CatalogRef, OptimizerConfig};
use seq_workload::queries;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("prop41_plan_generation");
    group.sample_size(15);

    for &n in &[4usize, 8, 12] {
        let catalog = catalog_for(n);
        let names: Vec<String> = (0..n).map(|i| format!("S{i}")).collect();
        let query = queries::n_way_join(&names);
        let info = CatalogRef(&catalog);

        group.bench_function(BenchmarkId::new("selinger_dp", n), |b| {
            b.iter(|| {
                optimize(&query, &info, &OptimizerConfig::new(Span::new(1, 500)))
                    .unwrap()
                    .dp_stats
                    .plans_evaluated
            })
        });
        group.bench_function(BenchmarkId::new("syntactic_order", n), |b| {
            let mut cfg = OptimizerConfig::new(Span::new(1, 500));
            cfg.join_reordering = false;
            b.iter(|| optimize(&query, &info, &cfg).unwrap().est_cost)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
