//! Adaptive execution: the three claims ISSUE 7 closes, measured together.
//!
//! 1. **Plain filtered scan** — the contiguous-survivor-run fast path in
//!    `Page::filter_slots_into` must recover the 0.85x regression of
//!    BENCH_columnar.json's plain cell to ≥ 1.0x: high-entropy floats at
//!    ~50% selectivity produce long survivor runs that bulk-copy instead
//!    of per-slot gather.
//! 2. **Mixed-mode lowering** — a plan with a kernel-less operator in the
//!    middle (naive per-output aggregate probing, the Figure 5.A ablation)
//!    lowers to a tree that is batch below and tuple at the naive node;
//!    the per-operator decisions and their cost margins are recorded.
//! 3. **Feedback** — a predicate whose equi-width histogram estimate is
//!    badly wrong (intra-bucket skew) is profiled once; absorbing the
//!    measured selectivity and re-planning must shrink the estimate error
//!    and clear the divergence flags.
//!
//! Results land in `BENCH_adaptive.json` at the repo root.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use seq_core::{record, schema, AttrType, BaseSequence, CmpOp, Record, RecordBatch, Span, Value};
use seq_exec::{execute, ExecContext};
use seq_ops::{AggFunc, Expr, SeqQuery, Window};
use seq_opt::{
    absorb_feedback, explain_analyze, explain_analyze_with, optimize, CatalogRef, Optimized,
    OptimizerConfig, StatsOverlay, WithFeedback,
};
use seq_storage::{Catalog, DEFAULT_PAGE_CAPACITY};
use seq_workload::Rng;

/// Same scale as `columnar_scan`, so the plain cell is comparable.
const PLAIN_N: i64 = 500_000;
/// Scale of the optimizer-level parts (mixed-mode plan, feedback loop).
const N: i64 = 200_000;

fn time_once<F: FnMut() -> usize>(f: &mut F) -> (Duration, usize) {
    let start = Instant::now();
    let rows = black_box(f());
    (start.elapsed(), rows)
}

/// Interleaved min-of-`SAMPLES` of two closures that must agree on rows.
fn measure<F, G>(label: &str, mut a: F, mut b: G) -> (Duration, Duration, usize)
where
    F: FnMut() -> usize,
    G: FnMut() -> usize,
{
    const SAMPLES: usize = 7;
    let (mut t_a, mut t_b) = (Duration::MAX, Duration::MAX);
    let (mut rows_a, mut rows_b) = (0usize, 0usize);
    for _ in 0..SAMPLES {
        let (t, r) = time_once(&mut a);
        t_a = t_a.min(t);
        rows_a = r;
        let (t, r) = time_once(&mut b);
        t_b = t_b.min(t);
        rows_b = r;
    }
    assert_eq!(rows_a, rows_b, "{label}: paths disagree on row count");
    (t_a, t_b, rows_a)
}

/// The plain dataset of `columnar_scan`: high-entropy floats where encoding
/// buys nothing and the filtered scan must win on layout alone.
fn plain_entries() -> Vec<(i64, Record)> {
    let mut rng = Rng::seed_from_u64(0xC01);
    (1..=PLAIN_N).map(|p| (p, record![p, rng.gen_range(-100.0..100.0)])).collect()
}

/// Row-layout filtered scan (the pre-columnar baseline from `columnar_scan`).
fn filter_rows(
    chunks: &[Vec<(i64, Record)>],
    batch_size: usize,
    term: &(usize, CmpOp, Value),
) -> usize {
    let (col, op, lit) = term;
    let mut rows = 0usize;
    let mut batch = RecordBatch::with_capacity(2, batch_size);
    for chunk in chunks {
        for (pos, rec) in chunk {
            if op.holds(rec.values()[*col].total_cmp(lit).unwrap()) {
                if batch.len() == batch_size {
                    rows += batch.len();
                    batch = RecordBatch::with_capacity(2, batch_size);
                }
                batch.push_record(*pos, rec).unwrap();
            }
        }
    }
    rows + black_box(batch).len()
}

/// The TICKS sequence the mixed-mode plan runs over.
fn ticks_catalog() -> Catalog {
    let mut rng = Rng::seed_from_u64(0xADA);
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    let entries = (1..=N).map(|p| (p, record![p, rng.gen_range(0.0..100.0)])).collect();
    let mut catalog = Catalog::new();
    catalog.register("TICKS", &BaseSequence::from_entries(sch, entries).unwrap());
    catalog
}

/// select(avg_close > 50) over a 16-record trailing average, with the
/// aggregate forced onto naive per-output probing (no batch kernel) so the
/// per-operator lowering must produce a mixed tree.
fn mixed_plan(catalog: &Catalog) -> Optimized {
    let query = SeqQuery::base("TICKS")
        .aggregate(AggFunc::Avg, "close", Window::trailing(16))
        .select(Expr::attr("avg_close").gt(Expr::lit(50.0)))
        .build();
    let mut cfg = OptimizerConfig::new(Span::new(1, N));
    cfg.naive_aggregates = true;
    optimize(&query, &CatalogRef(catalog), &cfg).unwrap()
}

/// Intra-bucket skew the 32-bucket equi-width histogram cannot see: nearly
/// all mass at the left edge of the bucket the predicate cuts through.
fn skew_catalog() -> Catalog {
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    let entries = (1..=N)
        .map(|p| {
            let v = if p <= 10 {
                0.0
            } else if p == N {
                32.0
            } else if p % 40 == 0 {
                24.0
            } else {
                16.05
            };
            (p, record![p, v])
        })
        .collect();
    let mut catalog = Catalog::new();
    catalog.register("SKEW", &BaseSequence::from_entries(sch, entries).unwrap());
    catalog
}

fn bench(c: &mut Criterion) {
    let batch_size = seq_exec::DEFAULT_BATCH_SIZE;

    // ---- 1. plain filtered scan ----------------------------------------
    let plain = plain_entries();
    let term = (1usize, CmpOp::Gt, Value::Float(0.0));
    let chunks: Vec<Vec<(i64, Record)>> =
        plain.chunks(DEFAULT_PAGE_CAPACITY).map(|c| c.to_vec()).collect();
    let mut catalog = Catalog::new();
    catalog.register(
        "PLAIN",
        &BaseSequence::from_entries(
            schema(&[("time", AttrType::Int), ("level", AttrType::Float)]),
            plain.clone(),
        )
        .unwrap(),
    );
    let stored = catalog.get("PLAIN").unwrap();
    let span = Span::new(1, PLAIN_N);
    assert_eq!(stored.compression().columns[1].dominant(), "plain");

    let mut group = c.benchmark_group("adaptive");
    group.sample_size(10);
    group
        .bench_function("plain_filter/row", |b| b.iter(|| filter_rows(&chunks, batch_size, &term)));
    group.bench_function("plain_filter/columnar", |b| {
        b.iter(|| {
            let mut rows = 0usize;
            let mut scan = stored.scan_batch(span, batch_size);
            while let Some((b, _)) = scan.next_batch_selected(std::slice::from_ref(&term)).unwrap()
            {
                rows += b.len();
            }
            rows
        })
    });

    let (row_filter, col_filter, kept) = measure(
        "plain_filter",
        || filter_rows(&chunks, batch_size, &term),
        || {
            let mut rows = 0usize;
            let mut scan = stored.scan_batch(span, batch_size);
            while let Some((b, _)) = scan.next_batch_selected(std::slice::from_ref(&term)).unwrap()
            {
                rows += b.len();
            }
            rows
        },
    );
    let plain_speedup = row_filter.as_secs_f64() / col_filter.as_secs_f64();

    // ---- 2. mixed-mode lowering ----------------------------------------
    let ticks = ticks_catalog();
    let opt = mixed_plan(&ticks);
    let labels = opt.op_mode_labels();
    let n_batch = labels.iter().filter(|l| l.starts_with("batch") || **l == "fused").count();
    let n_tuple = labels.iter().filter(|l| **l == "tuple").count();
    assert!(
        n_batch > 0 && n_tuple > 0,
        "the naive-aggregate plan must lower mixed-mode, got {labels:?}"
    );

    group.bench_function("mixed_plan/assigned", |b| {
        b.iter(|| {
            let ctx = ExecContext::new(&ticks);
            opt.execute(&ctx).unwrap().len()
        })
    });
    group.finish();

    let (tuple_time, assigned_time, mixed_rows) = measure(
        "mixed_plan",
        || {
            let ctx = ExecContext::new(&ticks);
            execute(&opt.plan, &ctx).unwrap().len()
        },
        || {
            let ctx = ExecContext::new(&ticks);
            opt.execute(&ctx).unwrap().len()
        },
    );

    // ---- 3. feedback loop ----------------------------------------------
    let skew = skew_catalog();
    let query = SeqQuery::base("SKEW").select(Expr::attr("close").gt(Expr::lit(16.5))).build();
    let cfg = OptimizerConfig::new(Span::new(1, N));
    let base_info = CatalogRef(&skew);
    let opt1 = optimize(&query, &base_info, &cfg).unwrap();
    let mut ctx = ExecContext::new(&skew);
    let rep1 = explain_analyze(&opt1, &mut ctx, &cfg.cost).unwrap();
    let div1 = rep1.per_op.iter().filter(|a| a.divergent).count();
    let est1 = rep1.per_op[0].est_rows;
    let actual = rep1.per_op[0].actual_rows;

    let mut overlay = StatsOverlay::new();
    absorb_feedback(&opt1, &rep1, &mut overlay);
    let info = WithFeedback::new(&base_info, &overlay);
    let opt2 = optimize(&query, &info, &cfg).unwrap();
    let mut ctx = ExecContext::new(&skew);
    let rep2 = explain_analyze_with(&opt2, &mut ctx, &cfg.cost, &info).unwrap();
    let div2 = rep2.per_op.iter().filter(|a| a.divergent).count();
    let est2 = rep2.per_op[0].est_rows;
    assert!(div2 < div1, "feedback must shrink divergence ({div1} -> {div2})");

    println!("\nadaptive summary:");
    println!(
        "  plain filter: {row_filter:?} -> {col_filter:?} ({plain_speedup:.2}x, {kept}/{PLAIN_N} kept)"
    );
    println!(
        "  mixed plan: modes {labels:?}, tuple {tuple_time:?} -> assigned {assigned_time:?} \
         ({mixed_rows} rows)"
    );
    println!(
        "  feedback: est {est1:.0} -> {est2:.0} rows (actual {actual}), divergent ops {div1} -> {div2}"
    );

    let modes_json: Vec<String> = labels.iter().map(|l| format!("\"{l}\"")).collect();
    let margins_json: Vec<String> =
        opt.op_modes.iter().map(|d| format!("{:.4}", d.margin())).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"adaptive\",\n  \"page_capacity\": {},\n  \"batch_size\": \
         {batch_size},\n  \"samples_per_path\": 7,\n  \"statistic\": \"min of interleaved \
         samples\",\n  \"plain_input_records\": {PLAIN_N},\n  \"plain_filter_kept\": {kept},\n  \
         \"plain_filter_row_ms\": {:.3},\n  \"plain_filter_columnar_ms\": {:.3},\n  \
         \"plain_filter_speedup\": {plain_speedup:.2},\n  \"mixed_plan\": \"select(avg_close>50) \
         over naive trailing(16) avg over TICKS[1,{N}]\",\n  \"mixed_modes\": [{}],\n  \
         \"mixed_mode_margins\": [{}],\n  \"mixed_n_batch\": {n_batch},\n  \"mixed_n_tuple\": \
         {n_tuple},\n  \"mixed_rows\": {mixed_rows},\n  \"mixed_tuple_ms\": {:.3},\n  \
         \"mixed_assigned_ms\": {:.3},\n  \"feedback_plan\": \"select(close>16.5) over \
         SKEW[1,{N}]\",\n  \"feedback_actual_rows\": {actual},\n  \"feedback_est_rows_first\": \
         {est1:.1},\n  \"feedback_est_rows_second\": {est2:.1},\n  \
         \"feedback_divergent_first\": {div1},\n  \"feedback_divergent_second\": {div2}\n}}\n",
        DEFAULT_PAGE_CAPACITY,
        row_filter.as_secs_f64() * 1e3,
        col_filter.as_secs_f64() * 1e3,
        modes_json.join(", "),
        margins_json.join(", "),
        tuple_time.as_secs_f64() * 1e3,
        assigned_time.as_secs_f64() * 1e3,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_adaptive.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
