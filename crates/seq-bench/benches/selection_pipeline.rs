//! Selection-vector pipeline: the two claims ISSUE 10 must demonstrate,
//! plus the differential-equivalence summary the validator requires.
//!
//! 1. **Plain filtered scan** — emitting a selection instead of gathering
//!    survivors must put the batch pipeline ≥ 1.15x ahead of the
//!    record-at-a-time path on a mid-selectivity single-column filter.
//! 2. **Late materialization** — on a low-selectivity multi-column scan the
//!    batch path evaluates the predicate over the encoded columns and only
//!    decodes the survivors' referenced columns, cutting `bytes_decoded`
//!    by ≥ 2x against the record path, which pays full decode per row.
//!
//! Each cell also carries the selection counters (`selections_carried`,
//! `slots_compacted`, `columns_pruned`) so the artifact shows *why* the
//! timings move. A small-scale differential pass re-runs every cell plan
//! through tuple / carry-forced / compact-forced execution and folds the
//! result into the `equivalence` summary `check_selection` enforces.
//!
//! Results land in `BENCH_selection.json` at the repo root.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use seq_bench::validate::check_document;
use seq_core::{record, schema, AttrType, BaseSequence, Record, Span};
use seq_exec::{
    execute, execute_batched_assigned, execute_batched_with, ExecContext, PhysNode, PhysPlan,
};
use seq_ops::Expr;
use seq_storage::Catalog;
use seq_workload::Rng;

const N: i64 = 300_000;
const BATCH_SIZE: usize = 4096;
/// Scale of the differential pass: enough pages to exercise skipping and
/// read-ahead, cheap enough to rebuild a fresh catalog per run.
const EQ_N: i64 = 8_000;

fn sch() -> seq_core::Schema {
    schema(&[
        ("time", AttrType::Int),
        ("close", AttrType::Float),
        ("vol", AttrType::Float),
        ("size", AttrType::Int),
    ])
}

fn entries(n: i64) -> Vec<(i64, Record)> {
    let mut rng = Rng::seed_from_u64(0x5E1);
    (1..=n)
        .map(|p| {
            (
                p,
                record![
                    p,
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..10_000.0),
                    rng.gen_range(0..500i64)
                ],
            )
        })
        .collect()
}

fn catalog(n: i64) -> Catalog {
    let mut c = Catalog::new();
    c.register("T", &BaseSequence::from_entries(sch(), entries(n)).unwrap());
    c
}

fn pred_close(t: f64) -> Expr {
    Expr::attr("close").gt(Expr::lit(t)).bind(&sch()).unwrap()
}

fn pred_conj(lo: f64, hi: f64) -> Expr {
    let a = Expr::attr("close").gt(Expr::lit(lo));
    let b = Expr::attr("vol").lt(Expr::lit(hi));
    a.and(b).bind(&sch()).unwrap()
}

fn select(input: Box<PhysNode>, predicate: Expr, n: i64) -> PhysNode {
    PhysNode::Select { input, predicate, span: Span::new(1, n) }
}

fn base(n: i64) -> Box<PhysNode> {
    Box::new(PhysNode::Base { name: "T".into(), span: Span::new(1, n) })
}

fn fused(predicate: Expr, n: i64) -> PhysNode {
    let terms = predicate.as_conjunctive_col_cmp_lits().expect("pushdown-eligible");
    PhysNode::FusedScan { name: "T".into(), predicate, terms, span: Span::new(1, n) }
}

fn cell_plans(n: i64) -> Vec<(&'static str, PhysNode)> {
    vec![
        ("plain-filtered-scan", select(base(n), pred_close(50.0), n)),
        ("conjunctive-filter", select(base(n), pred_conj(40.0, 6000.0), n)),
        (
            "pruned-projection",
            PhysNode::Project {
                input: Box::new(select(base(n), pred_close(35.0), n)),
                indices: vec![1],
                span: Span::new(1, n),
            },
        ),
        (
            "fused-low-selectivity",
            PhysNode::Project {
                input: Box::new(fused(pred_conj(90.0, 1500.0), n)),
                indices: vec![1],
                span: Span::new(1, n),
            },
        ),
    ]
}

/// The structural labels with every native select forced to `label`.
fn forced_labels(node: &PhysNode, label: &'static str) -> Vec<&'static str> {
    node.exec_mode_labels(true)
        .into_iter()
        .map(|l| if l == "batch+sel" || l == "batch+compact" { label } else { l })
        .collect()
}

fn time_once<F: FnMut() -> usize>(f: &mut F) -> (Duration, usize) {
    let start = Instant::now();
    let rows = black_box(f());
    (start.elapsed(), rows)
}

/// Interleaved min-of-`SAMPLES` over three closures that must agree on rows.
fn measure3<A, B, C>(label: &str, mut a: A, mut b: B, mut c: C) -> (Duration, Duration, Duration)
where
    A: FnMut() -> usize,
    B: FnMut() -> usize,
    C: FnMut() -> usize,
{
    const SAMPLES: usize = 7;
    let mut best = [Duration::MAX; 3];
    let mut rows = [0usize; 3];
    for _ in 0..SAMPLES {
        let (t, r) = time_once(&mut a);
        best[0] = best[0].min(t);
        rows[0] = r;
        let (t, r) = time_once(&mut b);
        best[1] = best[1].min(t);
        rows[1] = r;
        let (t, r) = time_once(&mut c);
        best[2] = best[2].min(t);
        rows[2] = r;
    }
    assert!(rows[0] == rows[1] && rows[1] == rows[2], "{label}: paths disagree on rows");
    (best[0], best[1], best[2])
}

struct Counters {
    rows: usize,
    bytes_decoded: u64,
    columns_pruned: u64,
    selections_carried: u64,
    slots_compacted: u64,
}

/// Run once on a fresh catalog so the storage counters belong to this run.
fn counted(node: &PhysNode, mode: &str, n: i64) -> Counters {
    let cat = catalog(n);
    let ctx = ExecContext::new(&cat);
    let plan = PhysPlan::new(node.clone(), Span::new(1, n));
    let rows = match mode {
        "tuple" => execute(&plan, &ctx).unwrap().len(),
        "carry" => {
            let labels = forced_labels(node, "batch+sel");
            execute_batched_assigned(&plan, &ctx, BATCH_SIZE, &labels).unwrap().len()
        }
        "compact" => {
            let labels = forced_labels(node, "batch+compact");
            execute_batched_assigned(&plan, &ctx, BATCH_SIZE, &labels).unwrap().len()
        }
        other => unreachable!("{other}"),
    };
    let storage = cat.stats().snapshot();
    let exec = ctx.stats.snapshot();
    Counters {
        rows,
        bytes_decoded: storage.bytes_decoded,
        columns_pruned: storage.columns_pruned,
        selections_carried: exec.selections_carried,
        slots_compacted: exec.slots_compacted,
    }
}

/// Differential pass: every cell plan at small scale through the three
/// survivor representations; rows must be bit-identical and the
/// path-independent counters exact.
fn equivalence_pass() -> (usize, bool, bool) {
    let mut plans = 0usize;
    let (mut rows_identical, mut counters_exact) = (true, true);
    for (_, node) in cell_plans(EQ_N) {
        plans += 1;
        let mut runs = Vec::new();
        for mode in ["tuple", "carry", "compact"] {
            let cat = catalog(EQ_N);
            let ctx = ExecContext::new(&cat);
            let plan = PhysPlan::new(node.clone(), Span::new(1, EQ_N));
            let rows = match mode {
                "tuple" => execute(&plan, &ctx).unwrap(),
                "carry" => {
                    let labels = forced_labels(&node, "batch+sel");
                    execute_batched_assigned(&plan, &ctx, 512, &labels).unwrap()
                }
                _ => {
                    let labels = forced_labels(&node, "batch+compact");
                    execute_batched_assigned(&plan, &ctx, 512, &labels).unwrap()
                }
            };
            runs.push((rows, cat.stats().snapshot(), ctx.stats.snapshot()));
        }
        let (t_rows, t_storage, t_exec) = &runs[0];
        for (rows, storage, exec) in &runs[1..] {
            rows_identical &= rows == t_rows;
            counters_exact &= storage.page_reads == t_storage.page_reads
                && storage.pages_skipped == t_storage.pages_skipped
                && storage.probes == t_storage.probes
                && exec.predicate_evals == t_exec.predicate_evals;
        }
    }
    (plans, rows_identical, counters_exact)
}

fn ms3(d: Duration) -> f64 {
    (d.as_secs_f64() * 1e6).round() / 1e3
}

fn bench(c: &mut Criterion) {
    let cat = catalog(N);
    let plans = cell_plans(N);

    let mut group = c.benchmark_group("selection_pipeline");
    group.sample_size(10);
    for (name, node) in &plans {
        let plan = PhysPlan::new(node.clone(), Span::new(1, N));
        group.bench_function(format!("{name}/carry"), |b| {
            b.iter(|| {
                let ctx = ExecContext::new(&cat);
                execute_batched_with(&plan, &ctx, BATCH_SIZE).unwrap().len()
            })
        });
    }
    group.finish();

    let mut cells = Vec::new();
    for (name, node) in &plans {
        let plan = PhysPlan::new(node.clone(), Span::new(1, N));
        let carry_labels = forced_labels(node, "batch+sel");
        let compact_labels = forced_labels(node, "batch+compact");
        let (t_tuple, t_carry, t_compact) = measure3(
            name,
            || {
                let ctx = ExecContext::new(&cat);
                execute(&plan, &ctx).unwrap().len()
            },
            || {
                let ctx = ExecContext::new(&cat);
                execute_batched_assigned(&plan, &ctx, BATCH_SIZE, &carry_labels).unwrap().len()
            },
            || {
                let ctx = ExecContext::new(&cat);
                execute_batched_assigned(&plan, &ctx, BATCH_SIZE, &compact_labels).unwrap().len()
            },
        );
        let tuple = counted(node, "tuple", N);
        let carry = counted(node, "carry", N);
        assert!(
            carry.bytes_decoded <= tuple.bytes_decoded,
            "{name}: batch decoded more than tuple"
        );
        // Round first, then derive the speedup from the rounded timings so
        // the artifact is self-consistent under re-parsing.
        let (tuple_ms, carry_ms, compact_ms) = (ms3(t_tuple), ms3(t_carry), ms3(t_compact));
        let speedup = tuple_ms / carry_ms;
        println!(
            "  {name}: tuple {tuple_ms:.3}ms carry {carry_ms:.3}ms compact {compact_ms:.3}ms \
             ({speedup:.2}x, {} rows, decode {} -> {} bytes)",
            carry.rows, tuple.bytes_decoded, carry.bytes_decoded
        );
        cells.push((name, tuple_ms, carry_ms, compact_ms, speedup, tuple, carry));
    }

    // The two acceptance claims.
    let plain = &cells[0];
    assert!(
        plain.4 >= 1.15,
        "plain filtered scan must be >= 1.15x over tuple, got {:.3}x",
        plain.4
    );
    let fused_cell = cells.iter().find(|c| c.0 == &"fused-low-selectivity").unwrap();
    assert!(
        fused_cell.5.bytes_decoded as f64 >= 2.0 * fused_cell.6.bytes_decoded as f64,
        "low-selectivity multi-column scan must cut bytes_decoded >= 2x, got {} -> {}",
        fused_cell.5.bytes_decoded,
        fused_cell.6.bytes_decoded
    );

    let (eq_plans, rows_identical, counters_exact) = equivalence_pass();
    assert!(rows_identical, "differential pass: rows diverged");
    assert!(counters_exact, "differential pass: shared counters diverged");

    let cell_json: Vec<String> = cells
        .iter()
        .map(|(name, tuple_ms, carry_ms, compact_ms, speedup, tuple, carry)| {
            format!(
                "    {{\n      \"name\": \"{name}\",\n      \"selectivity\": {:.4},\n      \
                 \"tuple_ms\": {tuple_ms:.3},\n      \"carry_ms\": {carry_ms:.3},\n      \
                 \"compact_ms\": {compact_ms:.3},\n      \"speedup_vs_tuple\": {speedup:.6},\n      \
                 \"rows_out\": {},\n      \"bytes_decoded_tuple\": {},\n      \
                 \"bytes_decoded_carry\": {},\n      \"columns_pruned\": {},\n      \
                 \"selections_carried\": {},\n      \"slots_compacted\": {}\n    }}",
                carry.rows as f64 / N as f64,
                carry.rows,
                tuple.bytes_decoded,
                carry.bytes_decoded,
                carry.columns_pruned,
                carry.selections_carried,
                carry.slots_compacted,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"selection_version\": 1,\n  \"rows\": {N},\n  \"batch_size\": {BATCH_SIZE},\n  \
         \"samples_per_path\": 7,\n  \"statistic\": \"min of interleaved samples\",\n  \
         \"cells\": [\n{}\n  ],\n  \"equivalence\": {{\n    \"plans\": {eq_plans},\n    \
         \"rows_identical\": {rows_identical},\n    \"counters_exact\": {counters_exact},\n    \
         \"paths\": \"tuple vs carry-forced vs compact-forced at {EQ_N} positions\"\n  }}\n}}\n",
        cell_json.join(",\n"),
    );
    check_document(&json).expect("BENCH_selection.json must satisfy its own validator");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_selection.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
