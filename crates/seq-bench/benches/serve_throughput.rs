//! Multi-client serving throughput over the `seqd` wire protocol.
//!
//! Starts an in-process server over the Table 1 world and drives it with
//! 1..N concurrent TCP clients sending a mix of query templates whose
//! literals vary per request — exactly the workload the normalized plan
//! cache exists for. Records, per client count, the observed QPS and the
//! client-side p50/p99 request latency (from the session-metrics
//! `LatencyHistogram`); server-wide, the plan-cache hit/miss/invalidation
//! counters (hit rate must be >= 90% on repeated templates); an in-process
//! cached-vs-uncached plan-resolution latency pair (the cached p50 must be
//! below the uncached p50 — that is the saved parse+optimize work); and a
//! deliberately saturated workers=1/queue=1 load-shed run whose admission
//! accounting must balance. Everything lands in `BENCH_serve.json` and is
//! validated in-process with the same checker CI runs.
//!
//! The host's core count is recorded alongside the sweep: on a single-core
//! host the concurrency sweep measures time-slicing, not parallel speedup,
//! and the headline numbers are the hit rate and the cached latency win.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use seq_bench::validate::check_document;
use seq_core::Span;
use seq_exec::LatencyHistogram;
use seq_serve::client::{Client, Response};
use seq_serve::{serve, Engine, ServerConfig, SessionConfig};
use seq_workload::table1_catalog;

const SCALE: i64 = 2;
const QUERIES_PER_CLIENT: usize = 30;
const CLIENT_COUNTS: [usize; 3] = [1, 2, 4];
const LATENCY_SAMPLES: usize = 40;
const MIN_HIT_RATE: f64 = 0.90;

fn range() -> Span {
    Span::new(1, 750 * SCALE)
}

/// The mixed workload: template `i % 3` with literals varied by `i`.
fn query(i: usize) -> String {
    match i % 3 {
        0 => format!("(select (> close {}.0) (base HP))", 90 + (i % 17)),
        1 => format!(
            "(select (and (> close {}.0) (< close {}.0)) (base IBM))",
            80 + (i % 11),
            120 + (i % 13)
        ),
        _ => "(agg avg close (trailing 8) (base DEC))".to_string(),
    }
}

/// One client session: send `n` queries, fold request latencies into the
/// shared histogram, return (ok, shed) counts.
fn drive_client(addr: &str, n: usize, seed: usize, hist: &LatencyHistogram) -> (u64, u64) {
    let mut client = Client::connect(addr).expect("connect");
    let (mut ok, mut shed) = (0u64, 0u64);
    for i in 0..n {
        let q = query(seed + i);
        let start = Instant::now();
        match client.send(&q).expect("send") {
            Response::Ok(_) => {
                hist.record(start.elapsed());
                ok += 1;
            }
            Response::Err { code, message } => {
                if code == "busy" {
                    shed += 1;
                } else {
                    panic!("query failed [{code}]: {message}");
                }
            }
        }
    }
    (ok, shed)
}

struct SweepRow {
    clients: usize,
    queries: u64,
    shed: u64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
}

fn sweep() -> (Vec<SweepRow>, u64, u64, u64, Vec<seq_serve::TemplateReport>) {
    let engine = Engine::new(table1_catalog(SCALE, 42, 64), 64);
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 64,
        cache_capacity: 64,
        range: range(),
    };
    let handle = serve(engine, &config).expect("bind");
    let addr = handle.addr().to_string();

    // Warm each template once so the sweep measures the steady state the
    // cache is built for (the misses are still counted and reported).
    {
        let hist = LatencyHistogram::new();
        drive_client(&addr, 3, 0, &hist);
    }

    let mut rows = Vec::new();
    for &clients in &CLIENT_COUNTS {
        let hist = Arc::new(LatencyHistogram::new());
        let started = Instant::now();
        let threads: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                let hist = Arc::clone(&hist);
                std::thread::spawn(move || drive_client(&addr, QUERIES_PER_CLIENT, c * 1000, &hist))
            })
            .collect();
        let (mut ok, mut shed) = (0u64, 0u64);
        for t in threads {
            let (o, s) = t.join().expect("client thread");
            ok += o;
            shed += s;
        }
        let wall = started.elapsed();
        let snap = hist.snapshot();
        rows.push(SweepRow {
            clients,
            queries: ok,
            shed,
            qps: ok as f64 / wall.as_secs_f64(),
            p50_us: snap.percentile_nanos(50.0).unwrap_or(0) as f64 / 1e3,
            p99_us: snap.percentile_nanos(99.0).unwrap_or(0) as f64 / 1e3,
        });
        println!(
            "serve_throughput: {clients} client(s) -> {:.0} qps, p50 {:.0}us, p99 {:.0}us",
            rows.last().unwrap().qps,
            rows.last().unwrap().p50_us,
            rows.last().unwrap().p99_us
        );
    }

    let engine = handle.join();
    let snap = engine.metrics.snapshot();
    let hot = engine.hot_templates(5);
    assert!(!hot.is_empty(), "the sweep's repeated templates must show up as hot");
    (rows, snap.plan_cache_hits, snap.plan_cache_misses, snap.plan_cache_invalidations, hot)
}

/// Cached vs uncached plan-resolution latency, in-process (no socket or
/// execution noise — `Engine::resolve` is exactly the pre-execution path of
/// `run_query`): the cached engine serves every probe from one warmed
/// entry, paying canonicalize + probe + rebind; the uncached engine has a
/// capacity-1 cache fed two alternating templates, so every probe misses
/// and pays the full parse + optimize pipeline. The query is a compose, so
/// join enumeration makes the planning cost visible. Medians are exact
/// (sorted raw samples), not histogram-bucket boundaries.
fn cached_vs_uncached() -> (f64, f64) {
    let cfg = SessionConfig::new(range());
    let q = |t: i64| format!("(select (> close {t}.0) (compose (base IBM) (base HP)))");
    let alt = |t: i64| format!("(select (< close {t}.0) (compose (base IBM) (base DEC)))");

    let exact_p50_us = |mut nanos: Vec<u64>| -> f64 {
        nanos.sort_unstable();
        nanos[nanos.len() / 2] as f64 / 1e3
    };

    let cached_engine = Engine::new(table1_catalog(SCALE, 42, 64), 64);
    cached_engine.resolve(&q(89), &cfg).expect("warm");
    let mut cached = Vec::with_capacity(LATENCY_SAMPLES);
    for i in 0..LATENCY_SAMPLES as i64 {
        let text = q(90 + (i % 25));
        let start = Instant::now();
        let (_, hit) = cached_engine.resolve(&text, &cfg).expect("cached resolve");
        cached.push(start.elapsed().as_nanos() as u64);
        assert!(hit, "warmed template must hit");
    }

    let uncached_engine = Engine::new(table1_catalog(SCALE, 42, 64), 1);
    let mut uncached = Vec::with_capacity(LATENCY_SAMPLES);
    for i in 0..LATENCY_SAMPLES as i64 {
        // Alternate two templates through a capacity-1 cache: every probe
        // evicts the other's entry, so every probe is a genuine miss.
        let text = if i % 2 == 0 { q(90 + (i % 25)) } else { alt(90 + (i % 25)) };
        let start = Instant::now();
        let (_, hit) = uncached_engine.resolve(&text, &cfg).expect("uncached resolve");
        uncached.push(start.elapsed().as_nanos() as u64);
        assert!(!hit, "capacity-1 alternation must miss");
    }

    (exact_p50_us(cached), exact_p50_us(uncached))
}

/// Saturate a workers=1/queue=1 server so admissions shed, and return the
/// (submitted, completed, shed) accounting.
fn load_shed() -> (u64, u64, u64) {
    let engine = Engine::new(table1_catalog(1, 42, 64), 8);
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_depth: 1,
        cache_capacity: 8,
        range: Span::new(1, 750),
    };
    let handle = serve(engine, &config).expect("bind");
    let addr = handle.addr().to_string();

    let blocker = std::thread::spawn({
        let addr = addr.clone();
        move || Client::connect(&addr).unwrap().send("\\sleep 600")
    });
    std::thread::sleep(Duration::from_millis(150));
    let filler = std::thread::spawn({
        let addr = addr.clone();
        move || Client::connect(&addr).unwrap().send("\\sleep 1")
    });
    std::thread::sleep(Duration::from_millis(150));
    let mut flood = Client::connect(&addr).unwrap();
    let mut shed_seen = 0u64;
    for _ in 0..8 {
        if flood.send("(base HP)").expect("flood").is_err_code("busy") {
            shed_seen += 1;
        }
    }
    blocker.join().unwrap().expect("blocker");
    filler.join().unwrap().expect("filler");
    drop(flood);
    let totals = handle.admission().totals();
    handle.join();
    assert!(shed_seen > 0, "saturated queue must shed at least one admission");
    assert_eq!(totals.0, totals.1 + totals.2, "admission accounting must balance");
    (totals.0, totals.1, totals.2)
}

fn bench(c: &mut Criterion) {
    // Criterion smoke numbers for the two plan-resolution paths.
    let cfg = SessionConfig::new(range());
    let warm = Engine::new(table1_catalog(SCALE, 42, 64), 64);
    warm.run_query("(select (> close 95.0) (base HP))", &cfg).expect("warm");
    let cold = Engine::new(table1_catalog(SCALE, 42, 64), 1);
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    let mut i = 0i64;
    group.bench_function("plan_cached", |b| {
        b.iter(|| {
            i += 1;
            let q = format!("(select (> close {}.0) (base HP))", 90 + (i % 20));
            black_box(warm.run_query(&q, &cfg).expect("query").rows.len())
        })
    });
    group.bench_function("plan_uncached", |b| {
        b.iter(|| {
            i += 1;
            // Alternate shapes through the capacity-1 cache: all misses.
            let q = if i % 2 == 0 {
                format!("(select (> close {}.0) (base HP))", 90 + (i % 20))
            } else {
                format!("(select (< close {}.0) (base IBM))", 110 + (i % 20))
            };
            black_box(cold.run_query(&q, &cfg).expect("query").rows.len())
        })
    });
    group.finish();

    let (rows, hits, misses, invalidations, hot) = sweep();
    let hit_rate = if hits + misses > 0 { hits as f64 / (hits + misses) as f64 } else { 0.0 };
    assert!(
        hit_rate >= MIN_HIT_RATE,
        "repeated templates must hit >= {MIN_HIT_RATE}: got {hit_rate:.3} ({hits}/{misses})"
    );
    let (cached_p50_us, uncached_p50_us) = cached_vs_uncached();
    assert!(
        cached_p50_us < uncached_p50_us,
        "cached plan resolution must be faster: cached {cached_p50_us:.1}us vs \
         uncached {uncached_p50_us:.1}us"
    );
    println!(
        "serve_throughput: hit rate {hit_rate:.3}, cached p50 {cached_p50_us:.0}us vs \
         uncached {uncached_p50_us:.0}us"
    );
    let (submitted, completed, shed) = load_shed();

    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut template_rows = String::new();
    for (i, t) in hot.iter().enumerate() {
        template_rows.push_str(&format!(
            "{}    {{\"template\": \"{}\", \"hits\": {}, \"executes\": {}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}}}",
            if i > 0 { ",\n" } else { "" },
            t.template.replace('\\', "\\\\").replace('"', "\\\""),
            t.hits,
            t.executes,
            t.p50_us,
            t.p99_us
        ));
    }
    let mut client_rows = String::new();
    for (i, r) in rows.iter().enumerate() {
        client_rows.push_str(&format!(
            "{}    {{\"clients\": {}, \"queries\": {}, \"shed\": {}, \"qps\": {:.1}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}}}",
            if i > 0 { ",\n" } else { "" },
            r.clients,
            r.queries,
            r.shed,
            r.qps,
            r.p50_us,
            r.p99_us
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"serve_throughput\",\n  \"serve_version\": 1,\n  \
         \"host_cores\": {host_cores},\n  \"workers\": 2,\n  \"queue_depth\": 64,\n  \
         \"scale\": {SCALE},\n  \"queries_per_client\": {QUERIES_PER_CLIENT},\n  \
         \"clients\": [\n{client_rows}\n  ],\n  \
         \"plan_cache\": {{\"hits\": {hits}, \"misses\": {misses}, \
         \"invalidations\": {invalidations}, \"hit_rate\": {hit_rate:.9}}},\n  \
         \"latency\": {{\"cached_p50_us\": {cached_p50_us:.1}, \
         \"uncached_p50_us\": {uncached_p50_us:.1}}},\n  \
         \"load_shed\": {{\"submitted\": {submitted}, \"completed\": {completed}, \
         \"shed\": {shed}}},\n  \
         \"hot_templates\": [\n{template_rows}\n  ],\n  \
         \"note\": \"single-core hosts time-slice the client sweep; the headline numbers \
         are the plan-cache hit rate and the cached vs uncached plan-resolution p50\"\n}}\n"
    );
    check_document(&json).expect("BENCH_serve.json must validate");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
