//! §5.3 — incremental (trigger) evaluation: per-arrival cost of the push
//! engine vs re-running the batch plan after every arrival.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seq_core::{Record, Span};
use seq_exec::{execute, ExecContext, TriggerEngine};
use seq_opt::{optimize, CatalogRef, OptimizerConfig};
use seq_workload::{queries, weather_catalog, WeatherSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("trigger_vs_batch_rerun");
    group.sample_size(10);

    let n_events = 2_000usize;
    let span = Span::new(1, n_events as i64 * 20);
    let (catalog, world) =
        weather_catalog(&WeatherSpec::new(span, n_events * 4 / 5, n_events / 5, 3), 64);
    let plan =
        optimize(&queries::example_1_1(7.0), &CatalogRef(&catalog), &OptimizerConfig::new(span))
            .unwrap()
            .plan;

    let mut feed: Vec<(i64, &str, Record)> = Vec::new();
    for (p, r) in world.quakes.entries() {
        feed.push((*p, "Quakes", r.clone()));
    }
    for (p, r) in world.volcanos.entries() {
        feed.push((*p, "Volcanos", r.clone()));
    }
    feed.sort_by_key(|(p, _, _)| *p);

    group.bench_function(BenchmarkId::new("push_engine_full_stream", n_events), |b| {
        b.iter(|| {
            let mut engine = TriggerEngine::new(&plan).unwrap();
            let mut fired = 0usize;
            for (pos, base, rec) in &feed {
                fired += engine.arrive(base, *pos, rec).unwrap().len();
            }
            fired + engine.flush().unwrap().len()
        })
    });

    // The naive standing-query implementation: re-run the batch plan after
    // each arrival batch of K events (full rerun per event is quadratic and
    // unbenchable at this size; K=100 is already orders slower per event).
    let k = 100usize;
    group.bench_function(BenchmarkId::new("batch_rerun_every_100", n_events), |b| {
        b.iter(|| {
            let mut total = 0usize;
            for chunk in world.volcanos.entries().chunks(k) {
                let upto = chunk.last().unwrap().0;
                let ctx = ExecContext::new(&catalog);
                let narrowed = seq_exec::PhysPlan::new(
                    plan.root.clone(),
                    plan.range.intersect(&Span::new(1, upto)),
                );
                total = execute(&narrowed, &ctx).unwrap().len();
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
