//! Selection pushdown vs plain select: the same 10%-selectivity filter
//! over a million-record sequence, run as `Select ∘ Base` (every page
//! read, every row tested) and as the zone-map-fused `FusedScan` (refuted
//! pages skipped wholesale). Two distributions bracket the technique:
//!
//! * **clustered** — values ramp with position, so page min/max bounds are
//!   tight and ~90% of pages are refutable: the headline case;
//! * **uniform** — every page straddles the threshold, so nothing skips
//!   and the bench measures pure filter overhead: the worst case.
//!
//! Reports both ratios and records them in `BENCH_pushdown.json` at the
//! repo root (same shape as `BENCH_batch.json`).

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use seq_core::{record, schema, AttrType, BaseSequence, Span};
use seq_exec::{execute_batched, ExecContext, PhysNode, PhysPlan};
use seq_ops::Expr;
use seq_storage::Catalog;
use seq_workload::Rng;

const N: i64 = 1_000_000;
const THRESHOLD: f64 = 90.0; // close > 90 keeps ~10% of rows

fn build_catalog() -> Catalog {
    let mut rng = Rng::seed_from_u64(0xf17e);
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    let mut clustered = Vec::with_capacity(N as usize);
    let mut uniform = Vec::with_capacity(N as usize);
    for p in 1..=N {
        let ramp = (p as f64) / (N as f64) * 100.0 + rng.gen_range(-2.0..2.0);
        clustered.push((p, record![p, ramp]));
        uniform.push((p, record![p, rng.gen_range(0.0..100.0)]));
    }
    let mut catalog = Catalog::new();
    catalog.register("CLUST", &BaseSequence::from_entries(sch.clone(), clustered).unwrap());
    catalog.register("UNI", &BaseSequence::from_entries(sch, uniform).unwrap());
    catalog
}

fn predicate() -> Expr {
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    Expr::attr("close").gt(Expr::lit(THRESHOLD)).bind(&sch).unwrap()
}

/// The unfused plan: `Select(close > t) ∘ Base`.
fn select_plan(name: &str) -> PhysPlan {
    let span = Span::new(1, N);
    let node = PhysNode::Select {
        input: Box::new(PhysNode::Base { name: name.into(), span }),
        predicate: predicate(),
        span,
    };
    PhysPlan::new(node, span)
}

/// The fused plan: the same predicate pushed into the scan as zone-map
/// filter terms plus residual row filter.
fn fused_plan(name: &str) -> PhysPlan {
    let span = Span::new(1, N);
    let predicate = predicate();
    let terms = predicate.as_conjunctive_col_cmp_lits().expect("eligible predicate");
    PhysPlan::new(PhysNode::FusedScan { name: name.into(), predicate, terms, span }, span)
}

fn time_once<F: FnMut() -> usize>(f: &mut F) -> Duration {
    let start = Instant::now();
    black_box(f());
    start.elapsed()
}

/// Interleaved min-of-`SAMPLES` for one distribution; returns
/// `(unfused, fused, rows)`.
fn measure(catalog: &Catalog, name: &str) -> (Duration, Duration, usize) {
    const SAMPLES: usize = 7;
    let unfused_plan = select_plan(name);
    let fused = fused_plan(name);
    let mut run_unfused = || {
        let ctx = ExecContext::new(catalog);
        execute_batched(&unfused_plan, &ctx).unwrap().len()
    };
    let mut run_fused = || {
        let ctx = ExecContext::new(catalog);
        execute_batched(&fused, &ctx).unwrap().len()
    };
    let (mut t_unfused, mut t_fused) = (Duration::MAX, Duration::MAX);
    for _ in 0..SAMPLES {
        t_unfused = t_unfused.min(time_once(&mut run_unfused));
        t_fused = t_fused.min(time_once(&mut run_fused));
    }
    let rows = run_fused();
    (t_unfused, t_fused, rows)
}

fn bench(c: &mut Criterion) {
    let catalog = build_catalog();

    // Correctness anchor + the skip accounting for the artifact.
    let start = catalog.stats().snapshot();
    let ctx = ExecContext::new(&catalog);
    let unfused_rows = execute_batched(&select_plan("CLUST"), &ctx).unwrap();
    let mid = catalog.stats().snapshot();
    let ctx = ExecContext::new(&catalog);
    let fused_rows = execute_batched(&fused_plan("CLUST"), &ctx).unwrap();
    let unfused_io = mid.since(&start);
    let fused_io = catalog.stats().snapshot().since(&mid);
    assert_eq!(unfused_rows, fused_rows, "pushdown changed the result");
    assert!(fused_io.pages_skipped > 0, "clustered workload must skip pages");
    assert_eq!(
        fused_io.page_reads + fused_io.pages_skipped,
        unfused_io.page_reads,
        "skips must account for exactly the forgone reads"
    );

    let mut group = c.benchmark_group("filter_pushdown");
    group.sample_size(10);
    for name in ["CLUST", "UNI"] {
        let unfused = select_plan(name);
        let fused = fused_plan(name);
        group.bench_function(format!("{name}/select_over_base"), |b| {
            b.iter(|| {
                let ctx = ExecContext::new(&catalog);
                execute_batched(&unfused, &ctx).unwrap().len()
            })
        });
        group.bench_function(format!("{name}/fused_scan"), |b| {
            b.iter(|| {
                let ctx = ExecContext::new(&catalog);
                execute_batched(&fused, &ctx).unwrap().len()
            })
        });
    }
    group.finish();

    let (clust_unfused, clust_fused, clust_rows) = measure(&catalog, "CLUST");
    let (uni_unfused, uni_fused, uni_rows) = measure(&catalog, "UNI");
    let clust_speedup = clust_unfused.as_secs_f64() / clust_fused.as_secs_f64();
    let uni_speedup = uni_unfused.as_secs_f64() / uni_fused.as_secs_f64();
    println!(
        "\nfilter_pushdown summary: clustered {clust_unfused:?} -> {clust_fused:?} \
         ({clust_speedup:.2}x, {} pages skipped), uniform {uni_unfused:?} -> {uni_fused:?} \
         ({uni_speedup:.2}x)",
        fused_io.pages_skipped
    );

    let json = format!(
        "{{\n  \"benchmark\": \"filter_pushdown\",\n  \"plan\": \"select(close>{THRESHOLD}) over 1M records, fused vs unfused\",\n  \"input_records\": {N},\n  \"selectivity\": {:.3},\n  \"page_capacity\": {},\n  \"batch_size\": {},\n  \"samples_per_path\": 7,\n  \"statistic\": \"min of interleaved samples\",\n  \"clustered_output_records\": {clust_rows},\n  \"clustered_select_ms\": {:.3},\n  \"clustered_fused_ms\": {:.3},\n  \"clustered_speedup\": {:.2},\n  \"clustered_pages_skipped\": {},\n  \"clustered_page_reads\": {},\n  \"uniform_output_records\": {uni_rows},\n  \"uniform_select_ms\": {:.3},\n  \"uniform_fused_ms\": {:.3},\n  \"uniform_speedup\": {:.2}\n}}\n",
        clust_rows as f64 / N as f64,
        seq_storage::DEFAULT_PAGE_CAPACITY,
        seq_exec::DEFAULT_BATCH_SIZE,
        clust_unfused.as_secs_f64() * 1e3,
        clust_fused.as_secs_f64() * 1e3,
        clust_speedup,
        fused_io.pages_skipped,
        fused_io.page_reads,
        uni_unfused.as_secs_f64() * 1e3,
        uni_fused.as_secs_f64() * 1e3,
        uni_speedup,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pushdown.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
