//! Always-on telemetry overhead: the headline batch plan (the same
//! select → project → window-avg over a million records `batch_vs_tuple`
//! times) run with the session metrics registry detached vs attached.
//! Telemetry charges O(1) work per query — two clock reads, four counter
//! snapshots, a dozen relaxed atomic adds, one trace-ring push — so the
//! measured overhead should be indistinguishable from noise and far under
//! the <5% acceptance budget. Records the before/after wall times and the
//! overhead percentage in `BENCH_telemetry.json` at the repo root, and
//! validates the registry's metrics + Chrome-trace exports against the
//! in-repo schema checker while it's at it.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use seq_bench::validate::check_document;
use seq_core::{record, schema, AttrType, BaseSequence, Span};
use seq_exec::{execute_batched, AggStrategy, ExecContext, PhysNode, PhysPlan, SessionMetrics};
use seq_ops::{AggFunc, Expr, Window};
use seq_storage::Catalog;
use seq_workload::Rng;

const N: i64 = 1_000_000;
const OVERHEAD_BUDGET_PCT: f64 = 5.0;

fn build_catalog() -> Catalog {
    let mut rng = Rng::seed_from_u64(0xb47c);
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    let mut entries = Vec::with_capacity(N as usize);
    for p in 1..=N {
        entries.push((p, record![p, rng.gen_range(0.0..100.0)]));
    }
    let base = BaseSequence::from_entries(sch, entries).unwrap();
    let mut catalog = Catalog::new();
    catalog.register("TICKS", &base);
    catalog
}

/// select(close > 30) → project(close) → 16-day trailing average — the same
/// headline plan `batch_vs_tuple` records.
fn plan() -> PhysPlan {
    let span = Span::new(1, N);
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    let node = PhysNode::Aggregate {
        input: Box::new(PhysNode::Project {
            input: Box::new(PhysNode::Select {
                input: Box::new(PhysNode::Base { name: "TICKS".into(), span }),
                predicate: Expr::attr("close").gt(Expr::lit(30.0)).bind(&sch).unwrap(),
                span,
            }),
            indices: vec![1],
            span,
        }),
        func: AggFunc::Avg,
        attr_index: 0,
        window: Window::trailing(16),
        strategy: AggStrategy::CacheAIncremental,
        span,
    };
    PhysPlan::new(node, span)
}

fn time_once<F: FnMut() -> usize>(f: &mut F) -> Duration {
    let start = Instant::now();
    black_box(f());
    start.elapsed()
}

fn bench(c: &mut Criterion) {
    let catalog = build_catalog();
    let plan = plan();
    let metrics = Arc::new(SessionMetrics::new());

    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.bench_function("telemetry_off", |b| {
        b.iter(|| {
            let mut ctx = ExecContext::new(&catalog);
            ctx.telemetry = None;
            execute_batched(&plan, &ctx).unwrap().len()
        })
    });
    group.bench_function("telemetry_on", |b| {
        b.iter(|| {
            let mut ctx = ExecContext::new(&catalog);
            ctx.share_telemetry(&metrics);
            execute_batched(&plan, &ctx).unwrap().len()
        })
    });
    group.finish();

    // Independent measurement for the recorded artifact. Both configurations
    // must agree on the rows; samples are interleaved so ambient machine
    // noise hits both alike, and each reports its best observed time.
    let mut ctx = ExecContext::new(&catalog);
    ctx.telemetry = None;
    let rows_off = execute_batched(&plan, &ctx).unwrap();
    let mut ctx = ExecContext::new(&catalog);
    ctx.share_telemetry(&metrics);
    let rows_on = execute_batched(&plan, &ctx).unwrap();
    assert_eq!(rows_off, rows_on, "telemetry must not change results");

    const SAMPLES: usize = 7;
    let mut run_off = || {
        let mut ctx = ExecContext::new(&catalog);
        ctx.telemetry = None;
        execute_batched(&plan, &ctx).unwrap().len()
    };
    let mut run_on = || {
        let mut ctx = ExecContext::new(&catalog);
        ctx.share_telemetry(&metrics);
        execute_batched(&plan, &ctx).unwrap().len()
    };
    let (mut off, mut on) = (Duration::MAX, Duration::MAX);
    for _ in 0..SAMPLES {
        off = off.min(time_once(&mut run_off));
        on = on.min(time_once(&mut run_on));
    }
    let overhead_pct = (on.as_secs_f64() / off.as_secs_f64() - 1.0) * 100.0;
    println!(
        "\ntelemetry_overhead summary: off {off:?}, on {on:?}, overhead {overhead_pct:+.2}% \
         (budget < {OVERHEAD_BUDGET_PCT}%)"
    );

    // The registry accumulated every instrumented run above; its exports
    // must validate against the same checker CI runs on seqsh's files.
    let snap = metrics.snapshot();
    assert!(snap.queries > 0, "instrumented runs must fold into the registry");
    check_document(&metrics.to_json(None)).expect("metrics export must validate");
    check_document(&metrics.trace_to_chrome_json()).expect("trace export must validate");

    let json = format!(
        "{{\n  \"benchmark\": \"telemetry_overhead\",\n  \"plan\": \"select(close>30) -> project(close) -> avg over trailing(16)\",\n  \"input_records\": {N},\n  \"output_records\": {},\n  \"samples_per_config\": {SAMPLES},\n  \"statistic\": \"min of interleaved samples\",\n  \"telemetry_off_ms\": {:.3},\n  \"telemetry_on_ms\": {:.3},\n  \"overhead_pct\": {:.2},\n  \"budget_pct\": {OVERHEAD_BUDGET_PCT},\n  \"queries_recorded\": {},\n  \"note\": \"telemetry cost is O(1) per query (clock reads + counter-delta folds + one trace push), independent of row count; negative overhead is timer noise\"\n}}\n",
        rows_on.len(),
        off.as_secs_f64() * 1e3,
        on.as_secs_f64() * 1e3,
        overhead_pct,
        snap.queries,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
