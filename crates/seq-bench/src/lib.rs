//! # seq-bench — the experiment harness
//!
//! One module per experiment in DESIGN.md's index. Each experiment exposes a
//! `run()` returning structured rows and a `print()` that renders the table
//! the `repro` binary emits; the Criterion benches in `benches/` time the
//! same code paths.
//!
//! Measured costs are reported in the same units the cost model prices
//! (§4.1.1): sequential page reads weigh `seq_page_io`, probes weigh
//! `rand_page_io`, with CPU terms from the executor counters. Storage
//! counters are deterministic, so every table is exactly reproducible.

pub mod experiments;
pub mod json;
pub mod validate;

pub use experiments::*;

use seq_core::Span;
use seq_exec::{execute, ExecContext, ExecSnapshot, PhysPlan};
use seq_opt::CostParams;
use seq_storage::{Catalog, StatsSnapshot};

/// Counters measured around one plan execution.
#[derive(Debug, Clone, Copy)]
pub struct Measured {
    pub rows: usize,
    pub storage: StatsSnapshot,
    pub exec: ExecSnapshot,
    pub wall: std::time::Duration,
}

impl Measured {
    /// Convert the counters into cost-model units (a proxy: probes are priced
    /// as random page I/Os, remaining page reads as sequential ones).
    pub fn model_cost(&self, p: &CostParams) -> f64 {
        let probe_pages = self.storage.probes.min(self.storage.page_reads);
        let stream_pages = self.storage.page_reads - probe_pages;
        stream_pages as f64 * p.seq_page_io
            + self.storage.probes as f64 * p.rand_page_io
            + self.storage.stream_records as f64 * p.record_cpu
            + self.exec.predicate_evals as f64 * p.predicate_k
            + (self.exec.cache_stores + self.exec.cache_probes) as f64 * p.cache_op
    }

    /// Total record touches (the quantity Example 1.1 reasons about).
    pub fn records_touched(&self) -> u64 {
        self.storage.stream_records + self.storage.probes
    }
}

/// Execute a plan against a catalog with fresh counters, returning rows and
/// all measurements.
pub fn measure(catalog: &Catalog, plan: &PhysPlan) -> Measured {
    catalog.reset_measurement();
    let ctx = ExecContext::new(catalog);
    let start = std::time::Instant::now();
    let rows = execute(plan, &ctx).expect("plan executes");
    let wall = start.elapsed();
    Measured {
        rows: rows.len(),
        storage: catalog.stats().snapshot(),
        exec: ctx.stats.snapshot(),
        wall,
    }
}

/// [`measure`] with seq-trace profiling enabled: identical results and
/// identical global counters (profiling scopes tee into them), plus the
/// per-operator attribution in the returned [`seq_exec::QueryProfile`].
pub fn measure_profiled(
    catalog: &Catalog,
    plan: &PhysPlan,
) -> (Measured, std::sync::Arc<seq_exec::QueryProfile>) {
    catalog.reset_measurement();
    let mut ctx = ExecContext::new(catalog);
    let profile = ctx.enable_profiling(plan);
    let start = std::time::Instant::now();
    let rows = execute(plan, &ctx).expect("plan executes");
    let wall = start.elapsed();
    let measured = Measured {
        rows: rows.len(),
        storage: catalog.stats().snapshot(),
        exec: ctx.stats.snapshot(),
        wall,
    };
    (measured, profile)
}

/// Bounded span helper for ranges derived from a catalog.
pub fn full_range(catalog: &Catalog, names: &[&str]) -> Span {
    let mut span = Span::empty();
    for n in names {
        span = span.hull(&catalog.meta(n).expect("registered").span);
    }
    span
}
