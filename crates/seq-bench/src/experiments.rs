//! The experiment suite — one module per row of DESIGN.md's experiment
//! index. Every module is deterministic given its parameters.

use seq_core::Span;
use seq_exec::JoinStrategy;
use seq_opt::{optimize, CatalogRef, OptimizerConfig};
use seq_storage::Catalog;
use seq_workload::{queries, SeqSpec};

use crate::{measure, Measured};

fn fmt_dur(d: std::time::Duration) -> String {
    format!("{:.2}ms", d.as_secs_f64() * 1e3)
}

// ===========================================================================
// E1 — Example 1.1 / Figure 1: the motivating query.
// ===========================================================================
pub mod e1_motivating {
    use super::*;
    use seq_relational::{indexed_nested_plan, nested_subquery_plan, RelStats, Relation};
    use seq_workload::{weather_catalog, WeatherSpec};

    #[derive(Debug, Clone)]
    pub struct Row {
        pub quakes: usize,
        pub volcanos: usize,
        pub answers: usize,
        pub seq_records: u64,
        pub seq_wall: std::time::Duration,
        pub rel_naive_tuples: u64,
        pub rel_naive_wall: std::time::Duration,
        pub rel_indexed_ops: u64,
        pub rel_indexed_wall: std::time::Duration,
    }

    /// One size point: run all three plans, assert agreement, return counts.
    pub fn run_size(quakes: usize, volcanos: usize, seed: u64) -> Row {
        let span = Span::new(1, (quakes + volcanos) as i64 * 12);
        let (catalog, world) = weather_catalog(&WeatherSpec::new(span, quakes, volcanos, seed), 64);
        let query = queries::example_1_1(7.0);
        let optimized =
            optimize(&query, &CatalogRef(&catalog), &OptimizerConfig::new(span)).unwrap();
        let m = measure(&catalog, &optimized.plan);

        use seq_core::Sequence as _;
        let volcanos_rel = Relation::from_sequence_entries(
            world.volcanos.schema().clone(),
            world.volcanos.entries(),
        )
        .unwrap();
        let quakes_rel =
            Relation::from_sequence_entries(world.quakes.schema().clone(), world.quakes.entries())
                .unwrap();

        let naive_stats = RelStats::new();
        let t0 = std::time::Instant::now();
        let naive = nested_subquery_plan(&volcanos_rel, &quakes_rel, 7.0, &naive_stats).unwrap();
        let naive_wall = t0.elapsed();

        let idx_stats = RelStats::new();
        let t0 = std::time::Instant::now();
        let indexed = indexed_nested_plan(&volcanos_rel, &quakes_rel, 7.0, &idx_stats).unwrap();
        let idx_wall = t0.elapsed();

        assert_eq!(m.rows, naive.len());
        assert_eq!(m.rows, indexed.len());
        Row {
            quakes,
            volcanos,
            answers: m.rows,
            seq_records: m.records_touched(),
            seq_wall: m.wall,
            rel_naive_tuples: naive_stats.tuples_scanned(),
            rel_naive_wall: naive_wall,
            rel_indexed_ops: idx_stats.tuples_scanned() + idx_stats.index_probes(),
            rel_indexed_wall: idx_wall,
        }
    }

    pub fn run() -> Vec<Row> {
        [(500usize, 100usize), (2_000, 400), (8_000, 1_600), (20_000, 4_000)]
            .into_iter()
            .map(|(q, v)| run_size(q, v, 42))
            .collect()
    }

    pub fn print(rows: &[Row]) {
        println!("\nE1 — Example 1.1 / Figure 1: volcano eruptions after strong earthquakes");
        println!("paper claim: the sequence plan is a single scan; the relational plan re-scans Earthquakes per Volcano\n");
        println!(
            "{:>8} {:>9} {:>8} | {:>12} {:>9} | {:>14} {:>10} | {:>13} {:>10}",
            "quakes",
            "volcanos",
            "answers",
            "seq records",
            "seq time",
            "naive tuples",
            "naive time",
            "indexed ops",
            "idx time"
        );
        for r in rows {
            println!(
                "{:>8} {:>9} {:>8} | {:>12} {:>9} | {:>14} {:>10} | {:>13} {:>10}",
                r.quakes,
                r.volcanos,
                r.answers,
                r.seq_records,
                fmt_dur(r.seq_wall),
                r.rel_naive_tuples,
                fmt_dur(r.rel_naive_wall),
                r.rel_indexed_ops,
                fmt_dur(r.rel_indexed_wall),
            );
        }
        if let Some(last) = rows.last() {
            println!(
                "\nat the largest size the sequence plan touches {:.0}x fewer records than the naive relational plan",
                last.rel_naive_tuples as f64 / last.seq_records.max(1) as f64
            );
        }
    }
}

// ===========================================================================
// E2 — Table 1 + Figure 3: global span optimization.
// ===========================================================================
pub mod e2_span {
    use super::*;
    use seq_workload::table1_catalog;

    #[derive(Debug, Clone)]
    pub struct Row {
        pub scale: i64,
        pub answers: usize,
        pub with_pages: u64,
        pub without_pages: u64,
        pub with_est: f64,
        pub without_est: f64,
        pub with_wall: std::time::Duration,
        pub without_wall: std::time::Duration,
    }

    pub fn run_scale(scale: i64) -> Row {
        let catalog = table1_catalog(scale, 42, 64);
        let query = queries::fig3_span_query();
        let info = CatalogRef(&catalog);
        let on = optimize(&query, &info, &OptimizerConfig::new(Span::all())).unwrap();
        let mut cfg = OptimizerConfig::new(Span::all());
        cfg.span_propagation = false;
        let off = optimize(&query, &info, &cfg).unwrap();
        let m_on = measure(&catalog, &on.plan);
        let m_off = measure(&catalog, &off.plan);
        assert_eq!(m_on.rows, m_off.rows);
        Row {
            scale,
            answers: m_on.rows,
            with_pages: m_on.storage.page_reads,
            without_pages: m_off.storage.page_reads,
            with_est: on.est_cost,
            without_est: off.est_cost,
            with_wall: m_on.wall,
            without_wall: m_off.wall,
        }
    }

    pub fn run() -> Vec<Row> {
        [1, 10, 50, 200].into_iter().map(run_scale).collect()
    }

    pub fn print(rows: &[Row]) {
        println!("\nE2 — Table 1 / Figure 3: bidirectional span propagation (IBM/DEC/HP)");
        println!(
            "paper claim: restricting every base to [200,350] (x scale) cuts the accessed range\n"
        );
        println!(
            "{:>6} {:>8} | {:>11} {:>11} {:>7} | {:>12} {:>12} | {:>9} {:>9}",
            "scale",
            "answers",
            "pages ON",
            "pages OFF",
            "ratio",
            "est ON",
            "est OFF",
            "t ON",
            "t OFF"
        );
        for r in rows {
            println!(
                "{:>6} {:>8} | {:>11} {:>11} {:>7.2} | {:>12.1} {:>12.1} | {:>9} {:>9}",
                r.scale,
                r.answers,
                r.with_pages,
                r.without_pages,
                r.without_pages as f64 / r.with_pages.max(1) as f64,
                r.with_est,
                r.without_est,
                fmt_dur(r.with_wall),
                fmt_dur(r.without_wall),
            );
        }
    }
}

// ===========================================================================
// E3 — Figure 4: access modes / join strategies.
// ===========================================================================
pub mod e3_access_modes {
    use super::*;

    pub const STRATEGIES: [JoinStrategy; 3] = [
        JoinStrategy::LockStep,
        JoinStrategy::StreamLeftProbeRight,
        JoinStrategy::StreamRightProbeLeft,
    ];

    #[derive(Debug, Clone)]
    pub struct Row {
        pub d2: f64,
        /// Measured model-unit cost per strategy, in STRATEGIES order.
        pub measured: [f64; 3],
        pub walls: [std::time::Duration; 3],
        /// Strategy the cost-based optimizer picked when free to choose.
        pub chosen: JoinStrategy,
        /// Strategy with the lowest measured cost.
        pub best_measured: JoinStrategy,
    }

    pub fn build_catalog(span_n: i64, d1: f64, d2: f64, seed: u64) -> Catalog {
        let mut c = Catalog::new();
        c.set_page_capacity(8);
        c.register("A", &SeqSpec::new(Span::new(1, span_n), d1, seed).generate());
        c.register("B", &SeqSpec::new(Span::new(1, span_n), d2, seed + 1).generate());
        c
    }

    pub fn run_density(span_n: i64, d1: f64, d2: f64) -> Row {
        let catalog = build_catalog(span_n, d1, d2, 7);
        let query = queries::pair_join("A", "B", None);
        let info = CatalogRef(&catalog);
        let params = seq_opt::CostParams::default();

        let mut measured = [0.0f64; 3];
        let mut walls = [std::time::Duration::ZERO; 3];
        let mut rows_seen = None;
        for (i, strat) in STRATEGIES.into_iter().enumerate() {
            let mut cfg = OptimizerConfig::new(Span::new(1, span_n));
            cfg.forced_join_strategy = Some(strat);
            cfg.join_reordering = false; // keep A ∘ B orientation fixed
            let opt = optimize(&query, &info, &cfg).unwrap();
            let m = measure(&catalog, &opt.plan);
            if let Some(prev) = rows_seen {
                assert_eq!(prev, m.rows, "strategies disagree");
            }
            rows_seen = Some(m.rows);
            measured[i] = m.model_cost(&params);
            walls[i] = m.wall;
        }

        // Fix the A ∘ B orientation here too, so the reported strategy name
        // is comparable with the forced runs (the DP would otherwise swap
        // sides and, e.g., call "stream B, probe A" StreamLeftProbeRight).
        let mut free_cfg = OptimizerConfig::new(Span::new(1, span_n));
        free_cfg.join_reordering = false;
        let free = optimize(&query, &info, &free_cfg).unwrap();
        let chosen = *STRATEGIES
            .iter()
            .find(|s| free.plan.render().contains(&format!("{s:?}")))
            .expect("plan names a strategy");
        let best_measured =
            STRATEGIES[measured.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).unwrap().0];
        Row { d2, measured, walls, chosen, best_measured }
    }

    pub fn run() -> Vec<Row> {
        [0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0]
            .into_iter()
            .map(|d2| run_density(40_000, 0.9, d2))
            .collect()
    }

    pub fn print(rows: &[Row]) {
        println!("\nE3 — Figure 4: join strategies vs density (A: d1=0.9 streamed side, B: d2 sweep; span 40k, 8 rec/page)");
        println!("paper claim: strategy choice depends on densities and access costs; a crossover exists\n");
        println!(
            "{:>7} | {:>12} {:>12} {:>12} | {:>22} {:>22}",
            "d2", "LockStep", "Strm(A)Prb(B)", "Strm(B)Prb(A)", "optimizer chose", "measured best"
        );
        for r in rows {
            println!(
                "{:>7.3} | {:>12.1} {:>12.1} {:>12.1} | {:>22} {:>22}",
                r.d2,
                r.measured[0],
                r.measured[1],
                r.measured[2],
                format!("{:?}", r.chosen),
                format!("{:?}", r.best_measured),
            );
        }
        let agree = rows.iter().filter(|r| r.chosen == r.best_measured).count();
        println!("\noptimizer choice matched the measured best in {agree}/{} points", rows.len());
    }
}

// ===========================================================================
// E4 — Figure 5: caching strategies.
// ===========================================================================
pub mod e4_caching {
    use super::*;
    use seq_ops::{Expr, SeqQuery};

    #[derive(Debug, Clone)]
    pub struct AggRow {
        pub window: u32,
        pub cache_a: Measured,
        pub naive: Measured,
    }

    pub fn agg_catalog(n: i64) -> Catalog {
        let mut c = Catalog::new();
        c.set_page_capacity(64);
        c.register("IBM", &SeqSpec::new(Span::new(1, n), 0.9, 3).generate());
        c
    }

    /// Figure 5.A: moving SUM with Cache-Strategy-A vs naive probing.
    pub fn run_agg(n: i64, window: u32) -> AggRow {
        let catalog = agg_catalog(n);
        let query = queries::fig5a_moving_sum(window);
        let info = CatalogRef(&catalog);
        let range = Span::new(1, n + window as i64);
        let cached = optimize(&query, &info, &OptimizerConfig::new(range)).unwrap();
        let mut cfg = OptimizerConfig::new(range);
        cfg.naive_aggregates = true;
        let naive = optimize(&query, &info, &cfg).unwrap();
        let a = measure(&catalog, &cached.plan);
        let b = measure(&catalog, &naive.plan);
        assert_eq!(a.rows, b.rows);
        AggRow { window, cache_a: a, naive: b }
    }

    pub fn run_fig5a() -> Vec<AggRow> {
        [2, 6, 12, 24, 48].into_iter().map(|w| run_agg(20_000, w)).collect()
    }

    pub fn print_fig5a(rows: &[AggRow]) {
        println!("\nE4a — Figure 5.A: moving SUM over IBM (20k positions, d=0.9)");
        println!("paper claim: Cache-Strategy-A touches each input record once; naive probing pays w probes per output\n");
        println!(
            "{:>7} | {:>12} {:>10} | {:>13} {:>10} | {:>7}",
            "window", "A probes", "A time", "naive probes", "naive t", "ratio"
        );
        for r in rows {
            println!(
                "{:>7} | {:>12} {:>10} | {:>13} {:>10} | {:>7.1}",
                r.window,
                r.cache_a.storage.probes,
                fmt_dur(r.cache_a.wall),
                r.naive.storage.probes,
                fmt_dur(r.naive.wall),
                r.naive.storage.probes as f64 / r.cache_a.records_touched().max(1) as f64,
            );
        }
    }

    #[derive(Debug, Clone)]
    pub struct PrevRow {
        /// Fraction of derived records kept by the selection.
        pub selectivity: f64,
        pub cache_b: Measured,
        pub naive: Measured,
    }

    /// Figure 5.B setup: C ∘ Previous(σ_{close > threshold}(A ∘ A2)).
    pub fn prev_catalog(n: i64) -> Catalog {
        let mut c = Catalog::new();
        c.set_page_capacity(64);
        c.register("A", &SeqSpec::new(Span::new(1, n), 1.0, 11).generate());
        c.register("A2", &SeqSpec::new(Span::new(1, n), 1.0, 13).generate());
        c.register("C", &SeqSpec::new(Span::new(1, n), 0.7, 12).generate());
        c
    }

    /// Pick the close-value quantile `q` of sequence A as the threshold.
    pub fn threshold_at(catalog: &Catalog, q: f64) -> f64 {
        let a = catalog.get("A").unwrap();
        let mut values: Vec<f64> = seq_core::Sequence::scan(a.as_ref(), Span::all())
            .map(|(_, r)| r.value(1).unwrap().as_f64().unwrap())
            .collect();
        values.sort_by(f64::total_cmp);
        let idx = ((values.len() - 1) as f64 * q) as usize;
        values[idx]
    }

    pub fn run_prev(n: i64, keep_fraction: f64) -> PrevRow {
        let catalog = prev_catalog(n);
        // Threshold at quantile (1 - keep) keeps ~keep of the records.
        let threshold = threshold_at(&catalog, 1.0 - keep_fraction);
        let query = SeqQuery::base("C")
            .compose_with(
                SeqQuery::base("A")
                    .compose_with(SeqQuery::base("A2"))
                    .select(Expr::attr("close").gt(Expr::lit(threshold)))
                    .previous(),
            )
            .build();
        let info = CatalogRef(&catalog);
        let range = Span::new(1, n);
        let cache_b = optimize(&query, &info, &OptimizerConfig::new(range)).unwrap();
        let mut cfg = OptimizerConfig::new(range);
        cfg.cache_strategy_b = false;
        let naive = optimize(&query, &info, &cfg).unwrap();
        let a = measure(&catalog, &cache_b.plan);
        let b = measure(&catalog, &naive.plan);
        assert_eq!(a.rows, b.rows);
        PrevRow { selectivity: keep_fraction, cache_b: a, naive: b }
    }

    pub fn run_fig5b() -> Vec<PrevRow> {
        [0.5, 0.1, 0.02].into_iter().map(|k| run_prev(8_000, k)).collect()
    }

    pub fn print_fig5b(rows: &[PrevRow]) {
        println!("\nE4b — Figure 5.B: Previous over a derived sequence (C ∘ Previous(σ(A ∘ A2)), 8k positions)");
        println!("paper claim: naive evaluation re-derives the input per output and walks further the more selective σ is;\nCache-Strategy-B streams once regardless\n");
        println!(
            "{:>6} | {:>10} {:>10} {:>9} | {:>12} {:>12} {:>10}",
            "keep", "B pages", "B walks", "B time", "naive pages", "naive walks", "naive t"
        );
        for r in rows {
            println!(
                "{:>6.2} | {:>10} {:>10} {:>9} | {:>12} {:>12} {:>10}",
                r.selectivity,
                r.cache_b.storage.page_reads,
                r.cache_b.exec.naive_walk_steps,
                fmt_dur(r.cache_b.wall),
                r.naive.storage.page_reads,
                r.naive.exec.naive_walk_steps,
                fmt_dur(r.naive.wall),
            );
        }
    }
}

// ===========================================================================
// E5 — Property 4.1: optimizer complexity.
// ===========================================================================
pub mod e5_prop41 {
    use super::*;

    #[derive(Debug, Clone)]
    pub struct Row {
        pub n: usize,
        pub plans_evaluated: u64,
        pub formula_evaluated: u64,
        pub peak_stored: u64,
        pub formula_stored: u64,
        pub wall: std::time::Duration,
    }

    fn binom(n: u64, k: u64) -> u64 {
        let k = k.min(n - k);
        let mut r = 1u64;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    pub fn catalog_for(n: usize) -> Catalog {
        let mut c = Catalog::new();
        c.set_page_capacity(64);
        for i in 0..n {
            let d = 0.3 + 0.7 * (i as f64 / n.max(2) as f64);
            c.register(format!("S{i}"), &SeqSpec::new(Span::new(1, 500), d, i as u64).generate());
        }
        c
    }

    pub fn run_n(n: usize) -> Row {
        let catalog = catalog_for(n);
        let names: Vec<String> = (0..n).map(|i| format!("S{i}")).collect();
        let query = queries::n_way_join(&names);
        let t0 = std::time::Instant::now();
        let opt = optimize(&query, &CatalogRef(&catalog), &OptimizerConfig::new(Span::new(1, 500)))
            .unwrap();
        let wall = t0.elapsed();
        let n64 = n as u64;
        Row {
            n,
            plans_evaluated: opt.dp_stats.plans_evaluated,
            // Σ_{k=1}^{N−1} C(N,k)·(N−k) = N·2^(N−1) − N.
            formula_evaluated: n64 * (1 << (n64 - 1)) - n64,
            peak_stored: opt.dp_stats.peak_plans_stored,
            // The level-by-level DP keeps two adjacent levels alive.
            formula_stored: (1..n64).map(|k| binom(n64, k) + binom(n64, k + 1)).max().unwrap_or(1),
            wall,
        }
    }

    pub fn run() -> Vec<Row> {
        (2..=12).map(run_n).collect()
    }

    pub fn print(rows: &[Row]) {
        println!("\nE5 — Property 4.1: join-order DP complexity");
        println!("paper claim: time O(N·2^(N−1)) join plans evaluated, space O(C(N,⌈N/2⌉)) plans stored\n");
        println!(
            "{:>3} | {:>14} {:>14} | {:>12} {:>14} | {:>10}",
            "N", "evaluated", "N·2^(N−1)−N", "peak stored", "ΣC(N,k)+C(N,k+1)", "opt time"
        );
        for r in rows {
            println!(
                "{:>3} | {:>14} {:>14} | {:>12} {:>14} | {:>10}",
                r.n,
                r.plans_evaluated,
                r.formula_evaluated,
                r.peak_stored,
                r.formula_stored,
                fmt_dur(r.wall),
            );
        }
    }
}

// ===========================================================================
// E8 — §3.1 pushdown benefit.
// ===========================================================================
pub mod e8_pushdown {
    use super::*;
    use seq_exec::{PhysNode, PhysPlan};
    use seq_ops::{Expr, SeqQuery};

    #[derive(Debug, Clone)]
    pub struct Row {
        pub keep_fraction: f64,
        pub pushed: Measured,
        pub late: Measured,
    }

    /// σ on the streamed side of a stream-probe join: pushed (optimizer)
    /// vs applied after the join (hand-built late plan).
    pub fn run_selectivity(n: i64, keep_fraction: f64) -> Row {
        let mut catalog = Catalog::new();
        catalog.set_page_capacity(16);
        catalog.register("A", &SeqSpec::new(Span::new(1, n), 0.9, 5).generate());
        catalog.register("B", &SeqSpec::new(Span::new(1, n), 0.9, 6).generate());
        let threshold = {
            let a = catalog.get("A").unwrap();
            let mut vals: Vec<f64> = seq_core::Sequence::scan(a.as_ref(), Span::all())
                .map(|(_, r)| r.value(1).unwrap().as_f64().unwrap())
                .collect();
            vals.sort_by(f64::total_cmp);
            vals[((vals.len() - 1) as f64 * (1.0 - keep_fraction)) as usize]
        };

        let query = SeqQuery::base("A")
            .select(Expr::attr("close").gt(Expr::lit(threshold)))
            .compose_with(SeqQuery::base("B"))
            .build();
        let mut cfg = OptimizerConfig::new(Span::new(1, n));
        cfg.forced_join_strategy = Some(JoinStrategy::StreamLeftProbeRight);
        cfg.join_reordering = false;
        let optimized = optimize(&query, &CatalogRef(&catalog), &cfg).unwrap();
        let pushed = measure(&catalog, &optimized.plan);

        // Hand-built late-selection plan: join first, select after.
        let span = Span::new(1, n);
        let late_plan = PhysPlan::new(
            PhysNode::Select {
                input: Box::new(PhysNode::Compose {
                    left: Box::new(PhysNode::Base { name: "A".into(), span }),
                    right: Box::new(PhysNode::Base { name: "B".into(), span }),
                    predicate: None,
                    strategy: JoinStrategy::StreamLeftProbeRight,
                    span,
                }),
                predicate: Expr::Col(1).gt(Expr::lit(threshold)),
                span,
            },
            span,
        );
        let late = measure(&catalog, &late_plan);
        assert_eq!(pushed.rows, late.rows);
        Row { keep_fraction, pushed, late }
    }

    pub fn run() -> Vec<Row> {
        [0.5, 0.2, 0.05].into_iter().map(|k| run_selectivity(20_000, k)).collect()
    }

    pub fn print(rows: &[Row]) {
        println!("\nE8 — §3.1 selection pushdown (σ(A) below a stream-probe join vs above it; 20k positions)");
        println!("paper heuristic: propagate selections as far down the query graph as possible\n");
        println!(
            "{:>6} | {:>13} {:>11} {:>9} | {:>12} {:>11} {:>9}",
            "keep", "pushed probes", "pushed pgs", "pushed t", "late probes", "late pgs", "late t"
        );
        for r in rows {
            println!(
                "{:>6.2} | {:>13} {:>11} {:>9} | {:>12} {:>11} {:>9}",
                r.keep_fraction,
                r.pushed.storage.probes,
                r.pushed.storage.page_reads,
                fmt_dur(r.pushed.wall),
                r.late.storage.probes,
                r.late.storage.page_reads,
                fmt_dur(r.late.wall),
            );
        }
    }
}

// ===========================================================================
// E9 — §4.1.3 cost formulas: estimated vs measured.
// ===========================================================================
pub mod e9_cost_model {
    use super::*;
    use seq_opt::{base_access_costs, price_join, CostParams, JoinSide};

    #[derive(Debug, Clone)]
    pub struct Row {
        pub d1: f64,
        pub d2: f64,
        /// Per strategy, in e3 STRATEGIES order: (estimated, measured).
        pub per_strategy: [(f64, f64); 3],
        pub ranking_preserved: bool,
    }

    pub fn run_point(span_n: i64, d1: f64, d2: f64) -> Row {
        let catalog = super::e3_access_modes::build_catalog(span_n, d1, d2, 21);
        let params = CostParams::default();
        let query = queries::pair_join("A", "B", None);
        let info = CatalogRef(&catalog);

        // Model-side estimates, from the same meta the optimizer sees.
        let ma = catalog.meta("A").unwrap();
        let mb = catalog.meta("B").unwrap();
        let out_span = ma.span.intersect(&mb.span);
        let side_a = JoinSide {
            costs: base_access_costs(&ma, catalog.page_capacity(), &params),
            density: ma.density,
        };
        let side_b = JoinSide {
            costs: base_access_costs(&mb, catalog.page_capacity(), &params),
            density: mb.density,
        };

        let mut per_strategy = [(0.0, 0.0); 3];
        for (i, strat) in super::e3_access_modes::STRATEGIES.into_iter().enumerate() {
            let pricing = price_join(&side_a, &side_b, &out_span, 1.0, 0, &params, Some(strat));
            let mut cfg = OptimizerConfig::new(Span::new(1, span_n));
            cfg.forced_join_strategy = Some(strat);
            cfg.join_reordering = false;
            let opt = optimize(&query, &info, &cfg).unwrap();
            let m = measure(&catalog, &opt.plan);
            per_strategy[i] = (pricing.stream_cost, m.model_cost(&params));
        }
        // Is the cheapest-by-estimate also cheapest-by-measurement?
        let est_best =
            (0..3).min_by(|&a, &b| per_strategy[a].0.total_cmp(&per_strategy[b].0)).unwrap();
        let meas_best =
            (0..3).min_by(|&a, &b| per_strategy[a].1.total_cmp(&per_strategy[b].1)).unwrap();
        Row { d1, d2, per_strategy, ranking_preserved: est_best == meas_best }
    }

    pub fn run() -> Vec<Row> {
        let ds = [0.05, 0.3, 0.9];
        let mut out = Vec::new();
        for &d1 in &ds {
            for &d2 in &ds {
                out.push(run_point(20_000, d1, d2));
            }
        }
        out
    }

    pub fn print(rows: &[Row]) {
        println!("\nE9 — §4.1.3 cost formulas: estimated vs measured (20k positions, 8 rec/page)");
        println!("expectation: absolute errors are tolerable; the *ranking* of strategies is what matters\n");
        println!(
            "{:>5} {:>5} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10} | {:>8}",
            "d1",
            "d2",
            "LS est",
            "LS meas",
            "SLPR est",
            "SLPR meas",
            "SRPL est",
            "SRPL meas",
            "ranking"
        );
        for r in rows {
            println!(
                "{:>5.2} {:>5.2} | {:>10.1} {:>10.1} | {:>10.1} {:>10.1} | {:>10.1} {:>10.1} | {:>8}",
                r.d1,
                r.d2,
                r.per_strategy[0].0,
                r.per_strategy[0].1,
                r.per_strategy[1].0,
                r.per_strategy[1].1,
                r.per_strategy[2].0,
                r.per_strategy[2].1,
                if r.ranking_preserved { "ok" } else { "MISS" },
            );
        }
        let ok = rows.iter().filter(|r| r.ranking_preserved).count();
        println!("\nranking preserved at {ok}/{} grid points", rows.len());
    }
}

// ===========================================================================
// E6 / E10 — stream-access property and the full pipeline EXPLAIN.
// ===========================================================================
pub mod e6_stream_access {
    use super::*;
    use seq_ops::{AggFunc, SeqQuery, Window};

    pub fn run_and_print() {
        println!("\nE6 — Theorem 3.1 / Lemma 3.2: stream-access evaluations");
        let mut catalog = Catalog::new();
        catalog.set_page_capacity(16);
        catalog.register("A", &SeqSpec::new(Span::new(1, 10_000), 0.8, 1).generate());
        catalog.register("B", &SeqSpec::new(Span::new(1, 10_000), 0.6, 2).generate());
        let cases: Vec<(&str, seq_ops::QueryGraph, Span)> = vec![
            (
                "trailing aggregate (sequential fixed scope)",
                SeqQuery::base("A").aggregate(AggFunc::Avg, "close", Window::trailing(8)).build(),
                Span::new(1, 10_007),
            ),
            (
                "offset −5 ∘ compose (effective scope [i−5, i], size 6)",
                SeqQuery::base("A").positional_offset(-5).compose_with(SeqQuery::base("B")).build(),
                Span::new(1, 10_005),
            ),
            (
                "Previous via Cache-Strategy-B (incremental rewrite)",
                SeqQuery::base("A").previous().compose_with(SeqQuery::base("B")).build(),
                Span::new(1, 10_000),
            ),
        ];
        let total_pages: u64 =
            ["A", "B"].iter().map(|n| catalog.get(n).unwrap().page_count() as u64).sum();
        println!("total base pages: {total_pages}\n");
        for (label, query, range) in cases {
            let opt =
                optimize(&query, &CatalogRef(&catalog), &OptimizerConfig::new(range)).unwrap();
            let m = measure(&catalog, &opt.plan);
            println!(
                "  {label}: rows={} pages_read={} probes={} (single scan: {})",
                m.rows,
                m.storage.page_reads,
                m.storage.probes,
                m.storage.probes == 0 && m.storage.page_reads <= total_pages
            );
        }
    }
}

pub mod e10_pipeline {
    use super::*;
    use seq_workload::table1_catalog;

    pub fn run_and_print() {
        println!("\nE10 — Figures 6/7: the six-step pipeline on the Figure 3 query\n");
        let catalog = table1_catalog(1, 42, 64);
        let opt = optimize(
            &queries::fig3_span_query(),
            &CatalogRef(&catalog),
            &OptimizerConfig::new(Span::all()),
        )
        .unwrap();
        println!("{}", opt.explain);
    }
}

// ===========================================================================
// E11 — §3.3 access paths under buffering.
// ===========================================================================
pub mod e11_buffer_pool {
    use super::*;
    use seq_ops::{Expr, SeqQuery};

    #[derive(Debug, Clone)]
    pub struct Row {
        pub pool_pages: usize,
        pub page_reads: u64,
        pub page_hits: u64,
        pub hit_rate: f64,
        pub wall: std::time::Duration,
    }

    /// The probe-heavy workload: the Figure 5.B *naive* plan, whose backward
    /// walks re-probe recent pages constantly. An LRU pool absorbs the
    /// re-reads (the probes themselves remain; buffering cannot fix the walk
    /// count — only Cache-Strategy-B can, see E4b).
    pub fn run_pool(n: i64, pool_pages: usize) -> Row {
        let mut catalog =
            if pool_pages == 0 { Catalog::new() } else { Catalog::with_buffer_pool(pool_pages) };
        catalog.set_page_capacity(64);
        catalog.register("A", &SeqSpec::new(Span::new(1, n), 1.0, 11).generate());
        catalog.register("C", &SeqSpec::new(Span::new(1, n), 0.7, 12).generate());
        let threshold = {
            let a = catalog.get("A").unwrap();
            let mut vals: Vec<f64> = seq_core::Sequence::scan(a.as_ref(), Span::all())
                .map(|(_, r)| r.value(1).unwrap().as_f64().unwrap())
                .collect();
            vals.sort_by(f64::total_cmp);
            vals[vals.len() / 2]
        };
        let query = SeqQuery::base("C")
            .compose_with(
                SeqQuery::base("A").select(Expr::attr("close").gt(Expr::lit(threshold))).previous(),
            )
            .build();
        let mut cfg = OptimizerConfig::new(Span::new(1, n));
        cfg.cache_strategy_b = false; // the naive, probe-heavy plan
        let optimized = optimize(&query, &CatalogRef(&catalog), &cfg).unwrap();
        let m = measure(&catalog, &optimized.plan);
        let total = m.storage.page_reads + m.storage.page_hits;
        Row {
            pool_pages,
            page_reads: m.storage.page_reads,
            page_hits: m.storage.page_hits,
            hit_rate: m.storage.page_hits as f64 / total.max(1) as f64,
            wall: m.wall,
        }
    }

    pub fn run() -> Vec<Row> {
        [0usize, 2, 8, 32, 128].into_iter().map(|p| run_pool(6_000, p)).collect()
    }

    pub fn print(rows: &[Row]) {
        println!("\nE11 — §3.3 access paths under an LRU buffer pool (Figure 5.B naive plan, 6k positions)");
        println!("expectation: buffering absorbs the naive walk's page re-reads, but the probes (and CPU) remain —\nonly Cache-Strategy-B removes the walk itself (E4b)\n");
        println!(
            "{:>10} | {:>11} {:>11} {:>9} | {:>9}",
            "pool pages", "page reads", "page hits", "hit rate", "time"
        );
        for r in rows {
            println!(
                "{:>10} | {:>11} {:>11} {:>8.1}% | {:>9}",
                r.pool_pages,
                r.page_reads,
                r.page_hits,
                r.hit_rate * 100.0,
                fmt_dur(r.wall),
            );
        }
    }
}

// ===========================================================================
// E14 — seq-trace: per-operator estimate vs. actual (cost-model validation).
// ===========================================================================
pub mod e14_profile {
    use super::*;
    use seq_exec::ExecContext;
    use seq_opt::{explain_analyze, AnalyzeReport};
    use seq_workload::table1_catalog;

    /// Run the golden-cross query (two moving averages composed under a
    /// predicate) under EXPLAIN ANALYZE and return the report. The compose's
    /// predicate compares two derived aggregates, so its selectivity
    /// estimate falls back to the default comparison guess — a deliberate
    /// stress on the Step-2.a estimator.
    pub fn run(scale: i64) -> (AnalyzeReport, String) {
        let catalog = table1_catalog(scale, 42, 64);
        let query = queries::golden_cross("IBM", 4, 16, 0.0);
        let range = catalog.meta("IBM").expect("registered").span;
        let cfg = OptimizerConfig::new(range);
        let opt = optimize(&query, &CatalogRef(&catalog), &cfg).unwrap();
        catalog.reset_measurement();
        let mut ctx = ExecContext::new(&catalog);
        let report = explain_analyze(&opt, &mut ctx, &cfg.cost).unwrap();
        (report, opt.exec_mode.to_string())
    }

    /// Print the annotated plan and write the JSON export next to the other
    /// `BENCH_*.json` artifacts.
    pub fn run_and_print() {
        let (report, exec_mode) = run(40);
        println!(
            "\nE14 — seq-trace: per-operator estimate vs. actual (golden cross, table1 scale 40)"
        );
        println!("expectation: dense uniform inputs estimate well; the compose predicate over two derived\naggregates falls back to the default comparison selectivity (1/3) and under-estimates —\nthe per-operator counters localize the error to the cardinality guess, not the cost weights\n");
        print!("{}", report.text);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../PROFILE_e14.json");
        std::fs::write(path, report.to_json(&exec_mode)).expect("write PROFILE_e14.json");
        println!("wrote {path}");
    }
}
