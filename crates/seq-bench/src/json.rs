//! A minimal recursive-descent JSON parser for validating the harness's own
//! hand-rolled exports (`BENCH_*.json`, `PROFILE_*.json`) — no external
//! dependencies, mirroring how the writers are hand-rolled.
//!
//! Supports the full JSON value grammar the exporters produce: objects,
//! arrays, strings (with escapes), numbers, booleans, null. Not a
//! general-purpose library: numbers parse as `f64` and objects preserve
//! insertion order in a `Vec` (duplicate keys keep the last).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (last occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// content an error). Errors carry a byte offset and a short reason.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates (paired or lone) are not produced by
                            // our writers; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unvalidated-by-us; the input is a &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = r#"{"a": [1, -2.5, 3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#;
        let v = parse(doc).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#""a\"b\\cAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\cA\u{e9}"));
    }

    #[test]
    fn empty_containers_and_whitespace() {
        assert_eq!(parse("  { } ").unwrap(), Json::Obj(vec![]));
        assert_eq!(parse("[\n]").unwrap(), Json::Arr(vec![]));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"abc", "{\"a\":}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn roundtrips_a_real_profile_export() {
        use seq_core::{record, schema, AttrType, BaseSequence, Span};
        use seq_exec::{ExecContext, PhysNode, PhysPlan};
        use seq_ops::Expr;

        let mut c = seq_storage::Catalog::new();
        let base = BaseSequence::from_entries(
            schema(&[("time", AttrType::Int), ("v", AttrType::Float)]),
            (1..=64).map(|p| (p, record![p, p as f64])).collect(),
        )
        .unwrap();
        c.register("S", &base);
        let span = Span::new(1, 64);
        let plan = PhysPlan::new(
            PhysNode::Select {
                input: Box::new(PhysNode::Base { name: "S".into(), span }),
                predicate: Expr::Col(1).gt(Expr::lit(32.0)),
                span,
            },
            span,
        );
        let mut ctx = ExecContext::new(&c);
        let profile = ctx.enable_profiling(&plan);
        seq_exec::execute(&plan, &ctx).unwrap();
        let parsed = parse(&profile.to_json()).unwrap();
        assert_eq!(parsed.get("profile_version").unwrap().as_f64(), Some(1.0));
        let ops = parsed.get("operators").unwrap().as_array().unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].get("rows_out").unwrap().as_f64(), Some(32.0));
    }
}
