//! Schema validation for the harness's hand-rolled JSON exports.
//!
//! Three document kinds, dispatched by [`check_document`] on their
//! distinguishing top-level keys:
//!
//! - **profiles** — bare `QueryProfile` exports or EXPLAIN ANALYZE reports
//!   embedding one ([`check_profile`]);
//! - **metrics snapshots** — `SessionMetrics::to_json` output,
//!   `metrics_version: 1` ([`check_metrics`]);
//! - **Chrome traces** — `SessionMetrics::trace_to_chrome_json` output, a
//!   `traceEvents` array of complete (`"ph": "X"`) events
//!   ([`check_trace`]);
//! - **serve benchmarks** — the `serve_throughput` artifact
//!   (`BENCH_serve.json`, `serve_version: 1`): per-client-count QPS and
//!   latency rows, plan-cache counters with a consistent hit rate, the
//!   cached-vs-uncached latency comparison, the load-shed accounting, and
//!   (when present) the hottest plan templates with their latency digests
//!   ([`check_serve`]);
//! - **selection benchmarks** — the `selection_pipeline` artifact
//!   (`BENCH_selection.json`, `selection_version: 1`): tuple vs carried vs
//!   compacted timings per cell, the bytes-decoded drop from late
//!   materialization, and the differential-equivalence summary
//!   ([`check_selection`]).
//!
//! The `profile_check` binary is a thin CLI over [`check_document`]; the
//! checks live here so integration tests can validate in-process exports
//! without shelling out.

use crate::json::{parse, Json};

/// Parse `text` and validate it as whichever export kind its top-level keys
/// identify. Returns a one-line summary.
pub fn check_document(text: &str) -> Result<String, String> {
    let doc = parse(text)?;
    if doc.get("traceEvents").is_some() {
        check_trace(&doc)
    } else if doc.get("metrics_version").is_some() {
        check_metrics(&doc)
    } else if doc.get("serve_version").is_some() {
        check_serve(&doc)
    } else if doc.get("selection_version").is_some() {
        check_selection(&doc)
    } else {
        check_profile(&doc)
    }
}

/// Validate a `selection_pipeline` benchmark artifact (`BENCH_selection.json`,
/// `selection_version: 1`): per-cell timings for the tuple / carried /
/// compacted executions of the same filtered scan, the speedup derived from
/// them, the bytes-decoded comparison showing late materialization paying
/// off, and the differential summary asserting the three paths produced
/// bit-identical rows.
pub fn check_selection(doc: &Json) -> Result<String, String> {
    if doc.get("selection_version").and_then(Json::as_f64) != Some(1.0) {
        return Err("missing or unexpected selection_version".into());
    }
    for key in ["rows", "batch_size"] {
        if doc.get(key).and_then(Json::as_f64).is_none() {
            return Err(format!("missing numeric {key:?}"));
        }
    }
    let cells = doc.get("cells").and_then(Json::as_array).ok_or("missing cells array")?;
    if cells.is_empty() {
        return Err("empty cells array".into());
    }
    for (i, cell) in cells.iter().enumerate() {
        if cell.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("cell {i} missing name"));
        }
        for key in [
            "selectivity",
            "tuple_ms",
            "carry_ms",
            "compact_ms",
            "speedup_vs_tuple",
            "rows_out",
            "bytes_decoded_tuple",
            "bytes_decoded_carry",
            "columns_pruned",
            "selections_carried",
            "slots_compacted",
        ] {
            match cell.get(key).and_then(Json::as_f64) {
                Some(n) if n >= 0.0 => {}
                _ => return Err(format!("cell {i} missing non-negative {key:?}")),
            }
        }
        // The speedup is derived from the two timings it sits between; a
        // stale or hand-edited number must not slip through.
        let tuple_ms = cell.get("tuple_ms").and_then(Json::as_f64).unwrap_or(0.0);
        let carry_ms = cell.get("carry_ms").and_then(Json::as_f64).unwrap_or(0.0);
        let speedup = cell.get("speedup_vs_tuple").and_then(Json::as_f64).unwrap_or(0.0);
        if carry_ms > 0.0 && (speedup - tuple_ms / carry_ms).abs() > 1e-6 * speedup.max(1.0) {
            return Err(format!(
                "cell {i}: speedup_vs_tuple {speedup} inconsistent with tuple_ms/carry_ms"
            ));
        }
    }
    let eq = doc.get("equivalence").ok_or("missing equivalence summary")?;
    match eq.get("plans").and_then(Json::as_f64) {
        Some(n) if n > 0.0 => {}
        _ => return Err("equivalence missing positive plan count".into()),
    }
    if !matches!(eq.get("rows_identical"), Some(Json::Bool(true))) {
        return Err("equivalence.rows_identical must be true".into());
    }
    if !matches!(eq.get("counters_exact"), Some(Json::Bool(true))) {
        return Err("equivalence.counters_exact must be true".into());
    }
    Ok(format!("selection: {} cells, equivalence over plans verified", cells.len()))
}

/// Validate a `serve_throughput` benchmark artifact (`serve_version: 1`):
/// the per-client-count sweep, plan-cache counters (hit rate must equal
/// hits / (hits + misses)), the cached-vs-uncached latency pair, and the
/// load-shed accounting (`submitted == completed + shed`).
pub fn check_serve(doc: &Json) -> Result<String, String> {
    if doc.get("serve_version").and_then(Json::as_f64) != Some(1.0) {
        return Err("missing or unexpected serve_version".into());
    }
    for key in ["host_cores", "workers", "queue_depth"] {
        if doc.get(key).and_then(Json::as_f64).is_none() {
            return Err(format!("missing numeric {key:?}"));
        }
    }
    let clients = doc.get("clients").and_then(Json::as_array).ok_or("missing clients array")?;
    if clients.is_empty() {
        return Err("empty clients array".into());
    }
    for (i, row) in clients.iter().enumerate() {
        for key in ["clients", "queries", "shed", "qps", "p50_us", "p99_us"] {
            match row.get(key).and_then(Json::as_f64) {
                Some(n) if n >= 0.0 => {}
                _ => return Err(format!("clients row {i} missing non-negative {key:?}")),
            }
        }
        let (p50, p99) = (
            row.get("p50_us").and_then(Json::as_f64).unwrap_or(0.0),
            row.get("p99_us").and_then(Json::as_f64).unwrap_or(0.0),
        );
        if p99 < p50 {
            return Err(format!("clients row {i}: p99 {p99} below p50 {p50}"));
        }
    }
    let cache = doc.get("plan_cache").ok_or("missing plan_cache")?;
    let mut counts = [0.0; 3];
    for (slot, key) in counts.iter_mut().zip(["hits", "misses", "invalidations"]) {
        match cache.get(key).and_then(Json::as_f64) {
            Some(n) if n >= 0.0 => *slot = n,
            _ => return Err(format!("plan_cache missing non-negative {key:?}")),
        }
    }
    let hit_rate = cache.get("hit_rate").and_then(Json::as_f64).ok_or("missing hit_rate")?;
    let expected = match counts[0] + counts[1] {
        t if t > 0.0 => counts[0] / t,
        _ => 0.0,
    };
    if (hit_rate - expected).abs() > 1e-6 {
        return Err(format!("hit_rate {hit_rate} inconsistent with hits/misses ({expected})"));
    }
    let latency = doc.get("latency").ok_or("missing latency comparison")?;
    for key in ["cached_p50_us", "uncached_p50_us"] {
        match latency.get(key).and_then(Json::as_f64) {
            Some(n) if n >= 0.0 => {}
            _ => return Err(format!("latency missing non-negative {key:?}")),
        }
    }
    let shed = doc.get("load_shed").ok_or("missing load_shed")?;
    let mut totals = [0.0; 3];
    for (slot, key) in totals.iter_mut().zip(["submitted", "completed", "shed"]) {
        match shed.get(key).and_then(Json::as_f64) {
            Some(n) if n >= 0.0 => *slot = n,
            _ => return Err(format!("load_shed missing non-negative {key:?}")),
        }
    }
    if totals[0] != totals[1] + totals[2] {
        return Err(format!(
            "load_shed submitted {} != completed {} + shed {}",
            totals[0], totals[1], totals[2]
        ));
    }
    // Hot-template visibility (optional for older artifacts): the top-N
    // cached plan templates by hit count, each with its execute-latency
    // digest. Rows must arrive hottest-first.
    let mut n_templates = 0;
    if let Some(templates) = doc.get("hot_templates") {
        let rows = templates.as_array().ok_or("hot_templates is not an array")?;
        let mut prev_hits = f64::INFINITY;
        for (i, t) in rows.iter().enumerate() {
            if t.get("template").and_then(Json::as_str).is_none() {
                return Err(format!("hot_templates row {i} missing template text"));
            }
            for key in ["hits", "executes", "p50_us", "p99_us"] {
                match t.get(key).and_then(Json::as_f64) {
                    Some(n) if n >= 0.0 => {}
                    _ => return Err(format!("hot_templates row {i} missing non-negative {key:?}")),
                }
            }
            let hits = t.get("hits").and_then(Json::as_f64).unwrap_or(0.0);
            if hits > prev_hits {
                return Err(format!("hot_templates row {i} not sorted by descending hits"));
            }
            prev_hits = hits;
        }
        n_templates = rows.len();
    }
    Ok(format!(
        "serve: {} client configs, hit_rate {hit_rate:.3}, {} shed, {n_templates} hot templates",
        clients.len(),
        totals[2]
    ))
}

/// Validate a `QueryProfile` export or an EXPLAIN ANALYZE report embedding
/// one: operator schema, worker/morsel/row reconciliation, and (for
/// reports) estimate and feedback arrays.
pub fn check_profile(doc: &Json) -> Result<String, String> {
    // An analyze report embeds the profile; a bare export IS the profile.
    let profile = doc.get("profile").unwrap_or(doc);
    if profile.get("profile_version").and_then(Json::as_f64) != Some(1.0) {
        return Err("missing or unexpected profile_version".into());
    }
    let ops = profile.get("operators").and_then(Json::as_array).ok_or("missing operators array")?;
    if ops.is_empty() {
        return Err("empty operators array".into());
    }
    for (i, op) in ops.iter().enumerate() {
        for key in
            ["rows_out", "calls", "busy_ms", "page_reads", "predicate_evals", "bytes_decoded"]
        {
            if op.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("operator {i} missing numeric {key:?}"));
            }
        }
        if op.get("label").and_then(Json::as_str).is_none() {
            return Err(format!("operator {i} missing label"));
        }
        match op.get("mode").and_then(Json::as_str) {
            Some("batch" | "batch+sel" | "batch+compact" | "tuple" | "fused") => {}
            Some(m) => return Err(format!("operator {i} has unknown mode {m:?}")),
            None => return Err(format!("operator {i} missing mode")),
        }
        let children = op.get("children").and_then(Json::as_array).unwrap_or(&[]);
        for c in children {
            match c.as_f64() {
                Some(id) if (id as usize) < ops.len() && id > i as f64 => {}
                _ => return Err(format!("operator {i} has an out-of-range child id")),
            }
        }
    }
    let workers = profile.get("workers").and_then(Json::as_array).unwrap_or(&[]);
    for (i, w) in workers.iter().enumerate() {
        for key in ["worker", "morsels", "rows", "busy_ms", "claim_wait_ms"] {
            if w.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("worker {i} missing numeric {key:?}"));
            }
        }
    }
    // Worker rows and morsels must reconcile with the plan totals.
    if !workers.is_empty() {
        let claimed: f64 =
            workers.iter().filter_map(|w| w.get("morsels").and_then(Json::as_f64)).sum();
        let planned = profile.get("morsels_planned").and_then(Json::as_f64).unwrap_or(0.0);
        if claimed != planned {
            return Err(format!("workers claimed {claimed} morsels but {planned} were planned"));
        }
        let worker_rows: f64 =
            workers.iter().filter_map(|w| w.get("rows").and_then(Json::as_f64)).sum();
        let root_rows = ops[0].get("rows_out").and_then(Json::as_f64).unwrap_or(-1.0);
        if worker_rows != root_rows {
            return Err(format!("worker rows {worker_rows} != root rows_out {root_rows}"));
        }
    }
    // EXPLAIN ANALYZE reports (anything that embeds its profile) additionally
    // carry per-operator estimates with the costed mode decision and its
    // margin, plus the refreshed-statistics array the feedback loop folds
    // back into the catalog overlay.
    let mut n_est = 0;
    let mut n_fb = 0;
    if doc.get("profile").is_some() {
        let ests =
            doc.get("estimates").and_then(Json::as_array).ok_or("report missing estimates")?;
        if ests.len() != ops.len() {
            return Err(format!("{} estimates for {} operators", ests.len(), ops.len()));
        }
        for (i, est) in ests.iter().enumerate() {
            for key in ["id", "mode_margin", "est_rows", "actual_rows"] {
                if est.get(key).and_then(Json::as_f64).is_none() {
                    return Err(format!("estimate {i} missing numeric {key:?}"));
                }
            }
            match est.get("mode").and_then(Json::as_str) {
                Some("batch" | "batch+sel" | "batch+compact" | "tuple" | "fused") => {}
                _ => return Err(format!("estimate {i} missing or unknown mode")),
            }
            if !matches!(est.get("divergent"), Some(Json::Bool(_))) {
                return Err(format!("estimate {i} missing boolean \"divergent\""));
            }
        }
        n_est = ests.len();
        let fb = doc.get("feedback").and_then(Json::as_array).ok_or("report missing feedback")?;
        for (i, f) in fb.iter().enumerate() {
            if f.get("sequence").and_then(Json::as_str).is_none() {
                return Err(format!("feedback entry {i} missing sequence name"));
            }
            for key in ["observed_rows", "refreshes"] {
                if f.get(key).and_then(Json::as_f64).is_none() {
                    return Err(format!("feedback entry {i} missing numeric {key:?}"));
                }
            }
            // Measured fractions are per-kind optional: null until observed.
            for key in ["density", "selectivity", "skip_fraction"] {
                match f.get(key) {
                    Some(Json::Null | Json::Num(_)) => {}
                    _ => return Err(format!("feedback entry {i} missing {key:?}")),
                }
            }
        }
        n_fb = fb.len();
    }
    let rows = ops[0].get("rows_out").and_then(Json::as_f64).unwrap_or(0.0);
    Ok(format!(
        "profile: {} operators, {} workers, {n_est} estimates, {n_fb} feedback entries, \
         root rows_out={rows}",
        ops.len(),
        workers.len()
    ))
}

/// The histogram names a metrics snapshot must carry, in order.
const HISTOGRAM_NAMES: [&str; 4] = ["parse", "optimize", "execute", "morsel"];

/// The counter keys a metrics snapshot must carry.
const COUNTER_KEYS: [&str; 19] = [
    "queries",
    "queries_failed",
    "rows_out",
    "page_reads",
    "page_hits",
    "pages_skipped",
    "probes",
    "stream_records",
    "bytes_decoded",
    "columns_pruned",
    "predicate_evals",
    "selections_carried",
    "slots_compacted",
    "cache_probes",
    "cache_stores",
    "morsels",
    "plan_cache_hits",
    "plan_cache_misses",
    "plan_cache_invalidations",
];

/// Validate a `SessionMetrics` snapshot export (`metrics_version: 1`):
/// window marker, counters, per-path counts, the four histograms (with
/// null-vs-numeric percentile consistency and bucket-count reconciliation),
/// the optional buffer-pool stripe table, and the trace-ring occupancy.
pub fn check_metrics(doc: &Json) -> Result<String, String> {
    if doc.get("metrics_version").and_then(Json::as_f64) != Some(1.0) {
        return Err("missing or unexpected metrics_version".into());
    }
    let window = doc.get("window").ok_or("missing window")?;
    for key in ["resets", "started_unix_ms"] {
        if window.get(key).and_then(Json::as_f64).is_none() {
            return Err(format!("window missing numeric {key:?}"));
        }
    }
    let counters = doc.get("counters").ok_or("missing counters")?;
    for key in COUNTER_KEYS {
        if counters.get(key).and_then(Json::as_f64).is_none() {
            return Err(format!("counters missing numeric {key:?}"));
        }
    }
    let paths = doc.get("paths").ok_or("missing paths")?;
    let mut path_total = 0.0;
    for key in ["tuple", "batch", "parallel", "probe"] {
        match paths.get(key).and_then(Json::as_f64) {
            Some(n) => path_total += n,
            None => return Err(format!("paths missing numeric {key:?}")),
        }
    }
    let queries = counters.get("queries").and_then(Json::as_f64).unwrap_or(0.0);
    if path_total != queries {
        return Err(format!("per-path counts sum to {path_total} but queries={queries}"));
    }
    let hists = doc.get("histograms").and_then(Json::as_array).ok_or("missing histograms")?;
    if hists.len() != HISTOGRAM_NAMES.len() {
        return Err(format!("{} histograms, expected {}", hists.len(), HISTOGRAM_NAMES.len()));
    }
    let mut samples = 0.0;
    for (h, expected_name) in hists.iter().zip(HISTOGRAM_NAMES) {
        let name = h.get("name").and_then(Json::as_str).unwrap_or("");
        if name != expected_name {
            return Err(format!("histogram {name:?} where {expected_name:?} expected"));
        }
        let count = h
            .get("count")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("histogram {name:?} missing count"))?;
        samples += count;
        // Percentiles are null exactly when the histogram is empty.
        for key in ["p50_us", "p90_us", "p99_us", "max_us", "mean_us"] {
            match h.get(key) {
                Some(Json::Num(_)) if count > 0.0 => {}
                Some(Json::Null) if count == 0.0 => {}
                Some(Json::Num(_)) => {
                    return Err(format!("histogram {name:?}: {key:?} numeric with zero samples"))
                }
                Some(Json::Null) => {
                    return Err(format!("histogram {name:?}: {key:?} null with {count} samples"))
                }
                _ => return Err(format!("histogram {name:?} missing {key:?}")),
            }
        }
        // Buckets are [upper_ns, count] pairs whose counts sum to count.
        let buckets = h
            .get("buckets")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("histogram {name:?} missing buckets"))?;
        let mut bucket_sum = 0.0;
        let mut prev_upper = -1.0;
        for b in buckets {
            let pair = b.as_array().filter(|p| p.len() == 2);
            let (upper, n) = match pair.map(|p| (p[0].as_f64(), p[1].as_f64())) {
                Some((Some(u), Some(n))) => (u, n),
                _ => return Err(format!("histogram {name:?}: malformed bucket entry")),
            };
            if upper <= prev_upper {
                return Err(format!("histogram {name:?}: bucket uppers not increasing"));
            }
            prev_upper = upper;
            bucket_sum += n;
        }
        if bucket_sum != count {
            return Err(format!(
                "histogram {name:?}: buckets sum to {bucket_sum} but count={count}"
            ));
        }
    }
    match doc.get("buffer_pool") {
        Some(Json::Null) => {}
        Some(pool) => {
            let stripes = pool
                .get("stripes")
                .and_then(Json::as_array)
                .ok_or("buffer_pool missing stripes")?;
            if stripes.is_empty() {
                return Err("buffer_pool has zero stripes".into());
            }
            for (i, s) in stripes.iter().enumerate() {
                for key in ["hits", "misses", "contended"] {
                    if s.get(key).and_then(Json::as_f64).is_none() {
                        return Err(format!("stripe {i} missing numeric {key:?}"));
                    }
                }
            }
        }
        None => return Err("missing buffer_pool (null allowed)".into()),
    }
    let trace = doc.get("trace").ok_or("missing trace")?;
    for key in ["recorded", "dropped", "capacity"] {
        if trace.get(key).and_then(Json::as_f64).is_none() {
            return Err(format!("trace missing numeric {key:?}"));
        }
    }
    // Serve-level exports splice in the hottest plan templates; bare
    // registry exports don't carry the section.
    if let Some(templates) = doc.get("hot_templates") {
        let rows = templates.as_array().ok_or("hot_templates is not an array")?;
        let mut prev_hits = f64::INFINITY;
        for (i, t) in rows.iter().enumerate() {
            if t.get("template").and_then(Json::as_str).is_none() {
                return Err(format!("hot_templates row {i} missing template text"));
            }
            for key in ["hits", "executes", "p50_us", "p99_us"] {
                match t.get(key).and_then(Json::as_f64) {
                    Some(n) if n >= 0.0 => {}
                    _ => return Err(format!("hot_templates row {i} missing non-negative {key:?}")),
                }
            }
            let hits = t.get("hits").and_then(Json::as_f64).unwrap_or(0.0);
            if hits > prev_hits {
                return Err(format!("hot_templates row {i} not sorted by descending hits"));
            }
            prev_hits = hits;
        }
    }
    Ok(format!("metrics: {queries} queries, {samples} histogram samples"))
}

/// Validate a Chrome `trace_event` JSON export: a `traceEvents` array of
/// complete (`"ph": "X"`) events with numeric non-negative `ts`/`dur`,
/// numeric `pid`/`tid`, a known category, and an `args` object.
pub fn check_trace(doc: &Json) -> Result<String, String> {
    let events = doc.get("traceEvents").and_then(Json::as_array).ok_or("missing traceEvents")?;
    for (i, ev) in events.iter().enumerate() {
        if ev.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("event {i} missing name"));
        }
        match ev.get("cat").and_then(Json::as_str) {
            Some("phase" | "query" | "operator") => {}
            Some(c) => return Err(format!("event {i} has unknown cat {c:?}")),
            None => return Err(format!("event {i} missing cat")),
        }
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            return Err(format!("event {i} is not a complete event (ph != \"X\")"));
        }
        for key in ["ts", "dur"] {
            match ev.get(key).and_then(Json::as_f64) {
                Some(n) if n >= 0.0 => {}
                _ => return Err(format!("event {i} missing non-negative {key:?}")),
            }
        }
        for key in ["pid", "tid"] {
            if ev.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("event {i} missing numeric {key:?}"));
            }
        }
        if !matches!(ev.get("args"), Some(Json::Obj(_))) {
            return Err(format!("event {i} missing args object"));
        }
    }
    Ok(format!("trace: {} events", events.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_identifies_all_three_kinds() {
        let trace = r#"{"traceEvents": [{"name": "parse", "cat": "phase", "ph": "X",
            "ts": 1.0, "dur": 2.0, "pid": 1, "tid": 0, "args": {}}]}"#;
        assert_eq!(check_document(trace).unwrap(), "trace: 1 events");

        let bad_trace = r#"{"traceEvents": [{"name": "x", "cat": "phase", "ph": "B",
            "ts": 1.0, "dur": 2.0, "pid": 1, "tid": 0, "args": {}}]}"#;
        assert!(check_document(bad_trace).unwrap_err().contains("complete event"));

        // Metrics dispatch is exercised end-to-end in the seq-bench
        // integration test against a real SessionMetrics export.
        assert!(check_document(r#"{"metrics_version": 2}"#)
            .unwrap_err()
            .contains("metrics_version"));
        assert!(check_document(r#"{"profile_version": 2}"#)
            .unwrap_err()
            .contains("profile_version"));
    }

    #[test]
    fn serve_checker_enforces_consistency() {
        let doc = |hit_rate: &str, shed: &str| {
            format!(
                r#"{{"benchmark": "serve_throughput", "serve_version": 1,
                    "host_cores": 1, "workers": 2, "queue_depth": 4,
                    "clients": [
                        {{"clients": 1, "queries": 100, "shed": 0, "qps": 5000.0,
                          "p50_us": 120.0, "p99_us": 400.0}},
                        {{"clients": 4, "queries": 350, "shed": 0, "qps": 9000.0,
                          "p50_us": 300.0, "p99_us": 900.0}}
                    ],
                    "plan_cache": {{"hits": 90, "misses": 10, "invalidations": 2,
                                    "hit_rate": {hit_rate}}},
                    "latency": {{"cached_p50_us": 100.0, "uncached_p50_us": 350.0}},
                    "load_shed": {shed}}}"#
            )
        };
        let good = doc("0.9", r#"{"submitted": 10, "completed": 7, "shed": 3}"#);
        assert!(check_document(&good).is_ok(), "{:?}", check_document(&good));
        let bad_rate = doc("0.5", r#"{"submitted": 10, "completed": 7, "shed": 3}"#);
        assert!(check_document(&bad_rate).unwrap_err().contains("hit_rate"));
        let bad_shed = doc("0.9", r#"{"submitted": 10, "completed": 7, "shed": 1}"#);
        assert!(check_document(&bad_shed).unwrap_err().contains("load_shed"));
    }

    #[test]
    fn serve_checker_validates_hot_templates() {
        let doc = |templates: &str| {
            format!(
                r#"{{"benchmark": "serve_throughput", "serve_version": 1,
                    "host_cores": 1, "workers": 2, "queue_depth": 4,
                    "clients": [{{"clients": 1, "queries": 10, "shed": 0, "qps": 100.0,
                                  "p50_us": 10.0, "p99_us": 20.0}}],
                    "plan_cache": {{"hits": 1, "misses": 1, "invalidations": 0,
                                    "hit_rate": 0.5}},
                    "latency": {{"cached_p50_us": 1.0, "uncached_p50_us": 2.0}},
                    "load_shed": {{"submitted": 10, "completed": 10, "shed": 0}},
                    "hot_templates": {templates}}}"#
            )
        };
        let good = doc(r#"[{"template": "select $1", "hits": 9, "executes": 10,
                 "p50_us": 5.0, "p99_us": 9.0},
                {"template": "project $1", "hits": 3, "executes": 4,
                 "p50_us": 2.0, "p99_us": 4.0}]"#);
        assert!(check_document(&good).unwrap().contains("2 hot templates"));
        let unsorted =
            doc(r#"[{"template": "a", "hits": 1, "executes": 1, "p50_us": 1.0, "p99_us": 1.0},
                {"template": "b", "hits": 5, "executes": 5, "p50_us": 1.0, "p99_us": 1.0}]"#);
        assert!(check_document(&unsorted).unwrap_err().contains("descending hits"));
        let missing = doc(r#"[{"template": "a", "hits": 1}]"#);
        assert!(check_document(&missing).unwrap_err().contains("executes"));
    }

    #[test]
    fn selection_checker_enforces_consistency() {
        let doc = |speedup: &str, identical: &str| {
            format!(
                r#"{{"benchmark": "selection_pipeline", "selection_version": 1,
                    "rows": 100000, "batch_size": 4096,
                    "cells": [
                        {{"name": "plain_filter", "selectivity": 0.05,
                          "tuple_ms": 10.0, "carry_ms": 5.0, "compact_ms": 7.0,
                          "speedup_vs_tuple": {speedup}, "rows_out": 5000,
                          "bytes_decoded_tuple": 800000, "bytes_decoded_carry": 200000,
                          "columns_pruned": 120, "selections_carried": 25,
                          "slots_compacted": 0}}
                    ],
                    "equivalence": {{"plans": 12, "rows_identical": {identical},
                                     "counters_exact": true}}}}"#
            )
        };
        let good = doc("2.0", "true");
        assert!(check_document(&good).is_ok(), "{:?}", check_document(&good));
        let bad_speedup = doc("3.5", "true");
        assert!(check_document(&bad_speedup).unwrap_err().contains("speedup_vs_tuple"));
        let bad_rows = doc("2.0", "false");
        assert!(check_document(&bad_rows).unwrap_err().contains("rows_identical"));
    }

    #[test]
    fn metrics_checker_rejects_inconsistencies() {
        let doc = |paths: &str, p50: &str| {
            format!(
                r#"{{"metrics_version": 1,
                    "window": {{"resets": 0, "started_unix_ms": 1}},
                    "counters": {{"queries": 1, "queries_failed": 0, "rows_out": 5,
                        "page_reads": 0, "page_hits": 0, "pages_skipped": 0, "probes": 0,
                        "stream_records": 0, "bytes_decoded": 0, "columns_pruned": 0,
                        "predicate_evals": 0, "selections_carried": 0, "slots_compacted": 0,
                        "cache_probes": 0, "cache_stores": 0, "morsels": 0,
                        "plan_cache_hits": 0, "plan_cache_misses": 0,
                        "plan_cache_invalidations": 0}},
                    "paths": {paths},
                    "histograms": [
                        {{"name": "parse", "count": 0, "p50_us": null, "p90_us": null,
                          "p99_us": null, "max_us": null, "mean_us": null, "buckets": []}},
                        {{"name": "optimize", "count": 0, "p50_us": null, "p90_us": null,
                          "p99_us": null, "max_us": null, "mean_us": null, "buckets": []}},
                        {{"name": "execute", "count": 1, "p50_us": {p50}, "p90_us": 1.0,
                          "p99_us": 1.0, "max_us": 1.0, "mean_us": 1.0,
                          "buckets": [[1023, 1]]}},
                        {{"name": "morsel", "count": 0, "p50_us": null, "p90_us": null,
                          "p99_us": null, "max_us": null, "mean_us": null, "buckets": []}}
                    ],
                    "buffer_pool": null,
                    "trace": {{"recorded": 1, "dropped": 0, "capacity": 4096}}}}"#
            )
        };
        let good = doc(r#"{"tuple": 1, "batch": 0, "parallel": 0, "probe": 0}"#, "1.0");
        assert!(check_document(&good).is_ok(), "{:?}", check_document(&good));
        let bad_paths = doc(r#"{"tuple": 0, "batch": 0, "parallel": 0, "probe": 0}"#, "1.0");
        assert!(check_document(&bad_paths).unwrap_err().contains("per-path"));
        let bad_pct = doc(r#"{"tuple": 1, "batch": 0, "parallel": 0, "probe": 0}"#, "null");
        assert!(check_document(&bad_pct).unwrap_err().contains("null with"));
    }
}
