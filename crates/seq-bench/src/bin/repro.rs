//! Reproduce every experiment table: `cargo run --release -p seq-bench --bin repro`
//! (optionally `repro e1 e5 ...` for a subset).

use seq_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id));

    println!("Sequence Query Processing (SIGMOD 1994) — experiment reproduction");
    println!("==================================================================");

    if want("e1") {
        e1_motivating::print(&e1_motivating::run());
    }
    if want("e2") {
        e2_span::print(&e2_span::run());
    }
    if want("e3") {
        e3_access_modes::print(&e3_access_modes::run());
    }
    if want("e4") {
        e4_caching::print_fig5a(&e4_caching::run_fig5a());
        e4_caching::print_fig5b(&e4_caching::run_fig5b());
    }
    if want("e5") {
        e5_prop41::print(&e5_prop41::run());
    }
    if want("e6") {
        e6_stream_access::run_and_print();
    }
    if want("e8") {
        e8_pushdown::print(&e8_pushdown::run());
    }
    if want("e9") {
        e9_cost_model::print(&e9_cost_model::run());
    }
    if want("e10") {
        e10_pipeline::run_and_print();
    }
    if want("e11") {
        e11_buffer_pool::print(&e11_buffer_pool::run());
    }
    if want("e14") {
        e14_profile::run_and_print();
    }
}
