//! Validate emitted telemetry JSON files (CI smoke check).
//!
//! Usage: `profile_check FILE...` — each file must parse as JSON and
//! validate as one of the harness's export kinds, dispatched on its
//! top-level keys (see [`seq_bench::validate`]):
//!
//! - a bare `QueryProfile` export or an EXPLAIN ANALYZE report embedding one;
//! - a `SessionMetrics` snapshot (`metrics_version: 1`);
//! - a Chrome `trace_event` export (`traceEvents`).
//!
//! Exits non-zero with a message on the first violation; prints a one-line
//! summary per valid file.

use std::process::ExitCode;

use seq_bench::validate::check_document;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: profile_check FILE...");
        return ExitCode::FAILURE;
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: INVALID: read failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        match check_document(&text) {
            Ok(summary) => println!("{path}: OK ({summary})"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
