//! Validate emitted profile JSON files (CI smoke check).
//!
//! Usage: `profile_check FILE...` — each file must parse as JSON and contain
//! either a bare `QueryProfile` export or an EXPLAIN ANALYZE report that
//! embeds one under `"profile"`. Exits non-zero with a message on the first
//! violation; prints a one-line summary per valid file.

use std::process::ExitCode;

use seq_bench::json::{parse, Json};

fn check_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let doc = parse(&text)?;
    // An analyze report embeds the profile; a bare export IS the profile.
    let profile = doc.get("profile").unwrap_or(&doc);
    if profile.get("profile_version").and_then(Json::as_f64) != Some(1.0) {
        return Err("missing or unexpected profile_version".into());
    }
    let ops = profile.get("operators").and_then(Json::as_array).ok_or("missing operators array")?;
    if ops.is_empty() {
        return Err("empty operators array".into());
    }
    for (i, op) in ops.iter().enumerate() {
        for key in
            ["rows_out", "calls", "busy_ms", "page_reads", "predicate_evals", "bytes_decoded"]
        {
            if op.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("operator {i} missing numeric {key:?}"));
            }
        }
        if op.get("label").and_then(Json::as_str).is_none() {
            return Err(format!("operator {i} missing label"));
        }
        match op.get("mode").and_then(Json::as_str) {
            Some("batch" | "tuple" | "fused") => {}
            Some(m) => return Err(format!("operator {i} has unknown mode {m:?}")),
            None => return Err(format!("operator {i} missing mode")),
        }
        let children = op.get("children").and_then(Json::as_array).unwrap_or(&[]);
        for c in children {
            match c.as_f64() {
                Some(id) if (id as usize) < ops.len() && id > i as f64 => {}
                _ => return Err(format!("operator {i} has an out-of-range child id")),
            }
        }
    }
    let workers = profile.get("workers").and_then(Json::as_array).unwrap_or(&[]);
    for (i, w) in workers.iter().enumerate() {
        for key in ["worker", "morsels", "rows", "busy_ms", "claim_wait_ms"] {
            if w.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("worker {i} missing numeric {key:?}"));
            }
        }
    }
    // Worker rows and morsels must reconcile with the plan totals.
    if !workers.is_empty() {
        let claimed: f64 =
            workers.iter().filter_map(|w| w.get("morsels").and_then(Json::as_f64)).sum();
        let planned = profile.get("morsels_planned").and_then(Json::as_f64).unwrap_or(0.0);
        if claimed != planned {
            return Err(format!("workers claimed {claimed} morsels but {planned} were planned"));
        }
        let worker_rows: f64 =
            workers.iter().filter_map(|w| w.get("rows").and_then(Json::as_f64)).sum();
        let root_rows = ops[0].get("rows_out").and_then(Json::as_f64).unwrap_or(-1.0);
        if worker_rows != root_rows {
            return Err(format!("worker rows {worker_rows} != root rows_out {root_rows}"));
        }
    }
    // EXPLAIN ANALYZE reports (anything that embeds its profile) additionally
    // carry per-operator estimates with the costed mode decision and its
    // margin, plus the refreshed-statistics array the feedback loop folds
    // back into the catalog overlay.
    let mut n_est = 0;
    let mut n_fb = 0;
    if doc.get("profile").is_some() {
        let ests =
            doc.get("estimates").and_then(Json::as_array).ok_or("report missing estimates")?;
        if ests.len() != ops.len() {
            return Err(format!("{} estimates for {} operators", ests.len(), ops.len()));
        }
        for (i, est) in ests.iter().enumerate() {
            for key in ["id", "mode_margin", "est_rows", "actual_rows"] {
                if est.get(key).and_then(Json::as_f64).is_none() {
                    return Err(format!("estimate {i} missing numeric {key:?}"));
                }
            }
            match est.get("mode").and_then(Json::as_str) {
                Some("batch" | "tuple" | "fused") => {}
                _ => return Err(format!("estimate {i} missing or unknown mode")),
            }
            if !matches!(est.get("divergent"), Some(Json::Bool(_))) {
                return Err(format!("estimate {i} missing boolean \"divergent\""));
            }
        }
        n_est = ests.len();
        let fb = doc.get("feedback").and_then(Json::as_array).ok_or("report missing feedback")?;
        for (i, f) in fb.iter().enumerate() {
            if f.get("sequence").and_then(Json::as_str).is_none() {
                return Err(format!("feedback entry {i} missing sequence name"));
            }
            for key in ["observed_rows", "refreshes"] {
                if f.get(key).and_then(Json::as_f64).is_none() {
                    return Err(format!("feedback entry {i} missing numeric {key:?}"));
                }
            }
            // Measured fractions are per-kind optional: null until observed.
            for key in ["density", "selectivity", "skip_fraction"] {
                match f.get(key) {
                    Some(Json::Null | Json::Num(_)) => {}
                    _ => return Err(format!("feedback entry {i} missing {key:?}")),
                }
            }
        }
        n_fb = fb.len();
    }
    let rows = ops[0].get("rows_out").and_then(Json::as_f64).unwrap_or(0.0);
    Ok(format!(
        "{} operators, {} workers, {n_est} estimates, {n_fb} feedback entries, \
         root rows_out={rows}",
        ops.len(),
        workers.len()
    ))
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: profile_check FILE...");
        return ExitCode::FAILURE;
    }
    for path in &paths {
        match check_file(path) {
            Ok(summary) => println!("{path}: OK ({summary})"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
