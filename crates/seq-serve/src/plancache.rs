//! The normalized plan cache.
//!
//! Keyed on the canonical template ([`crate::canon`]) plus everything else
//! that feeds the optimizer — position range, parallelism, pushdown, and
//! whether feedback statistics price the plan — so a hit is a plan that the
//! optimizer *would* have produced for this session configuration, up to
//! literal values. Entries are stamped with the catalog epoch and the
//! shared-statistics revision they were planned against; a lookup that
//! finds a stale stamp removes the entry and counts an invalidation, so
//! publishes and feedback changes invalidate cached plans without any
//! broadcast machinery.
//!
//! ## Literal rebinding
//!
//! A hit must serve the *new* literals, so the cached plan's `Expr::Lit`
//! sites (and the fused-scan pushdown terms derived from them) are rewritten
//! by value: at insert the first-seen parameters are recorded, and at hit
//! every plan literal equal to parameter `i`'s old value is replaced by the
//! new value of parameter `i`. That mapping is only well-defined when the
//! first-seen parameters are pairwise distinct and every literal in the plan
//! traces back to a parameter; inserts verify both, and entries that fail
//! the check degrade to *exact-only* (they still hit, but only for
//! literal-identical queries). Cost estimates are the first-seen ones —
//! standard parametric-plan-cache behavior: the shape is reused even where
//! re-optimizing with the new literals might have priced differently.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use seq_core::{Span, Value};
use seq_exec::PhysNode;
use seq_ops::Expr;
use seq_opt::Optimized;

/// Everything besides literal values that determines what the optimizer
/// produces for a query text.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical query template (literals parameterized out).
    pub template: String,
    /// The Start operator's position range, `(lo, hi)`.
    pub range: (i64, i64),
    /// Worker threads the plan was lowered for.
    pub parallelism: usize,
    /// Whether selection pushdown was enabled.
    pub pushdown: bool,
    /// Whether feedback statistics were eligible to price the plan. (The
    /// statistics *revision* is stamped on the entry, not the key: a
    /// revision change invalidates rather than forks.)
    pub feedback: bool,
}

struct Entry {
    /// Catalog epoch the plan was optimized against.
    epoch: u64,
    /// Shared-statistics revision the plan was priced with.
    stats_rev: u64,
    /// First-seen literal parameters, in canonical (source) order.
    params: Vec<Value>,
    /// The cached plan, as optimized for `params`.
    plan: Arc<Optimized>,
    /// Rebinding self-check failed: serve only literal-identical queries.
    exact_only: bool,
    /// LRU tick of the last hit or insert.
    last_used: u64,
}

/// Outcome of a cache probe.
pub enum Lookup {
    /// A valid entry served this query; the plan is rebound to the probe's
    /// literals and ready to execute.
    Hit(Arc<Optimized>),
    /// No usable entry; caller should parse + optimize and [`PlanCache::insert`].
    Miss,
}

/// A bounded, LRU-evicting map from normalized query shape to optimized
/// plan, shared by every server session.
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
    /// Stale entries removed by lookups since construction (monotone).
    invalidations: std::sync::atomic::AtomicU64,
}

struct Inner {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (LRU eviction).
    pub fn new(capacity: usize) -> PlanCache {
        assert!(capacity > 0, "plan cache capacity must be positive");
        PlanCache {
            inner: Mutex::new(Inner { map: HashMap::new(), tick: 0 }),
            capacity,
            invalidations: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Probe for a plan for `key` with the given literals, valid at
    /// (`epoch`, `stats_rev`). A stale entry is removed and counted as an
    /// invalidation (the probe then misses).
    pub fn lookup(&self, key: &CacheKey, params: &[Value], epoch: u64, stats_rev: u64) -> Lookup {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        let Some(entry) = inner.map.get_mut(key) else { return Lookup::Miss };
        if entry.epoch != epoch || entry.stats_rev != stats_rev {
            inner.map.remove(key);
            self.invalidations.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Lookup::Miss;
        }
        if entry.params.len() != params.len() {
            // Same template implies same arity; defensive against drift.
            return Lookup::Miss;
        }
        let identical = entry.params.iter().zip(params).all(|(old, new)| lit_eq(old, new));
        if identical {
            entry.last_used = tick;
            return Lookup::Hit(Arc::clone(&entry.plan));
        }
        if entry.exact_only {
            return Lookup::Miss;
        }
        entry.last_used = tick;
        let mut rebound: Optimized = (*entry.plan).clone();
        rebind_node(&mut rebound.plan.root, &entry.params, params);
        Lookup::Hit(Arc::new(rebound))
    }

    /// Record a freshly optimized plan for `key`. Runs the rebinding
    /// self-check and evicts the least-recently-used entry at capacity.
    pub fn insert(
        &self,
        key: CacheKey,
        params: Vec<Value>,
        plan: Arc<Optimized>,
        epoch: u64,
        stats_rev: u64,
    ) {
        let exact_only = !rebindable(&plan.plan.root, &params);
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(victim) =
                inner.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
            }
        }
        inner
            .map
            .insert(key, Entry { epoch, stats_rev, params, plan, exact_only, last_used: tick });
    }

    /// Stale entries removed by lookups so far.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Exact literal identity: same type, same bits. Floats compare by
/// `to_bits` (so `0.0` and `-0.0` are distinct, NaN payloads matter) —
/// rebinding must never conflate values the executor could distinguish.
pub fn lit_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => x == y,
        _ => false,
    }
}

/// Insert-time self-check: the old-value → new-value substitution is
/// well-defined iff the parameters are pairwise distinct and every literal
/// the plan actually carries matches one of them (a literal matching no
/// parameter was synthesized by the optimizer, and its dependence on the
/// parameters is unknown).
fn rebindable(root: &PhysNode, params: &[Value]) -> bool {
    for (i, a) in params.iter().enumerate() {
        if params[i + 1..].iter().any(|b| lit_eq(a, b)) {
            return false;
        }
    }
    let mut ok = true;
    visit_literals(root, &mut |v| {
        if !params.iter().any(|p| lit_eq(p, v)) {
            ok = false;
        }
    });
    ok
}

/// Replace every rebindable literal equal to `old[i]` with `new[i]`.
fn rebind_node(node: &mut PhysNode, old: &[Value], new: &[Value]) {
    let swap = |v: &mut Value| {
        if let Some(i) = old.iter().position(|o| lit_eq(o, v)) {
            *v = new[i].clone();
        }
    };
    match node {
        PhysNode::Base { .. } | PhysNode::Constant { .. } => {}
        PhysNode::FusedScan { predicate, terms, .. } => {
            rebind_expr(predicate, old, new);
            for (_, _, v) in terms {
                swap(v);
            }
        }
        PhysNode::Select { input, predicate, .. } => {
            rebind_expr(predicate, old, new);
            rebind_node(input, old, new);
        }
        PhysNode::Project { input, .. }
        | PhysNode::PosOffset { input, .. }
        | PhysNode::ValueOffset { input, .. }
        | PhysNode::Aggregate { input, .. } => rebind_node(input, old, new),
        PhysNode::Compose { left, right, predicate, .. } => {
            if let Some(p) = predicate {
                rebind_expr(p, old, new);
            }
            rebind_node(left, old, new);
            rebind_node(right, old, new);
        }
    }
}

fn rebind_expr(expr: &mut Expr, old: &[Value], new: &[Value]) {
    match expr {
        Expr::Lit(v) => {
            if let Some(i) = old.iter().position(|o| lit_eq(o, v)) {
                *v = new[i].clone();
            }
        }
        Expr::Bin(_, l, r) => {
            rebind_expr(l, old, new);
            rebind_expr(r, old, new);
        }
        Expr::Not(e) => rebind_expr(e, old, new),
        Expr::Attr(_) | Expr::Col(_) => {}
    }
}

/// Visit every rebindable literal site: `Expr::Lit` payloads in predicates
/// and fused-scan pushdown terms. `Constant` records are *not* visited —
/// the canonicalizer keeps `const` payloads in the template, so they are
/// identical across all queries sharing the entry.
fn visit_literals(node: &PhysNode, f: &mut impl FnMut(&Value)) {
    match node {
        PhysNode::Base { .. } | PhysNode::Constant { .. } => {}
        PhysNode::FusedScan { predicate, terms, .. } => {
            visit_expr_literals(predicate, f);
            for (_, _, v) in terms {
                f(v);
            }
        }
        PhysNode::Select { input, predicate, .. } => {
            visit_expr_literals(predicate, f);
            visit_literals(input, f);
        }
        PhysNode::Project { input, .. }
        | PhysNode::PosOffset { input, .. }
        | PhysNode::ValueOffset { input, .. }
        | PhysNode::Aggregate { input, .. } => visit_literals(input, f),
        PhysNode::Compose { left, right, predicate, .. } => {
            if let Some(p) = predicate {
                visit_expr_literals(p, f);
            }
            visit_literals(left, f);
            visit_literals(right, f);
        }
    }
}

fn visit_expr_literals(expr: &Expr, f: &mut impl FnMut(&Value)) {
    match expr {
        Expr::Lit(v) => f(v),
        Expr::Bin(_, l, r) => {
            visit_expr_literals(l, f);
            visit_expr_literals(r, f);
        }
        Expr::Not(e) => visit_expr_literals(e, f),
        Expr::Attr(_) | Expr::Col(_) => {}
    }
}

/// Build a [`CacheKey`] from the session knobs that feed the optimizer.
pub fn cache_key(
    template: &str,
    range: Span,
    parallelism: usize,
    pushdown: bool,
    feedback: bool,
) -> CacheKey {
    CacheKey {
        template: template.to_string(),
        range: (range.start(), range.end()),
        parallelism,
        pushdown,
        feedback,
    }
}
