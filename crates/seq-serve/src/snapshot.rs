//! Epoch-stamped catalog snapshots with wait-free reader acquisition.
//!
//! The server publishes the catalog behind a [`SharedCatalog`]: an atomic
//! pointer to the current [`Snapshot`] plus a retention list that keeps
//! every published snapshot alive until the `SharedCatalog` itself drops.
//! Readers acquire the current snapshot with one atomic load and one
//! reference-count increment — no lock, no wait — so a publish in progress
//! can never block a query, and a query in progress can never block a
//! publish (acceptance: readers never block on publish). Queries then run
//! entirely against their acquired snapshot: immutable data, stable epoch.
//!
//! The retention list is the safety argument for the lock-free read path:
//! because a strong count is parked in `retained` for every snapshot ever
//! published, the raw pointer in `current` always points to a live
//! allocation, which makes the reader's `increment_strong_count` sound even
//! if a publish lands between its load and its increment. Snapshots are
//! small (an `Arc<Catalog>` and an epoch), so retaining them for the life
//! of the server is cheap; a production system would reclaim via epochs.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use seq_opt::{FeedbackStats, StatsOverlay};
use seq_storage::Catalog;

/// One immutable published version of the served catalog.
pub struct Snapshot {
    /// Monotone version stamp; bumped by every publish.
    pub epoch: u64,
    /// The catalog as of this epoch. Immutable once published.
    pub catalog: Arc<Catalog>,
}

/// Atomic publication point for catalog snapshots (a hand-rolled arc-swap:
/// the standard library has no lock-free `Arc` cell and this crate takes no
/// dependencies).
pub struct SharedCatalog {
    /// Non-owning pointer to the current snapshot. The pointee's strong
    /// count is owned by `retained`, never by this field.
    current: AtomicPtr<Snapshot>,
    /// Every snapshot ever published, in publish order. Holding one strong
    /// count per snapshot here keeps `current`'s pointee alive for the
    /// lock-free read path; only publishers lock it.
    retained: Mutex<Vec<Arc<Snapshot>>>,
    /// The epoch of the latest publish.
    epoch: AtomicU64,
}

impl SharedCatalog {
    /// Publish `catalog` as epoch 1.
    pub fn new(catalog: Catalog) -> SharedCatalog {
        let snap = Arc::new(Snapshot { epoch: 1, catalog: Arc::new(catalog) });
        let ptr = Arc::as_ptr(&snap) as *mut Snapshot;
        SharedCatalog {
            current: AtomicPtr::new(ptr),
            retained: Mutex::new(vec![snap]),
            epoch: AtomicU64::new(1),
        }
    }

    /// The epoch of the latest published snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Acquire the current snapshot: one atomic load plus one strong-count
    /// increment. Never locks, never waits on a publisher.
    pub fn load(&self) -> Arc<Snapshot> {
        let ptr = self.current.load(Ordering::Acquire);
        // SAFETY: `ptr` came from `Arc::as_ptr` of a snapshot parked in
        // `retained`, which holds a strong count for it until `self` drops;
        // the allocation is therefore live, and incrementing its count then
        // reconstituting an owning Arc is exactly the documented use of
        // `increment_strong_count` + `from_raw`.
        unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        }
    }

    /// Publish a new catalog version; returns its epoch. Readers switch to
    /// it atomically; in-flight queries keep their old snapshot.
    pub fn publish(&self, catalog: Catalog) -> u64 {
        let mut retained = self.retained.lock().unwrap();
        let epoch = self.epoch.load(Ordering::Relaxed) + 1;
        let snap = Arc::new(Snapshot { epoch, catalog: Arc::new(catalog) });
        let ptr = Arc::as_ptr(&snap) as *mut Snapshot;
        retained.push(snap); // park the strong count before exposing the ptr
        self.current.store(ptr, Ordering::Release);
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }

    /// Hold the publisher lock without publishing — pins any concurrent
    /// `publish` mid-flight. Test hook for the acceptance criterion that
    /// readers never block on publication: with this guard held, `load`
    /// must still complete.
    pub fn hold_publish_lock(&self) -> MutexGuard<'_, Vec<Arc<Snapshot>>> {
        self.retained.lock().unwrap()
    }

    /// Number of snapshots published so far (== retained, by construction).
    pub fn published_count(&self) -> usize {
        self.retained.lock().unwrap().len()
    }
}

/// Cross-session measured statistics, server-side. `\analyze` runs fold
/// their measured selectivities/densities into one shared overlay so every
/// session prices later plans with them; the overlay is keyed to the
/// catalog epoch and discarded when a publish advances it (stale
/// measurements must not price plans over new data).
#[derive(Debug)]
pub struct SharedStats {
    inner: Mutex<SharedStatsInner>,
}

#[derive(Debug)]
struct SharedStatsInner {
    /// Epoch the overlay's measurements were taken against.
    epoch: u64,
    /// Bumped on every absorb *and* every epoch-invalidation; part of the
    /// plan-cache key material, so feedback changes invalidate cached plans
    /// naturally (a plan priced with stale stats never serves a hit).
    rev: u64,
    overlay: StatsOverlay,
}

impl SharedStats {
    /// An empty overlay bound to `epoch`.
    pub fn new(epoch: u64) -> SharedStats {
        SharedStats {
            inner: Mutex::new(SharedStatsInner { epoch, rev: 0, overlay: StatsOverlay::new() }),
        }
    }

    /// The current revision, for cache keys. Changes whenever the overlay's
    /// contents could have changed.
    pub fn rev(&self) -> u64 {
        self.inner.lock().unwrap().rev
    }

    /// Run `f` over the overlay as of `epoch`. If the overlay was measured
    /// against an older epoch it is cleared first (and the revision bumped)
    /// — epoch advance invalidates cross-session statistics.
    pub fn with_overlay<R>(&self, epoch: u64, f: impl FnOnce(&StatsOverlay) -> R) -> R {
        let mut inner = self.inner.lock().unwrap();
        inner.invalidate_if_stale(epoch);
        f(&inner.overlay)
    }

    /// Fold measured feedback into the overlay on behalf of a session's
    /// `\analyze` run at `epoch`. Returns the new revision.
    pub fn absorb(&self, epoch: u64, measured: &[(String, FeedbackStats)]) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        inner.invalidate_if_stale(epoch);
        for (name, fb) in measured {
            inner.overlay.record(name.clone(), fb.clone());
        }
        if !measured.is_empty() {
            inner.rev += 1;
        }
        inner.rev
    }

    /// Whether any measured statistics are currently held for `epoch`.
    pub fn is_empty(&self, epoch: u64) -> bool {
        self.with_overlay(epoch, |o| o.is_empty())
    }

    /// Sorted (name, stats) pairs for display, as of `epoch`.
    pub fn describe(&self, epoch: u64) -> Vec<(String, FeedbackStats)> {
        self.with_overlay(epoch, |o| {
            o.iter_sorted().into_iter().map(|(n, fb)| (n.to_string(), fb.clone())).collect()
        })
    }
}

impl SharedStatsInner {
    fn invalidate_if_stale(&mut self, epoch: u64) {
        if self.epoch != epoch {
            // Bump the revision only when measurements were actually
            // discarded: an empty overlay is the same overlay at any epoch,
            // and a spurious bump would invalidate every cached plan once
            // per publish for nothing.
            if !self.overlay.is_empty() {
                self.overlay.clear();
                self.rev += 1;
            }
            self.epoch = epoch;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_catalog() -> Catalog {
        use seq_core::{record, schema, AttrType, BaseSequence};
        let entries = (1..=16i64).map(|p| (p, record![p])).collect();
        let base = BaseSequence::from_entries(schema(&[("v", AttrType::Int)]), entries).unwrap();
        let mut cat = Catalog::new();
        cat.register("S", &base);
        cat
    }

    #[test]
    fn load_returns_latest_and_inflight_readers_keep_their_snapshot() {
        let shared = SharedCatalog::new(small_catalog());
        let before = shared.load();
        assert_eq!(before.epoch, 1);
        let e2 = shared.publish(small_catalog());
        assert_eq!(e2, 2);
        assert_eq!(shared.load().epoch, 2);
        // The pre-publish reader still sees its own epoch and live data.
        assert_eq!(before.epoch, 1);
        assert!(before.catalog.get("S").is_ok());
        assert_eq!(shared.published_count(), 2);
    }

    #[test]
    fn overlay_is_invalidated_by_epoch_advance() {
        let stats = SharedStats::new(1);
        let fb = FeedbackStats { observed_rows: 10, refreshes: 1, ..Default::default() };
        let rev1 = stats.absorb(1, &[("S".into(), fb)]);
        assert!(rev1 > 0);
        assert!(!stats.is_empty(1));
        // Epoch advance: overlay cleared, revision bumped.
        assert!(stats.is_empty(2));
        assert!(stats.rev() > rev1);
    }
}
