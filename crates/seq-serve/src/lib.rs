//! Concurrent query serving: the `seqd` daemon core.
//!
//! The repo's engine crates (`seq-lang` → `seq-opt` → `seq-exec`) evaluate
//! one query for one caller. This crate makes that multi-client:
//!
//! - [`snapshot`] — epoch-stamped catalog publication with wait-free reader
//!   acquisition (queries run against immutable snapshots; publishes never
//!   block readers) plus a cross-session measured-statistics overlay that
//!   epoch advances invalidate;
//! - [`canon`] — token-level query normalization: literals in expression
//!   positions are parameterized out so shape-identical queries share one
//!   template;
//! - [`plancache`] — the normalized plan cache keyed on (template, range,
//!   optimizer knobs), stamped with catalog epoch + statistics revision,
//!   serving hits by rebinding cached plans to new literals;
//! - [`engine`] — the shared per-server query engine: snapshot + cache +
//!   pooled telemetry, with sessions reduced to a config struct;
//! - [`server`] — the TCP layer: line protocol, bounded worker pool with
//!   load shedding (`ERR busy`), graceful drain on shutdown;
//! - [`client`] — the thin wire client `seqsh --connect` uses.

pub mod canon;
pub mod client;
pub mod engine;
pub mod plancache;
pub mod server;
pub mod snapshot;

pub use canon::{canonicalize, CanonQuery};
pub use client::Client;
pub use engine::{Engine, QueryOutcome, SessionConfig, TemplateReport};
pub use plancache::{cache_key, CacheKey, Lookup, PlanCache};
pub use server::{
    install_signal_handlers, request_signal_shutdown, serve, signal_shutdown_requested, Admission,
    ServerConfig, ServerHandle,
};
pub use snapshot::{SharedCatalog, SharedStats, Snapshot};
