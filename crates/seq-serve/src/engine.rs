//! The shared query engine behind every server session.
//!
//! One [`Engine`] serves all connections: catalog snapshots come from the
//! [`SharedCatalog`], plans from the [`PlanCache`], measured statistics from
//! the [`SharedStats`] overlay, and telemetry lands in one pooled
//! [`SessionMetrics`] registry (every session shares it via
//! `share_telemetry`, so `\metrics` aggregates server-wide). Per-session
//! state is just a [`SessionConfig`] of optimizer knobs — sessions carry no
//! engine references of their own, so a query is: acquire snapshot, probe
//! cache, execute.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use seq_core::{Record, Result, Span};
use seq_exec::{ExecContext, ExecStats, LatencyHistogram, Phase, SessionMetrics};
use seq_lang::parse_query;
use seq_opt::{
    absorb_feedback, explain_analyze_with, optimize, CatalogRef, Optimized, OptimizerConfig,
    StatsOverlay, WithFeedback,
};

use crate::canon::canonicalize;
use crate::plancache::{cache_key, Lookup, PlanCache};
use crate::snapshot::{SharedCatalog, SharedStats, Snapshot};

/// Per-session optimizer and display knobs (the server's analogue of the
/// shell's `\set` state). Everything that distinguishes one session's plans
/// from another's is in here and in the cache key.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The query template's position range (`\range`).
    pub range: Span,
    /// Morsel-driven worker threads (`\set parallelism`).
    pub parallelism: usize,
    /// Selection pushdown / zone-map skipping (`\set pushdown`).
    pub pushdown: bool,
    /// Whether shared measured statistics price this session's plans
    /// (`\set feedback`).
    pub feedback: bool,
    /// Rows returned over the wire per query (`\limit`).
    pub limit: usize,
}

impl SessionConfig {
    /// Defaults matching the shell: full optimization, sequential, row cap.
    pub fn new(range: Span) -> SessionConfig {
        SessionConfig { range, parallelism: 1, pushdown: true, feedback: true, limit: 100 }
    }
}

/// The result of one query execution.
pub struct QueryOutcome {
    /// Output rows, in position order.
    pub rows: Vec<(i64, Record)>,
    /// Whether the plan came from the cache (parse + optimize skipped).
    pub cached: bool,
    /// Estimated cost of the served plan (first-seen costing on hits).
    pub est_cost: f64,
    /// Execution-path label (`tuple`/`batch`/`parallel(n)`).
    pub exec_mode: String,
    /// Epoch of the snapshot the query ran against.
    pub epoch: u64,
}

/// One cached template's serving history: cache hits, executions, and the
/// execute-latency distribution. Keyed by the canonical template text, so
/// every parameter binding of the same shape lands in one row.
#[derive(Debug, Default)]
struct TemplateEntry {
    hits: u64,
    executes: u64,
    latency: LatencyHistogram,
}

/// One row of the hot-template report: a canonical template, how often the
/// plan cache served it, and its execute-latency digest.
#[derive(Debug, Clone)]
pub struct TemplateReport {
    /// Canonical template text (literals replaced by placeholders).
    pub template: String,
    /// Plan-cache hits for this template.
    pub hits: u64,
    /// Queries executed through this template (hits and misses).
    pub executes: u64,
    /// Median execute latency in microseconds (0 until a sample lands).
    pub p50_us: f64,
    /// Tail execute latency in microseconds (0 until a sample lands).
    pub p99_us: f64,
}

/// Shared server state: snapshots, plan cache, statistics, telemetry.
pub struct Engine {
    /// Published catalog versions; every query runs against one snapshot.
    pub shared: SharedCatalog,
    /// Cross-session measured statistics, keyed to the catalog epoch.
    pub stats: SharedStats,
    /// The normalized plan cache.
    pub cache: PlanCache,
    /// Pooled telemetry registry shared by every session's contexts.
    pub metrics: Arc<SessionMetrics>,
    /// Server-cumulative executor counters (clones share the same totals).
    exec_stats: ExecStats,
    /// Per-template serving history behind the plan cache.
    templates: Mutex<HashMap<String, TemplateEntry>>,
}

impl Engine {
    /// An engine serving `catalog`, with a plan cache of `cache_capacity`.
    pub fn new(catalog: seq_storage::Catalog, cache_capacity: usize) -> Engine {
        let shared = SharedCatalog::new(catalog);
        let epoch = shared.epoch();
        Engine {
            shared,
            stats: SharedStats::new(epoch),
            cache: PlanCache::new(cache_capacity),
            metrics: Arc::new(SessionMetrics::new()),
            exec_stats: ExecStats::new(),
            templates: Mutex::new(HashMap::new()),
        }
    }

    /// Publish a new catalog version. In-flight queries keep their
    /// snapshot; cached plans for older epochs invalidate on next probe.
    pub fn publish(&self, catalog: seq_storage::Catalog) -> u64 {
        self.shared.publish(catalog)
    }

    /// Plan `text` for `config` — from the cache when possible — then
    /// execute it against the current snapshot.
    pub fn run_query(&self, text: &str, config: &SessionConfig) -> Result<QueryOutcome> {
        let snapshot = self.shared.load();
        let (optimized, cached, template) = self.plan(text, config, &snapshot)?;
        let mut ctx = ExecContext::with_stats(&snapshot.catalog, self.exec_stats.clone());
        ctx.share_telemetry(&self.metrics);
        let exec_timer = Instant::now();
        let rows = optimized.execute(&ctx)?;
        self.record_template(&template, cached, exec_timer.elapsed());
        Ok(QueryOutcome {
            rows,
            cached,
            est_cost: optimized.est_cost,
            exec_mode: optimized.exec_mode.to_string(),
            epoch: snapshot.epoch,
        })
    }

    /// Resolve a plan for `text` without executing it: cache probe first,
    /// full parse + optimize on miss. Returns the plan and whether it came
    /// from the cache — this is the path `run_query` takes before execution,
    /// exposed so callers (and benchmarks) can observe plan-resolution cost
    /// in isolation.
    pub fn resolve(&self, text: &str, config: &SessionConfig) -> Result<(Arc<Optimized>, bool)> {
        let snapshot = self.shared.load();
        let (plan, cached, _) = self.plan(text, config, &snapshot)?;
        Ok((plan, cached))
    }

    /// Fold one query's serving outcome into its template's history.
    fn record_template(&self, template: &str, cached: bool, elapsed: std::time::Duration) {
        let mut templates = self.templates.lock().unwrap();
        let entry = templates.entry(template.to_string()).or_default();
        entry.executes += 1;
        if cached {
            entry.hits += 1;
        }
        entry.latency.record(elapsed);
    }

    /// The `n` hottest plan templates by cache-hit count (ties broken by
    /// template text), each with its execute-latency digest.
    pub fn hot_templates(&self, n: usize) -> Vec<TemplateReport> {
        let templates = self.templates.lock().unwrap();
        let mut rows: Vec<TemplateReport> = templates
            .iter()
            .map(|(template, entry)| {
                let snap = entry.latency.snapshot();
                let us = |q: f64| snap.percentile_nanos(q).map(|n| n as f64 / 1e3).unwrap_or(0.0);
                TemplateReport {
                    template: template.clone(),
                    hits: entry.hits,
                    executes: entry.executes,
                    p50_us: us(50.0),
                    p99_us: us(99.0),
                }
            })
            .collect();
        rows.sort_by(|a, b| b.hits.cmp(&a.hits).then_with(|| a.template.cmp(&b.template)));
        rows.truncate(n);
        rows
    }

    /// The pooled metrics snapshot as JSON, extended with the `n` hottest
    /// plan templates — what `\metrics` and `--metrics-out` serve.
    pub fn metrics_json(&self, n: usize) -> String {
        let snapshot = self.shared.load();
        let mut json = self.metrics.to_json(snapshot.catalog.buffer().map(|p| &**p));
        // Splice the serve-level section into the registry's document: drop
        // the closing brace, append, close again.
        while json.ends_with(['\n', ' ', '\t']) {
            json.pop();
        }
        json.pop();
        while json.ends_with(['\n', ' ', '\t']) {
            json.pop();
        }
        json.push_str(",\n  \"hot_templates\": [");
        for (i, t) in self.hot_templates(n).iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str("\n    {\"template\": \"");
            for c in t.template.chars() {
                match c {
                    '"' => json.push_str("\\\""),
                    '\\' => json.push_str("\\\\"),
                    '\n' => json.push_str("\\n"),
                    '\t' => json.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        json.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => json.push(c),
                }
            }
            json.push_str(&format!(
                "\", \"hits\": {}, \"executes\": {}, \"p50_us\": {:.3}, \"p99_us\": {:.3}}}",
                t.hits, t.executes, t.p50_us, t.p99_us
            ));
        }
        json.push_str("\n  ]\n}\n");
        json
    }

    /// The optimizer-pipeline explanation for `text` (never cached: EXPLAIN
    /// reflects a fresh optimization, including current statistics).
    pub fn explain(&self, text: &str, config: &SessionConfig) -> Result<String> {
        let snapshot = self.shared.load();
        let graph = parse_query(text)?;
        let optimized = self.optimize_fresh(&graph, config, &snapshot)?;
        Ok(optimized.explain)
    }

    /// EXPLAIN ANALYZE: execute under instrumentation and fold the measured
    /// statistics into the shared overlay (visible to *all* sessions).
    pub fn analyze(&self, text: &str, config: &SessionConfig) -> Result<String> {
        let snapshot = self.shared.load();
        let graph = parse_query(text)?;
        let optimized = self.optimize_fresh(&graph, config, &snapshot)?;
        let cfg = self.optimizer_config(config);
        let mut ctx = ExecContext::with_stats(&snapshot.catalog, self.exec_stats.clone());
        ctx.share_telemetry(&self.metrics);
        let base = CatalogRef(&snapshot.catalog);
        let report = self.stats.with_overlay(snapshot.epoch, |overlay| {
            if config.feedback && !overlay.is_empty() {
                let info = WithFeedback::new(&base, overlay);
                explain_analyze_with(&optimized, &mut ctx, &cfg.cost, &info)
            } else {
                explain_analyze_with(&optimized, &mut ctx, &cfg.cost, &base)
            }
        })?;
        if config.feedback {
            let mut measured = StatsOverlay::new();
            let folded = absorb_feedback(&optimized, &report, &mut measured);
            if folded > 0 {
                let pairs: Vec<_> = measured
                    .iter_sorted()
                    .into_iter()
                    .map(|(n, fb)| (n.to_string(), fb.clone()))
                    .collect();
                self.stats.absorb(snapshot.epoch, &pairs);
            }
        }
        Ok(report.text)
    }

    /// Resolve a plan for `text`: cache probe first, full parse + optimize
    /// on miss. Phase timings land in the pooled histograms either way, so
    /// the parse/optimize distributions show the saved work (hits record
    /// canonicalize + rebind time; misses record the full pipeline).
    fn plan(
        &self,
        text: &str,
        config: &SessionConfig,
        snapshot: &Snapshot,
    ) -> Result<(Arc<Optimized>, bool, String)> {
        let parse_start = self.metrics.now_nanos();
        let parse_timer = Instant::now();
        let canon = canonicalize(text)?;
        let key = cache_key(
            &canon.template,
            config.range,
            config.parallelism,
            config.pushdown,
            config.feedback,
        );
        let stats_rev = self.stats.rev();
        let inval_before = self.cache.invalidations();
        let opt_start = self.metrics.now_nanos();
        let opt_timer = Instant::now();
        let probe = self.cache.lookup(&key, &canon.params, snapshot.epoch, stats_rev);
        self.metrics.record_plan_cache_invalidations(self.cache.invalidations() - inval_before);
        match probe {
            Lookup::Hit(plan) => {
                // The cached path replaces parse with canonicalization and
                // optimize with probe + rebind; recording them into the
                // same histograms makes the saved work visible in `\metrics`.
                self.metrics.record_phase(Phase::Parse, parse_start, parse_timer.elapsed());
                self.metrics.record_phase(Phase::Optimize, opt_start, opt_timer.elapsed());
                self.metrics.record_plan_cache_lookup(true);
                Ok((plan, true, canon.template))
            }
            Lookup::Miss => {
                let graph = parse_query(text)?;
                self.metrics.record_phase(Phase::Parse, parse_start, parse_timer.elapsed());
                let opt_start = self.metrics.now_nanos();
                let opt_timer = Instant::now();
                let optimized = self.optimize_fresh(&graph, config, snapshot)?;
                self.metrics.record_phase(Phase::Optimize, opt_start, opt_timer.elapsed());
                self.metrics.record_plan_cache_lookup(false);
                let plan = Arc::new(optimized);
                self.cache.insert(key, canon.params, Arc::clone(&plan), snapshot.epoch, stats_rev);
                Ok((plan, false, canon.template))
            }
        }
    }

    fn optimizer_config(&self, config: &SessionConfig) -> OptimizerConfig {
        let mut cfg = OptimizerConfig::new(config.range);
        cfg.parallelism = config.parallelism;
        cfg.pushdown = config.pushdown;
        cfg
    }

    fn optimize_fresh(
        &self,
        graph: &seq_ops::QueryGraph,
        config: &SessionConfig,
        snapshot: &Snapshot,
    ) -> Result<Optimized> {
        let cfg = self.optimizer_config(config);
        let base = CatalogRef(&snapshot.catalog);
        self.stats.with_overlay(snapshot.epoch, |overlay| {
            if config.feedback && !overlay.is_empty() {
                optimize(graph, &WithFeedback::new(&base, overlay), &cfg)
            } else {
                optimize(graph, &base, &cfg)
            }
        })
    }
}
