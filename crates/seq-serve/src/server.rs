//! The `seqd` server core: TCP sessions over one shared [`Engine`].
//!
//! ## Architecture
//!
//! - an **acceptor** thread takes connections (non-blocking accept, polled
//!   against the shutdown flag);
//! - one **handler** thread per connection owns the session state
//!   ([`SessionConfig`]) and the socket. Session commands (`\set`,
//!   `\range`, `\limit`, `\ping`) are answered in place; query work is
//!   submitted to the worker pool and the handler blocks for the reply;
//! - a fixed pool of **worker** threads executes submitted jobs against the
//!   engine. Admission is a bounded `sync_channel`: when `queue_depth` jobs
//!   are already waiting, `try_send` fails and the handler sheds the
//!   request with `ERR busy` instead of queueing unboundedly (backpressure
//!   under overload is an error the client can retry, not latency).
//!
//! ## Wire protocol
//!
//! Line-oriented, UTF-8. The client sends one command per line; the server
//! answers either `ERR <code> <message>` on one line, or `OK <n>` followed
//! by `n` payload lines and a terminating `.` line.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] (or SIGTERM/SIGINT in `seqd`, which share the
//! flag installed by [`install_signal_handlers`]) flips the shutdown flag:
//! the acceptor refuses new connections, handlers answer in-flight replies
//! then refuse further commands with `ERR shutdown`, workers drain the
//! queue, and [`ServerHandle::join`] waits for all of it before the caller
//! flushes telemetry exports.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use seq_core::{Sequence, Span};

use crate::engine::{Engine, SessionConfig};

/// How often blocked loops re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// How many hot plan templates `\metrics` surfaces.
const HOT_TEMPLATE_TOP_N: usize = 8;

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (tests).
    pub addr: String,
    /// Worker threads executing queries.
    pub workers: usize,
    /// Jobs admitted but not yet claimed by a worker; beyond this the
    /// server sheds load with `ERR busy`.
    pub queue_depth: usize,
    /// Plan-cache capacity (plans, not bytes).
    pub cache_capacity: usize,
    /// Default position range for new sessions.
    pub range: Span,
}

impl ServerConfig {
    /// Defaults for tests: loopback, ephemeral port.
    pub fn local(range: Span) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 8,
            cache_capacity: 64,
            range,
        }
    }
}

/// Admission-control counters. `submitted == completed + shed` once the
/// server has quiesced.
#[derive(Debug, Default)]
pub struct Admission {
    /// Jobs offered to the queue (accepted or not).
    pub submitted: AtomicU64,
    /// Jobs a worker finished (including ones answered with `ERR`).
    pub completed: AtomicU64,
    /// Jobs refused because the queue was full.
    pub shed: AtomicU64,
}

impl Admission {
    /// `(submitted, completed, shed)` right now.
    pub fn totals(&self) -> (u64, u64, u64) {
        (
            self.submitted.load(Ordering::Relaxed),
            self.completed.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
        )
    }
}

/// Work sent to the pool: a parsed wire command plus the session state it
/// runs under, and the channel the reply goes back on.
struct Job {
    command: Command,
    config: SessionConfig,
    reply: mpsc::Sender<Reply>,
}

/// Commands that go through admission control to a worker.
enum Command {
    Query(String),
    Explain(String),
    Analyze(String),
    Metrics,
    Tables,
    /// Testing aid: occupy a worker for the given milliseconds, so tests
    /// and CI can saturate a small pool deterministically.
    Sleep(u64),
}

type Reply = Result<Vec<String>, (&'static str, String)>;

/// A running server: address, shared engine, and the thread herd.
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<Engine>,
    admission: Arc<Admission>,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared engine (tests publish catalogs and read metrics here).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Admission counters.
    pub fn admission(&self) -> &Arc<Admission> {
        &self.admission
    }

    /// Request graceful shutdown: refuse new work, drain in-flight.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Whether shutdown has been requested (locally or via signal).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire) || signal_shutdown_requested()
    }

    /// Block until every thread has drained and exited. Call after
    /// [`ServerHandle::shutdown`]; the engine (and its telemetry) stays
    /// alive for post-drain flushing.
    pub fn join(mut self) -> Arc<Engine> {
        self.shutdown();
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().unwrap());
        for t in handlers {
            let _ = t.join();
        }
        for t in std::mem::take(&mut self.workers) {
            let _ = t.join();
        }
        Arc::clone(&self.engine)
    }
}

/// Bind, spawn the pool and the acceptor, and return immediately.
pub fn serve(engine: Engine, config: &ServerConfig) -> std::io::Result<ServerHandle> {
    let engine = Arc::new(engine);
    let admission = Arc::new(Admission::default());
    let shutdown = Arc::new(AtomicBool::new(false));
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let engine = Arc::clone(&engine);
            let admission = Arc::clone(&admission);
            let rx = Arc::clone(&rx);
            std::thread::spawn(move || worker_loop(&engine, &admission, &rx))
        })
        .collect();

    let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let acceptor = {
        let admission = Arc::clone(&admission);
        let shutdown = Arc::clone(&shutdown);
        let handlers = Arc::clone(&handlers);
        let session_range = config.range;
        std::thread::spawn(move || {
            // `tx` lives in the acceptor and is cloned per connection: when
            // the acceptor and every handler have exited, the channel
            // closes and the workers drain out.
            accept_loop(listener, &tx, &admission, &shutdown, &handlers, session_range);
        })
    };

    Ok(ServerHandle {
        addr,
        engine,
        admission,
        shutdown,
        acceptor: Some(acceptor),
        workers,
        handlers,
    })
}

fn accept_loop(
    listener: TcpListener,
    tx: &SyncSender<Job>,
    admission: &Arc<Admission>,
    shutdown: &Arc<AtomicBool>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    session_range: Span,
) {
    while !shutdown.load(Ordering::Acquire) && !signal_shutdown_requested() {
        match listener.accept() {
            Ok((stream, _)) => {
                // Replies are small multi-write lines; without nodelay,
                // Nagle + delayed ACK adds tens of ms to every round trip.
                let _ = stream.set_nodelay(true);
                let tx = tx.clone();
                let admission = Arc::clone(admission);
                let shutdown = Arc::clone(shutdown);
                let handler = std::thread::spawn(move || {
                    handle_connection(stream, &tx, &admission, &shutdown, session_range);
                });
                handlers.lock().unwrap().push(handler);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn worker_loop(engine: &Arc<Engine>, admission: &Arc<Admission>, rx: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Hold the receiver lock only for the claim, not the execution.
        let job = match rx.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // channel closed: acceptor and handlers gone
        };
        let reply = execute(engine, &job.command, &job.config);
        admission.completed.fetch_add(1, Ordering::Relaxed);
        // The handler may have hung up (client disconnect); that's fine.
        let _ = job.reply.send(reply);
    }
}

fn execute(engine: &Engine, command: &Command, config: &SessionConfig) -> Reply {
    match command {
        Command::Query(text) => match engine.run_query(text, config) {
            Ok(outcome) => {
                let mut lines = Vec::new();
                for (pos, rec) in outcome.rows.iter().take(config.limit) {
                    lines.push(format!("{pos}: {rec}"));
                }
                if outcome.rows.len() > config.limit {
                    lines.push(format!(
                        "... {} more rows (\\limit to adjust)",
                        outcome.rows.len() - config.limit
                    ));
                }
                lines.push(format!(
                    "{} rows | {} | est cost {:.1} | {} | epoch {}",
                    outcome.rows.len(),
                    if outcome.cached { "cached" } else { "planned" },
                    outcome.est_cost,
                    outcome.exec_mode,
                    outcome.epoch,
                ));
                Ok(lines)
            }
            Err(e) => Err(("query", e.to_string())),
        },
        Command::Explain(text) => match engine.explain(text, config) {
            Ok(explain) => Ok(explain.lines().map(str::to_string).collect()),
            Err(e) => Err(("query", e.to_string())),
        },
        Command::Analyze(text) => match engine.analyze(text, config) {
            Ok(report) => Ok(report.lines().map(str::to_string).collect()),
            Err(e) => Err(("query", e.to_string())),
        },
        Command::Metrics => {
            let json = engine.metrics_json(HOT_TEMPLATE_TOP_N);
            Ok(json.lines().map(str::to_string).collect())
        }
        Command::Tables => {
            let snapshot = engine.shared.load();
            let mut names: Vec<String> = snapshot.catalog.names().map(str::to_string).collect();
            names.sort();
            let mut lines = vec![format!("epoch {}", snapshot.epoch)];
            for name in names {
                match (snapshot.catalog.meta(&name), snapshot.catalog.get(&name)) {
                    (Ok(meta), Ok(stored)) => lines.push(format!(
                        "{name}: {meta} ({} records, {} pages)",
                        stored.record_count(),
                        stored.page_count()
                    )),
                    _ => lines.push(name),
                }
            }
            Ok(lines)
        }
        Command::Sleep(ms) => {
            std::thread::sleep(Duration::from_millis(*ms));
            Ok(vec![format!("slept {ms}ms")])
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    tx: &SyncSender<Job>,
    admission: &Arc<Admission>,
    shutdown: &Arc<AtomicBool>,
    session_range: Span,
) {
    let _ = stream.set_read_timeout(Some(POLL));
    let mut reader = LineReader::new(stream.try_clone().expect("clone stream"));
    let mut out = stream;
    let mut config = SessionConfig::new(session_range);
    loop {
        let line = match reader
            .next_line(|| shutdown.load(Ordering::Acquire) || signal_shutdown_requested())
        {
            LineEvent::Line(line) => line,
            LineEvent::Closed => return,
            LineEvent::ShuttingDown => {
                let _ = writeln!(out, "ERR shutdown server is draining");
                return;
            }
        };
        let line = line.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        match dispatch(line, tx, admission, &mut config) {
            Some(Ok(lines)) => {
                let mut payload = format!("OK {}\n", lines.len());
                for l in &lines {
                    payload.push_str(l);
                    payload.push('\n');
                }
                payload.push_str(".\n");
                if out.write_all(payload.as_bytes()).is_err() {
                    return;
                }
            }
            Some(Err((code, msg))) => {
                if writeln!(out, "ERR {code} {}", msg.replace('\n', " ")).is_err() {
                    return;
                }
            }
            None => return, // \quit
        }
    }
}

/// Handle one wire line. `None` means the session asked to close.
fn dispatch(
    line: &str,
    tx: &SyncSender<Job>,
    admission: &Arc<Admission>,
    config: &mut SessionConfig,
) -> Option<Reply> {
    let command = if let Some(rest) = line.strip_prefix('\\') {
        let mut parts = rest.splitn(2, char::is_whitespace);
        let head = parts.next().unwrap_or("");
        let arg = parts.next().unwrap_or("").trim();
        match head {
            "quit" | "q" => return None,
            "ping" => return Some(Ok(vec!["pong".to_string()])),
            "limit" => {
                return Some(match arg.parse::<usize>() {
                    Ok(n) => {
                        config.limit = n;
                        Ok(vec![format!("limit {n}")])
                    }
                    Err(_) => Err(("proto", "usage: \\limit N".to_string())),
                })
            }
            "range" => {
                let mut nums = arg.split_whitespace().map(str::parse::<i64>);
                return Some(match (nums.next(), nums.next()) {
                    (Some(Ok(lo)), Some(Ok(hi))) => {
                        config.range = Span::new(lo, hi);
                        Ok(vec![format!("range {}", config.range)])
                    }
                    _ => Err(("proto", "usage: \\range LO HI".to_string())),
                });
            }
            "set" => return Some(session_set(arg, config)),
            "explain" if !arg.is_empty() => Command::Explain(arg.to_string()),
            "analyze" if !arg.is_empty() => Command::Analyze(arg.to_string()),
            "metrics" => Command::Metrics,
            "tables" => Command::Tables,
            "sleep" => match arg.parse::<u64>() {
                Ok(ms) => Command::Sleep(ms.min(10_000)),
                Err(_) => return Some(Err(("proto", "usage: \\sleep MILLIS".to_string()))),
            },
            other => {
                return Some(Err(("proto", format!("unknown command \\{other}"))));
            }
        }
    } else {
        Command::Query(line.to_string())
    };

    // Admission control: bounded queue, shed on overflow.
    let (reply_tx, reply_rx) = mpsc::channel();
    admission.submitted.fetch_add(1, Ordering::Relaxed);
    let job = Job { command, config: config.clone(), reply: reply_tx };
    match tx.try_send(job) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            admission.shed.fetch_add(1, Ordering::Relaxed);
            return Some(Err(("busy", "queue full, retry later".to_string())));
        }
        Err(TrySendError::Disconnected(_)) => {
            admission.shed.fetch_add(1, Ordering::Relaxed);
            return Some(Err(("shutdown", "server is draining".to_string())));
        }
    }
    // Drain the in-flight reply even if it takes a while (shutdown waits
    // for this, by design).
    match reply_rx.recv() {
        Ok(reply) => Some(reply),
        Err(_) => Some(Err(("shutdown", "worker exited".to_string()))),
    }
}

fn session_set(arg: &str, config: &mut SessionConfig) -> Reply {
    let mut parts = arg.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("parallelism"), Some(n)) => match n.parse::<usize>() {
            Ok(n) if n >= 1 => {
                config.parallelism = n;
                Ok(vec![format!("parallelism {n}")])
            }
            _ => Err(("proto", "parallelism must be >= 1".to_string())),
        },
        (Some("pushdown"), Some(v)) => match v {
            "on" => {
                config.pushdown = true;
                Ok(vec!["pushdown on".to_string()])
            }
            "off" => {
                config.pushdown = false;
                Ok(vec!["pushdown off".to_string()])
            }
            _ => Err(("proto", "usage: \\set pushdown on|off".to_string())),
        },
        (Some("feedback"), Some(v)) => match v {
            "on" => {
                config.feedback = true;
                Ok(vec!["feedback on".to_string()])
            }
            "off" => {
                config.feedback = false;
                Ok(vec!["feedback off".to_string()])
            }
            _ => Err(("proto", "usage: \\set feedback on|off".to_string())),
        },
        _ => Err(("proto", "usage: \\set parallelism|pushdown|feedback VALUE".to_string())),
    }
}

/// What the connection's line pump observed.
enum LineEvent {
    /// A complete line (without the newline).
    Line(String),
    /// Peer closed the connection.
    Closed,
    /// Shutdown was requested while waiting for input.
    ShuttingDown,
}

/// Incremental line reader over a socket with a read timeout: timeouts are
/// polls (check shutdown, keep accumulated partial line), not data loss.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl LineReader {
    fn new(stream: TcpStream) -> LineReader {
        LineReader { stream, buf: Vec::new() }
    }

    fn next_line(&mut self, shutting_down: impl Fn() -> bool) -> LineEvent {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                return LineEvent::Line(
                    String::from_utf8_lossy(&line[..line.len() - 1]).into_owned(),
                );
            }
            if shutting_down() {
                return LineEvent::ShuttingDown;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return LineEvent::Closed,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue; // timeout poll: loop re-checks shutdown
                }
                Err(_) => return LineEvent::Closed,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Signal glue (SIGTERM/SIGINT → graceful shutdown), used by `seqd`.

static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a SIGTERM/SIGINT has been observed since
/// [`install_signal_handlers`] (or [`request_signal_shutdown`]).
pub fn signal_shutdown_requested() -> bool {
    SIGNAL_SHUTDOWN.load(Ordering::Acquire)
}

/// Flip the same flag the signal handler sets — the programmatic equivalent
/// of delivering SIGTERM (tests use this instead of raising a real signal).
pub fn request_signal_shutdown() {
    SIGNAL_SHUTDOWN.store(true, Ordering::Release);
}

/// Route SIGTERM and SIGINT to a flag flip (async-signal-safe: one relaxed
/// atomic store). `std` links libc on every supported platform, so the
/// `signal(2)` binding needs no new dependency.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SIGNAL_SHUTDOWN.store(true, Ordering::Release);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `on_signal` is an `extern "C" fn(i32)` whose body is a single
    // atomic store (async-signal-safe); registering it for SIGINT/SIGTERM
    // is the documented use of `signal(2)`.
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

/// No-op off unix; `seqd` then only shuts down programmatically.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}
