//! Minimal wire client for the `seqd` line protocol (`seqsh --connect`,
//! tests, and the serving benchmark).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// One server response: the payload lines of an `OK`, or the error line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `OK <n>` payload, terminator stripped.
    Ok(Vec<String>),
    /// `ERR <code> <message>`.
    Err {
        /// Machine-readable error class (`busy`, `query`, `proto`, ...).
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Whether this is an `ERR` with the given code.
    pub fn is_err_code(&self, want: &str) -> bool {
        matches!(self, Response::Err { code, .. } if code == want)
    }
}

/// A connected `seqd` session.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (`host:port`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // One command per round trip: latency matters more than packet count.
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { reader, writer: stream })
    }

    /// Send one command line and read the full response.
    pub fn send(&mut self, line: &str) -> std::io::Result<Response> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut head = String::new();
        if self.reader.read_line(&mut head)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let head = head.trim_end();
        if let Some(rest) = head.strip_prefix("ERR ") {
            let (code, message) = rest.split_once(' ').unwrap_or((rest, ""));
            return Ok(Response::Err { code: code.to_string(), message: message.to_string() });
        }
        let n: usize = head.strip_prefix("OK ").and_then(|n| n.parse().ok()).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed response head: {head:?}"),
            )
        })?;
        let mut lines = Vec::with_capacity(n);
        for _ in 0..n {
            let mut line = String::new();
            self.reader.read_line(&mut line)?;
            lines.push(line.trim_end().to_string());
        }
        let mut terminator = String::new();
        self.reader.read_line(&mut terminator)?;
        if terminator.trim_end() != "." {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("missing terminator, got {terminator:?}"),
            ));
        }
        Ok(Response::Ok(lines))
    }
}
