//! Query normalization for the plan cache.
//!
//! Two queries that differ only in comparison literals — `(select (> v 10)
//! ...)` vs `(select (> v 250) ...)` — optimize to the same plan *shape*:
//! the same operator tree, modes, and join order, differing only in the
//! `Expr::Lit` payloads (and the fused-scan terms derived from them). The
//! canonicalizer turns query text into a `(template, params)` pair at the
//! *token* level, before any parsing: literals in expression positions are
//! replaced by `?` markers and collected in source order, and whitespace is
//! normalized away, so shape-identical queries share one template string.
//!
//! Only literals under an expression-operator head (`>`, `and`, `+`, ...)
//! are parameterized. Structural integers — window widths in `(trailing 8)`,
//! offsets, projection indices, `const` payloads — change the plan shape
//! itself (spans, schemas, operator variants) and must stay in the template.

use seq_core::{Result, SeqError, Value};
use seq_lang::lexer::{tokenize, TokenKind};

/// A canonicalized query: the shape template plus the extracted literals in
/// source order. The template doubles as the plan-cache key component.
#[derive(Debug, Clone, PartialEq)]
pub struct CanonQuery {
    /// The query text with expression literals replaced by `?` and
    /// whitespace normalized.
    pub template: String,
    /// The literals removed from the template, in source order.
    pub params: Vec<Value>,
}

/// Heads whose immediate literal arguments are rebindable `Expr::Lit` sites.
/// Mirrors the parser's expression grammar (`seq-lang`): comparison,
/// boolean, and arithmetic operators.
fn is_expr_head(sym: &str) -> bool {
    matches!(
        sym,
        ">" | ">=" | "<" | "<=" | "=" | "!=" | "and" | "or" | "not" | "+" | "-" | "*" | "/"
    )
}

/// Canonicalize query text into a shape template and its literal parameters.
///
/// Tokenizes (sharing the parser's lexer, so anything that lexes here parses
/// identically later), then walks the token stream with a stack of
/// "is the enclosing list an expression?" flags. Literal tokens directly
/// inside an expression list become `?` parameters; everything else is
/// rendered verbatim into the template.
pub fn canonicalize(text: &str) -> Result<CanonQuery> {
    let tokens = tokenize(text)?;
    if tokens.is_empty() {
        return Err(SeqError::InvalidGraph("empty query".into()));
    }
    let mut template = String::with_capacity(text.len());
    let mut params = Vec::new();
    // One frame per open `(`/`[`: whether its head symbol is an expression
    // operator. `[` lists hold structural window bounds, never literals to
    // parameterize.
    let mut frames: Vec<bool> = Vec::new();
    // Set right after `(`: the next symbol is the list head.
    let mut awaiting_head = false;

    for tok in &tokens {
        let in_expr = frames.last().copied().unwrap_or(false);
        match &tok.kind {
            TokenKind::LParen => {
                push_sep(&mut template, "(");
                frames.push(false); // updated when the head symbol arrives
                awaiting_head = true;
                continue;
            }
            TokenKind::RParen => {
                frames.pop();
                template.push(')');
            }
            TokenKind::LBracket => {
                push_sep(&mut template, "[");
                frames.push(false);
            }
            TokenKind::RBracket => {
                frames.pop();
                template.push(']');
            }
            TokenKind::Symbol(s) => {
                if awaiting_head {
                    if let Some(top) = frames.last_mut() {
                        *top = is_expr_head(s);
                    }
                }
                push_sep(&mut template, s);
            }
            TokenKind::Int(i) => {
                if in_expr {
                    params.push(Value::Int(*i));
                    push_sep(&mut template, "?");
                } else {
                    push_sep(&mut template, &i.to_string());
                }
            }
            TokenKind::Float(x) => {
                if in_expr {
                    params.push(Value::Float(*x));
                    push_sep(&mut template, "?");
                } else {
                    // Canonical float rendering (`{:?}` keeps a decimal
                    // point, so re-lexing yields a float again).
                    push_sep(&mut template, &format!("{x:?}"));
                }
            }
            TokenKind::Str(s) => {
                if in_expr {
                    params.push(Value::str(s));
                    push_sep(&mut template, "?");
                } else {
                    push_sep(&mut template, &format!("{s:?}"));
                }
            }
        }
        awaiting_head = false;
    }
    Ok(CanonQuery { template, params })
}

/// Append `piece` with a single separating space unless we are at the start
/// of the template or right after an opening delimiter.
fn push_sep(template: &mut String, piece: &str) {
    if !(template.is_empty() || template.ends_with('(') || template.ends_with('[')) {
        template.push(' ');
    }
    template.push_str(piece);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_in_predicates_are_parameterized() {
        let a = canonicalize("(select (> close 7.5) (base IBM))").unwrap();
        let b = canonicalize("(select   (> close 99.25) (base IBM))").unwrap();
        assert_eq!(a.template, b.template, "shape-identical queries share a template");
        assert_eq!(a.template, "(select (> close ?) (base IBM))");
        assert!(matches!(a.params.as_slice(), [Value::Float(x)] if *x == 7.5));
        assert!(matches!(b.params.as_slice(), [Value::Float(x)] if *x == 99.25));
    }

    #[test]
    fn structural_integers_stay_in_the_template() {
        let a = canonicalize("(agg avg close (trailing 8) (base IBM))").unwrap();
        let b = canonicalize("(agg avg close (trailing 16) (base IBM))").unwrap();
        assert_ne!(a.template, b.template, "window width is plan shape, not a parameter");
        assert!(a.params.is_empty());
        assert!(b.params.is_empty());
    }

    #[test]
    fn nested_expressions_collect_params_in_source_order() {
        let q = canonicalize("(select (and (> close 5) (< volume 100)) (base IBM))").unwrap();
        assert_eq!(q.template, "(select (and (> close ?) (< volume ?)) (base IBM))");
        assert!(
            matches!(q.params.as_slice(), [Value::Int(5), Value::Int(100)]),
            "params in source order, got {:?}",
            q.params
        );
    }

    #[test]
    fn arithmetic_literals_are_parameterized() {
        let q = canonicalize("(select (> (+ close 1) 7) (base IBM))").unwrap();
        assert_eq!(q.template, "(select (> (+ close ?) ?) (base IBM))");
        assert_eq!(q.params.len(), 2);
    }

    #[test]
    fn string_literals_parameterize_in_expressions_only() {
        let q = canonicalize("(select (= city \"Tucson\") (base Weather))").unwrap();
        assert_eq!(q.template, "(select (= city ?) (base Weather))");
        assert!(matches!(&q.params[..], [Value::Str(s)] if &**s == "Tucson"));
    }

    #[test]
    fn template_normalizes_whitespace_and_comments() {
        let a = canonicalize("(base IBM) ; trailing comment").unwrap();
        let b = canonicalize("  (  base   IBM )  ").unwrap();
        assert_eq!(a.template, b.template);
        assert_eq!(a.template, "(base IBM)");
    }
}
