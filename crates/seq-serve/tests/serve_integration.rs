//! Integration suite for the serving layer: plan-cache semantics, snapshot
//! reads, admission control, and graceful shutdown.

use std::sync::Arc;
use std::time::Duration;

use seq_core::{Record, Span, Value};
use seq_serve::client::{Client, Response};
use seq_serve::{serve, Engine, ServerConfig, SessionConfig};
use seq_storage::Catalog;
use seq_workload::table1_catalog;

fn engine(scale: i64) -> Engine {
    Engine::new(table1_catalog(scale, 42, 64), 32)
}

fn config(scale: i64) -> SessionConfig {
    let mut c = SessionConfig::new(Span::new(1, 750 * scale));
    c.limit = usize::MAX;
    c
}

fn rows_eq(a: &[(i64, Record)], b: &[(i64, Record)]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|((pa, ra), (pb, rb))| {
            pa == pb
                && ra.values().len() == rb.values().len()
                && ra
                    .values()
                    .iter()
                    .zip(rb.values())
                    .all(|(x, y)| format!("{x:?}") == format!("{y:?}"))
        })
}

// ---------------------------------------------------------------------------
// Plan-cache semantics (satellite: cache correctness)

#[test]
fn shape_identical_queries_share_one_entry_and_hit() {
    let eng = engine(1);
    let cfg = config(1);
    let thresholds = [95.0, 100.0, 105.0, 110.0, 120.0];
    for (i, t) in thresholds.iter().enumerate() {
        let q = format!("(select (> close {t}) (base HP))");
        let out = eng.run_query(&q, &cfg).unwrap();
        assert_eq!(out.cached, i > 0, "first query plans, the rest hit");
    }
    assert_eq!(eng.cache.len(), 1, "one template, one entry");
    let snap = eng.metrics.snapshot();
    assert_eq!(snap.plan_cache_misses, 1);
    assert_eq!(snap.plan_cache_hits, thresholds.len() as u64 - 1);
}

#[test]
fn cached_results_are_bit_identical_to_uncached() {
    let eng = engine(1);
    let cfg = config(1);
    // Warm the cache with a different literal, then query through the cache
    // and compare against a fresh engine that must fully optimize.
    eng.run_query("(select (> close 92.5) (base HP))", &cfg).unwrap();
    for t in ["97.25", "101.0", "113.5"] {
        let q = format!("(select (> close {t}) (base HP))");
        let cached = eng.run_query(&q, &cfg).unwrap();
        assert!(cached.cached);
        let fresh = engine(1).run_query(&q, &cfg).unwrap();
        assert!(!fresh.cached);
        assert!(rows_eq(&cached.rows, &fresh.rows), "rebound plan diverged for {t}");
    }
}

#[test]
fn session_config_changes_fork_the_key_and_epoch_bumps_invalidate() {
    let eng = engine(1);
    let mut cfg = config(1);
    let q = "(select (> close 100.0) (base HP))";
    assert!(!eng.run_query(q, &cfg).unwrap().cached);
    assert!(eng.run_query(q, &cfg).unwrap().cached);

    // `\set pushdown off` changes the key: a fresh optimization, cached
    // separately; flipping back hits the original entry.
    cfg.pushdown = false;
    assert!(!eng.run_query(q, &cfg).unwrap().cached, "pushdown off is a new shape");
    cfg.pushdown = true;
    assert!(eng.run_query(q, &cfg).unwrap().cached);
    assert_eq!(eng.cache.len(), 2);

    // `\range` changes the key too.
    cfg.range = Span::new(1, 400);
    assert!(!eng.run_query(q, &cfg).unwrap().cached, "new range is a new shape");
    cfg.range = Span::new(1, 750);

    // Publishing a new catalog epoch invalidates on next probe.
    let inval_before = eng.cache.invalidations();
    eng.publish(table1_catalog(1, 42, 64));
    let out = eng.run_query(q, &cfg).unwrap();
    assert!(!out.cached, "stale epoch must re-optimize");
    assert_eq!(out.epoch, 2, "query ran against the new snapshot");
    assert!(eng.cache.invalidations() > inval_before);
    assert!(eng.run_query(q, &cfg).unwrap().cached, "re-cached at the new epoch");
}

#[test]
fn feedback_absorption_invalidates_feedback_priced_plans() {
    let eng = engine(1);
    let cfg = config(1); // feedback on
    let q = "(select (> close 100.0) (base HP))";
    assert!(!eng.run_query(q, &cfg).unwrap().cached);
    assert!(eng.run_query(q, &cfg).unwrap().cached);
    // An \analyze run folds measured statistics into the shared overlay,
    // bumping its revision: the cached plan was priced without them.
    eng.analyze(q, &cfg).unwrap();
    let out = eng.run_query(q, &cfg).unwrap();
    assert!(!out.cached, "stats revision change must re-optimize");
    assert!(eng.run_query(q, &cfg).unwrap().cached);
}

#[test]
fn concurrent_hits_are_bit_identical_to_uncached() {
    let eng = Arc::new(engine(1));
    let cfg = config(1);
    eng.run_query("(select (> close 90.0) (base HP))", &cfg).unwrap();
    let thresholds: Vec<f64> = (0..8).map(|i| 94.0 + i as f64 * 2.5).collect();
    let mut expected = Vec::new();
    for t in &thresholds {
        let q = format!("(select (> close {t}) (base HP))");
        expected.push(engine(1).run_query(&q, &cfg).unwrap().rows);
    }
    let handles: Vec<_> = thresholds
        .iter()
        .map(|&t| {
            let eng = Arc::clone(&eng);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let q = format!("(select (> close {t}) (base HP))");
                eng.run_query(&q, &cfg).unwrap()
            })
        })
        .collect();
    for (h, want) in handles.into_iter().zip(&expected) {
        let got = h.join().unwrap();
        assert!(got.cached, "all concurrent probes hit the warmed entry");
        assert!(rows_eq(&got.rows, want), "concurrent cached run diverged");
    }
}

// ---------------------------------------------------------------------------
// Snapshot reads (tentpole acceptance: readers never block on publish)

#[test]
fn readers_complete_while_a_publish_is_pinned_mid_flight() {
    let eng = Arc::new(engine(1));
    let cfg = config(1);
    // Pin the publisher lock: any concurrent publish would block here, and
    // if readers took any publisher-side lock they would block too.
    let _publish_guard = eng.shared.hold_publish_lock();
    let readers: Vec<_> = (0..4)
        .map(|i| {
            let eng = Arc::clone(&eng);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let q = format!("(select (> close {}.0) (base HP))", 95 + i);
                eng.run_query(&q, &cfg).unwrap().rows.len()
            })
        })
        .collect();
    // Join with a deadline: a blocked reader fails the test by timeout
    // rather than hanging it forever.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    for r in readers {
        while !r.is_finished() {
            assert!(
                std::time::Instant::now() < deadline,
                "reader blocked while publish lock was held"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        r.join().unwrap();
    }
    drop(_publish_guard);
    assert_eq!(eng.publish(table1_catalog(1, 7, 64)), 2, "publisher proceeds after unpin");
}

#[test]
fn inflight_snapshot_survives_publish() {
    let eng = engine(1);
    let cfg = config(1);
    let before = eng.shared.load();
    // Publish a catalog with *different* data.
    eng.publish(table1_catalog(1, 7, 64));
    // The old snapshot still answers from the old data.
    assert_eq!(before.epoch, 1);
    assert!(before.catalog.get("HP").is_ok());
    let out = eng.run_query("(select (> close 100.0) (base HP))", &cfg).unwrap();
    assert_eq!(out.epoch, 2);
}

// ---------------------------------------------------------------------------
// Wire protocol, admission control, shutdown

#[test]
fn wire_sessions_share_the_plan_cache_and_keep_private_config() {
    let mut cfg = ServerConfig::local(Span::new(1, 750));
    cfg.workers = 2;
    let handle = serve(engine(1), &cfg).unwrap();
    let addr = handle.addr().to_string();

    let mut a = Client::connect(&addr).unwrap();
    let mut b = Client::connect(&addr).unwrap();
    // Session-private state: a's limit doesn't leak into b.
    assert!(matches!(a.send("\\limit 2").unwrap(), Response::Ok(_)));
    let Response::Ok(lines_a) = a.send("(select (> close 100.0) (base HP))").unwrap() else {
        panic!("query failed on a");
    };
    let Response::Ok(lines_b) = b.send("(select (> close 101.0) (base HP))").unwrap() else {
        panic!("query failed on b");
    };
    assert!(lines_a.len() <= 4, "limit 2 caps a's payload, got {lines_a:?}");
    assert!(lines_b.len() > lines_a.len(), "b has no limit");
    // b's shape-identical query hit the cache warmed by a.
    assert!(
        lines_b.last().unwrap().contains("cached"),
        "second session should hit the shared cache: {:?}",
        lines_b.last()
    );
    // Server-wide pooled telemetry: \metrics sees both sessions' queries.
    let Response::Ok(metrics) = a.send("\\metrics").unwrap() else { panic!("metrics failed") };
    let text = metrics.join("\n");
    assert!(text.contains("\"plan_cache_hits\": 1"), "pooled hit count, got:\n{text}");
    assert!(text.contains("\"plan_cache_misses\": 1"));
    // ...and the hot-template section rides along in the same document.
    assert!(text.contains("\"hot_templates\""), "hot templates in \\metrics, got:\n{text}");
    assert!(text.contains("\"hits\": 1"), "the shared template shows its hit:\n{text}");

    assert!(matches!(a.send("\\ping").unwrap(), Response::Ok(v) if v == ["pong"]));
    drop(a);
    drop(b);
    handle.join();
}

#[test]
fn hot_templates_rank_by_hits_with_latency_digest() {
    let eng = engine(1);
    let cfg = config(1);
    // Three bindings of one select template (1 miss + 2 hits), one aggregate.
    for t in [95.0, 100.0, 105.0] {
        eng.run_query(&format!("(select (> close {t}) (base HP))"), &cfg).unwrap();
    }
    eng.run_query("(agg avg close (trailing 8) (base DEC))", &cfg).unwrap();
    let hot = eng.hot_templates(10);
    assert_eq!(hot.len(), 2, "two distinct templates served");
    assert_eq!(hot[0].hits, 2, "the repeated select leads: {hot:?}");
    assert_eq!(hot[0].executes, 3);
    assert_eq!(hot[1].hits, 0);
    assert_eq!(hot[1].executes, 1);
    assert!(hot[0].p99_us >= hot[0].p50_us, "digest is a real distribution");
    assert!(hot[0].p50_us > 0.0, "executions recorded latency samples");
    assert_eq!(eng.hot_templates(1).len(), 1, "top-N truncates");
    // The spliced export stays one JSON document with the section inside.
    let json = eng.metrics_json(5);
    assert!(json.contains("\"hot_templates\": ["), "section spliced in:\n{json}");
    assert!(json.trim_end().ends_with('}'), "document still closes");
    assert_eq!(json.matches("\"metrics_version\"").count(), 1);
}

#[test]
fn overload_sheds_with_err_busy_and_accounting_balances() {
    let mut cfg = ServerConfig::local(Span::new(1, 750));
    cfg.workers = 1;
    cfg.queue_depth = 1;
    let handle = serve(engine(1), &cfg).unwrap();
    let addr = handle.addr().to_string();

    // Occupy the single worker...
    let blocker = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let mut c = Client::connect(&addr).unwrap();
            c.send("\\sleep 1500").unwrap()
        }
    });
    std::thread::sleep(Duration::from_millis(200));
    // ...fill the queue-depth-1 buffer...
    let filler = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let mut c = Client::connect(&addr).unwrap();
            c.send("\\sleep 1").unwrap()
        }
    });
    std::thread::sleep(Duration::from_millis(200));
    // ...and watch further admissions shed.
    let mut c = Client::connect(&addr).unwrap();
    let mut shed_seen = false;
    for _ in 0..10 {
        // A query line goes through admission (handler-local commands
        // like \ping never shed).
        let resp = c.send("(base HP)").expect("connection dropped while shedding");
        if resp.is_err_code("busy") {
            shed_seen = true;
            break;
        }
    }
    assert!(shed_seen, "saturated server must answer ERR busy");
    assert!(matches!(blocker.join().unwrap(), Response::Ok(_)));
    assert!(matches!(filler.join().unwrap(), Response::Ok(_)));
    drop(c);
    let (submitted, completed, shed) = handle.admission().totals();
    assert!(shed >= 1, "shed counter recorded the busy responses");
    assert_eq!(submitted, completed + shed, "admission accounting balances");
    handle.join();
}

#[test]
fn graceful_shutdown_drains_inflight_and_refuses_new_work() {
    let mut cfg = ServerConfig::local(Span::new(1, 750));
    cfg.workers = 1;
    cfg.queue_depth = 4;
    let handle = serve(engine(1), &cfg).unwrap();
    let addr = handle.addr().to_string();

    // An in-flight job that outlives the shutdown request.
    let inflight = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let mut c = Client::connect(&addr).unwrap();
            c.send("\\sleep 800").unwrap()
        }
    });
    std::thread::sleep(Duration::from_millis(200));
    handle.shutdown();

    // The in-flight request is drained, not dropped.
    let drained = inflight.join().unwrap();
    assert!(
        matches!(&drained, Response::Ok(lines) if lines[0].contains("slept")),
        "in-flight work must complete through shutdown, got {drained:?}"
    );

    // New work is refused once the acceptor notices the flag. The TCP
    // backlog may still accept the connection, so probe with a timeout:
    // anything but an `OK` response counts as refused.
    std::thread::sleep(Duration::from_millis(300));
    let refused = match std::net::TcpStream::connect(&addr) {
        Err(_) => true,
        Ok(mut s) => {
            use std::io::{Read, Write};
            s.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
            let _ = s.write_all(b"(base HP)\n");
            let mut buf = [0u8; 256];
            match s.read(&mut buf) {
                Ok(0) => true, // closed
                Ok(n) => !String::from_utf8_lossy(&buf[..n]).starts_with("OK"),
                Err(_) => true, // no handler
            }
        }
    };
    assert!(refused, "post-shutdown work must be refused");

    // Join returns the engine; telemetry survives for the exit flush.
    let (submitted, completed, shed) = handle.admission().totals();
    assert_eq!(submitted, completed + shed, "everything admitted was drained");
    let engine = handle.join();
    let json = engine.metrics.to_json(None);
    assert!(json.contains("metrics_version"), "metrics export intact after drain");
}

// ---------------------------------------------------------------------------
// Engine-level guards

#[test]
fn exact_only_templates_still_serve_exact_hits() {
    // Two distinct parameters that collide after optimization cannot occur
    // here, but *repeated* literals in one query make params non-distinct:
    // (and (> close 100) (< close 100)) has params [100, 100] and must
    // degrade to exact-only rather than rebind ambiguously.
    let eng = engine(1);
    let cfg = config(1);
    let q = "(select (and (> close 100.0) (< close 100.0)) (base HP))";
    assert!(!eng.run_query(q, &cfg).unwrap().cached);
    assert!(eng.run_query(q, &cfg).unwrap().cached, "literal-identical repeat hits");
    let different = "(select (and (> close 100.0) (< close 120.0)) (base HP))";
    let out = eng.run_query(different, &cfg).unwrap();
    assert!(!out.cached, "exact-only entry must not rebind distinct literals");
    // And the exact-only result is still correct (empty: x>100 && x<100).
    let repeat = eng.run_query(q, &cfg).unwrap();
    assert!(repeat.rows.is_empty());
}

#[test]
fn structural_changes_never_alias_in_the_cache() {
    let eng = engine(1);
    let cfg = config(1);
    // Window width is structural: these two must NOT share a plan.
    let q8 = "(select (> avg_close 100.0) (agg avg close (trailing 8) (base HP)))";
    let q16 = "(select (> avg_close 100.0) (agg avg close (trailing 16) (base HP)))";
    let a = eng.run_query(q8, &cfg).unwrap();
    let b = eng.run_query(q16, &cfg).unwrap();
    assert!(!a.cached && !b.cached, "different window widths are different shapes");
    assert_eq!(eng.cache.len(), 2);
    assert!(!rows_eq(&a.rows, &b.rows), "different windows give different answers");
}

#[test]
fn values_rebind_exactly_including_strings() {
    // A catalog with a string column exercises Str rebinding end to end.
    use seq_core::{record, schema, AttrType, BaseSequence};
    let entries = (1..=100i64)
        .map(|p| {
            let city = if p % 3 == 0 { "tucson" } else { "madison" };
            (p, record![p, Value::str(city)])
        })
        .collect();
    let base = BaseSequence::from_entries(
        schema(&[("time", AttrType::Int), ("city", AttrType::Str)]),
        entries,
    )
    .unwrap();
    let mut catalog = Catalog::new();
    catalog.register("Obs", &base);
    let eng = Engine::new(catalog, 8);
    let mut cfg = SessionConfig::new(Span::new(1, 100));
    cfg.limit = usize::MAX;
    let q1 = "(select (= city \"tucson\") (base Obs))";
    let q2 = "(select (= city \"madison\") (base Obs))";
    let first = eng.run_query(q1, &cfg).unwrap();
    assert!(!first.cached);
    let second = eng.run_query(q2, &cfg).unwrap();
    assert!(second.cached, "string literal rebinding hits");
    assert_eq!(first.rows.len(), 33);
    assert_eq!(second.rows.len(), 67, "rebound plan filters on the NEW literal");
}
