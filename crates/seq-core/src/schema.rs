//! Record schemas.
//!
//! A record schema `R = <A1:T1, ..., An:Tn>` (§2) is an ordered list of named,
//! typed attributes. Schemas are immutable and cheaply cloneable; the compose
//! operator concatenates schemas and projection selects a subset.

use std::fmt;
use std::sync::Arc;

use crate::error::{Result, SeqError};
use crate::value::AttrType;

/// One named, typed attribute of a record schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Attribute name, unique within its schema by convention.
    pub name: String,
    /// Attribute type.
    pub ty: AttrType,
}

impl Field {
    /// A named, typed field.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Field {
        Field { name: name.into(), ty }
    }
}

/// An immutable, shareable record schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Arc<[Field]>,
}

impl Schema {
    /// A schema from ordered fields.
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema { fields: fields.into() }
    }

    /// An empty schema (used by constant sequences carrying no payload).
    pub fn empty() -> Schema {
        Schema { fields: Arc::from(Vec::new()) }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// All fields, in attribute order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// The field at attribute index `idx`.
    pub fn field(&self, idx: usize) -> Result<&Field> {
        self.fields.get(idx).ok_or_else(|| {
            SeqError::Schema(format!(
                "attribute index {idx} out of bounds for schema of arity {}",
                self.arity()
            ))
        })
    }

    /// Resolve an attribute name to its index.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| SeqError::Schema(format!("no attribute named {name:?} in {self}")))
    }

    /// The schema obtained by projecting the given attribute indices, in order.
    pub fn project(&self, indices: &[usize]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(indices.len());
        for &i in indices {
            fields.push(self.field(i)?.clone());
        }
        Ok(Schema::new(fields))
    }

    /// The schema of the compose (positional join) of two sequences: the
    /// concatenation of both schemas. Name clashes are disambiguated by
    /// suffixing the right-hand attribute with `_r`, mirroring how SQL engines
    /// qualify join outputs.
    pub fn compose(&self, right: &Schema) -> Schema {
        let mut fields: Vec<Field> = self.fields.to_vec();
        for f in right.fields.iter() {
            let clash = fields.iter().any(|g| g.name == f.name);
            let name = if clash { format!("{}_r", f.name) } else { f.name.clone() };
            fields.push(Field::new(name, f.ty));
        }
        Schema::new(fields)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, fd) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}", fd.name, fd.ty)?;
        }
        write!(f, ">")
    }
}

/// Convenience constructor: `schema(&[("time", Int), ("close", Float)])`.
pub fn schema(fields: &[(&str, AttrType)]) -> Schema {
    Schema::new(fields.iter().map(|(n, t)| Field::new(*n, *t)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stock() -> Schema {
        schema(&[("time", AttrType::Int), ("close", AttrType::Float)])
    }

    #[test]
    fn lookup_by_name_and_index() {
        let s = stock();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.index_of("close").unwrap(), 1);
        assert!(s.index_of("open").is_err());
        assert_eq!(s.field(0).unwrap().name, "time");
        assert!(s.field(5).is_err());
    }

    #[test]
    fn projection_reorders_and_subsets() {
        let s = stock();
        let p = s.project(&[1]).unwrap();
        assert_eq!(p.arity(), 1);
        assert_eq!(p.field(0).unwrap().name, "close");
        let swapped = s.project(&[1, 0]).unwrap();
        assert_eq!(swapped.field(0).unwrap().name, "close");
        assert_eq!(swapped.field(1).unwrap().name, "time");
        assert!(s.project(&[7]).is_err());
    }

    #[test]
    fn compose_concatenates_and_disambiguates() {
        let l = stock();
        let r = stock();
        let c = l.compose(&r);
        assert_eq!(c.arity(), 4);
        assert_eq!(c.field(2).unwrap().name, "time_r");
        assert_eq!(c.field(3).unwrap().name, "close_r");
        // No clash case keeps original names.
        let r2 = schema(&[("volume", AttrType::Int)]);
        let c2 = l.compose(&r2);
        assert_eq!(c2.field(2).unwrap().name, "volume");
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(stock().to_string(), "<time:INT, close:FLOAT>");
        assert_eq!(Schema::empty().to_string(), "<>");
    }

    #[test]
    fn schemas_compare_structurally() {
        assert_eq!(stock(), stock());
        assert_ne!(stock(), Schema::empty());
    }
}
