//! The sequence abstraction (§2): base, constant, and derived sequences.
//!
//! A sequence is a function from positions to records-or-Null. The two
//! fundamental access operations mirror the paper's *access modes* (§3.3):
//!
//! - **probed** access: `get(pos)` — "get the record at a specific position";
//! - **stream** access: `scan(span)` — "get the next non-Null record",
//!   repeatedly, in positional order.
//!
//! This crate provides in-memory [`BaseSequence`] and [`ConstantSequence`];
//! the `seq-storage` crate provides the paged, cost-accounted store used by
//! benchmarks. Derived sequences exist as query graphs in `seq-ops` and as
//! cursors in `seq-exec`.

use std::sync::Arc;

use crate::error::{Result, SeqError};
use crate::meta::{column_stats_from_values, SeqMeta};
use crate::record::Record;
use crate::schema::Schema;
use crate::span::Span;

/// Read interface shared by every materialized sequence.
pub trait Sequence: Send + Sync {
    /// The record schema of the sequence.
    fn schema(&self) -> &Schema;

    /// Span/density/statistics meta-data (§3).
    fn meta(&self) -> &SeqMeta;

    /// Probed access: the record at position `pos`, or `None` for an empty
    /// position.
    fn get(&self, pos: i64) -> Option<Record>;

    /// Stream access: all non-empty positions intersecting `span`, in
    /// increasing positional order.
    fn scan(&self, span: Span) -> Box<dyn Iterator<Item = (i64, Record)> + '_>;

    /// Number of non-empty positions (exact where cheaply known).
    fn record_count(&self) -> u64;
}

/// An explicit, materialized association of positions with records (§2,
/// "base sequences"), held in memory and sorted by position.
#[derive(Debug, Clone)]
pub struct BaseSequence {
    schema: Schema,
    meta: SeqMeta,
    /// Sorted by position; positions are unique.
    entries: Arc<[(i64, Record)]>,
}

impl BaseSequence {
    /// Build from `(position, record)` pairs. Pairs may arrive unsorted;
    /// duplicate positions are rejected (the model maps each position to at
    /// most one record). Records are schema-checked.
    pub fn from_entries(schema: Schema, mut entries: Vec<(i64, Record)>) -> Result<BaseSequence> {
        entries.sort_by_key(|(p, _)| *p);
        for w in entries.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(SeqError::InvalidGraph(format!(
                    "duplicate position {} in base sequence",
                    w[0].0
                )));
            }
        }
        for (_, r) in &entries {
            Record::checked(r.values().to_vec(), &schema)?;
        }
        let span = match (entries.first(), entries.last()) {
            (Some((s, _)), Some((e, _))) => Span::new(*s, *e),
            _ => Span::empty(),
        };
        let density = if span.is_empty() { 0.0 } else { entries.len() as f64 / span.len() as f64 };
        let columns = (0..schema.arity())
            .map(|i| {
                column_stats_from_values(
                    entries.iter().map(move |(_, r)| r.value(i).expect("checked arity")),
                )
            })
            .collect();
        let meta = SeqMeta::new(span, density, columns);
        Ok(BaseSequence { schema, meta, entries: entries.into() })
    }

    /// Override the declared span (e.g. Table 1 declares HP's span as
    /// [1, 750] even if the first trade is later). Density is recomputed
    /// against the declared span.
    pub fn with_declared_span(mut self, span: Span) -> BaseSequence {
        let density =
            if span.is_empty() { 0.0 } else { self.entries.len() as f64 / span.len() as f64 };
        self.meta.span = span;
        self.meta.density = density;
        self
    }

    /// The `(position, record)` pairs, sorted by position.
    pub fn entries(&self) -> &[(i64, Record)] {
        &self.entries
    }

    fn index_of(&self, pos: i64) -> std::result::Result<usize, usize> {
        self.entries.binary_search_by_key(&pos, |(p, _)| *p)
    }
}

impl Sequence for BaseSequence {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn meta(&self) -> &SeqMeta {
        &self.meta
    }

    fn get(&self, pos: i64) -> Option<Record> {
        self.index_of(pos).ok().map(|i| self.entries[i].1.clone())
    }

    fn scan(&self, span: Span) -> Box<dyn Iterator<Item = (i64, Record)> + '_> {
        if span.is_empty() {
            return Box::new(std::iter::empty());
        }
        let start = match self.index_of(span.start()) {
            Ok(i) | Err(i) => i,
        };
        let end = span.end();
        Box::new(
            self.entries[start..]
                .iter()
                .take_while(move |(p, _)| *p <= end)
                .map(|(p, r)| (*p, r.clone())),
        )
    }

    fn record_count(&self) -> u64 {
        self.entries.len() as u64
    }
}

/// A sequence where every position maps to the same record (§2, "constant
/// sequences"). Constants have density one and no access cost (§4.1.1).
#[derive(Debug, Clone)]
pub struct ConstantSequence {
    schema: Schema,
    meta: SeqMeta,
    record: Record,
}

impl ConstantSequence {
    /// A constant sequence of `record` at every position.
    pub fn new(schema: Schema, record: Record) -> Result<ConstantSequence> {
        Record::checked(record.values().to_vec(), &schema)?;
        Ok(ConstantSequence { schema, meta: SeqMeta::constant(), record })
    }

    /// The record every position maps to.
    pub fn record(&self) -> &Record {
        &self.record
    }
}

impl Sequence for ConstantSequence {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn meta(&self) -> &SeqMeta {
        &self.meta
    }

    fn get(&self, _pos: i64) -> Option<Record> {
        Some(self.record.clone())
    }

    fn scan(&self, span: Span) -> Box<dyn Iterator<Item = (i64, Record)> + '_> {
        // Every position is non-empty; enumerating an unbounded span is a
        // logic error guarded by the planner (constants are always probed).
        assert!(
            span.is_empty() || span.is_bounded(),
            "cannot stream a constant sequence over an unbounded span"
        );
        let rec = self.record.clone();
        Box::new(span.positions().map(move |p| (p, rec.clone())))
    }

    fn record_count(&self) -> u64 {
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;
    use crate::schema::schema;
    use crate::value::AttrType;

    fn seq(entries: Vec<(i64, Record)>) -> BaseSequence {
        BaseSequence::from_entries(
            schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
            entries,
        )
        .unwrap()
    }

    #[test]
    fn builds_sorted_with_meta() {
        let s =
            seq(vec![(5, record![5i64, 1.0]), (1, record![1i64, 2.0]), (3, record![3i64, 3.0])]);
        assert_eq!(s.meta().span, Span::new(1, 5));
        assert!((s.meta().density - 3.0 / 5.0).abs() < 1e-12);
        assert_eq!(s.record_count(), 3);
        // Column stats computed.
        assert_eq!(s.meta().column(1).ndv, 3);
    }

    #[test]
    fn rejects_duplicate_positions() {
        let r = BaseSequence::from_entries(
            schema(&[("x", AttrType::Int)]),
            vec![(1, record![1i64]), (1, record![2i64])],
        );
        assert!(r.is_err());
    }

    #[test]
    fn rejects_schema_violations() {
        let r =
            BaseSequence::from_entries(schema(&[("x", AttrType::Int)]), vec![(1, record![1.5])]);
        assert!(r.is_err());
    }

    #[test]
    fn probed_access() {
        let s = seq(vec![(1, record![1i64, 2.0]), (3, record![3i64, 4.0])]);
        assert!(s.get(1).is_some());
        assert!(s.get(2).is_none());
        assert!(s.get(99).is_none());
    }

    #[test]
    fn stream_access_respects_span() {
        let s = seq(vec![
            (1, record![1i64, 1.0]),
            (3, record![3i64, 2.0]),
            (5, record![5i64, 3.0]),
            (9, record![9i64, 4.0]),
        ]);
        let got: Vec<i64> = s.scan(Span::new(2, 6)).map(|(p, _)| p).collect();
        assert_eq!(got, vec![3, 5]);
        let all: Vec<i64> = s.scan(Span::all()).map(|(p, _)| p).collect();
        assert_eq!(all, vec![1, 3, 5, 9]);
        assert_eq!(s.scan(Span::empty()).count(), 0);
    }

    #[test]
    fn empty_sequence_has_empty_span() {
        let s = BaseSequence::from_entries(schema(&[("x", AttrType::Int)]), vec![]).unwrap();
        assert!(s.meta().span.is_empty());
        assert_eq!(s.meta().density, 0.0);
        assert_eq!(s.scan(Span::all()).count(), 0);
    }

    #[test]
    fn declared_span_recomputes_density() {
        let s = seq(vec![(10, record![10i64, 1.0]), (11, record![11i64, 2.0])])
            .with_declared_span(Span::new(1, 20));
        assert_eq!(s.meta().span, Span::new(1, 20));
        assert!((s.meta().density - 0.1).abs() < 1e-12);
    }

    #[test]
    fn constant_sequence_everywhere() {
        let c =
            ConstantSequence::new(schema(&[("threshold", AttrType::Float)]), record![7.0]).unwrap();
        assert!(c.get(-100).is_some());
        assert!(c.get(1_000_000).is_some());
        let v: Vec<i64> = c.scan(Span::new(2, 4)).map(|(p, _)| p).collect();
        assert_eq!(v, vec![2, 3, 4]);
        assert_eq!(c.meta().density, 1.0);
    }
}
