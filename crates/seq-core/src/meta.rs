//! Sequence meta-data (§3, Table 1).
//!
//! The optimizer consumes, per sequence: its *span*, its *density* (the
//! fraction of positions within the span mapping to non-Null records),
//! per-column statistics used for selectivity estimation, and pairwise
//! correlation of Null positions between sequences.

use std::fmt;

use crate::span::Span;
use crate::value::{AttrType, Value};

/// An equi-width histogram over a numeric column (§3: "distributions of
/// values in the columns"). Buckets partition `[lo, hi]`; counts are
/// record counts per bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Lowest observed value (left edge of the first bucket).
    pub lo: f64,
    /// Highest observed value (right edge of the last bucket).
    pub hi: f64,
    /// Record count per bucket.
    pub counts: Vec<u64>,
    /// Total records counted.
    pub total: u64,
}

impl Histogram {
    /// Build an equi-width histogram with `buckets` buckets from numeric
    /// values. Returns `None` for empty or degenerate (single-point) data.
    pub fn build(values: &[f64], buckets: usize) -> Option<Histogram> {
        if values.is_empty() || buckets == 0 {
            return None;
        }
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return None;
        }
        let mut counts = vec![0u64; buckets];
        let width = (hi - lo) / buckets as f64;
        for &v in values {
            let idx = (((v - lo) / width) as usize).min(buckets - 1);
            counts[idx] += 1;
        }
        Some(Histogram { lo, hi, counts, total: values.len() as u64 })
    }

    /// Estimated fraction of values strictly below `x`, interpolating within
    /// the bucket that contains `x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.total == 0 || x <= self.lo {
            return 0.0;
        }
        if x >= self.hi {
            return 1.0;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = (((x - self.lo) / width) as usize).min(self.counts.len() - 1);
        let below: u64 = self.counts[..idx].iter().sum();
        let within_frac = ((x - (self.lo + idx as f64 * width)) / width).clamp(0.0, 1.0);
        (below as f64 + self.counts[idx] as f64 * within_frac) / self.total as f64
    }
}

/// Per-column statistics used for selectivity estimation (§3: "distributions
/// of values in the columns").
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Smallest observed value (None when the column is empty or non-ordered).
    pub min: Option<Value>,
    /// Largest observed value.
    pub max: Option<Value>,
    /// Number of distinct values, approximated.
    pub ndv: u64,
    /// Optional value-distribution histogram (numeric columns only).
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// No information (all estimates fall back to defaults).
    pub fn unknown() -> ColumnStats {
        ColumnStats { min: None, max: None, ndv: 0, histogram: None }
    }

    /// Stats with bounds but no distribution information.
    pub fn bounded(min: Value, max: Value, ndv: u64) -> ColumnStats {
        ColumnStats { min: Some(min), max: Some(max), ndv, histogram: None }
    }

    /// Estimate the selectivity of `col <cmp> literal`. With a histogram the
    /// estimate interpolates the observed distribution; otherwise it assumes
    /// a uniform distribution between min and max; with no statistics at all
    /// it falls back to the conventional defaults of 1/3 for range
    /// predicates and 1/10 for equality (the System R defaults the paper's
    /// Selinger framing inherits).
    pub fn range_selectivity(&self, lit: &Value, op: CmpOp) -> f64 {
        let (min, max) = match (&self.min, &self.max) {
            (Some(a), Some(b)) => (a, b),
            _ => return op.default_selectivity(),
        };
        let (lo, hi, x) = match (min.as_f64(), max.as_f64(), lit.as_f64()) {
            (Ok(lo), Ok(hi), Ok(x)) => (lo, hi, x),
            _ => return op.default_selectivity(),
        };
        if hi <= lo {
            return op.default_selectivity();
        }
        let frac_below = match &self.histogram {
            Some(h) => h.fraction_below(x),
            None => ((x - lo) / (hi - lo)).clamp(0.0, 1.0),
        };
        let sel = match op {
            CmpOp::Lt | CmpOp::Le => frac_below,
            CmpOp::Gt | CmpOp::Ge => 1.0 - frac_below,
            CmpOp::Eq => {
                if self.ndv > 0 {
                    1.0 / self.ndv as f64
                } else {
                    0.1
                }
            }
            CmpOp::Ne => {
                if self.ndv > 0 {
                    1.0 - 1.0 / self.ndv as f64
                } else {
                    0.9
                }
            }
        };
        sel.clamp(0.0, 1.0)
    }
}

/// Comparison operators the selectivity model understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// System-R-style fallback selectivity when no statistics exist.
    pub fn default_selectivity(self) -> f64 {
        match self {
            CmpOp::Eq => 0.1,
            CmpOp::Ne => 0.9,
            _ => 1.0 / 3.0,
        }
    }

    /// Whether an ordering outcome `a cmp b` satisfies `a <op> b`.
    #[inline]
    pub fn holds(self, ord: std::cmp::Ordering) -> bool {
        match self {
            CmpOp::Eq => ord.is_eq(),
            CmpOp::Ne => ord.is_ne(),
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Le => ord.is_le(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Ge => ord.is_ge(),
        }
    }

    /// The mirrored operator: `a <op> b` iff `b <op.mirrored()> a`.
    pub fn mirrored(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// Meta-data describing one (base or derived) sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqMeta {
    /// Valid range of positions (§3: "start and end position").
    pub span: Span,
    /// Fraction of positions within the span mapping to non-Null records.
    pub density: f64,
    /// Per-attribute statistics, parallel to the schema.
    pub columns: Vec<ColumnStats>,
}

impl SeqMeta {
    /// Meta-data from span, density, and per-column statistics.
    pub fn new(span: Span, density: f64, columns: Vec<ColumnStats>) -> SeqMeta {
        SeqMeta { span, density: density.clamp(0.0, 1.0), columns }
    }

    /// Meta-data for a sequence with no information beyond its span.
    pub fn with_span(span: Span, density: f64) -> SeqMeta {
        SeqMeta::new(span, density, Vec::new())
    }

    /// A constant sequence: density one, every position valid, no access cost
    /// (§4.1.1).
    pub fn constant() -> SeqMeta {
        SeqMeta::new(Span::all(), 1.0, Vec::new())
    }

    /// Expected number of non-Null records within the span.
    pub fn expected_records(&self) -> f64 {
        if !self.span.is_bounded() {
            return f64::INFINITY;
        }
        self.span.len() as f64 * self.density
    }

    /// Statistics of attribute `idx` (unknown when absent).
    pub fn column(&self, idx: usize) -> ColumnStats {
        self.columns.get(idx).cloned().unwrap_or_else(ColumnStats::unknown)
    }

    /// Restrict the span (top-down propagation, §3.2). Density and column
    /// statistics are assumed position-independent and kept.
    pub fn restrict_span(&self, to: &Span) -> SeqMeta {
        SeqMeta {
            span: self.span.intersect(to),
            density: self.density,
            columns: self.columns.clone(),
        }
    }
}

impl fmt::Display for SeqMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "span={} density={:.3}", self.span, self.density)
    }
}

/// Number of buckets for automatically built column histograms.
pub const DEFAULT_HISTOGRAM_BUCKETS: usize = 32;

/// Compute exact [`ColumnStats`] from a materialized column of values,
/// including an equi-width histogram for numeric columns.
pub fn column_stats_from_values<'a>(values: impl Iterator<Item = &'a Value>) -> ColumnStats {
    let mut min: Option<Value> = None;
    let mut max: Option<Value> = None;
    let mut distinct: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut numeric: Vec<f64> = Vec::new();
    let mut all_numeric = true;
    let mut any_unordered = false;
    for v in values {
        distinct.insert(format!("{v}"));
        match v.as_f64() {
            Ok(x) if x.is_finite() => numeric.push(x),
            _ => all_numeric = false,
        }
        match v.attr_type() {
            AttrType::Int | AttrType::Float | AttrType::Str | AttrType::Bool => {
                match &min {
                    None => min = Some(v.clone()),
                    Some(m) => {
                        if v.total_cmp(m).map(|o| o.is_lt()).unwrap_or_else(|_| {
                            any_unordered = true;
                            false
                        }) {
                            min = Some(v.clone());
                        }
                    }
                }
                match &max {
                    None => max = Some(v.clone()),
                    Some(m) => {
                        if v.total_cmp(m).map(|o| o.is_gt()).unwrap_or(false) {
                            max = Some(v.clone());
                        }
                    }
                }
            }
        }
    }
    if any_unordered {
        return ColumnStats::unknown();
    }
    let histogram =
        if all_numeric { Histogram::build(&numeric, DEFAULT_HISTOGRAM_BUCKETS) } else { None };
    ColumnStats { min, max, ndv: distinct.len() as u64, histogram }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_meta() {
        // Table 1: IBM span [200,500] density 0.95; DEC [1,350] 0.7; HP [1,750] 1.0.
        let ibm = SeqMeta::with_span(Span::new(200, 500), 0.95);
        assert!((ibm.expected_records() - 301.0 * 0.95).abs() < 1e-9);
        let hp = SeqMeta::with_span(Span::new(1, 750), 1.0);
        assert_eq!(hp.expected_records(), 750.0);
    }

    #[test]
    fn density_is_clamped() {
        assert_eq!(SeqMeta::with_span(Span::point(0), 7.0).density, 1.0);
        assert_eq!(SeqMeta::with_span(Span::point(0), -1.0).density, 0.0);
    }

    #[test]
    fn restrict_span_keeps_density() {
        let m = SeqMeta::with_span(Span::new(1, 350), 0.7);
        let r = m.restrict_span(&Span::new(200, 500));
        assert_eq!(r.span, Span::new(200, 350));
        assert_eq!(r.density, 0.7);
    }

    #[test]
    fn selectivity_uniform_model() {
        let stats = ColumnStats::bounded(Value::Float(0.0), Value::Float(10.0), 100);
        let sel = stats.range_selectivity(&Value::Float(7.0), CmpOp::Gt);
        assert!((sel - 0.3).abs() < 1e-9);
        let sel = stats.range_selectivity(&Value::Float(7.0), CmpOp::Lt);
        assert!((sel - 0.7).abs() < 1e-9);
        let sel = stats.range_selectivity(&Value::Float(3.0), CmpOp::Eq);
        assert!((sel - 0.01).abs() < 1e-9);
    }

    #[test]
    fn selectivity_defaults_without_stats() {
        let stats = ColumnStats::unknown();
        assert!((stats.range_selectivity(&Value::Int(5), CmpOp::Gt) - 1.0 / 3.0).abs() < 1e-9);
        assert!((stats.range_selectivity(&Value::Int(5), CmpOp::Eq) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn selectivity_clamps_out_of_range_literals() {
        let stats = ColumnStats::bounded(Value::Int(0), Value::Int(10), 10);
        assert_eq!(stats.range_selectivity(&Value::Int(100), CmpOp::Gt), 0.0);
        assert_eq!(stats.range_selectivity(&Value::Int(-5), CmpOp::Gt), 1.0);
    }

    #[test]
    fn stats_from_values() {
        let vals = [Value::Int(3), Value::Int(1), Value::Int(3), Value::Int(9)];
        let s = column_stats_from_values(vals.iter());
        assert_eq!(s.min, Some(Value::Int(1)));
        assert_eq!(s.max, Some(Value::Int(9)));
        assert_eq!(s.ndv, 3);
    }

    #[test]
    fn constant_meta() {
        let c = SeqMeta::constant();
        assert_eq!(c.density, 1.0);
        assert!(!c.span.is_bounded());
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::*;

    #[test]
    fn build_and_fraction_below() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::build(&values, 10).unwrap();
        assert_eq!(h.total, 100);
        assert_eq!(h.counts.iter().sum::<u64>(), 100);
        assert!((h.fraction_below(50.0) - 0.5).abs() < 0.02);
        assert_eq!(h.fraction_below(-1.0), 0.0);
        assert_eq!(h.fraction_below(1000.0), 1.0);
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        assert!(Histogram::build(&[], 10).is_none());
        assert!(Histogram::build(&[5.0, 5.0, 5.0], 10).is_none());
        assert!(Histogram::build(&[1.0, 2.0], 0).is_none());
    }

    #[test]
    fn histogram_beats_uniform_on_skew() {
        // 90% of the mass at small values, 10% spread high: the uniform
        // model badly overestimates sel(col > 50); the histogram does not.
        let mut values: Vec<f64> = (0..900).map(|i| (i % 10) as f64).collect();
        values.extend((0..100).map(|i| 50.0 + (i % 50) as f64));
        let true_sel = values.iter().filter(|&&v| v > 50.0).count() as f64 / values.len() as f64;

        let with_hist = ColumnStats {
            min: Some(Value::Float(0.0)),
            max: Some(Value::Float(99.0)),
            ndv: 60,
            histogram: Histogram::build(&values, 32),
        };
        let uniform = ColumnStats::bounded(Value::Float(0.0), Value::Float(99.0), 60);

        let est_hist = with_hist.range_selectivity(&Value::Float(50.0), CmpOp::Gt);
        let est_unif = uniform.range_selectivity(&Value::Float(50.0), CmpOp::Gt);
        let err_hist = (est_hist - true_sel).abs();
        let err_unif = (est_unif - true_sel).abs();
        assert!(
            err_hist < err_unif / 3.0,
            "histogram {est_hist:.3} vs uniform {est_unif:.3} vs true {true_sel:.3}"
        );
    }

    #[test]
    fn column_stats_builder_attaches_histograms() {
        let values: Vec<Value> = (0..200).map(|i| Value::Float((i % 40) as f64)).collect();
        let s = column_stats_from_values(values.iter());
        let h = s.histogram.expect("numeric column gets a histogram");
        assert_eq!(h.total, 200);
        // Strings do not.
        let strs: Vec<Value> = (0..10).map(|i| Value::str(format!("s{i}"))).collect();
        assert!(column_stats_from_values(strs.iter()).histogram.is_none());
    }

    #[test]
    fn interpolation_within_buckets() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64 / 10.0).collect(); // 0.0..99.9
        let h = Histogram::build(&values, 10).unwrap();
        // Quarter of the way through the first bucket.
        let f = h.fraction_below(2.5);
        assert!((f - 0.025).abs() < 0.01, "{f}");
    }
}
