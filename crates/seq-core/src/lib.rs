//! # seq-core — the sequence data model
//!
//! Core types for the sequence-query-processing stack reproducing
//! *Sequence Query Processing* (Seshadri, Livny, Ramakrishnan, SIGMOD 1994):
//!
//! - [`value::Value`] / [`value::AttrType`] — atomic values and types;
//! - [`record::Record`] / [`schema::Schema`] — records `<A1:T1, ..., An:Tn>`;
//! - [`span::Span`] — valid position ranges with ±∞ endpoints;
//! - [`meta::SeqMeta`] — span / density / column statistics meta-data
//!   (Table 1 of the paper);
//! - [`sequence::Sequence`] — the probed/stream read interface, with
//!   in-memory [`sequence::BaseSequence`] and [`sequence::ConstantSequence`].
//!
//! Positions are `i64`. A sequence is a function from positions to records or
//! Null; empty positions are represented as `None` and never materialized.

pub mod batch;
pub mod error;
pub mod meta;
pub mod record;
pub mod schema;
pub mod sequence;
pub mod span;
pub mod value;

pub use batch::{RecordBatch, RowRef, DEFAULT_BATCH_SIZE};
pub use error::{Result, SeqError};
pub use meta::{CmpOp, ColumnStats, Histogram, SeqMeta};
pub use record::Record;
pub use schema::{schema, Field, Schema};
pub use sequence::{BaseSequence, ConstantSequence, Sequence};
pub use span::{Span, NEG_INF, POS_INF};
pub use value::{AttrType, Value};

#[cfg(test)]
mod proptests {
    //! Seeded randomized property tests. A tiny inline xorshift stands in
    //! for an external property-testing framework so this crate (the root of
    //! the dependency graph) builds with no dependencies at all; seeds are
    //! fixed, so failures reproduce exactly.
    use super::*;

    struct TestRng(u64);

    impl TestRng {
        fn new(seed: u64) -> TestRng {
            // Splitmix64 mix so small seeds still decorrelate.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            TestRng((z ^ (z >> 31)) | 1)
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform-ish draw in `[lo, hi)`; modulo bias is irrelevant at
        /// these range widths.
        fn range(&mut self, lo: i64, hi: i64) -> i64 {
            assert!(lo < hi);
            lo + (self.next_u64() % (hi - lo) as u64) as i64
        }
    }

    fn arb_span(rng: &mut TestRng) -> Span {
        match rng.range(0, 6) {
            0 => Span::empty(),
            1 => Span::all(),
            2 => {
                let a = rng.range(-1000, 1000);
                Span::new(a, a).unbounded_above()
            }
            3 => {
                let a = rng.range(-1000, 1000);
                Span::new(a, a).unbounded_below()
            }
            _ => {
                let a = rng.range(-1000, 1000);
                let b = rng.range(-1000, 1000);
                Span::new(a.min(b), a.max(b))
            }
        }
    }

    const CASES: usize = 512;

    #[test]
    fn intersect_is_commutative_and_idempotent() {
        let mut rng = TestRng::new(0x5ea1);
        for _ in 0..CASES {
            let a = arb_span(&mut rng);
            let b = arb_span(&mut rng);
            assert_eq!(a.intersect(&b), b.intersect(&a));
            assert_eq!(a.intersect(&a), a);
        }
    }

    #[test]
    fn intersect_is_associative() {
        let mut rng = TestRng::new(0xa550c);
        for _ in 0..CASES {
            let a = arb_span(&mut rng);
            let b = arb_span(&mut rng);
            let c = arb_span(&mut rng);
            assert_eq!(a.intersect(&b).intersect(&c), a.intersect(&b.intersect(&c)));
        }
    }

    #[test]
    fn intersection_is_subset_and_hull_is_superset() {
        let mut rng = TestRng::new(0x5eb5);
        for _ in 0..CASES {
            let a = arb_span(&mut rng);
            let b = arb_span(&mut rng);
            let p = rng.range(-2000, 2000);
            let i = a.intersect(&b);
            assert_eq!(i.contains(p), a.contains(p) && b.contains(p), "{a:?} ∩ {b:?} at {p}");
            if a.contains(p) || b.contains(p) {
                assert!(a.hull(&b).contains(p), "{a:?} ∪ {b:?} at {p}");
            }
        }
    }

    #[test]
    fn shift_round_trips_and_preserves_membership() {
        let mut rng = TestRng::new(0x51f7);
        for _ in 0..CASES {
            let a = rng.range(-1000, 1000);
            let b = rng.range(-1000, 1000);
            let d = rng.range(-500, 500);
            let p = rng.range(-1000, 1000);
            let s = Span::new(a.min(b), a.max(b));
            assert_eq!(s.shift(d).shift(-d), s);
            assert_eq!(s.contains(p), s.shift(d).contains(p + d));
        }
    }

    #[test]
    fn widen_contains_window_hits() {
        let mut rng = TestRng::new(0x71de);
        for _ in 0..CASES {
            let a = rng.range(-200, 200);
            let b = rng.range(-200, 200);
            let lo = rng.range(-20, 20);
            let hi = rng.range(-20, 20);
            let i = rng.range(-300, 300);
            let (lo, hi) = (lo.min(hi), lo.max(hi));
            let s = Span::new(a.min(b), a.max(b));
            let w = s.widen_by_window(lo, hi);
            // i is in the widened span iff the window [i+lo, i+hi] meets s.
            let hit = (lo..=hi).any(|d| s.contains(i + d));
            assert_eq!(w.contains(i), hit, "{s:?} widened by [{lo},{hi}] at {i}");
        }
    }

    #[test]
    fn value_total_cmp_is_antisymmetric() {
        let mut rng = TestRng::new(0xc3a9);
        for _ in 0..CASES {
            let a = Value::Int(rng.next_u64() as i64);
            let b = Value::Int(rng.next_u64() as i64);
            let ab = a.total_cmp(&b).unwrap();
            let ba = b.total_cmp(&a).unwrap();
            assert_eq!(ab, ba.reverse());
        }
    }

    #[test]
    fn record_compose_project_inverse() {
        let mut rng = TestRng::new(0xec05);
        for _ in 0..CASES {
            let nx = rng.range(0, 6) as usize;
            let ny = rng.range(0, 6) as usize;
            let xs: Vec<i64> = (0..nx).map(|_| rng.next_u64() as i64).collect();
            let ys: Vec<i64> = (0..ny).map(|_| rng.next_u64() as i64).collect();
            let l = Record::new(xs.iter().map(|&v| Value::Int(v)).collect());
            let r = Record::new(ys.iter().map(|&v| Value::Int(v)).collect());
            let c = l.compose(&r);
            let left_idx: Vec<usize> = (0..xs.len()).collect();
            let right_idx: Vec<usize> = (xs.len()..xs.len() + ys.len()).collect();
            assert_eq!(c.project(&left_idx).unwrap(), l);
            assert_eq!(c.project(&right_idx).unwrap(), r);
        }
    }
}
