//! # seq-core — the sequence data model
//!
//! Core types for the sequence-query-processing stack reproducing
//! *Sequence Query Processing* (Seshadri, Livny, Ramakrishnan, SIGMOD 1994):
//!
//! - [`value::Value`] / [`value::AttrType`] — atomic values and types;
//! - [`record::Record`] / [`schema::Schema`] — records `<A1:T1, ..., An:Tn>`;
//! - [`span::Span`] — valid position ranges with ±∞ endpoints;
//! - [`meta::SeqMeta`] — span / density / column statistics meta-data
//!   (Table 1 of the paper);
//! - [`sequence::Sequence`] — the probed/stream read interface, with
//!   in-memory [`sequence::BaseSequence`] and [`sequence::ConstantSequence`].
//!
//! Positions are `i64`. A sequence is a function from positions to records or
//! Null; empty positions are represented as `None` and never materialized.

pub mod error;
pub mod meta;
pub mod record;
pub mod schema;
pub mod sequence;
pub mod span;
pub mod value;

pub use error::{Result, SeqError};
pub use meta::{CmpOp, ColumnStats, Histogram, SeqMeta};
pub use record::Record;
pub use schema::{schema, Field, Schema};
pub use sequence::{BaseSequence, ConstantSequence, Sequence};
pub use span::{Span, NEG_INF, POS_INF};
pub use value::{AttrType, Value};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_span() -> impl Strategy<Value = Span> {
        prop_oneof![
            (-1000i64..1000, -1000i64..1000).prop_map(|(a, b)| Span::new(a.min(b), a.max(b))),
            Just(Span::empty()),
            Just(Span::all()),
            (-1000i64..1000).prop_map(|a| Span::new(a, a).unbounded_above()),
            (-1000i64..1000).prop_map(|a| Span::new(a, a).unbounded_below()),
        ]
    }

    proptest! {
        #[test]
        fn intersect_is_commutative(a in arb_span(), b in arb_span()) {
            prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        }

        #[test]
        fn intersect_is_idempotent(a in arb_span()) {
            prop_assert_eq!(a.intersect(&a), a);
        }

        #[test]
        fn intersect_is_associative(a in arb_span(), b in arb_span(), c in arb_span()) {
            prop_assert_eq!(
                a.intersect(&b).intersect(&c),
                a.intersect(&b.intersect(&c))
            );
        }

        #[test]
        fn intersection_is_subset(a in arb_span(), b in arb_span(), p in -2000i64..2000) {
            let i = a.intersect(&b);
            prop_assert_eq!(i.contains(p), a.contains(p) && b.contains(p));
        }

        #[test]
        fn hull_is_superset(a in arb_span(), b in arb_span(), p in -2000i64..2000) {
            let h = a.hull(&b);
            if a.contains(p) || b.contains(p) {
                prop_assert!(h.contains(p));
            }
        }

        #[test]
        fn shift_round_trips(a in -1000i64..1000, b in -1000i64..1000, d in -500i64..500) {
            let s = Span::new(a.min(b), a.max(b));
            prop_assert_eq!(s.shift(d).shift(-d), s);
        }

        #[test]
        fn shift_preserves_membership(a in -1000i64..1000, b in -1000i64..1000,
                                      d in -500i64..500, p in -1000i64..1000) {
            let s = Span::new(a.min(b), a.max(b));
            prop_assert_eq!(s.contains(p), s.shift(d).contains(p + d));
        }

        #[test]
        fn widen_contains_window_hits(a in -200i64..200, b in -200i64..200,
                                      lo in -20i64..20, hi in -20i64..20,
                                      i in -300i64..300) {
            let (lo, hi) = (lo.min(hi), lo.max(hi));
            let s = Span::new(a.min(b), a.max(b));
            let w = s.widen_by_window(lo, hi);
            // i is in the widened span iff the window [i+lo, i+hi] meets s.
            let hit = (lo..=hi).any(|d| s.contains(i + d));
            prop_assert_eq!(w.contains(i), hit);
        }

        #[test]
        fn value_total_cmp_is_antisymmetric(x in any::<i64>(), y in any::<i64>()) {
            let a = Value::Int(x);
            let b = Value::Int(y);
            let ab = a.total_cmp(&b).unwrap();
            let ba = b.total_cmp(&a).unwrap();
            prop_assert_eq!(ab, ba.reverse());
        }

        #[test]
        fn record_compose_project_inverse(xs in prop::collection::vec(any::<i64>(), 0..6),
                                          ys in prop::collection::vec(any::<i64>(), 0..6)) {
            let l = Record::new(xs.iter().map(|&v| Value::Int(v)).collect());
            let r = Record::new(ys.iter().map(|&v| Value::Int(v)).collect());
            let c = l.compose(&r);
            let left_idx: Vec<usize> = (0..xs.len()).collect();
            let right_idx: Vec<usize> = (xs.len()..xs.len() + ys.len()).collect();
            prop_assert_eq!(c.project(&left_idx).unwrap(), l);
            prop_assert_eq!(c.project(&right_idx).unwrap(), r);
        }
    }
}
