//! Columnar record batches for the vectorized execution path.
//!
//! A [`RecordBatch`] holds a run of (position, record) pairs decomposed into
//! a parallel position vector and one value vector per column. Batch
//! operators in `seq-exec` move whole column vectors at a time instead of
//! walking `(i64, Record)` pairs one by one, which amortizes per-record
//! dispatch and lets statistics counters fold into one atomic add per batch.
//!
//! Positions within a batch are strictly increasing, mirroring cursor order.
//!
//! # Selection vectors
//!
//! A batch may carry an optional **selection vector** (`sel`): a strictly
//! increasing list of *physical* row indices that survived a filter. When a
//! selection is present, the logical batch is the selected subset — [`len`],
//! [`first_pos`], [`row`], [`record`], [`clamp_positions`],
//! [`append_records_into`] and friends all see only the selected rows — while
//! the backing position/column vectors stay untouched (no gather copy).
//! Selection-aware consumers read through [`selection`] / [`physical_len`];
//! consumers that need dense storage call [`compact`] (a single exact-capacity
//! gather) at a costed pipeline boundary. Mutating appenders (`push_*`,
//! `extend_*`, [`parts_mut`]) require a dense batch.
//!
//! # Lazily materialized columns
//!
//! A column slot may be left **unmaterialized** (an empty vector while the
//! batch has rows): the scan layer skips decoding columns the plan never
//! reads. [`column_is_materialized`] reports the state; row materialization
//! requires every column present ([`record`] debug-asserts it, and
//! [`RowRef::value`] returns a schema error for a pruned slot).
//!
//! [`len`]: RecordBatch::len
//! [`first_pos`]: RecordBatch::first_pos
//! [`row`]: RecordBatch::row
//! [`record`]: RecordBatch::record
//! [`clamp_positions`]: RecordBatch::clamp_positions
//! [`append_records_into`]: RecordBatch::append_records_into
//! [`selection`]: RecordBatch::selection
//! [`physical_len`]: RecordBatch::physical_len
//! [`compact`]: RecordBatch::compact
//! [`parts_mut`]: RecordBatch::parts_mut
//! [`column_is_materialized`]: RecordBatch::column_is_materialized

use crate::error::{Result, SeqError};
use crate::record::Record;
use crate::value::Value;

/// Default number of rows a batch operator aims to materialize at a time.
///
/// Large enough to amortize per-batch overhead (virtual dispatch, one atomic
/// stats add, vector reallocation) to well under a nanosecond per record,
/// small enough that a batch of a few columns stays in L2 cache.
pub const DEFAULT_BATCH_SIZE: usize = 4096;

/// A columnar run of records: parallel position vector plus per-column value
/// vectors, with an optional selection vector marking surviving rows.
///
/// Without a selection, all columns have the same length as `positions`
/// (unless deliberately left unmaterialized — see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct RecordBatch {
    positions: Vec<i64>,
    columns: Vec<Vec<Value>>,
    /// Strictly increasing physical row indices; `None` means dense
    /// (every physical row is live).
    sel: Option<Vec<u32>>,
}

impl RecordBatch {
    /// An empty batch with `arity` columns.
    pub fn new(arity: usize) -> RecordBatch {
        RecordBatch::with_capacity(arity, 0)
    }

    /// An empty batch with `arity` columns and room for `cap` rows.
    pub fn with_capacity(arity: usize, cap: usize) -> RecordBatch {
        RecordBatch {
            positions: Vec::with_capacity(cap),
            columns: (0..arity).map(|_| Vec::with_capacity(cap)).collect(),
            sel: None,
        }
    }

    /// Number of logical (selected) rows.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(sel) => sel.len(),
            None => self.positions.len(),
        }
    }

    /// True when the batch holds no logical rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of physical rows backing the batch (≥ [`RecordBatch::len`]).
    #[inline]
    pub fn physical_len(&self) -> usize {
        self.positions.len()
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The selection vector, if one is attached: strictly increasing
    /// physical row indices into [`RecordBatch::positions`] and the columns.
    #[inline]
    pub fn selection(&self) -> Option<&[u32]> {
        self.sel.as_deref()
    }

    /// True when no selection vector is attached (logical == physical rows).
    #[inline]
    pub fn is_dense(&self) -> bool {
        self.sel.is_none()
    }

    /// Physical row index of logical row `i`.
    #[inline]
    fn phys(&self, i: usize) -> usize {
        match &self.sel {
            Some(sel) => sel[i] as usize,
            None => i,
        }
    }

    /// The **physical** position vector (ignores any selection). Use
    /// [`RecordBatch::position_at`] or [`RecordBatch::selection`] for the
    /// logical view.
    #[inline]
    pub fn positions(&self) -> &[i64] {
        &self.positions
    }

    /// Sequence position of logical row `i`.
    #[inline]
    pub fn position_at(&self, i: usize) -> i64 {
        self.positions[self.phys(i)]
    }

    /// The **physical** value vector of column `idx` (ignores any
    /// selection; empty when the column was pruned by the scan). Use
    /// [`RecordBatch::value_at`] for the logical view.
    #[inline]
    pub fn column(&self, idx: usize) -> Result<&[Value]> {
        self.columns
            .get(idx)
            .map(|c| c.as_slice())
            .ok_or_else(|| SeqError::Schema(format!("column index {idx} out of bounds")))
    }

    /// The value of column `col` at logical row `i`.
    #[inline]
    pub fn value_at(&self, col: usize, i: usize) -> &Value {
        &self.columns[col][self.phys(i)]
    }

    /// Logical index of the first row with position `>= lower` (`len()` when
    /// every row is below). Positions are sorted, so this is a binary search
    /// whichever view — dense or selected — the batch presents.
    pub fn lower_bound(&self, lower: i64) -> usize {
        match &self.sel {
            Some(sel) => sel.partition_point(|&i| self.positions[i as usize] < lower),
            None => self.positions.partition_point(|&p| p < lower),
        }
    }

    /// True when column `idx`'s values were decoded (false for a slot the
    /// scan pruned because no operator references it).
    #[inline]
    pub fn column_is_materialized(&self, idx: usize) -> bool {
        match self.columns.get(idx) {
            Some(c) => c.len() == self.positions.len(),
            None => false,
        }
    }

    /// All column vectors (physical layout).
    pub fn columns(&self) -> &[Vec<Value>] {
        &self.columns
    }

    /// Mutable access to the position vector and the column vectors for bulk
    /// appends (the storage layer decodes encoded page columns straight into
    /// a batch through this). Dense batches only. Callers must leave every
    /// column exactly as long as `positions` — or exactly empty, for a slot
    /// deliberately left unmaterialized; the invariant is debug-asserted by
    /// the next read accessor via [`RecordBatch::debug_check_rectangular`].
    pub fn parts_mut(&mut self) -> (&mut Vec<i64>, &mut [Vec<Value>]) {
        debug_assert!(self.sel.is_none(), "parts_mut on a selection-carrying batch");
        (&mut self.positions, &mut self.columns)
    }

    /// Debug-assert the rectangular invariant after bulk appends: every
    /// column matches the position vector's length, or is empty (pruned).
    #[inline]
    pub fn debug_check_rectangular(&self) {
        debug_assert!(
            self.columns.iter().all(|c| c.len() == self.positions.len() || c.is_empty()),
            "batch columns must match positions length (or be pruned empty)"
        );
    }

    /// Attach a selection vector of physical row indices to a dense batch.
    /// Indices must be strictly increasing and in bounds.
    pub fn set_selection(&mut self, sel: Vec<u32>) {
        debug_assert!(self.sel.is_none(), "set_selection on a selection-carrying batch");
        debug_assert!(sel.windows(2).all(|w| w[0] < w[1]), "selection must be increasing");
        debug_assert!(sel.last().is_none_or(|&i| (i as usize) < self.positions.len()));
        self.sel = Some(sel);
    }

    /// Narrow the batch to the logical rows in `keep` (strictly increasing
    /// logical indices). Composes with an existing selection without
    /// touching the physical vectors — this is how stacked filters stay
    /// zero-copy.
    pub fn select_logical(&mut self, keep: Vec<u32>) {
        debug_assert!(keep.windows(2).all(|w| w[0] < w[1]), "selection must be increasing");
        debug_assert!(keep.last().is_none_or(|&i| (i as usize) < self.len()));
        self.sel = Some(match self.sel.take() {
            Some(sel) => keep.into_iter().map(|i| sel[i as usize]).collect(),
            None => keep,
        });
    }

    /// Gather the selected rows into dense storage, dropping the selection.
    /// One exact-capacity copy per column; unmaterialized (pruned) column
    /// slots stay pruned. Returns the number of rows copied (0 when the
    /// batch was already dense — compaction is then a no-op).
    pub fn compact(&mut self) -> usize {
        let Some(sel) = self.sel.take() else { return 0 };
        let n = sel.len();
        let mut positions = Vec::with_capacity(n);
        positions.extend(sel.iter().map(|&i| self.positions[i as usize]));
        for col in &mut self.columns {
            if col.is_empty() {
                continue; // pruned slot
            }
            let mut dense = Vec::with_capacity(n);
            dense.extend(sel.iter().map(|&i| col[i as usize].clone()));
            *col = dense;
        }
        self.positions = positions;
        n
    }

    /// Position of the first logical row, if any.
    #[inline]
    pub fn first_pos(&self) -> Option<i64> {
        match &self.sel {
            Some(sel) => sel.first().map(|&i| self.positions[i as usize]),
            None => self.positions.first().copied(),
        }
    }

    /// Position of the last logical row, if any.
    #[inline]
    pub fn last_pos(&self) -> Option<i64> {
        match &self.sel {
            Some(sel) => sel.last().map(|&i| self.positions[i as usize]),
            None => self.positions.last().copied(),
        }
    }

    /// Append one row from a [`Record`]. The record's arity must match.
    pub fn push_record(&mut self, pos: i64, record: &Record) -> Result<()> {
        debug_assert!(self.sel.is_none(), "push_record on a selection-carrying batch");
        let values = record.values();
        if values.len() != self.columns.len() {
            return Err(SeqError::Schema(format!(
                "batch arity {} but record arity {}",
                self.columns.len(),
                values.len()
            )));
        }
        self.positions.push(pos);
        for (col, v) in self.columns.iter_mut().zip(values) {
            col.push(v.clone());
        }
        Ok(())
    }

    /// Append one row to a single-column batch without boxing the value.
    #[inline]
    pub fn push_single(&mut self, pos: i64, value: Value) -> Result<()> {
        debug_assert!(self.sel.is_none(), "push_single on a selection-carrying batch");
        if self.columns.len() != 1 {
            return Err(SeqError::Schema(format!(
                "push_single on a batch of arity {}",
                self.columns.len()
            )));
        }
        self.positions.push(pos);
        self.columns[0].push(value);
        Ok(())
    }

    /// Append a run of `(position, record)` entries, checking arity once and
    /// copying column-wise. This is the bulk-load path for the storage scan.
    pub fn extend_from_entries(&mut self, entries: &[(i64, Record)]) -> Result<()> {
        debug_assert!(self.sel.is_none(), "extend_from_entries on a selection-carrying batch");
        let arity = self.columns.len();
        if let Some((_, r)) = entries.iter().find(|(_, r)| r.arity() != arity) {
            return Err(SeqError::Schema(format!(
                "batch arity {arity} but record arity {}",
                r.arity()
            )));
        }
        self.positions.extend(entries.iter().map(|(p, _)| *p));
        match self.columns.as_mut_slice() {
            [col] => col.extend(entries.iter().map(|(_, r)| r.values()[0].clone())),
            cols => {
                for (_, r) in entries {
                    for (col, v) in cols.iter_mut().zip(r.values()) {
                        col.push(v.clone());
                    }
                }
            }
        }
        Ok(())
    }

    /// Append one row from owned values. The arity must match.
    pub fn push_row(&mut self, pos: i64, values: Vec<Value>) -> Result<()> {
        debug_assert!(self.sel.is_none(), "push_row on a selection-carrying batch");
        if values.len() != self.columns.len() {
            return Err(SeqError::Schema(format!(
                "batch arity {} but row arity {}",
                self.columns.len(),
                values.len()
            )));
        }
        self.positions.push(pos);
        for (col, v) in self.columns.iter_mut().zip(values) {
            col.push(v);
        }
        Ok(())
    }

    /// Append the composed rows `left[lidx[k]] ∘ right[ridx[k]]` for every
    /// `k`, column-wise (the positional-join output layout: left columns
    /// first, then right columns; positions taken from the left rows). The
    /// batch's arity must equal `left.arity() + right.arity()`, the index
    /// slices must have equal lengths, and both inputs must be dense
    /// (compacted at the join boundary). Capacity is reserved exactly once
    /// up front, so the per-row pushes never reallocate mid-batch.
    pub fn extend_joined(
        &mut self,
        left: &RecordBatch,
        lidx: &[usize],
        right: &RecordBatch,
        ridx: &[usize],
    ) -> Result<()> {
        debug_assert!(self.sel.is_none(), "extend_joined on a selection-carrying batch");
        debug_assert!(left.sel.is_none() && right.sel.is_none());
        if self.columns.len() != left.arity() + right.arity() {
            return Err(SeqError::Schema(format!(
                "batch arity {} but joined arity {}",
                self.columns.len(),
                left.arity() + right.arity()
            )));
        }
        debug_assert_eq!(lidx.len(), ridx.len());
        let n = lidx.len();
        self.positions.reserve(n);
        self.positions.extend(lidx.iter().map(|&i| left.positions[i]));
        let (lcols, rcols) = self.columns.split_at_mut(left.arity());
        for (src, dst) in left.columns.iter().zip(lcols) {
            dst.reserve(n);
            dst.extend(lidx.iter().map(|&i| src[i].clone()));
        }
        for (src, dst) in right.columns.iter().zip(rcols) {
            dst.reserve(n);
            dst.extend(ridx.iter().map(|&i| src[i].clone()));
        }
        Ok(())
    }

    /// A borrowed view of logical row `idx`.
    #[inline]
    pub fn row(&self, idx: usize) -> RowRef<'_> {
        debug_assert!(idx < self.len());
        RowRef { batch: self, row: self.phys(idx) }
    }

    /// Materialize logical row `idx` as an owned `(position, Record)` pair.
    /// Every column must be materialized.
    #[inline]
    pub fn record(&self, idx: usize) -> (i64, Record) {
        let idx = self.phys(idx);
        debug_assert!(
            self.columns.iter().all(|c| idx < c.len()),
            "record() on a batch with pruned columns"
        );
        // Build the `Arc<[Value]>` backing store in one allocation; the
        // one- and two-column shapes (every base schema in the benchmarks,
        // and all aggregate outputs) get monomorphic paths.
        let values: std::sync::Arc<[Value]> = match self.columns.as_slice() {
            [c] => std::sync::Arc::from([c[idx].clone()]),
            [c0, c1] => std::sync::Arc::from([c0[idx].clone(), c1[idx].clone()]),
            cols => cols.iter().map(|c| c[idx].clone()).collect(),
        };
        (self.positions[idx], Record::from_shared(values))
    }

    /// Iterate borrowed logical rows in position order.
    pub fn rows(&self) -> impl Iterator<Item = RowRef<'_>> {
        (0..self.len()).map(move |i| self.row(i))
    }

    /// Keep only the rows whose index is set in `keep` (a boolean mask of
    /// the same length as the dense batch). Order is preserved.
    pub fn filter(&self, keep: &[bool]) -> RecordBatch {
        debug_assert!(self.sel.is_none(), "filter on a selection-carrying batch");
        debug_assert_eq!(keep.len(), self.len());
        let cap = keep.iter().filter(|&&k| k).count();
        let mut out = RecordBatch::with_capacity(self.arity(), cap);
        out.positions.extend(self.positions.iter().zip(keep).filter(|(_, &k)| k).map(|(&p, _)| p));
        for (src, dst) in self.columns.iter().zip(&mut out.columns) {
            dst.extend(src.iter().zip(keep).filter(|(_, &k)| k).map(|(v, _)| v.clone()));
        }
        out
    }

    /// A new dense batch holding the logical rows at `indices`, in the
    /// given order. Indices must be in bounds; the selection path passes
    /// ascending runs. Capacity is reserved exactly up front
    /// (`with_capacity(indices.len())`), so the column extends never
    /// reallocate mid-gather.
    pub fn gather(&self, indices: &[usize]) -> RecordBatch {
        let mut out = RecordBatch::with_capacity(self.arity(), indices.len());
        match &self.sel {
            None => {
                out.positions.extend(indices.iter().map(|&i| self.positions[i]));
                for (src, dst) in self.columns.iter().zip(&mut out.columns) {
                    dst.extend(indices.iter().map(|&i| src[i].clone()));
                }
            }
            Some(sel) => {
                out.positions.extend(indices.iter().map(|&i| self.positions[sel[i] as usize]));
                for (src, dst) in self.columns.iter().zip(&mut out.columns) {
                    dst.extend(indices.iter().map(|&i| src[sel[i] as usize].clone()));
                }
            }
        }
        out
    }

    /// Project onto `indices`, consuming the batch. The first use of a
    /// column moves its vector; repeats clone. Any selection is preserved
    /// (projection touches column slots, not rows).
    pub fn project(self, indices: &[usize]) -> Result<RecordBatch> {
        let mut source: Vec<Option<Vec<Value>>> = self.columns.into_iter().map(Some).collect();
        let mut columns = Vec::with_capacity(indices.len());
        for &i in indices {
            let slot = source
                .get_mut(i)
                .ok_or_else(|| SeqError::Schema(format!("column index {i} out of bounds")))?;
            columns.push(match slot.take() {
                Some(col) => {
                    *slot = None;
                    col
                }
                // Column already moved by an earlier index: rebuild by clone.
                None => columns
                    .iter()
                    .zip(indices)
                    .find(|(_, &j)| j == i)
                    .map(|(c, _): (&Vec<Value>, _)| c.clone())
                    .expect("repeated index was materialized earlier"),
            });
        }
        Ok(RecordBatch { positions: self.positions, columns, sel: self.sel })
    }

    /// Shift every position by `delta` (wrapping like `Span::shift`).
    /// Physical positions shift, so the logical view shifts with them.
    pub fn shift_positions(&mut self, delta: i64) {
        for p in &mut self.positions {
            *p = p.saturating_add(delta);
        }
    }

    /// Drop logical rows at positions outside `[lower, upper]`, preserving
    /// order. Positions are sorted, so this truncates both ends — in place
    /// on a dense batch, and purely on the selection vector (no column
    /// traffic) when one is attached.
    pub fn clamp_positions(&mut self, lower: i64, upper: i64) {
        if let Some(sel) = &mut self.sel {
            let start = sel.partition_point(|&i| self.positions[i as usize] < lower);
            let end = sel.partition_point(|&i| self.positions[i as usize] <= upper);
            if start > 0 || end < sel.len() {
                sel.truncate(end);
                sel.drain(..start);
            }
            return;
        }
        let start = self.positions.partition_point(|&p| p < lower);
        let end = self.positions.partition_point(|&p| p <= upper);
        if start == 0 && end == self.len() {
            return;
        }
        self.positions.truncate(end);
        self.positions.drain(..start);
        for col in &mut self.columns {
            if col.is_empty() {
                continue; // pruned slot
            }
            col.truncate(end);
            col.drain(..start);
        }
    }

    /// Materialize every logical row as `(position, Record)` pairs.
    pub fn to_records(&self) -> Vec<(i64, Record)> {
        (0..self.len()).map(|i| self.record(i)).collect()
    }

    /// Append every logical row to `out` as `(position, Record)` pairs.
    ///
    /// All rows of the batch are materialized into one shared row-major
    /// buffer: one allocation per batch instead of one per record.
    pub fn append_records_into(&self, out: &mut Vec<(i64, Record)>) {
        let (n, arity) = (self.len(), self.arity());
        let shared: std::sync::Arc<[Value]> = match (self.columns.as_slice(), &self.sel) {
            // Single column: the row-major layout equals the column itself, so
            // collect straight into the shared allocation.
            ([col], None) => col.iter().cloned().collect(),
            ([col], Some(sel)) => sel.iter().map(|&i| col[i as usize].clone()).collect(),
            (cols, _) => {
                let mut flat = Vec::with_capacity(n * arity);
                for i in 0..n {
                    let p = self.phys(i);
                    for col in cols {
                        flat.push(col[p].clone());
                    }
                }
                flat.into()
            }
        };
        out.reserve(n);
        out.extend((0..n).map(|i| {
            (self.positions[self.phys(i)], Record::from_shared_slice(&shared, i * arity, arity))
        }));
    }
}

/// A borrowed view of one row of a [`RecordBatch`].
#[derive(Debug, Clone, Copy)]
pub struct RowRef<'a> {
    batch: &'a RecordBatch,
    /// Physical row index (already resolved through any selection).
    row: usize,
}

impl RowRef<'_> {
    /// The row's sequence position.
    #[inline]
    pub fn position(&self) -> i64 {
        self.batch.positions[self.row]
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.batch.arity()
    }

    /// The value in column `idx`. Errors when the column is out of bounds
    /// or was pruned by the scan (never decoded).
    #[inline]
    pub fn value(&self, idx: usize) -> Result<&Value> {
        match self.batch.columns.get(idx) {
            Some(c) => c.get(self.row).ok_or_else(|| {
                SeqError::Schema(format!("column {idx} not materialized (pruned by scan)"))
            }),
            None => Err(SeqError::Schema(format!("column index {idx} out of bounds"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_of(rows: &[(i64, &[i64])]) -> RecordBatch {
        let arity = rows.first().map(|(_, vs)| vs.len()).unwrap_or(0);
        let mut b = RecordBatch::new(arity);
        for (p, vs) in rows {
            b.push_row(*p, vs.iter().map(|&v| Value::Int(v)).collect()).unwrap();
        }
        b
    }

    #[test]
    fn push_and_materialize_round_trip() {
        let b = batch_of(&[(1, &[10, 100]), (3, &[30, 300])]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.arity(), 2);
        assert_eq!(b.positions(), &[1, 3]);
        let (p, r) = b.record(1);
        assert_eq!(p, 3);
        assert_eq!(r.values(), &[Value::Int(30), Value::Int(300)]);
        assert_eq!(b.row(0).value(1).unwrap(), &Value::Int(100));
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let mut b = RecordBatch::new(2);
        assert!(b.push_row(1, vec![Value::Int(1)]).is_err());
        assert!(b.push_record(1, &Record::new(vec![Value::Int(1)])).is_err());
    }

    #[test]
    fn filter_keeps_selected_rows_in_order() {
        let b = batch_of(&[(1, &[1]), (2, &[2]), (5, &[5]), (9, &[9])]);
        let f = b.filter(&[true, false, false, true]);
        assert_eq!(f.positions(), &[1, 9]);
        assert_eq!(f.column(0).unwrap(), &[Value::Int(1), Value::Int(9)]);
    }

    #[test]
    fn project_moves_and_duplicates_columns() {
        let b = batch_of(&[(1, &[10, 100]), (2, &[20, 200])]);
        let p = b.project(&[1, 1, 0]).unwrap();
        assert_eq!(p.arity(), 3);
        assert_eq!(p.column(0).unwrap(), &[Value::Int(100), Value::Int(200)]);
        assert_eq!(p.column(1).unwrap(), &[Value::Int(100), Value::Int(200)]);
        assert_eq!(p.column(2).unwrap(), &[Value::Int(10), Value::Int(20)]);
        assert!(p.clone().project(&[7]).is_err());
    }

    #[test]
    fn extend_joined_composes_columns_left_then_right() {
        let l = batch_of(&[(1, &[10]), (3, &[30]), (5, &[50])]);
        let r = batch_of(&[(3, &[300, 3000]), (5, &[500, 5000])]);
        let mut out = RecordBatch::new(3);
        out.extend_joined(&l, &[1, 2], &r, &[0, 1]).unwrap();
        assert_eq!(out.positions(), &[3, 5]);
        assert_eq!(out.column(0).unwrap(), &[Value::Int(30), Value::Int(50)]);
        assert_eq!(out.column(1).unwrap(), &[Value::Int(300), Value::Int(500)]);
        assert_eq!(out.column(2).unwrap(), &[Value::Int(3000), Value::Int(5000)]);
        let mut bad = RecordBatch::new(2);
        assert!(bad.extend_joined(&l, &[0], &r, &[0]).is_err());
    }

    #[test]
    fn clamp_truncates_both_ends() {
        let mut b = batch_of(&[(1, &[1]), (3, &[3]), (5, &[5]), (7, &[7])]);
        b.clamp_positions(2, 5);
        assert_eq!(b.positions(), &[3, 5]);
        assert_eq!(b.column(0).unwrap(), &[Value::Int(3), Value::Int(5)]);
        b.clamp_positions(10, 20);
        assert!(b.is_empty());
    }

    #[test]
    fn shift_moves_positions() {
        let mut b = batch_of(&[(1, &[1]), (4, &[4])]);
        b.shift_positions(-3);
        assert_eq!(b.positions(), &[-2, 1]);
    }

    #[test]
    fn selection_narrows_logical_view_without_copying() {
        let mut b = batch_of(&[(1, &[10]), (2, &[20]), (5, &[50]), (9, &[90])]);
        b.set_selection(vec![1, 3]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.physical_len(), 4);
        assert_eq!(b.first_pos(), Some(2));
        assert_eq!(b.last_pos(), Some(9));
        assert_eq!(b.position_at(1), 9);
        assert_eq!(b.value_at(0, 0), &Value::Int(20));
        let (p, r) = b.record(1);
        assert_eq!((p, r.values()[0].clone()), (9, Value::Int(90)));
        // Physical views ignore the selection by contract.
        assert_eq!(b.positions().len(), 4);
        assert_eq!(b.column(0).unwrap().len(), 4);
    }

    #[test]
    fn select_logical_composes_with_existing_selection() {
        let mut b = batch_of(&[(1, &[1]), (2, &[2]), (3, &[3]), (4, &[4]), (5, &[5])]);
        b.set_selection(vec![0, 2, 3, 4]); // positions 1,3,4,5
        b.select_logical(vec![1, 3]); // logical rows 1 and 3 → physical 2, 4
        assert_eq!(b.selection(), Some(&[2u32, 4][..]));
        assert_eq!(b.to_records().iter().map(|(p, _)| *p).collect::<Vec<_>>(), vec![3, 5]);
    }

    #[test]
    fn clamp_on_selection_trims_only_the_selection() {
        let mut b = batch_of(&[(1, &[1]), (3, &[3]), (5, &[5]), (7, &[7]), (9, &[9])]);
        b.set_selection(vec![0, 1, 2, 3, 4]);
        b.clamp_positions(3, 7);
        assert_eq!(b.selection(), Some(&[1u32, 2, 3][..]));
        assert_eq!(b.physical_len(), 5, "physical rows untouched");
        assert_eq!(b.first_pos(), Some(3));
        assert_eq!(b.last_pos(), Some(7));
    }

    #[test]
    fn compact_gathers_exactly_once_with_exact_capacity() {
        let mut b = batch_of(&[(1, &[10, 100]), (2, &[20, 200]), (3, &[30, 300])]);
        let dense_noop = b.compact();
        assert_eq!(dense_noop, 0);
        b.set_selection(vec![0, 2]);
        let copied = b.compact();
        assert_eq!(copied, 2);
        assert!(b.is_dense());
        assert_eq!(b.positions(), &[1, 3]);
        assert_eq!(b.column(0).unwrap(), &[Value::Int(10), Value::Int(30)]);
        assert_eq!(b.column(1).unwrap(), &[Value::Int(100), Value::Int(300)]);
    }

    #[test]
    fn pruned_columns_survive_compact_and_error_on_read() {
        let mut b = RecordBatch::new(2);
        {
            let (pos, cols) = b.parts_mut();
            pos.extend([1i64, 2, 3]);
            cols[0].extend([Value::Int(10), Value::Int(20), Value::Int(30)]);
            // cols[1] left unmaterialized (pruned by the scan).
        }
        b.debug_check_rectangular();
        assert!(b.column_is_materialized(0));
        assert!(!b.column_is_materialized(1));
        assert!(b.row(1).value(1).is_err());
        assert_eq!(b.row(1).value(0).unwrap(), &Value::Int(20));
        b.set_selection(vec![0, 2]);
        b.compact();
        assert_eq!(b.column(0).unwrap().len(), 2);
        assert_eq!(b.column(1).unwrap().len(), 0, "pruned slot stays pruned");
    }

    #[test]
    fn append_records_into_sees_only_selected_rows() {
        let mut b = batch_of(&[(1, &[10, 100]), (2, &[20, 200]), (3, &[30, 300])]);
        b.select_logical(vec![0, 2]);
        let mut out = Vec::new();
        b.append_records_into(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 1);
        assert_eq!(out[1].0, 3);
        assert_eq!(out[1].1.values(), &[Value::Int(30), Value::Int(300)]);
        // Single-column fast path.
        let mut s = batch_of(&[(1, &[10]), (2, &[20]), (3, &[30])]);
        s.select_logical(vec![1]);
        let mut out = Vec::new();
        s.append_records_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 2);
        assert_eq!(out[0].1.values(), &[Value::Int(20)]);
    }

    #[test]
    fn gather_resolves_logical_indices_through_selection() {
        let mut b = batch_of(&[(1, &[1]), (2, &[2]), (3, &[3]), (4, &[4])]);
        b.set_selection(vec![1, 2, 3]);
        let g = b.gather(&[0, 2]);
        assert!(g.is_dense());
        assert_eq!(g.positions(), &[2, 4]);
        assert_eq!(g.column(0).unwrap(), &[Value::Int(2), Value::Int(4)]);
    }
}
