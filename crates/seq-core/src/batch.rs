//! Columnar record batches for the vectorized execution path.
//!
//! A [`RecordBatch`] holds a run of (position, record) pairs decomposed into
//! a parallel position vector and one value vector per column. Batch
//! operators in `seq-exec` move whole column vectors at a time instead of
//! walking `(i64, Record)` pairs one by one, which amortizes per-record
//! dispatch and lets statistics counters fold into one atomic add per batch.
//!
//! Positions within a batch are strictly increasing, mirroring cursor order.

use crate::error::{Result, SeqError};
use crate::record::Record;
use crate::value::Value;

/// Default number of rows a batch operator aims to materialize at a time.
///
/// Large enough to amortize per-batch overhead (virtual dispatch, one atomic
/// stats add, vector reallocation) to well under a nanosecond per record,
/// small enough that a batch of a few columns stays in L2 cache.
pub const DEFAULT_BATCH_SIZE: usize = 4096;

/// A columnar run of records: parallel position vector plus per-column value
/// vectors. All columns have the same length as `positions`.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordBatch {
    positions: Vec<i64>,
    columns: Vec<Vec<Value>>,
}

impl RecordBatch {
    /// An empty batch with `arity` columns.
    pub fn new(arity: usize) -> RecordBatch {
        RecordBatch::with_capacity(arity, 0)
    }

    /// An empty batch with `arity` columns and room for `cap` rows.
    pub fn with_capacity(arity: usize, cap: usize) -> RecordBatch {
        RecordBatch {
            positions: Vec::with_capacity(cap),
            columns: (0..arity).map(|_| Vec::with_capacity(cap)).collect(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the batch holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The position vector.
    #[inline]
    pub fn positions(&self) -> &[i64] {
        &self.positions
    }

    /// The value vector of column `idx`.
    #[inline]
    pub fn column(&self, idx: usize) -> Result<&[Value]> {
        self.columns
            .get(idx)
            .map(|c| c.as_slice())
            .ok_or_else(|| SeqError::Schema(format!("column index {idx} out of bounds")))
    }

    /// All column vectors.
    pub fn columns(&self) -> &[Vec<Value>] {
        &self.columns
    }

    /// Mutable access to the position vector and the column vectors for bulk
    /// appends (the storage layer decodes encoded page columns straight into
    /// a batch through this). Callers must leave every column exactly as
    /// long as `positions` — the rectangular invariant is debug-asserted by
    /// the next read accessor via [`RecordBatch::debug_check_rectangular`].
    pub fn parts_mut(&mut self) -> (&mut Vec<i64>, &mut [Vec<Value>]) {
        (&mut self.positions, &mut self.columns)
    }

    /// Debug-assert the rectangular invariant after bulk appends.
    #[inline]
    pub fn debug_check_rectangular(&self) {
        debug_assert!(
            self.columns.iter().all(|c| c.len() == self.positions.len()),
            "batch columns must match positions length"
        );
    }

    /// Position of the first row, if any.
    #[inline]
    pub fn first_pos(&self) -> Option<i64> {
        self.positions.first().copied()
    }

    /// Position of the last row, if any.
    #[inline]
    pub fn last_pos(&self) -> Option<i64> {
        self.positions.last().copied()
    }

    /// Append one row from a [`Record`]. The record's arity must match.
    pub fn push_record(&mut self, pos: i64, record: &Record) -> Result<()> {
        let values = record.values();
        if values.len() != self.columns.len() {
            return Err(SeqError::Schema(format!(
                "batch arity {} but record arity {}",
                self.columns.len(),
                values.len()
            )));
        }
        self.positions.push(pos);
        for (col, v) in self.columns.iter_mut().zip(values) {
            col.push(v.clone());
        }
        Ok(())
    }

    /// Append one row to a single-column batch without boxing the value.
    #[inline]
    pub fn push_single(&mut self, pos: i64, value: Value) -> Result<()> {
        if self.columns.len() != 1 {
            return Err(SeqError::Schema(format!(
                "push_single on a batch of arity {}",
                self.columns.len()
            )));
        }
        self.positions.push(pos);
        self.columns[0].push(value);
        Ok(())
    }

    /// Append a run of `(position, record)` entries, checking arity once and
    /// copying column-wise. This is the bulk-load path for the storage scan.
    pub fn extend_from_entries(&mut self, entries: &[(i64, Record)]) -> Result<()> {
        let arity = self.columns.len();
        if let Some((_, r)) = entries.iter().find(|(_, r)| r.arity() != arity) {
            return Err(SeqError::Schema(format!(
                "batch arity {arity} but record arity {}",
                r.arity()
            )));
        }
        self.positions.extend(entries.iter().map(|(p, _)| *p));
        match self.columns.as_mut_slice() {
            [col] => col.extend(entries.iter().map(|(_, r)| r.values()[0].clone())),
            cols => {
                for (_, r) in entries {
                    for (col, v) in cols.iter_mut().zip(r.values()) {
                        col.push(v.clone());
                    }
                }
            }
        }
        Ok(())
    }

    /// Append one row from owned values. The arity must match.
    pub fn push_row(&mut self, pos: i64, values: Vec<Value>) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(SeqError::Schema(format!(
                "batch arity {} but row arity {}",
                self.columns.len(),
                values.len()
            )));
        }
        self.positions.push(pos);
        for (col, v) in self.columns.iter_mut().zip(values) {
            col.push(v);
        }
        Ok(())
    }

    /// Append the composed rows `left[lidx[k]] ∘ right[ridx[k]]` for every
    /// `k`, column-wise (the positional-join output layout: left columns
    /// first, then right columns; positions taken from the left rows). The
    /// batch's arity must equal `left.arity() + right.arity()` and the index
    /// slices must have equal lengths.
    pub fn extend_joined(
        &mut self,
        left: &RecordBatch,
        lidx: &[usize],
        right: &RecordBatch,
        ridx: &[usize],
    ) -> Result<()> {
        if self.columns.len() != left.arity() + right.arity() {
            return Err(SeqError::Schema(format!(
                "batch arity {} but joined arity {}",
                self.columns.len(),
                left.arity() + right.arity()
            )));
        }
        debug_assert_eq!(lidx.len(), ridx.len());
        self.positions.extend(lidx.iter().map(|&i| left.positions[i]));
        let (lcols, rcols) = self.columns.split_at_mut(left.arity());
        for (src, dst) in left.columns.iter().zip(lcols) {
            dst.extend(lidx.iter().map(|&i| src[i].clone()));
        }
        for (src, dst) in right.columns.iter().zip(rcols) {
            dst.extend(ridx.iter().map(|&i| src[i].clone()));
        }
        Ok(())
    }

    /// A borrowed view of row `idx`.
    #[inline]
    pub fn row(&self, idx: usize) -> RowRef<'_> {
        debug_assert!(idx < self.len());
        RowRef { batch: self, row: idx }
    }

    /// Materialize row `idx` as an owned `(position, Record)` pair.
    #[inline]
    pub fn record(&self, idx: usize) -> (i64, Record) {
        // Build the `Arc<[Value]>` backing store in one allocation; the
        // one- and two-column shapes (every base schema in the benchmarks,
        // and all aggregate outputs) get monomorphic paths.
        let values: std::sync::Arc<[Value]> = match self.columns.as_slice() {
            [c] => std::sync::Arc::from([c[idx].clone()]),
            [c0, c1] => std::sync::Arc::from([c0[idx].clone(), c1[idx].clone()]),
            cols => cols.iter().map(|c| c[idx].clone()).collect(),
        };
        (self.positions[idx], Record::from_shared(values))
    }

    /// Iterate borrowed rows in position order.
    pub fn rows(&self) -> impl Iterator<Item = RowRef<'_>> {
        (0..self.len()).map(move |i| self.row(i))
    }

    /// Keep only the rows whose index is set in `keep` (a selection vector
    /// of the same length as the batch). Order is preserved.
    pub fn filter(&self, keep: &[bool]) -> RecordBatch {
        debug_assert_eq!(keep.len(), self.len());
        let cap = keep.iter().filter(|&&k| k).count();
        let mut out = RecordBatch::with_capacity(self.arity(), cap);
        out.positions.extend(self.positions.iter().zip(keep).filter(|(_, &k)| k).map(|(&p, _)| p));
        for (src, dst) in self.columns.iter().zip(&mut out.columns) {
            dst.extend(src.iter().zip(keep).filter(|(_, &k)| k).map(|(v, _)| v.clone()));
        }
        out
    }

    /// A new batch holding the rows at `indices`, in the given order.
    /// Indices must be in bounds; the selection path passes ascending runs.
    pub fn gather(&self, indices: &[usize]) -> RecordBatch {
        let mut out = RecordBatch::with_capacity(self.arity(), indices.len());
        out.positions.extend(indices.iter().map(|&i| self.positions[i]));
        for (src, dst) in self.columns.iter().zip(&mut out.columns) {
            dst.extend(indices.iter().map(|&i| src[i].clone()));
        }
        out
    }

    /// Project onto `indices`, consuming the batch. The first use of a
    /// column moves its vector; repeats clone.
    pub fn project(self, indices: &[usize]) -> Result<RecordBatch> {
        let mut source: Vec<Option<Vec<Value>>> = self.columns.into_iter().map(Some).collect();
        let mut columns = Vec::with_capacity(indices.len());
        for &i in indices {
            let slot = source
                .get_mut(i)
                .ok_or_else(|| SeqError::Schema(format!("column index {i} out of bounds")))?;
            columns.push(match slot.take() {
                Some(col) => {
                    *slot = None;
                    col
                }
                // Column already moved by an earlier index: rebuild by clone.
                None => columns
                    .iter()
                    .zip(indices)
                    .find(|(_, &j)| j == i)
                    .map(|(c, _): (&Vec<Value>, _)| c.clone())
                    .expect("repeated index was materialized earlier"),
            });
        }
        Ok(RecordBatch { positions: self.positions, columns })
    }

    /// Shift every position by `delta` (wrapping like `Span::shift`).
    pub fn shift_positions(&mut self, delta: i64) {
        for p in &mut self.positions {
            *p = p.saturating_add(delta);
        }
    }

    /// Drop rows at positions outside `[lower, upper]`, preserving order.
    /// Positions are sorted, so this truncates both ends in place.
    pub fn clamp_positions(&mut self, lower: i64, upper: i64) {
        let start = self.positions.partition_point(|&p| p < lower);
        let end = self.positions.partition_point(|&p| p <= upper);
        if start == 0 && end == self.len() {
            return;
        }
        self.positions.truncate(end);
        self.positions.drain(..start);
        for col in &mut self.columns {
            col.truncate(end);
            col.drain(..start);
        }
    }

    /// Materialize every row as `(position, Record)` pairs.
    pub fn to_records(&self) -> Vec<(i64, Record)> {
        (0..self.len()).map(|i| self.record(i)).collect()
    }

    /// Append every row to `out` as `(position, Record)` pairs.
    ///
    /// All rows of the batch are materialized into one shared row-major
    /// buffer: one allocation per batch instead of one per record.
    pub fn append_records_into(&self, out: &mut Vec<(i64, Record)>) {
        let (n, arity) = (self.len(), self.arity());
        let shared: std::sync::Arc<[Value]> = match self.columns.as_slice() {
            // Single column: the row-major layout equals the column itself, so
            // collect straight into the shared allocation.
            [col] => col.iter().cloned().collect(),
            cols => {
                let mut flat = Vec::with_capacity(n * arity);
                for i in 0..n {
                    for col in cols {
                        flat.push(col[i].clone());
                    }
                }
                flat.into()
            }
        };
        out.reserve(n);
        out.extend(
            (0..n)
                .map(|i| (self.positions[i], Record::from_shared_slice(&shared, i * arity, arity))),
        );
    }
}

/// A borrowed view of one row of a [`RecordBatch`].
#[derive(Debug, Clone, Copy)]
pub struct RowRef<'a> {
    batch: &'a RecordBatch,
    row: usize,
}

impl RowRef<'_> {
    /// The row's sequence position.
    #[inline]
    pub fn position(&self) -> i64 {
        self.batch.positions[self.row]
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.batch.arity()
    }

    /// The value in column `idx`.
    #[inline]
    pub fn value(&self, idx: usize) -> Result<&Value> {
        self.batch
            .columns
            .get(idx)
            .map(|c| &c[self.row])
            .ok_or_else(|| SeqError::Schema(format!("column index {idx} out of bounds")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_of(rows: &[(i64, &[i64])]) -> RecordBatch {
        let arity = rows.first().map(|(_, vs)| vs.len()).unwrap_or(0);
        let mut b = RecordBatch::new(arity);
        for (p, vs) in rows {
            b.push_row(*p, vs.iter().map(|&v| Value::Int(v)).collect()).unwrap();
        }
        b
    }

    #[test]
    fn push_and_materialize_round_trip() {
        let b = batch_of(&[(1, &[10, 100]), (3, &[30, 300])]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.arity(), 2);
        assert_eq!(b.positions(), &[1, 3]);
        let (p, r) = b.record(1);
        assert_eq!(p, 3);
        assert_eq!(r.values(), &[Value::Int(30), Value::Int(300)]);
        assert_eq!(b.row(0).value(1).unwrap(), &Value::Int(100));
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let mut b = RecordBatch::new(2);
        assert!(b.push_row(1, vec![Value::Int(1)]).is_err());
        assert!(b.push_record(1, &Record::new(vec![Value::Int(1)])).is_err());
    }

    #[test]
    fn filter_keeps_selected_rows_in_order() {
        let b = batch_of(&[(1, &[1]), (2, &[2]), (5, &[5]), (9, &[9])]);
        let f = b.filter(&[true, false, false, true]);
        assert_eq!(f.positions(), &[1, 9]);
        assert_eq!(f.column(0).unwrap(), &[Value::Int(1), Value::Int(9)]);
    }

    #[test]
    fn project_moves_and_duplicates_columns() {
        let b = batch_of(&[(1, &[10, 100]), (2, &[20, 200])]);
        let p = b.project(&[1, 1, 0]).unwrap();
        assert_eq!(p.arity(), 3);
        assert_eq!(p.column(0).unwrap(), &[Value::Int(100), Value::Int(200)]);
        assert_eq!(p.column(1).unwrap(), &[Value::Int(100), Value::Int(200)]);
        assert_eq!(p.column(2).unwrap(), &[Value::Int(10), Value::Int(20)]);
        assert!(p.clone().project(&[7]).is_err());
    }

    #[test]
    fn extend_joined_composes_columns_left_then_right() {
        let l = batch_of(&[(1, &[10]), (3, &[30]), (5, &[50])]);
        let r = batch_of(&[(3, &[300, 3000]), (5, &[500, 5000])]);
        let mut out = RecordBatch::new(3);
        out.extend_joined(&l, &[1, 2], &r, &[0, 1]).unwrap();
        assert_eq!(out.positions(), &[3, 5]);
        assert_eq!(out.column(0).unwrap(), &[Value::Int(30), Value::Int(50)]);
        assert_eq!(out.column(1).unwrap(), &[Value::Int(300), Value::Int(500)]);
        assert_eq!(out.column(2).unwrap(), &[Value::Int(3000), Value::Int(5000)]);
        let mut bad = RecordBatch::new(2);
        assert!(bad.extend_joined(&l, &[0], &r, &[0]).is_err());
    }

    #[test]
    fn clamp_truncates_both_ends() {
        let mut b = batch_of(&[(1, &[1]), (3, &[3]), (5, &[5]), (7, &[7])]);
        b.clamp_positions(2, 5);
        assert_eq!(b.positions(), &[3, 5]);
        assert_eq!(b.column(0).unwrap(), &[Value::Int(3), Value::Int(5)]);
        b.clamp_positions(10, 20);
        assert!(b.is_empty());
    }

    #[test]
    fn shift_moves_positions() {
        let mut b = batch_of(&[(1, &[1]), (4, &[4])]);
        b.shift_positions(-3);
        assert_eq!(b.positions(), &[-2, 1]);
    }
}
