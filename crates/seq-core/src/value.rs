//! Atomic values and their types.
//!
//! The paper's record schemas are tuples of "indivisible atomic types of
//! fixed size" (§2). We support 64-bit integers, 64-bit floats, booleans,
//! and interned strings (strings are not fixed-size on disk, but the model
//! only requires that they be atomic — the storage layer treats them as
//! opaque payloads).

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::error::{Result, SeqError};

/// The type of an atomic value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// Boolean.
    Bool,
    /// Interned UTF-8 string.
    Str,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttrType::Int => "INT",
            AttrType::Float => "FLOAT",
            AttrType::Bool => "BOOL",
            AttrType::Str => "STR",
        };
        f.write_str(s)
    }
}

impl AttrType {
    /// Whether values of this type participate in arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, AttrType::Int | AttrType::Float)
    }
}

/// An atomic value stored in a record attribute.
///
/// Strings are reference-counted so that records can be cloned cheaply into
/// operator caches (§3.4–3.5 rely on caching records).
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE-754 float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Interned UTF-8 string (cheap to clone).
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The runtime type of this value.
    pub fn attr_type(&self) -> AttrType {
        match self {
            Value::Int(_) => AttrType::Int,
            Value::Float(_) => AttrType::Float,
            Value::Bool(_) => AttrType::Bool,
            Value::Str(_) => AttrType::Str,
        }
    }

    /// Interpret a numeric value as `f64`, for aggregate arithmetic.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            other => {
                Err(SeqError::Type(format!("expected numeric value, found {}", other.attr_type())))
            }
        }
    }

    /// Interpret the value as an integer.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => {
                Err(SeqError::Type(format!("expected INT value, found {}", other.attr_type())))
            }
        }
    }

    /// Interpret the value as a boolean.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => {
                Err(SeqError::Type(format!("expected BOOL value, found {}", other.attr_type())))
            }
        }
    }

    /// Interpret the value as a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => {
                Err(SeqError::Type(format!("expected STR value, found {}", other.attr_type())))
            }
        }
    }

    /// Total-order comparison between two values of the same type.
    ///
    /// Floats are compared with a total order in which NaN sorts greatest;
    /// this gives MIN/MAX aggregates deterministic results on any input.
    /// Comparing values of different types is a type error, except that INT
    /// and FLOAT compare numerically.
    pub fn total_cmp(&self, other: &Value) -> Result<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => Ok(a.total_cmp(b)),
            (Value::Int(a), Value::Float(b)) => Ok((*a as f64).total_cmp(b)),
            (Value::Float(a), Value::Int(b)) => Ok(a.total_cmp(&(*b as f64))),
            (Value::Bool(a), Value::Bool(b)) => Ok(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Ok(a.as_ref().cmp(b.as_ref())),
            (a, b) => Err(SeqError::Type(format!(
                "cannot compare {} with {}",
                a.attr_type(),
                b.attr_type()
            ))),
        }
    }

    /// Equality usable in predicates; delegates to [`Value::total_cmp`].
    pub fn sql_eq(&self, other: &Value) -> Result<bool> {
        Ok(self.total_cmp(other)? == Ordering::Equal)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other).map(|o| o == Ordering::Equal).unwrap_or(false)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_of_each_variant() {
        assert_eq!(Value::Int(1).attr_type(), AttrType::Int);
        assert_eq!(Value::Float(1.0).attr_type(), AttrType::Float);
        assert_eq!(Value::Bool(true).attr_type(), AttrType::Bool);
        assert_eq!(Value::str("x").attr_type(), AttrType::Str);
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(Value::Int(3).as_f64().unwrap(), 3.0);
        assert_eq!(Value::Float(2.5).as_f64().unwrap(), 2.5);
        assert!(Value::str("x").as_f64().is_err());
        assert!(Value::Bool(true).as_f64().is_err());
    }

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)).unwrap(), Ordering::Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(3)).unwrap(), Ordering::Equal);
    }

    #[test]
    fn incompatible_comparison_is_type_error() {
        assert!(Value::Int(1).total_cmp(&Value::str("1")).is_err());
        assert!(Value::Bool(true).total_cmp(&Value::Int(1)).is_err());
    }

    #[test]
    fn nan_sorts_greatest() {
        let nan = Value::Float(f64::NAN);
        let one = Value::Float(1.0);
        assert_eq!(one.total_cmp(&nan).unwrap(), Ordering::Less);
        assert_eq!(nan.total_cmp(&nan).unwrap(), Ordering::Equal);
    }

    #[test]
    fn string_values_are_shared() {
        let a = Value::str("hello");
        let b = a.clone();
        match (&a, &b) {
            (Value::Str(x), Value::Str(y)) => assert!(Arc::ptr_eq(x, y)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::str("a").to_string(), "\"a\"");
    }

    #[test]
    fn partial_eq_uses_numeric_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_ne!(Value::Int(2), Value::str("2"));
    }
}
