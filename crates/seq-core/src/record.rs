//! Records: immutable tuples of atomic values.
//!
//! The model (§2) associates every position of a sequence with a record or
//! with the distinguished Null record. We never materialize Null records —
//! absence is represented as `Option<Record>` (footnote 2 of the paper).

use std::fmt;
use std::sync::Arc;

use crate::error::{Result, SeqError};
use crate::schema::Schema;
use crate::value::Value;

/// An immutable record. Cloning is O(1) (shared backing storage), which makes
/// records cheap to hold in operator caches (§3.4–3.5).
///
/// A record is a window `[start, start+len)` into its backing store, so many
/// records can share one allocation — the vectorized path materializes a
/// whole output batch into a single row-major buffer and hands out views.
#[derive(Debug, Clone)]
pub struct Record {
    values: Arc<[Value]>,
    start: u32,
    len: u32,
}

impl PartialEq for Record {
    fn eq(&self, other: &Record) -> bool {
        self.values() == other.values()
    }
}

impl Record {
    /// A record from attribute values (unchecked; see [`Record::checked`]).
    pub fn new(values: Vec<Value>) -> Record {
        Record::from_shared(values.into())
    }

    /// A record from already-shared backing storage, without reallocating.
    #[inline]
    pub fn from_shared(values: Arc<[Value]>) -> Record {
        let len = values.len() as u32;
        Record { values, start: 0, len }
    }

    /// A record viewing `len` values of `shared` starting at `start`.
    /// Shares the backing storage; only the reference count moves.
    #[inline]
    pub fn from_shared_slice(shared: &Arc<[Value]>, start: usize, len: usize) -> Record {
        debug_assert!(start + len <= shared.len());
        Record { values: Arc::clone(shared), start: start as u32, len: len as u32 }
    }

    /// Build a record and check it against a schema.
    pub fn checked(values: Vec<Value>, schema: &Schema) -> Result<Record> {
        if values.len() != schema.arity() {
            return Err(SeqError::Schema(format!(
                "record arity {} does not match schema arity {}",
                values.len(),
                schema.arity()
            )));
        }
        for (i, v) in values.iter().enumerate() {
            let expect = schema.field(i)?.ty;
            if v.attr_type() != expect {
                return Err(SeqError::Type(format!(
                    "attribute {} expects {}, found {}",
                    schema.field(i)?.name,
                    expect,
                    v.attr_type()
                )));
            }
        }
        Ok(Record::new(values))
    }

    /// Number of attributes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.len as usize
    }

    /// All attribute values, in schema order.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values[self.start as usize..(self.start + self.len) as usize]
    }

    /// The value of attribute `idx`.
    #[inline]
    pub fn value(&self, idx: usize) -> Result<&Value> {
        self.values().get(idx).ok_or_else(|| {
            SeqError::Schema(format!(
                "attribute index {idx} out of bounds for record of arity {}",
                self.arity()
            ))
        })
    }

    /// Project the given attribute indices into a new record.
    pub fn project(&self, indices: &[usize]) -> Result<Record> {
        let mut out = Vec::with_capacity(indices.len());
        for &i in indices {
            out.push(self.value(i)?.clone());
        }
        Ok(Record::new(out))
    }

    /// Concatenate two records (the compose operator's record constructor,
    /// `r1.r2` in §2.1).
    pub fn compose(&self, right: &Record) -> Record {
        let mut out = Vec::with_capacity(self.arity() + right.arity());
        out.extend_from_slice(self.values());
        out.extend_from_slice(right.values());
        Record::new(out)
    }

    /// Approximate in-memory footprint in bytes, used by the storage layer to
    /// decide page occupancy.
    pub fn byte_size(&self) -> usize {
        let mut sz = 0usize;
        for v in self.values().iter() {
            sz += match v {
                Value::Int(_) | Value::Float(_) => 8,
                Value::Bool(_) => 1,
                Value::Str(s) => 16 + s.len(),
            };
        }
        sz.max(1)
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, v) in self.values().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ">")
    }
}

/// Build a record from anything convertible to values:
/// `record![1i64, 2.5, "x"]`.
#[macro_export]
macro_rules! record {
    ($($v:expr),* $(,)?) => {
        $crate::record::Record::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::schema;
    use crate::value::AttrType;

    #[test]
    fn checked_enforces_arity_and_types() {
        let s = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
        assert!(Record::checked(vec![Value::Int(1), Value::Float(2.0)], &s).is_ok());
        assert!(Record::checked(vec![Value::Int(1)], &s).is_err());
        assert!(Record::checked(vec![Value::Float(1.0), Value::Float(2.0)], &s).is_err());
    }

    #[test]
    fn projection_and_compose() {
        let r = record![1i64, 2.5, "x"];
        let p = r.project(&[2, 0]).unwrap();
        assert_eq!(p.arity(), 2);
        assert_eq!(p.value(0).unwrap().as_str().unwrap(), "x");
        assert_eq!(p.value(1).unwrap().as_i64().unwrap(), 1);
        assert!(r.project(&[9]).is_err());

        let c = r.compose(&record![true]);
        assert_eq!(c.arity(), 4);
        assert!(c.value(3).unwrap().as_bool().unwrap());
    }

    #[test]
    fn clone_shares_backing_storage() {
        let r = record![1i64, 2i64];
        let r2 = r.clone();
        assert!(std::ptr::eq(r.values().as_ptr(), r2.values().as_ptr()));
    }

    #[test]
    fn byte_size_reflects_payload() {
        assert_eq!(record![1i64, 2.0].byte_size(), 16);
        assert!(record!["hello world"].byte_size() > 16);
        assert_eq!(Record::new(vec![]).byte_size(), 1);
    }

    #[test]
    fn display_round_trip_shape() {
        assert_eq!(record![1i64, false].to_string(), "<1, false>");
    }
}
