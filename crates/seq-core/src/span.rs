//! Spans: the valid position range of a sequence (§3, Table 1).
//!
//! A span is a closed interval of positions `[start, end]`. Spans propagate
//! bottom-up (each operator computes its output span from its input spans)
//! and top-down (operators restrict their inputs' spans given the span the
//! consumer requires) — the global span optimization of §3.2 / Figure 3.
//!
//! Value offsets produce semi-infinite output spans (Previous is defined at
//! every position after the first input record), so spans support ±∞
//! endpoints; the query template's position range (Figure 6) clamps them.

use std::fmt;

/// Sentinel for an unbounded lower endpoint.
pub const NEG_INF: i64 = i64::MIN;
/// Sentinel for an unbounded upper endpoint.
pub const POS_INF: i64 = i64::MAX;

/// A closed interval of positions, possibly empty or unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    start: i64,
    end: i64,
}

impl Span {
    /// `[start, end]`; an inverted pair denotes the empty span.
    pub fn new(start: i64, end: i64) -> Span {
        if start > end {
            Span::empty()
        } else {
            Span { start, end }
        }
    }

    /// The canonical empty span.
    pub fn empty() -> Span {
        Span { start: 1, end: 0 }
    }

    /// The span covering every position.
    pub fn all() -> Span {
        Span { start: NEG_INF, end: POS_INF }
    }

    /// A single-position span.
    pub fn point(p: i64) -> Span {
        Span { start: p, end: p }
    }

    /// Inclusive lower endpoint ([`NEG_INF`] when unbounded below).
    pub fn start(&self) -> i64 {
        self.start
    }

    /// Inclusive upper endpoint ([`POS_INF`] when unbounded above).
    pub fn end(&self) -> i64 {
        self.end
    }

    /// Whether the span contains no positions.
    pub fn is_empty(&self) -> bool {
        self.start > self.end
    }

    /// Non-empty with both endpoints finite.
    pub fn is_bounded(&self) -> bool {
        !self.is_empty() && self.start != NEG_INF && self.end != POS_INF
    }

    /// Number of positions in the span. Unbounded spans saturate to
    /// `u64::MAX`; the cost model treats that as "do not enumerate".
    pub fn len(&self) -> u64 {
        if self.is_empty() {
            0
        } else if !self.is_bounded() {
            u64::MAX
        } else {
            (self.end - self.start) as u64 + 1
        }
    }

    /// Whether position `p` lies within the span.
    pub fn contains(&self, p: i64) -> bool {
        !self.is_empty() && self.start <= p && p <= self.end
    }

    /// Set intersection.
    pub fn intersect(&self, other: &Span) -> Span {
        if self.is_empty() || other.is_empty() {
            return Span::empty();
        }
        Span::new(self.start.max(other.start), self.end.min(other.end))
    }

    /// Smallest span covering both (interval hull).
    pub fn hull(&self, other: &Span) -> Span {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// Shift every position by `delta`, saturating at the infinities.
    /// Infinite endpoints stay infinite.
    pub fn shift(&self, delta: i64) -> Span {
        if self.is_empty() {
            return Span::empty();
        }
        let start = if self.start == NEG_INF { NEG_INF } else { sat_add(self.start, delta) };
        let end = if self.end == POS_INF { POS_INF } else { sat_add(self.end, delta) };
        Span::new(start, end)
    }

    /// Widen the span by a relative window: the set of positions `i` such
    /// that `[i+lo, i+hi]` intersects this span — i.e. `[start-hi, end-lo]`.
    ///
    /// This is the bottom-up span rule for a windowed aggregate (the output
    /// at `i` is non-Null iff some input in `[i+lo, i+hi]` is), and also the
    /// top-down rule for the *input* span a windowed operator needs
    /// (swap/negate accordingly at the call site).
    pub fn widen_by_window(&self, lo: i64, hi: i64) -> Span {
        if self.is_empty() {
            return Span::empty();
        }
        let start = if self.start == NEG_INF { NEG_INF } else { sat_add(self.start, -hi) };
        let end = if self.end == POS_INF { POS_INF } else { sat_add(self.end, -lo) };
        Span::new(start, end)
    }

    /// The input span a windowed operator needs to produce every output in
    /// this span: output position `i` reads inputs in `[i+lo, i+hi]`, so the
    /// union over the span is `[start+lo, end+hi]`.
    ///
    /// This is the top-down companion of [`Span::widen_by_window`]; the
    /// morsel planner uses it to widen a sub-span by an operator's scope
    /// overhang so each worker sees exactly the input its outputs require.
    pub fn extend_by_window(&self, lo: i64, hi: i64) -> Span {
        if self.is_empty() {
            return Span::empty();
        }
        let start = if self.start == NEG_INF { NEG_INF } else { sat_add(self.start, lo) };
        let end = if self.end == POS_INF { POS_INF } else { sat_add(self.end, hi) };
        Span::new(start, end)
    }

    /// Extend the span to +∞ (value-offset outputs looking backward remain
    /// defined forever after their last input).
    pub fn unbounded_above(&self) -> Span {
        if self.is_empty() {
            Span::empty()
        } else {
            Span { start: self.start, end: POS_INF }
        }
    }

    /// Extend the span to −∞.
    pub fn unbounded_below(&self) -> Span {
        if self.is_empty() {
            Span::empty()
        } else {
            Span { start: NEG_INF, end: self.end }
        }
    }

    /// Iterate the positions of a bounded span.
    pub fn positions(&self) -> impl Iterator<Item = i64> {
        let (s, e) = if self.is_empty() { (1, 0) } else { (self.start, self.end) };
        debug_assert!(self.is_empty() || self.is_bounded(), "cannot enumerate an unbounded span");
        s..=e
    }
}

/// Saturating add that never crosses the infinity sentinels: finite
/// arithmetic must not accidentally land exactly on a sentinel.
fn sat_add(a: i64, b: i64) -> i64 {
    a.saturating_add(b).clamp(NEG_INF + 1, POS_INF - 1)
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "[empty]");
        }
        match (self.start, self.end) {
            (NEG_INF, POS_INF) => write!(f, "[-inf, +inf]"),
            (NEG_INF, e) => write!(f, "[-inf, {e}]"),
            (s, POS_INF) => write!(f, "[{s}, +inf]"),
            (s, e) => write!(f, "[{s}, {e}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_emptiness() {
        assert!(Span::new(5, 3).is_empty());
        assert!(!Span::new(3, 5).is_empty());
        assert!(Span::empty().is_empty());
        assert_eq!(Span::point(7).len(), 1);
        assert_eq!(Span::new(1, 10).len(), 10);
        assert_eq!(Span::empty().len(), 0);
        assert_eq!(Span::all().len(), u64::MAX);
    }

    #[test]
    fn containment() {
        let s = Span::new(200, 350);
        assert!(s.contains(200));
        assert!(s.contains(350));
        assert!(!s.contains(199));
        assert!(!Span::empty().contains(0));
        assert!(Span::all().contains(i64::MIN + 1));
    }

    #[test]
    fn intersection_matches_figure3() {
        // Figure 3: DEC=[1,350], IBM=[200,500], HP=[1,750].
        let dec = Span::new(1, 350);
        let ibm = Span::new(200, 500);
        let hp = Span::new(1, 750);
        let ibm_hp = ibm.intersect(&hp);
        assert_eq!(ibm_hp, Span::new(200, 500));
        let final_span = dec.intersect(&ibm_hp);
        assert_eq!(final_span, Span::new(200, 350));
    }

    #[test]
    fn intersect_with_empty_is_empty() {
        assert!(Span::new(1, 5).intersect(&Span::empty()).is_empty());
        assert!(Span::new(1, 5).intersect(&Span::new(6, 9)).is_empty());
    }

    #[test]
    fn hull_covers_both() {
        let h = Span::new(1, 3).hull(&Span::new(10, 12));
        assert_eq!(h, Span::new(1, 12));
        assert_eq!(Span::empty().hull(&Span::new(2, 4)), Span::new(2, 4));
    }

    #[test]
    fn shift_moves_finite_endpoints() {
        assert_eq!(Span::new(10, 20).shift(-5), Span::new(5, 15));
        let half = Span::new(10, 20).unbounded_above().shift(3);
        assert_eq!(half.start(), 13);
        assert_eq!(half.end(), POS_INF);
    }

    #[test]
    fn widen_by_trailing_window() {
        // A trailing 6-position window [-5, 0]: output span = [start, end+5].
        let s = Span::new(100, 200).widen_by_window(-5, 0);
        assert_eq!(s, Span::new(100, 205));
        // A leading window [0, 3]: output span = [start-3, end].
        let s = Span::new(100, 200).widen_by_window(0, 3);
        assert_eq!(s, Span::new(97, 200));
    }

    #[test]
    fn extend_by_window_is_topdown_companion() {
        // Output [100, 200] under a window [-5, 0] needs inputs [95, 200].
        assert_eq!(Span::new(100, 200).extend_by_window(-5, 0), Span::new(95, 200));
        assert_eq!(Span::new(100, 200).extend_by_window(0, 3), Span::new(100, 203));
        assert!(Span::empty().extend_by_window(-5, 5).is_empty());
        // Extremes saturate without landing on a sentinel.
        let s = Span::new(POS_INF - 10, POS_INF - 5).extend_by_window(-2, 100);
        assert_eq!(s.end(), POS_INF - 1);
    }

    #[test]
    fn positions_enumerates_bounded_spans() {
        let v: Vec<i64> = Span::new(3, 6).positions().collect();
        assert_eq!(v, vec![3, 4, 5, 6]);
        assert_eq!(Span::empty().positions().count(), 0);
    }

    #[test]
    fn display_shows_infinities() {
        assert_eq!(Span::new(1, 2).to_string(), "[1, 2]");
        assert_eq!(Span::all().to_string(), "[-inf, +inf]");
        assert_eq!(Span::new(5, 5).unbounded_above().to_string(), "[5, +inf]");
        assert_eq!(Span::empty().to_string(), "[empty]");
    }
}
