//! Error types shared across the sequence-processing stack.

use std::fmt;

/// Errors raised while building, validating, optimizing, or evaluating
/// sequence queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqError {
    /// A schema-level mismatch: unknown attribute, arity mismatch, or an
    /// operator applied to an input of the wrong shape.
    Schema(String),
    /// A type error detected during expression type-checking or evaluation.
    Type(String),
    /// A named base sequence was not found in the catalog.
    UnknownSequence(String),
    /// A query graph is structurally invalid (wrong arity, dangling node,
    /// cycle, or a non-tree sharing where a tree is required).
    InvalidGraph(String),
    /// The planner or executor was asked to do something unsupported
    /// (e.g. incremental evaluation under probed access, §4.1.2).
    Unsupported(String),
    /// Arithmetic overflow or an otherwise unrepresentable position.
    Position(String),
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::Schema(m) => write!(f, "schema error: {m}"),
            SeqError::Type(m) => write!(f, "type error: {m}"),
            SeqError::UnknownSequence(m) => write!(f, "unknown sequence: {m}"),
            SeqError::InvalidGraph(m) => write!(f, "invalid query graph: {m}"),
            SeqError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
            SeqError::Position(m) => write!(f, "position error: {m}"),
        }
    }
}

impl std::error::Error for SeqError {}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, SeqError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = SeqError::Schema("bad attr".into());
        assert_eq!(e.to_string(), "schema error: bad attr");
        let e = SeqError::UnknownSequence("IBM".into());
        assert_eq!(e.to_string(), "unknown sequence: IBM");
        let e = SeqError::Unsupported("incremental probe".into());
        assert!(e.to_string().contains("incremental probe"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(SeqError::Type("x".into()), SeqError::Type("x".into()));
        assert_ne!(SeqError::Type("x".into()), SeqError::Schema("x".into()));
    }
}
