//! Sequence groupings (§5.1).
//!
//! "In some situations, it might be desirable to collectively query a group
//! of sequences of similar record type." A [`SequenceGroup`] is an ordered
//! collection of same-schema member sequences, keyed by string; queries are
//! applied per member ([`SequenceGroup::apply`]) and the outputs merged.
//!
//! Groups typically arise by partitioning one sequence on an attribute
//! ([`partition_by`]), which is also the substrate for the §5.2 correlated
//! queries in [`crate::correlated`].

use std::collections::BTreeMap;

use seq_core::{BaseSequence, Record, Result, Schema, SeqError, Sequence, Span};
use seq_exec::{execute, ExecContext};
use seq_ops::QueryGraph;
use seq_opt::{optimize, CatalogRef, OptimizerConfig};
use seq_storage::Catalog;

/// An ordered collection of same-schema sequences keyed by string.
#[derive(Debug, Clone)]
pub struct SequenceGroup {
    schema: Schema,
    members: BTreeMap<String, BaseSequence>,
}

impl SequenceGroup {
    /// An empty group of the given member schema.
    pub fn new(schema: Schema) -> SequenceGroup {
        SequenceGroup { schema, members: BTreeMap::new() }
    }

    /// Add a member under `key` (schema-checked).
    pub fn insert(&mut self, key: impl Into<String>, seq: BaseSequence) -> Result<()> {
        if seq.schema() != &self.schema {
            return Err(SeqError::Schema(format!(
                "group expects schema {}, member has {}",
                self.schema,
                seq.schema()
            )));
        }
        self.members.insert(key.into(), seq);
        Ok(())
    }

    /// The members' common schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Member keys, in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.members.keys().map(|k| k.as_str())
    }

    /// The member stored under `key`.
    pub fn member(&self, key: &str) -> Option<&BaseSequence> {
        self.members.get(key)
    }

    /// Iterate `(key, member)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &BaseSequence)> {
        self.members.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Apply a single-base query template to every member: the template is
    /// built against a member registered under `member_name`, optimized with
    /// the member's own meta-data (each member gets its own stream-access
    /// plan, which is what makes the §5.2 strategy work), and executed.
    /// Returns `(key, position, record)` rows ordered by key then position.
    pub fn apply(
        &self,
        member_name: &str,
        template: &dyn Fn() -> QueryGraph,
        range: Span,
        config: &OptimizerConfig,
    ) -> Result<Vec<(String, i64, Record)>> {
        let mut out = Vec::new();
        for (key, seq) in &self.members {
            let mut catalog = Catalog::new();
            catalog.register(member_name, seq);
            let query = template();
            let mut cfg = config.clone();
            cfg.range = range;
            let optimized = optimize(&query, &CatalogRef(&catalog), &cfg)?;
            let ctx = ExecContext::new(&catalog);
            for (pos, rec) in execute(&optimized.plan, &ctx)? {
                out.push((key.clone(), pos, rec));
            }
        }
        Ok(out)
    }

    /// Keys of the members whose query output is non-empty — the paper's
    /// "those sequences that satisfy some condition" grouping query.
    pub fn members_satisfying(
        &self,
        member_name: &str,
        template: &dyn Fn() -> QueryGraph,
        range: Span,
        config: &OptimizerConfig,
    ) -> Result<Vec<String>> {
        let mut out = Vec::new();
        for (key, seq) in &self.members {
            let mut catalog = Catalog::new();
            catalog.register(member_name, seq);
            let query = template();
            let mut cfg = config.clone();
            cfg.range = range;
            let optimized = optimize(&query, &CatalogRef(&catalog), &cfg)?;
            let ctx = ExecContext::new(&catalog);
            let mut cursor = optimized.plan.root.open_stream(&ctx)?;
            let start = optimized.plan.range.intersect(&optimized.plan.root.span());
            if !start.is_empty() {
                // Existence check: pull at most one record.
                if let Some((p, _)) = cursor.next_from(start.start())? {
                    if p <= start.end() {
                        out.push(key.clone());
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Partition a sequence on a string attribute: one member per distinct
/// value, each holding the records carrying that value (at their original
/// positions and with the full record), declared over the source's span.
pub fn partition_by(source: &BaseSequence, attr: &str) -> Result<SequenceGroup> {
    let idx = source.schema().index_of(attr)?;
    let mut buckets: BTreeMap<String, Vec<(i64, Record)>> = BTreeMap::new();
    for (pos, rec) in source.entries() {
        let key = rec.value(idx)?.as_str()?.to_string();
        buckets.entry(key).or_default().push((*pos, rec.clone()));
    }
    let mut group = SequenceGroup::new(source.schema().clone());
    for (key, entries) in buckets {
        let member = BaseSequence::from_entries(source.schema().clone(), entries)?
            .with_declared_span(source.meta().span);
        group.insert(key, member)?;
    }
    Ok(group)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::{record, schema, AttrType};
    use seq_ops::{AggFunc, Expr, SeqQuery, Window};

    fn tagged() -> BaseSequence {
        BaseSequence::from_entries(
            schema(&[("time", AttrType::Int), ("v", AttrType::Float), ("tag", AttrType::Str)]),
            vec![
                (1, record![1i64, 10.0, "a"]),
                (2, record![2i64, 20.0, "b"]),
                (3, record![3i64, 30.0, "a"]),
                (5, record![5i64, 50.0, "b"]),
                (8, record![8i64, 80.0, "a"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn partition_splits_by_value() {
        let g = partition_by(&tagged(), "tag").unwrap();
        assert_eq!(g.len(), 2);
        let a = g.member("a").unwrap();
        let positions: Vec<i64> = a.entries().iter().map(|(p, _)| *p).collect();
        assert_eq!(positions, vec![1, 3, 8]);
        // Members keep the source span (density adjusts).
        assert_eq!(a.meta().span, Span::new(1, 8));
        assert!(g.member("c").is_none());
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut g = SequenceGroup::new(schema(&[("x", AttrType::Int)]));
        let wrong =
            BaseSequence::from_entries(schema(&[("y", AttrType::Float)]), vec![(1, record![1.0])])
                .unwrap();
        assert!(g.insert("k", wrong).is_err());
    }

    #[test]
    fn apply_runs_template_per_member() {
        let g = partition_by(&tagged(), "tag").unwrap();
        // Cumulative sum of v per member.
        let rows = g
            .apply(
                "M",
                &|| SeqQuery::base("M").aggregate(AggFunc::Sum, "v", Window::Cumulative).build(),
                Span::new(1, 8),
                &OptimizerConfig::new(Span::new(1, 8)),
            )
            .unwrap();
        // Member a at its last event position 8: 10 + 30 + 80.
        let a_last = rows.iter().filter(|(k, _, _)| k == "a").max_by_key(|(_, p, _)| *p).unwrap();
        assert_eq!(a_last.1, 8);
        assert_eq!(a_last.2.value(0).unwrap().as_f64().unwrap(), 120.0);
        // Member b at position 5: 20 + 50.
        let b5 = rows.iter().find(|(k, p, _)| k == "b" && *p == 5).unwrap();
        assert_eq!(b5.2.value(0).unwrap().as_f64().unwrap(), 70.0);
    }

    #[test]
    fn members_satisfying_selects_groups() {
        let g = partition_by(&tagged(), "tag").unwrap();
        // Which members ever exceed 60?
        let keys = g
            .members_satisfying(
                "M",
                &|| SeqQuery::base("M").select(Expr::attr("v").gt(Expr::lit(60.0))).build(),
                Span::new(1, 8),
                &OptimizerConfig::new(Span::new(1, 8)),
            )
            .unwrap();
        assert_eq!(keys, vec!["a".to_string()]);
        // Which members ever exceed 5? Both.
        let keys = g
            .members_satisfying(
                "M",
                &|| SeqQuery::base("M").select(Expr::attr("v").gt(Expr::lit(5.0))).build(),
                Span::new(1, 8),
                &OptimizerConfig::new(Span::new(1, 8)),
            )
            .unwrap();
        assert_eq!(keys.len(), 2);
    }
}
