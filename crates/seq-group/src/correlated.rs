//! Correlated sequence queries (§5.2).
//!
//! "Let the query be slightly modified to ask: for which volcano eruptions
//! was the strength of the most recent earthquake *in the same region*
//! greater than 7.0? ... Using the model of sequence groupings though, it is
//! possible to declaratively represent such queries. Further it is possible
//! to devise optimization strategies that can sometimes lead to a
//! stream-access evaluation!"
//!
//! [`correlated_join`] implements exactly that strategy: partition both
//! sequences on the correlation attribute, instantiate the inner query once
//! per group (each instance gets its own single-scan stream plan), and merge
//! the per-group outputs in positional order.

use seq_core::{BaseSequence, Record, Result, Span};
use seq_exec::{execute, ExecContext};
use seq_ops::QueryGraph;
use seq_opt::{optimize, CatalogRef, OptimizerConfig};
use seq_storage::Catalog;

use crate::grouping::partition_by;

/// Run a two-base query template per correlation group.
///
/// Both `left` and `right` are partitioned on `correlation_attr`; for each
/// key present in *both* partitions, the template's bases (`left_name`,
/// `right_name`) are bound to that key's members and the query is executed.
/// Outputs are tagged with the key and merged by position.
#[allow(clippy::too_many_arguments)]
pub fn correlated_join(
    left: &BaseSequence,
    left_name: &str,
    right: &BaseSequence,
    right_name: &str,
    correlation_attr: &str,
    template: &dyn Fn() -> QueryGraph,
    range: Span,
    config: &OptimizerConfig,
) -> Result<Vec<(String, i64, Record)>> {
    let left_groups = partition_by(left, correlation_attr)?;
    let right_groups = partition_by(right, correlation_attr)?;
    let mut out = Vec::new();
    for (key, left_member) in left_groups.iter() {
        let Some(right_member) = right_groups.member(key) else { continue };
        let mut catalog = Catalog::new();
        catalog.register(left_name, left_member);
        catalog.register(right_name, right_member);
        let mut cfg = config.clone();
        cfg.range = range;
        let optimized = optimize(&template(), &CatalogRef(&catalog), &cfg)?;
        let ctx = ExecContext::new(&catalog);
        for (pos, rec) in execute(&optimized.plan, &ctx)? {
            out.push((key.to_string(), pos, rec));
        }
    }
    // Positional order across groups (stable for equal positions by key).
    out.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_ops::{Expr, SeqQuery};
    use seq_workload::{generate_regional, WeatherSpec};

    /// The §5.2 query as a grouped template: within one region,
    /// Volcanos ∘ Previous(Quakes), σ(strength > 7).
    fn regional_template() -> QueryGraph {
        SeqQuery::base("Volcanos")
            .compose_with(SeqQuery::base("Quakes").previous())
            .select(Expr::attr("strength").gt(Expr::lit(7.0)))
            .project(["name", "region", "strength"])
            .build()
    }

    /// Brute force: for each volcano, scan all quakes in the same region.
    fn brute_force(world: &seq_workload::WeatherWorld) -> Vec<(String, i64)> {
        let mut out = Vec::new();
        for (vp, v) in world.volcanos.entries() {
            let region = v.value(2).unwrap().as_str().unwrap();
            let mut best: Option<(i64, f64)> = None;
            for (qp, q) in world.quakes.entries() {
                if *qp < *vp && q.value(2).unwrap().as_str().unwrap() == region {
                    let s = q.value(1).unwrap().as_f64().unwrap();
                    if best.map(|(bp, _)| *qp > bp).unwrap_or(true) {
                        best = Some((*qp, s));
                    }
                }
            }
            if let Some((_, s)) = best {
                if s > 7.0 {
                    out.push((v.value(1).unwrap().as_str().unwrap().to_string(), *vp));
                }
            }
        }
        out.sort_by_key(|a| a.1);
        out
    }

    #[test]
    fn regional_example_matches_brute_force() {
        for seed in [1u64, 7, 42] {
            let spec = WeatherSpec::new(Span::new(1, 40_000), 800, 200, seed);
            let world = generate_regional(&spec, 5);
            let got = correlated_join(
                &world.volcanos,
                "Volcanos",
                &world.quakes,
                "Quakes",
                "region",
                &regional_template,
                spec.span,
                &OptimizerConfig::new(spec.span),
            )
            .unwrap();
            let expected = brute_force(&world);
            assert_eq!(got.len(), expected.len(), "seed {seed}");
            for ((_, pos, rec), (name, epos)) in got.iter().zip(expected.iter()) {
                assert_eq!(pos, epos, "seed {seed}");
                assert_eq!(rec.value(0).unwrap().as_str().unwrap(), name, "seed {seed}");
            }
            // Output regions match the group keys they came from.
            for (key, _, rec) in &got {
                assert_eq!(rec.value(1).unwrap().as_str().unwrap(), key);
            }
        }
    }

    #[test]
    fn per_group_plans_are_stream_access() {
        // The §5.2 punchline: each group instance evaluates with a single
        // scan. Run one group's plan under measurement.
        let spec = WeatherSpec::new(Span::new(1, 20_000), 500, 100, 3);
        let world = generate_regional(&spec, 3);
        let vgroups = partition_by(&world.volcanos, "region").unwrap();
        let qgroups = partition_by(&world.quakes, "region").unwrap();
        let key = vgroups.keys().next().unwrap().to_string();
        let mut catalog = Catalog::new();
        catalog.register("Volcanos", vgroups.member(&key).unwrap());
        catalog.register("Quakes", qgroups.member(&key).unwrap());
        let optimized =
            optimize(&regional_template(), &CatalogRef(&catalog), &OptimizerConfig::new(spec.span))
                .unwrap();
        catalog.reset_measurement();
        let ctx = ExecContext::new(&catalog);
        execute(&optimized.plan, &ctx).unwrap();
        let snap = catalog.stats().snapshot();
        assert_eq!(snap.probes, 0, "stream access only");
        assert_eq!(snap.scans_opened, 2, "one scan per member");
    }

    #[test]
    fn keys_missing_on_one_side_are_skipped() {
        use seq_core::{record, schema, AttrType};
        let left = BaseSequence::from_entries(
            schema(&[("time", AttrType::Int), ("k", AttrType::Str)]),
            vec![(1, record![1i64, "x"]), (2, record![2i64, "y"])],
        )
        .unwrap();
        let right = BaseSequence::from_entries(
            schema(&[("time", AttrType::Int), ("k", AttrType::Str)]),
            vec![(3, record![3i64, "x"])],
        )
        .unwrap();
        let rows = correlated_join(
            &left,
            "L",
            &right,
            "R",
            "k",
            &|| SeqQuery::base("L").compose_with(SeqQuery::base("R").previous()).build(),
            Span::new(1, 10),
            &OptimizerConfig::new(Span::new(1, 10)),
        )
        .unwrap();
        // Key "y" has no right-side member; key "x" has no L record after an
        // R record, so nothing qualifies — but no error either.
        assert!(rows.is_empty());
    }
}
