//! # seq-group — groupings, correlated queries, and ordering domains
//!
//! The §5.1–§5.2 extensions of *Sequence Query Processing*:
//!
//! - [`grouping`] — sequence groupings: partition a sequence on an attribute
//!   into same-schema members and apply query templates collectively;
//! - [`correlated`] — correlated queries ("the most recent earthquake *in
//!   the same region*") evaluated by instantiating the inner query per
//!   correlation group, recovering a stream-access evaluation per group;
//! - [`ordering`] — ordering-domain conversion: collapse a fine-grained
//!   sequence to a coarser domain (daily → weekly, with per-attribute
//!   aggregation) and expand back.

pub mod correlated;
pub mod grouping;
pub mod ordering;

pub use correlated::correlated_join;
pub use grouping::{partition_by, SequenceGroup};
pub use ordering::{collapse, expand, CollapseAttr};
