//! Ordering domains (§5.1): collapse and expand.
//!
//! "These ordering domains may be related in a well-known fashion (for
//! instance, the domain of days and the domain of months are related). The
//! knowledge of these relationships leads to operators that can 'collapse'
//! or 'expand' a sequence from one ordering domain to another. For instance,
//! this would allow a daily sequence to be treated as a weekly sequence so
//! that a weekly average could be computed."
//!
//! [`collapse`] maps a fine-grained sequence onto a coarser domain (bucket
//! `b` covers source positions `[b·factor, (b+1)·factor)`), aggregating each
//! attribute; [`expand`] maps a coarse sequence back onto the fine domain by
//! replicating each bucket record across its positions.

use seq_core::{BaseSequence, Field, Record, Result, Schema, SeqError, Sequence, Span, Value};
use seq_ops::AggFunc;

/// How one attribute is carried into the coarser domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollapseAttr {
    /// Aggregate the attribute's values across the bucket.
    Agg(AggFunc),
    /// Keep the first (earliest-position) value in the bucket.
    First,
    /// Keep the last value in the bucket.
    Last,
}

/// Euclidean floor-division bucket of a position.
fn bucket_of(pos: i64, factor: i64) -> i64 {
    pos.div_euclid(factor)
}

/// Collapse `source` by `factor`, producing one record per non-empty bucket.
/// `attrs` lists the output attributes as `(source attribute, treatment)`;
/// the output schema carries the same names (aggregates adjust the type as
/// usual: AVG is FLOAT, COUNT is INT).
pub fn collapse(
    source: &BaseSequence,
    factor: i64,
    attrs: &[(&str, CollapseAttr)],
) -> Result<BaseSequence> {
    if factor < 1 {
        return Err(SeqError::Position(format!("collapse factor must be >= 1, got {factor}")));
    }
    // Output schema.
    let mut fields = Vec::with_capacity(attrs.len());
    let mut indices = Vec::with_capacity(attrs.len());
    for (name, how) in attrs {
        let idx = source.schema().index_of(name)?;
        let in_ty = source.schema().field(idx)?.ty;
        let ty = match how {
            CollapseAttr::Agg(f) => f.output_type(in_ty)?,
            CollapseAttr::First | CollapseAttr::Last => in_ty,
        };
        fields.push(Field::new(name.to_string(), ty));
        indices.push(idx);
    }
    let out_schema = Schema::new(fields);

    // Bucket the records (entries are position-ordered already).
    let mut out: Vec<(i64, Record)> = Vec::new();
    let mut current: Option<(i64, Vec<Vec<Value>>)> = None;
    let flush =
        |state: &mut Option<(i64, Vec<Vec<Value>>)>, out: &mut Vec<(i64, Record)>| -> Result<()> {
            if let Some((bucket, columns)) = state.take() {
                let mut values = Vec::with_capacity(attrs.len());
                for ((_, how), column) in attrs.iter().zip(&columns) {
                    let v = match how {
                        CollapseAttr::Agg(f) => f.apply(column.iter())?.expect("non-empty bucket"),
                        CollapseAttr::First => column.first().expect("non-empty").clone(),
                        CollapseAttr::Last => column.last().expect("non-empty").clone(),
                    };
                    values.push(v);
                }
                out.push((bucket, Record::new(values)));
            }
            Ok(())
        };

    for (pos, rec) in source.entries() {
        let b = bucket_of(*pos, factor);
        match &mut current {
            Some((cb, columns)) if *cb == b => {
                for (slot, &idx) in indices.iter().enumerate() {
                    columns[slot].push(rec.value(idx)?.clone());
                }
            }
            _ => {
                flush(&mut current, &mut out)?;
                let mut columns = vec![Vec::new(); indices.len()];
                for (slot, &idx) in indices.iter().enumerate() {
                    columns[slot].push(rec.value(idx)?.clone());
                }
                current = Some((b, columns));
            }
        }
    }
    flush(&mut current, &mut out)?;

    let span = source.meta().span;
    let declared = if span.is_empty() {
        Span::empty()
    } else {
        Span::new(bucket_of(span.start(), factor), bucket_of(span.end(), factor))
    };
    Ok(BaseSequence::from_entries(out_schema, out)?.with_declared_span(declared))
}

/// Expand `source` by `factor`: the record at coarse position `b` surfaces
/// at every fine position in `[b·factor, (b+1)·factor)` (clamped to `within`).
pub fn expand(source: &BaseSequence, factor: i64, within: Span) -> Result<BaseSequence> {
    if factor < 1 {
        return Err(SeqError::Position(format!("expand factor must be >= 1, got {factor}")));
    }
    if !within.is_empty() && !within.is_bounded() {
        return Err(SeqError::Unsupported("expand needs a bounded target span".into()));
    }
    let mut out = Vec::new();
    for (bucket, rec) in source.entries() {
        let lo = bucket.saturating_mul(factor);
        for p in lo..lo.saturating_add(factor) {
            if within.contains(p) {
                out.push((p, rec.clone()));
            }
        }
    }
    Ok(BaseSequence::from_entries(source.schema().clone(), out)?.with_declared_span(within))
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::{record, schema, AttrType};

    fn daily() -> BaseSequence {
        // Two "weeks" of 7 positions (0..6, 7..13), with gaps.
        BaseSequence::from_entries(
            schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
            vec![
                (0, record![0i64, 10.0]),
                (2, record![2i64, 20.0]),
                (6, record![6i64, 30.0]),
                (7, record![7i64, 40.0]),
                (13, record![13i64, 50.0]),
                (21, record![21i64, 60.0]), // week 3; week 2 empty
            ],
        )
        .unwrap()
    }

    #[test]
    fn weekly_average_from_daily() {
        let weekly = collapse(
            &daily(),
            7,
            &[("time", CollapseAttr::First), ("close", CollapseAttr::Agg(AggFunc::Avg))],
        )
        .unwrap();
        let entries = weekly.entries();
        assert_eq!(entries.len(), 3);
        // Week 0: avg(10,20,30) = 20 at bucket 0.
        assert_eq!(entries[0].0, 0);
        assert_eq!(entries[0].1.value(1).unwrap().as_f64().unwrap(), 20.0);
        // Week 1: avg(40,50) = 45.
        assert_eq!(entries[1].0, 1);
        assert_eq!(entries[1].1.value(1).unwrap().as_f64().unwrap(), 45.0);
        // Week 2 empty; week 3 holds 60.
        assert_eq!(entries[2].0, 3);
        // Output schema names preserved; AVG became FLOAT.
        assert_eq!(weekly.schema().field(1).unwrap().name, "close");
    }

    #[test]
    fn collapse_first_last_count() {
        let weekly = collapse(
            &daily(),
            7,
            &[
                ("close", CollapseAttr::First),
                ("close", CollapseAttr::Last),
                ("close", CollapseAttr::Agg(AggFunc::Count)),
            ],
        )
        .unwrap();
        let w0 = &weekly.entries()[0].1;
        assert_eq!(w0.value(0).unwrap().as_f64().unwrap(), 10.0);
        assert_eq!(w0.value(1).unwrap().as_f64().unwrap(), 30.0);
        assert_eq!(w0.value(2).unwrap().as_i64().unwrap(), 3);
    }

    #[test]
    fn collapse_span_is_bucketed() {
        let weekly = collapse(&daily(), 7, &[("close", CollapseAttr::Last)]).unwrap();
        assert_eq!(weekly.meta().span, Span::new(0, 3));
    }

    #[test]
    fn negative_positions_bucket_correctly() {
        let s = BaseSequence::from_entries(
            schema(&[("v", AttrType::Int)]),
            vec![(-8, record![-8i64]), (-1, record![-1i64]), (0, record![0i64])],
        )
        .unwrap();
        let c = collapse(&s, 7, &[("v", CollapseAttr::Agg(AggFunc::Count))]).unwrap();
        // Euclidean buckets: -8 → -2, -1 → -1, 0 → 0.
        let buckets: Vec<i64> = c.entries().iter().map(|(p, _)| *p).collect();
        assert_eq!(buckets, vec![-2, -1, 0]);
    }

    #[test]
    fn expand_replicates_buckets() {
        let weekly = collapse(&daily(), 7, &[("close", CollapseAttr::Agg(AggFunc::Avg))]).unwrap();
        let back = expand(&weekly, 7, Span::new(0, 27)).unwrap();
        // Week 0's average appears at positions 0..=6.
        for p in 0..=6 {
            let r = back.get(p).unwrap();
            assert_eq!(r.value(0).unwrap().as_f64().unwrap(), 20.0);
        }
        // Week 2 (positions 14..=20) stays empty.
        assert!(back.get(15).is_none());
        // Clamping.
        let clamped = expand(&weekly, 7, Span::new(3, 8)).unwrap();
        assert!(clamped.get(2).is_none());
        assert!(clamped.get(3).is_some());
    }

    #[test]
    fn collapse_expand_round_trip_on_dense_constant_buckets() {
        // When each bucket holds identical values, expand(collapse) restores
        // the dense original.
        let s = BaseSequence::from_entries(
            schema(&[("v", AttrType::Int)]),
            (0..12).map(|p| (p, record![(p / 3) * 100])).collect(),
        )
        .unwrap();
        let c = collapse(&s, 3, &[("v", CollapseAttr::First)]).unwrap();
        let e = expand(&c, 3, Span::new(0, 11)).unwrap();
        assert_eq!(e.entries().len(), 12);
        for (p, r) in e.entries() {
            assert_eq!(r.value(0).unwrap().as_i64().unwrap(), (p / 3) * 100);
        }
    }

    #[test]
    fn invalid_factors_and_attrs() {
        assert!(collapse(&daily(), 0, &[("close", CollapseAttr::Last)]).is_err());
        assert!(collapse(&daily(), 7, &[("nope", CollapseAttr::Last)]).is_err());
        assert!(expand(&daily(), 0, Span::new(0, 5)).is_err());
        assert!(expand(&daily(), 7, Span::all()).is_err());
    }

    #[test]
    fn collapsed_sequence_queries_like_any_other() {
        // The §5.1 use case end to end: weekly average computed by collapsing
        // then queried with the ordinary algebra.
        use seq_exec::{execute, ExecContext};
        use seq_ops::{Expr, SeqQuery};
        use seq_opt::{optimize, CatalogRef, OptimizerConfig};
        use seq_storage::Catalog;

        let weekly = collapse(&daily(), 7, &[("close", CollapseAttr::Agg(AggFunc::Avg))]).unwrap();
        let mut catalog = Catalog::new();
        catalog.register("WeeklyAvg", &weekly);
        let q = SeqQuery::base("WeeklyAvg").select(Expr::attr("close").gt(Expr::lit(30.0))).build();
        let optimized =
            optimize(&q, &CatalogRef(&catalog), &OptimizerConfig::new(Span::new(0, 3))).unwrap();
        let rows = execute(&optimized.plan, &ExecContext::new(&catalog)).unwrap();
        let weeks: Vec<i64> = rows.iter().map(|(p, _)| *p).collect();
        assert_eq!(weeks, vec![1, 3]); // avgs 45 and 60
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use seq_core::{record, schema, AttrType};
    use seq_workload::Rng;

    fn arb_sequence(rng: &mut Rng) -> BaseSequence {
        let n = rng.gen_range(1usize..60);
        let positions: std::collections::BTreeSet<i64> =
            (0..n).map(|_| rng.gen_range(-200i64..200)).collect();
        let entries = positions
            .into_iter()
            .map(|p| {
                let v = rng.gen_range(-100.0f64..100.0);
                (p, record![p, v])
            })
            .collect();
        BaseSequence::from_entries(
            schema(&[("time", AttrType::Int), ("v", AttrType::Float)]),
            entries,
        )
        .unwrap()
    }

    const CASES: usize = 128;

    /// Bucket counts always sum to the source record count.
    #[test]
    fn collapse_preserves_record_count() {
        let mut rng = Rng::seed_from_u64(0xc011);
        for _ in 0..CASES {
            let s = arb_sequence(&mut rng);
            let factor = rng.gen_range(1i64..20);
            let c = collapse(&s, factor, &[("v", CollapseAttr::Agg(AggFunc::Count))]).unwrap();
            let total: i64 =
                c.entries().iter().map(|(_, r)| r.value(0).unwrap().as_i64().unwrap()).sum();
            assert_eq!(total as u64, s.record_count());
        }
    }

    /// Every source record's bucket exists, and no empty buckets appear.
    #[test]
    fn collapse_buckets_are_exactly_the_occupied_ones() {
        let mut rng = Rng::seed_from_u64(0xb0c4);
        for _ in 0..CASES {
            let s = arb_sequence(&mut rng);
            let factor = rng.gen_range(1i64..20);
            let c = collapse(&s, factor, &[("v", CollapseAttr::Last)]).unwrap();
            let buckets: std::collections::BTreeSet<i64> =
                c.entries().iter().map(|(b, _)| *b).collect();
            let expected: std::collections::BTreeSet<i64> =
                s.entries().iter().map(|(p, _)| p.div_euclid(factor)).collect();
            assert_eq!(buckets, expected);
        }
    }

    /// Min <= Avg <= Max per bucket.
    #[test]
    fn collapse_agg_ordering() {
        let mut rng = Rng::seed_from_u64(0xa66);
        for _ in 0..CASES {
            let s = arb_sequence(&mut rng);
            let factor = rng.gen_range(1i64..20);
            let c = collapse(
                &s,
                factor,
                &[
                    ("v", CollapseAttr::Agg(AggFunc::Min)),
                    ("v", CollapseAttr::Agg(AggFunc::Avg)),
                    ("v", CollapseAttr::Agg(AggFunc::Max)),
                ],
            )
            .unwrap();
            for (_, r) in c.entries() {
                let mn = r.value(0).unwrap().as_f64().unwrap();
                let av = r.value(1).unwrap().as_f64().unwrap();
                let mx = r.value(2).unwrap().as_f64().unwrap();
                assert!(mn <= av + 1e-9 && av <= mx + 1e-9);
            }
        }
    }

    /// Expanding a collapsed sequence covers exactly the occupied buckets'
    /// fine positions (within the target span).
    #[test]
    fn expand_covers_bucket_ranges() {
        let mut rng = Rng::seed_from_u64(0xe4a0);
        for _ in 0..CASES {
            let s = arb_sequence(&mut rng);
            let factor = rng.gen_range(1i64..10);
            let c = collapse(&s, factor, &[("v", CollapseAttr::First)]).unwrap();
            let within = Span::new(-250, 250);
            let e = expand(&c, factor, within).unwrap();
            let expanded: std::collections::BTreeSet<i64> =
                e.entries().iter().map(|(p, _)| *p).collect();
            for (b, _) in c.entries() {
                for p in (b * factor)..((b + 1) * factor) {
                    assert_eq!(expanded.contains(&p), within.contains(p));
                }
            }
        }
    }

    /// Every source position is covered by expand(collapse(s)).
    #[test]
    fn expand_collapse_covers_source_positions() {
        let mut rng = Rng::seed_from_u64(0xe4c0);
        for _ in 0..CASES {
            let s = arb_sequence(&mut rng);
            let factor = rng.gen_range(1i64..10);
            let c = collapse(&s, factor, &[("v", CollapseAttr::Last)]).unwrap();
            let e = expand(&c, factor, Span::new(-250, 250)).unwrap();
            for (p, _) in s.entries() {
                assert!(e.get(*p).is_some(), "position {} lost", p);
            }
        }
    }
}
