//! A tiny benchmark harness exposing the subset of the `criterion` API the
//! repository's benches use (`Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `BenchmarkId`, `criterion_group!`/`criterion_main!`).
//!
//! The repository builds in offline environments where external crates are
//! unavailable, so the workspace maps the `criterion` dependency name onto
//! this crate. Timing is deliberately simple — a short warmup followed by
//! `sample_size` wall-clock samples — which is plenty for the order-of-
//! magnitude comparisons the experiment suite draws (page-read ratios are
//! measured by counters, not by the clock).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness entry point; one per bench binary.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup { _c: self, name, sample_size: 10 }
    }
}

/// A named set of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (minimum 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run and report one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { sample_size: self.sample_size, samples: Vec::new() };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        match summarize(&bencher.samples) {
            Some((min, median, mean)) => println!(
                "{label}: median {} (mean {}, min {}, {} samples)",
                fmt_duration(median),
                fmt_duration(mean),
                fmt_duration(min),
                bencher.samples.len()
            ),
            None => println!("{label}: no samples collected"),
        }
        self
    }

    /// End the group (parity with criterion; reporting is immediate here).
    pub fn finish(self) {}
}

/// Times the closure handed to [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, recording one sample per invocation after a short warmup.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warmup = self.sample_size.min(3);
        for _ in 0..warmup {
            black_box(f());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// A two-part benchmark label, `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Compose a label from a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Anything accepted as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// The printable label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

fn summarize(samples: &[Duration]) -> Option<(Duration, Duration, Duration)> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    Some((min, median, mean))
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into a single runner, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        // 3 warmup + 3 timed invocations.
        assert_eq!(runs, 6);
    }

    #[test]
    fn benchmark_id_formats_two_parts() {
        assert_eq!(BenchmarkId::new("f", 42).to_string(), "f/42");
    }
}
