//! Micro-asserts for the batch hot loops: `RecordBatch::gather` and
//! `RecordBatch::extend_joined` must reserve their exact output capacity up
//! front, so the per-row pushes never reallocate mid-batch. A reallocation
//! here would not change results — only smear the per-batch copy cost the
//! benches attribute to the gather itself — so the invariant is pinned by
//! inspecting `Vec::capacity` from outside the crate rather than by timing.

use seq_core::{record, RecordBatch};

fn batch(n: usize, arity: usize) -> RecordBatch {
    let mut b = RecordBatch::with_capacity(arity, n);
    for p in 0..n {
        let rec = match arity {
            1 => record![p as i64],
            2 => record![p as i64, p as f64],
            _ => record![p as i64, p as f64, (p * 2) as i64],
        };
        b.push_record(p as i64 + 1, &rec).unwrap();
    }
    b
}

#[test]
fn gather_reserves_exact_capacity() {
    let src = batch(1000, 3);
    let indices: Vec<usize> = (0..1000).step_by(3).collect();
    let out = src.gather(&indices);
    assert_eq!(out.len(), indices.len());
    for col in out.columns() {
        assert_eq!(
            col.capacity(),
            indices.len(),
            "gather must allocate each column once, at exactly the survivor count"
        );
    }
}

#[test]
fn gather_through_selection_reserves_exact_capacity() {
    let mut src = batch(600, 2);
    let keep: Vec<u32> = (0..600).filter(|i| i % 7 == 0).collect();
    src.select_logical(keep);
    let n = src.len();
    let indices: Vec<usize> = (0..n).collect();
    let out = src.gather(&indices);
    assert_eq!(out.len(), n);
    for col in out.columns() {
        assert_eq!(col.capacity(), n, "selection-aware gather must still size exactly");
    }
}

#[test]
fn extend_joined_reserves_exactly_once() {
    let left = batch(500, 1);
    let right = batch(500, 2);
    let lidx: Vec<usize> = (0..500).filter(|i| i % 2 == 0).collect();
    let ridx = lidx.clone();
    let mut out = RecordBatch::new(3);
    out.extend_joined(&left, &lidx, &right, &ridx).unwrap();
    assert_eq!(out.len(), lidx.len());
    for col in out.columns() {
        assert_eq!(
            col.capacity(),
            lidx.len(),
            "extend_joined into an empty batch must reserve the exact match count"
        );
        assert_eq!(col.len(), lidx.len());
    }
}
