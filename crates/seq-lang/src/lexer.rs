//! Tokenizer for the textual sequence algebra.
//!
//! The surface syntax is S-expression shaped:
//!
//! ```text
//! (select (> close 7.0)
//!   (compose (base Volcanos) (prev (base Quakes))))
//! ```

use std::fmt;

use seq_core::{Result, SeqError};

/// A token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset in the source text.
    pub offset: usize,
}

#[derive(Debug, Clone, PartialEq)]
/// Token kinds of the textual algebra.
pub enum TokenKind {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// Bare word: operator names, attribute names, booleans.
    Symbol(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Quoted string literal.
    Str(String),
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::LBracket => write!(f, "'['"),
            TokenKind::RBracket => write!(f, "']'"),
            TokenKind::Symbol(s) => write!(f, "symbol {s:?}"),
            TokenKind::Int(i) => write!(f, "integer {i}"),
            TokenKind::Float(x) => write!(f, "float {x}"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
        }
    }
}

fn err(offset: usize, msg: impl fmt::Display) -> SeqError {
    SeqError::InvalidGraph(format!("parse error at byte {offset}: {msg}"))
}

/// Whether a character may appear in a bare symbol. Comparison operators are
/// symbols too (`>`, `<=`, `!=`, ...), as are arithmetic ones.
fn is_symbol_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '+' | '*' | '/' | '<' | '>' | '=' | '!' | '.')
}

/// Tokenize the input; `;` starts a comment running to end of line.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' | '\n' | '\r' | ',' => i += 1,
            ';' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token { kind: TokenKind::LParen, offset: i });
                i += 1;
            }
            ')' => {
                out.push(Token { kind: TokenKind::RParen, offset: i });
                i += 1;
            }
            '[' => {
                out.push(Token { kind: TokenKind::LBracket, offset: i });
                i += 1;
            }
            ']' => {
                out.push(Token { kind: TokenKind::RBracket, offset: i });
                i += 1;
            }
            '"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(err(start, "unterminated string literal")),
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some('\\') => {
                            match bytes.get(i + 1) {
                                Some('"') => s.push('"'),
                                Some('\\') => s.push('\\'),
                                Some('n') => s.push('\n'),
                                other => return Err(err(i, format!("unknown escape {:?}", other))),
                            }
                            i += 2;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                out.push(Token { kind: TokenKind::Str(s), offset: start });
            }
            _ if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).map(|d| d.is_ascii_digit()).unwrap_or(false)) =>
            {
                let start = i;
                let mut text = String::new();
                if c == '-' {
                    text.push('-');
                    i += 1;
                }
                let mut is_float = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == '.'
                        || bytes[i] == 'e'
                        || bytes[i] == 'E'
                        || ((bytes[i] == '-' || bytes[i] == '+')
                            && matches!(bytes.get(i.wrapping_sub(1)), Some('e') | Some('E'))))
                {
                    if bytes[i] == '.' || bytes[i] == 'e' || bytes[i] == 'E' {
                        is_float = true;
                    }
                    text.push(bytes[i]);
                    i += 1;
                }
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse::<f64>().map_err(|e| err(start, format!("bad float: {e}")))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse::<i64>().map_err(|e| err(start, format!("bad integer: {e}")))?,
                    )
                };
                out.push(Token { kind, offset: start });
            }
            _ if is_symbol_char(c) => {
                let start = i;
                let mut s = String::new();
                while i < bytes.len() && is_symbol_char(bytes[i]) {
                    s.push(bytes[i]);
                    i += 1;
                }
                out.push(Token { kind: TokenKind::Symbol(s), offset: start });
            }
            other => return Err(err(i, format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("(select close)"),
            vec![
                TokenKind::LParen,
                TokenKind::Symbol("select".into()),
                TokenKind::Symbol("close".into()),
                TokenKind::RParen
            ]
        );
    }

    #[test]
    fn numbers_and_negatives() {
        assert_eq!(
            kinds("42 -7 3.5 -1.25e2"),
            vec![
                TokenKind::Int(42),
                TokenKind::Int(-7),
                TokenKind::Float(3.5),
                TokenKind::Float(-125.0)
            ]
        );
        // A bare minus is a symbol (subtraction operator).
        assert_eq!(
            kinds("- close"),
            vec![TokenKind::Symbol("-".into()), TokenKind::Symbol("close".into())]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(kinds(r#""abc""#), vec![TokenKind::Str("abc".into())]);
        assert_eq!(kinds(r#""a\"b\\c""#), vec![TokenKind::Str("a\"b\\c".into())]);
        assert!(tokenize(r#""unterminated"#).is_err());
        assert!(tokenize(r#""bad\q""#).is_err());
    }

    #[test]
    fn comments_and_commas_are_whitespace() {
        assert_eq!(
            kinds("(a, b) ; trailing comment\n c"),
            vec![
                TokenKind::LParen,
                TokenKind::Symbol("a".into()),
                TokenKind::Symbol("b".into()),
                TokenKind::RParen,
                TokenKind::Symbol("c".into())
            ]
        );
    }

    #[test]
    fn operators_are_symbols() {
        assert_eq!(
            kinds(">= != <"),
            vec![
                TokenKind::Symbol(">=".into()),
                TokenKind::Symbol("!=".into()),
                TokenKind::Symbol("<".into())
            ]
        );
    }

    #[test]
    fn offsets_reported_on_error() {
        let e = tokenize("abc $").unwrap_err();
        assert!(e.to_string().contains("byte 4"), "{e}");
    }

    #[test]
    fn brackets() {
        assert_eq!(
            kinds("[close time]"),
            vec![
                TokenKind::LBracket,
                TokenKind::Symbol("close".into()),
                TokenKind::Symbol("time".into()),
                TokenKind::RBracket
            ]
        );
    }
}
