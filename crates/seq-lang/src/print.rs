//! Pretty-printer: [`seq_ops::QueryGraph`] → the textual algebra.
//!
//! `parse_query(print_query(g))` reconstructs `g` exactly (round-trip
//! property-tested), so the textual form is a faithful serialization of
//! queries — useful for logging, golden tests, and the `seqsh` shell.

use seq_core::{Result, SeqError, Value};
use seq_ops::{AggFunc, Expr, QueryGraph, QueryNode, SeqOperator, Window};

/// Render a query graph in the surface syntax.
pub fn print_query(graph: &QueryGraph) -> Result<String> {
    let mut out = String::new();
    render_node(graph, graph.root()?, &mut out)?;
    Ok(out)
}

fn render_node(graph: &QueryGraph, id: usize, out: &mut String) -> Result<()> {
    match graph.node(id) {
        QueryNode::Base { name } => {
            out.push_str("(base ");
            out.push_str(name);
            out.push(')');
        }
        QueryNode::Constant { schema, record } => {
            out.push_str("(const [");
            for (i, field) in schema.fields().iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(&field.name);
                out.push(' ');
                render_value(record.value(i)?, out);
            }
            out.push_str("])");
        }
        QueryNode::Op { op, inputs } => {
            match op {
                SeqOperator::Select { predicate } => {
                    out.push_str("(select ");
                    render_expr(predicate, out)?;
                    out.push(' ');
                    render_node(graph, inputs[0], out)?;
                    out.push(')');
                }
                SeqOperator::Project { attrs } => {
                    out.push_str("(project [");
                    out.push_str(&attrs.join(" "));
                    out.push_str("] ");
                    render_node(graph, inputs[0], out)?;
                    out.push(')');
                }
                SeqOperator::PositionalOffset { offset } => {
                    out.push_str(&format!("(offset {offset} "));
                    render_node(graph, inputs[0], out)?;
                    out.push(')');
                }
                SeqOperator::ValueOffset { offset } => {
                    match offset {
                        -1 => out.push_str("(prev "),
                        1 => out.push_str("(next "),
                        l => out.push_str(&format!("(voffset {l} ")),
                    }
                    render_node(graph, inputs[0], out)?;
                    out.push(')');
                }
                SeqOperator::Aggregate { func, attr, window, .. } => {
                    let f = match func {
                        AggFunc::Sum => "sum",
                        AggFunc::Avg => "avg",
                        AggFunc::Count => "count",
                        AggFunc::Min => "min",
                        AggFunc::Max => "max",
                    };
                    out.push_str(&format!("(agg {f} {attr} "));
                    match window {
                        Window::Sliding { lo, hi } => {
                            // Prefer the sugar forms when they round-trip.
                            if *hi == 0 && *lo <= 0 {
                                out.push_str(&format!("(trailing {})", 1 - lo));
                            } else if *lo == 0 && *hi >= 0 {
                                out.push_str(&format!("(leading {})", hi + 1));
                            } else {
                                out.push_str(&format!("(sliding {lo} {hi})"));
                            }
                        }
                        Window::Cumulative => out.push_str("cumulative"),
                        Window::WholeSpan => out.push_str("wholespan"),
                    }
                    out.push(' ');
                    render_node(graph, inputs[0], out)?;
                    out.push(')');
                }
                SeqOperator::Compose { predicate } => {
                    out.push_str("(compose ");
                    if let Some(p) = predicate {
                        render_expr(p, out)?;
                        out.push(' ');
                    }
                    render_node(graph, inputs[0], out)?;
                    out.push(' ');
                    render_node(graph, inputs[1], out)?;
                    out.push(')');
                }
            }
        }
    }
    Ok(())
}

fn render_value(v: &Value, out: &mut String) {
    match v {
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            // Keep a decimal point so the token re-lexes as a float.
            let s = format!("{f}");
            out.push_str(&s);
            if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN") {
                out.push_str(".0");
            }
        }
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
    }
}

fn render_expr(e: &Expr, out: &mut String) -> Result<()> {
    match e {
        Expr::Attr(a) => out.push_str(a),
        Expr::Col(_) => {
            return Err(SeqError::Unsupported(
                "cannot print bound column references; print before binding".into(),
            ))
        }
        Expr::Lit(v) => render_value(v, out),
        Expr::Not(inner) => {
            out.push_str("(not ");
            render_expr(inner, out)?;
            out.push(')');
        }
        Expr::Bin(op, l, r) => {
            use seq_ops::BinOp::*;
            let sym = match op {
                Add => "+",
                Sub => "-",
                Mul => "*",
                Div => "/",
                Eq => "=",
                Ne => "!=",
                Lt => "<",
                Le => "<=",
                Gt => ">",
                Ge => ">=",
                And => "and",
                Or => "or",
            };
            out.push('(');
            out.push_str(sym);
            out.push(' ');
            render_expr(l, out)?;
            out.push(' ');
            render_expr(r, out)?;
            out.push(')');
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn round_trip(src: &str) {
        let g1 = parse_query(src).unwrap();
        let printed = print_query(&g1).unwrap();
        let g2 = parse_query(&printed).unwrap_or_else(|e| panic!("reparse of {printed:?}: {e}"));
        assert_eq!(g1, g2, "round trip changed the graph:\n{src}\n-> {printed}");
    }

    #[test]
    fn round_trips() {
        for src in [
            "(base IBM)",
            "(select (> close 7.0) (base IBM))",
            "(project [name time] (base Volcanos))",
            "(offset -5 (base IBM))",
            "(prev (base IBM))",
            "(next (base IBM))",
            "(voffset -3 (base IBM))",
            "(agg sum close (trailing 6) (base IBM))",
            "(agg avg close (leading 4) (base IBM))",
            "(agg max close (sliding -3 -1) (base IBM))",
            "(agg count close cumulative (base IBM))",
            "(agg min close wholespan (base IBM))",
            "(compose (base IBM) (base HP))",
            "(compose (> close close_r) (base IBM) (base HP))",
            r#"(const [k 1 x 2.5 s "a\"b" flag true])"#,
            "(select (and (> (* close 2.0) 100.0) (not (= time 5))) (base IBM))",
            "(compose (base DEC) (compose (> close close_r) (base IBM) (prev (base HP))))",
        ] {
            round_trip(src);
        }
    }

    #[test]
    fn bound_expressions_are_rejected() {
        use seq_ops::SeqQuery;
        let g = SeqQuery::base("X").select(Expr::Col(0).gt(Expr::lit(1i64))).build();
        assert!(print_query(&g).is_err());
    }
}
