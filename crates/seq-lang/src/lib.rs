//! # seq-lang — a textual surface syntax for the sequence algebra
//!
//! The paper deliberately leaves query-language design out of scope (§5);
//! this crate provides the minimal textual surface a user needs to write
//! queries without the Rust builder: an S-expression algebra with a
//! tokenizer ([`lexer`]), parser ([`parser::parse_query`]), and faithful
//! pretty-printer ([`print::print_query`]).
//!
//! ```
//! use seq_lang::{parse_query, print_query};
//!
//! let q = parse_query(
//!     "(select (> strength 7.0)
//!        (compose (base Volcanos) (prev (base Quakes))))",
//! ).unwrap();
//! let text = print_query(&q).unwrap();
//! assert_eq!(parse_query(&text).unwrap(), q);
//! ```

pub mod lexer;
pub mod parser;
pub mod print;

pub use parser::parse_query;
pub use print::print_query;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use seq_ops::{AggFunc, Expr, SeqQuery, Window};

    /// Random (unbound) queries through the builder, round-tripped through
    /// print → parse.
    fn arb_query(depth: u32) -> BoxedStrategy<SeqQuery> {
        if depth == 0 {
            return prop_oneof![
                Just(SeqQuery::base("A")),
                Just(SeqQuery::base("B")),
            ]
            .boxed();
        }
        let sub = arb_query(depth - 1);
        prop_oneof![
            arb_query(0),
            (sub.clone(), -50.0f64..50.0)
                .prop_map(|(q, lit)| q.select(Expr::attr("close").gt(Expr::lit(lit)))),
            (sub.clone(), -6i64..6).prop_map(|(q, l)| q.positional_offset(l)),
            (sub.clone(), 1i64..4, any::<bool>())
                .prop_map(|(q, l, neg)| q.value_offset(if neg { -l } else { l })),
            (sub.clone(), 1u32..8).prop_map(|(q, w)| {
                q.aggregate(AggFunc::Avg, "close", Window::trailing(w))
            }),
            (sub.clone(), arb_query(depth - 1)).prop_map(|(l, r)| l.compose_with(r)),
        ]
        .boxed()
    }

    proptest! {
        #[test]
        fn print_parse_round_trip(q in arb_query(3)) {
            let g = q.build();
            let text = print_query(&g).unwrap();
            let g2 = parse_query(&text).unwrap();
            prop_assert_eq!(g, g2);
        }
    }
}
