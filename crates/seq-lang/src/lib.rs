//! # seq-lang — a textual surface syntax for the sequence algebra
//!
//! The paper deliberately leaves query-language design out of scope (§5);
//! this crate provides the minimal textual surface a user needs to write
//! queries without the Rust builder: an S-expression algebra with a
//! tokenizer ([`lexer`]), parser ([`parser::parse_query`]), and faithful
//! pretty-printer ([`print::print_query`]).
//!
//! ```
//! use seq_lang::{parse_query, print_query};
//!
//! let q = parse_query(
//!     "(select (> strength 7.0)
//!        (compose (base Volcanos) (prev (base Quakes))))",
//! ).unwrap();
//! let text = print_query(&q).unwrap();
//! assert_eq!(parse_query(&text).unwrap(), q);
//! ```

pub mod lexer;
pub mod parser;
pub mod print;

pub use parser::parse_query;
pub use print::print_query;

#[cfg(test)]
mod proptests {
    use super::*;
    use seq_ops::{AggFunc, Expr, SeqQuery, Window};
    use seq_workload::Rng;

    /// Random (unbound) queries through the builder, round-tripped through
    /// print → parse. Seeded-loop generation; each seed reproduces exactly.
    fn arb_query(rng: &mut Rng, depth: u32) -> SeqQuery {
        let leaf = |rng: &mut Rng| {
            if rng.gen_bool(0.5) {
                SeqQuery::base("A")
            } else {
                SeqQuery::base("B")
            }
        };
        if depth == 0 {
            return leaf(rng);
        }
        match rng.gen_range(0u32..6) {
            0 => leaf(rng),
            1 => {
                let lit = rng.gen_range(-50.0f64..50.0);
                arb_query(rng, depth - 1).select(Expr::attr("close").gt(Expr::lit(lit)))
            }
            2 => {
                let l = rng.gen_range(-6i64..6);
                arb_query(rng, depth - 1).positional_offset(l)
            }
            3 => {
                let l = rng.gen_range(1i64..4);
                let l = if rng.gen_bool(0.5) { -l } else { l };
                arb_query(rng, depth - 1).value_offset(l)
            }
            4 => {
                let w = rng.gen_range(1u32..8);
                arb_query(rng, depth - 1).aggregate(AggFunc::Avg, "close", Window::trailing(w))
            }
            _ => {
                let l = arb_query(rng, depth - 1);
                let r = arb_query(rng, depth - 1);
                l.compose_with(r)
            }
        }
    }

    #[test]
    fn print_parse_round_trip() {
        let mut rng = Rng::seed_from_u64(0x1a06);
        for case in 0..256 {
            let g = arb_query(&mut rng, 3).build();
            let text = print_query(&g).unwrap();
            let g2 = parse_query(&text).unwrap();
            assert_eq!(g, g2, "case {case} failed to round-trip:\n{text}");
        }
    }
}
