//! Parser: textual algebra → [`seq_ops::QueryGraph`].
//!
//! Grammar (S-expressions; commas optional, `;` comments):
//!
//! ```text
//! node    := (base NAME)
//!          | (const [ATTR VALUE ...])
//!          | (select EXPR node)
//!          | (project [ATTR ...] node)
//!          | (offset N node)                 ; positional offset
//!          | (voffset N node)                ; value offset (N != 0)
//!          | (prev node) | (next node)
//!          | (agg FUNC ATTR WINDOW node)     ; FUNC: sum avg count min max
//!          | (compose node node)
//!          | (compose EXPR node node)        ; with a join predicate
//! WINDOW  := (trailing N) | (leading N) | (sliding LO HI)
//!          | cumulative | wholespan
//! EXPR    := (CMP e e) | (and e e) | (or e e) | (not e)
//!          | (+ e e) | (- e e) | (* e e) | (/ e e)
//!          | NUMBER | "string" | true | false | ATTR
//! CMP     := > >= < <= = !=
//! ```

use seq_core::{AttrType, Record, Result, Schema, SeqError, Value};
use seq_ops::{AggFunc, Expr, QueryGraph, SeqQuery, Window};

use crate::lexer::{tokenize, Token, TokenKind};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

fn perr(offset: usize, msg: impl std::fmt::Display) -> SeqError {
    SeqError::InvalidGraph(format!("parse error at byte {offset}: {msg}"))
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| perr(usize::MAX, "unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token> {
        let t = self.next()?;
        if &t.kind == kind {
            Ok(t)
        } else {
            Err(perr(t.offset, format!("expected {kind}, found {}", t.kind)))
        }
    }

    fn symbol(&mut self) -> Result<(String, usize)> {
        let t = self.next()?;
        match t.kind {
            TokenKind::Symbol(s) => Ok((s, t.offset)),
            other => Err(perr(t.offset, format!("expected a symbol, found {other}"))),
        }
    }

    fn int(&mut self) -> Result<i64> {
        let t = self.next()?;
        match t.kind {
            TokenKind::Int(i) => Ok(i),
            other => Err(perr(t.offset, format!("expected an integer, found {other}"))),
        }
    }

    /// Parse a query node into a [`SeqQuery`].
    fn node(&mut self) -> Result<SeqQuery> {
        self.expect(&TokenKind::LParen)?;
        let (head, at) = self.symbol()?;
        let q = match head.as_str() {
            "base" => {
                let (name, _) = self.symbol()?;
                SeqQuery::base(name)
            }
            "const" => {
                let (schema, record) = self.const_body()?;
                SeqQuery::constant(schema, record)
            }
            "select" => {
                let predicate = self.expr()?;
                let input = self.node()?;
                input.select(predicate)
            }
            "project" => {
                let attrs = self.attr_list()?;
                let input = self.node()?;
                input.project(attrs)
            }
            "offset" => {
                let l = self.int()?;
                let input = self.node()?;
                input.positional_offset(l)
            }
            "voffset" => {
                let l = self.int()?;
                if l == 0 {
                    return Err(perr(at, "voffset of 0 is the identity"));
                }
                let input = self.node()?;
                input.value_offset(l)
            }
            "prev" => self.node()?.previous(),
            "next" => self.node()?.next_record(),
            "agg" => {
                let (func_name, fat) = self.symbol()?;
                let func = match func_name.as_str() {
                    "sum" => AggFunc::Sum,
                    "avg" => AggFunc::Avg,
                    "count" => AggFunc::Count,
                    "min" => AggFunc::Min,
                    "max" => AggFunc::Max,
                    other => return Err(perr(fat, format!("unknown aggregate {other:?}"))),
                };
                let (attr, _) = self.symbol()?;
                let window = self.window()?;
                let input = self.node()?;
                input.aggregate(func, attr, window)
            }
            "compose" => {
                // Either (compose L R) or (compose EXPR L R): disambiguate by
                // the next token — a node starts with '(' followed by a node
                // head; an expression may too, so try the node first and fall
                // back. Cleanest unambiguous rule: if three forms remain
                // before the closing paren, the first is a predicate.
                let checkpoint = self.pos;
                match self.node() {
                    Ok(left) => {
                        // (compose L R)
                        let right = self.node()?;
                        left.compose_with(right)
                    }
                    Err(_) => {
                        self.pos = checkpoint;
                        let predicate = self.expr()?;
                        let left = self.node()?;
                        let right = self.node()?;
                        left.compose_filtered(right, predicate)
                    }
                }
            }
            other => return Err(perr(at, format!("unknown operator {other:?}"))),
        };
        self.expect(&TokenKind::RParen)?;
        Ok(q)
    }

    fn const_body(&mut self) -> Result<(Schema, Record)> {
        self.expect(&TokenKind::LBracket)?;
        let mut fields = Vec::new();
        let mut values = Vec::new();
        loop {
            if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::RBracket)) {
                self.next()?;
                break;
            }
            let (name, _) = self.symbol()?;
            let t = self.next()?;
            let v = match t.kind {
                TokenKind::Int(i) => Value::Int(i),
                TokenKind::Float(f) => Value::Float(f),
                TokenKind::Str(s) => Value::str(s),
                TokenKind::Symbol(s) if s == "true" => Value::Bool(true),
                TokenKind::Symbol(s) if s == "false" => Value::Bool(false),
                other => return Err(perr(t.offset, format!("expected a literal, found {other}"))),
            };
            let ty = match &v {
                Value::Int(_) => AttrType::Int,
                Value::Float(_) => AttrType::Float,
                Value::Bool(_) => AttrType::Bool,
                Value::Str(_) => AttrType::Str,
            };
            fields.push((name, ty));
            values.push(v);
        }
        let schema =
            Schema::new(fields.into_iter().map(|(n, t)| seq_core::Field::new(n, t)).collect());
        Ok((schema, Record::new(values)))
    }

    fn attr_list(&mut self) -> Result<Vec<String>> {
        self.expect(&TokenKind::LBracket)?;
        let mut out = Vec::new();
        loop {
            let t = self.next()?;
            match t.kind {
                TokenKind::RBracket => break,
                TokenKind::Symbol(s) => out.push(s),
                other => return Err(perr(t.offset, format!("expected attribute, found {other}"))),
            }
        }
        Ok(out)
    }

    fn window(&mut self) -> Result<Window> {
        let t = self.next()?;
        match t.kind {
            TokenKind::Symbol(s) if s == "cumulative" => Ok(Window::Cumulative),
            TokenKind::Symbol(s) if s == "wholespan" => Ok(Window::WholeSpan),
            TokenKind::LParen => {
                let (kind, at) = self.symbol()?;
                let w = match kind.as_str() {
                    "trailing" => {
                        let n = self.int()?;
                        if n < 1 {
                            return Err(perr(at, "trailing window needs n >= 1"));
                        }
                        Window::trailing(n as u32)
                    }
                    "leading" => {
                        let n = self.int()?;
                        if n < 1 {
                            return Err(perr(at, "leading window needs n >= 1"));
                        }
                        Window::leading(n as u32)
                    }
                    "sliding" => {
                        let lo = self.int()?;
                        let hi = self.int()?;
                        if lo > hi {
                            return Err(perr(at, "sliding window needs lo <= hi"));
                        }
                        Window::Sliding { lo, hi }
                    }
                    other => return Err(perr(at, format!("unknown window {other:?}"))),
                };
                self.expect(&TokenKind::RParen)?;
                Ok(w)
            }
            other => Err(perr(t.offset, format!("expected a window, found {other}"))),
        }
    }

    fn expr(&mut self) -> Result<Expr> {
        let t = self.next()?;
        match t.kind {
            TokenKind::Int(i) => Ok(Expr::lit(i)),
            TokenKind::Float(f) => Ok(Expr::lit(f)),
            TokenKind::Str(s) => Ok(Expr::Lit(Value::str(s))),
            TokenKind::Symbol(s) if s == "true" => Ok(Expr::lit(true)),
            TokenKind::Symbol(s) if s == "false" => Ok(Expr::lit(false)),
            TokenKind::Symbol(s) => Ok(Expr::attr(s)),
            TokenKind::LParen => {
                let (op, at) = self.symbol()?;
                let e = match op.as_str() {
                    "not" => self.expr()?.negate(),
                    ">" | ">=" | "<" | "<=" | "=" | "!=" | "and" | "or" | "+" | "-" | "*" | "/" => {
                        let a = self.expr()?;
                        let b = self.expr()?;
                        match op.as_str() {
                            ">" => a.gt(b),
                            ">=" => a.ge(b),
                            "<" => a.lt(b),
                            "<=" => a.le(b),
                            "=" => a.eq(b),
                            "!=" => a.ne(b),
                            "and" => a.and(b),
                            "or" => a.or(b),
                            "+" => a.add(b),
                            "-" => a.sub(b),
                            "*" => a.mul(b),
                            "/" => a.div(b),
                            _ => unreachable!(),
                        }
                    }
                    other => return Err(perr(at, format!("unknown expression head {other:?}"))),
                };
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(perr(t.offset, format!("expected an expression, found {other}"))),
        }
    }
}

/// Parse a complete query.
pub fn parse_query(input: &str) -> Result<QueryGraph> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.node()?;
    if let Some(t) = p.peek() {
        return Err(perr(t.offset, format!("trailing input starting with {}", t.kind)));
    }
    Ok(q.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::schema;
    use std::collections::HashMap;

    fn provider() -> HashMap<String, Schema> {
        let stock = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
        let mut m = HashMap::new();
        for n in ["IBM", "HP", "DEC", "Quakes", "Volcanos"] {
            m.insert(n.to_string(), stock.clone());
        }
        m.insert(
            "Quakes".into(),
            schema(&[("time", AttrType::Int), ("strength", AttrType::Float)]),
        );
        m.insert("Volcanos".into(), schema(&[("time", AttrType::Int), ("name", AttrType::Str)]));
        m
    }

    #[test]
    fn parses_example_1_1() {
        let q = parse_query(
            r#"
            (project [name]
              (select (> strength 7.0)
                (compose (base Volcanos) (prev (base Quakes)))))
            "#,
        )
        .unwrap();
        let r = q.resolve(&provider()).unwrap();
        assert_eq!(r.output_schema().arity(), 1);
        assert_eq!(r.base_names().len(), 2);
    }

    #[test]
    fn parses_fig3() {
        let q =
            parse_query("(compose (base DEC) (compose (> close close_r) (base IBM) (base HP)))")
                .unwrap();
        let r = q.resolve(&provider()).unwrap();
        assert_eq!(r.output_schema().arity(), 6);
    }

    #[test]
    fn parses_aggregates_and_windows() {
        for (src, ok) in [
            ("(agg sum close (trailing 6) (base IBM))", true),
            ("(agg avg close (sliding -3 0) (base IBM))", true),
            ("(agg max close cumulative (base IBM))", true),
            ("(agg min close wholespan (base IBM))", true),
            ("(agg median close (trailing 6) (base IBM))", false),
            ("(agg sum close (trailing 0) (base IBM))", false),
            ("(agg sum close (sliding 3 0) (base IBM))", false),
        ] {
            let r = parse_query(src);
            assert_eq!(r.is_ok(), ok, "{src}: {r:?}");
        }
    }

    #[test]
    fn parses_offsets() {
        let q = parse_query("(offset -5 (voffset -2 (next (base IBM))))").unwrap();
        assert!(q.resolve(&provider()).is_ok());
        assert!(parse_query("(voffset 0 (base IBM))").is_err());
    }

    #[test]
    fn parses_constants() {
        let q =
            parse_query(r#"(compose (> close threshold) (base IBM) (const [threshold 100.0]))"#)
                .unwrap();
        let r = q.resolve(&provider()).unwrap();
        assert_eq!(r.output_schema().arity(), 3);
    }

    #[test]
    fn arithmetic_and_boolean_expressions() {
        let q = parse_query("(select (and (> (* close 2.0) 100.0) (not (= time 5))) (base IBM))")
            .unwrap();
        assert!(q.resolve(&provider()).is_ok());
    }

    #[test]
    fn error_messages_carry_positions() {
        let e = parse_query("(bogus (base IBM))").unwrap_err().to_string();
        assert!(e.contains("unknown operator"), "{e}");
        let e = parse_query("(select (> close 1.0) (base IBM)) extra").unwrap_err().to_string();
        assert!(e.contains("trailing input"), "{e}");
        let e = parse_query("(select (>> close 1.0) (base IBM))").unwrap_err().to_string();
        assert!(e.contains("unknown expression head"), "{e}");
        assert!(parse_query("(base IBM").is_err()); // missing paren
        assert!(parse_query("").is_err());
    }

    #[test]
    fn parsed_queries_evaluate() {
        use seq_core::{record, BaseSequence, Sequence};
        use seq_ops::ReferenceEvaluator;
        use std::sync::Arc;

        let base = BaseSequence::from_entries(
            schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
            (1..=10).map(|p| (p, record![p, p as f64])).collect(),
        )
        .unwrap();
        let mut seqs: HashMap<String, Arc<dyn Sequence>> = HashMap::new();
        seqs.insert("IBM".into(), Arc::new(base));
        let schemas: HashMap<String, Schema> =
            seqs.iter().map(|(k, v)| (k.clone(), v.schema().clone())).collect();

        let q =
            parse_query("(agg sum close (trailing 3) (select (> close 2.0) (base IBM)))").unwrap();
        let r = q.resolve(&schemas).unwrap();
        let ev = ReferenceEvaluator::new(&r, &seqs).unwrap();
        // At position 5: records 3,4,5 -> 12.
        let v = ev.eval(5).unwrap().unwrap();
        assert_eq!(v.value(0).unwrap().as_f64().unwrap(), 12.0);
    }
}
