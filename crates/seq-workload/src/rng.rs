//! A tiny deterministic PRNG for workload generation and tests.
//!
//! The repository builds in offline environments, so the external `rand`
//! crate is not a dependency; this xorshift*/splitmix generator provides the
//! small surface the generators and tests need (`gen_range`, `gen_bool`),
//! with stable output across platforms and releases. It is emphatically not
//! cryptographic — it only has to be fast, seedable, and well-mixed enough
//! that density/correlation sampling behaves like coin flips.

use std::ops::{Range, RangeInclusive};

/// Seedable xorshift64* generator with a splitmix64-mixed seed.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Deterministic generator from a 64-bit seed (any seed is fine,
    /// including zero).
    pub fn seed_from_u64(seed: u64) -> Rng {
        // Splitmix64 step decorrelates adjacent seeds before xorshift runs.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Rng { state: z | 1 } // xorshift state must be non-zero
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high-quality bits -> [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform draw from an integer or float range (`a..b` or `a..=b`).
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform u64 below `bound` (> 0), without modulo bias worth caring
    /// about for workload generation (Lemire-style multiply-shift).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draw one uniform element.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range over an empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(width) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range over an empty range");
                let width = (hi as i128 - lo as i128 + 1) as u128;
                if width > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width i64/u64 range
                }
                (lo as i128 + rng.bounded_u64(width as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i32, i64, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range over an empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range over an empty range");
        lo + rng.gen_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
            let j = rng.gen_range(0usize..3);
            assert!(j < 3);
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn bool_frequency_tracks_probability() {
        let mut rng = Rng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "measured {frac}");
    }

    #[test]
    fn f64_covers_unit_interval() {
        let mut rng = Rng::seed_from_u64(1);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }
}
