//! Parameterized, seeded sequence generation.
//!
//! Every experiment depends on exactly the meta-data knobs the paper's
//! optimizer consumes: span, density, the correlation between two sequences'
//! Null positions (§3), and value distributions. [`SeqSpec`] controls all
//! four, deterministically from a seed.

use seq_core::{record, AttrType, BaseSequence, Schema, Span};

use crate::rng::Rng;

/// The standard two-attribute stock schema used across the experiments.
pub fn stock_schema() -> Schema {
    seq_core::schema(&[("time", AttrType::Int), ("close", AttrType::Float)])
}

/// Specification of one generated sequence.
#[derive(Debug, Clone)]
pub struct SeqSpec {
    /// Declared valid range.
    pub span: Span,
    /// Fraction of span positions that carry a record.
    pub density: f64,
    /// RNG seed (generation is fully deterministic given the spec).
    pub seed: u64,
    /// Starting price of the random walk.
    pub start_value: f64,
    /// Per-step standard deviation of the walk.
    pub volatility: f64,
}

impl SeqSpec {
    /// A spec with default walk parameters (start 100, volatility 1).
    pub fn new(span: Span, density: f64, seed: u64) -> SeqSpec {
        SeqSpec {
            span,
            density: density.clamp(0.0, 1.0),
            seed,
            start_value: 100.0,
            volatility: 1.0,
        }
    }

    /// Override the random walk's starting value and per-step volatility.
    pub fn with_walk(mut self, start_value: f64, volatility: f64) -> SeqSpec {
        self.start_value = start_value;
        self.volatility = volatility;
        self
    }

    /// Generate the non-empty positions of this spec.
    pub fn positions(&self) -> Vec<i64> {
        let mut rng = Rng::seed_from_u64(self.seed);
        self.span.positions().filter(|_| rng.gen_bool(self.density)).collect()
    }

    /// Materialize a random-walk stock sequence over this spec's positions.
    pub fn generate(&self) -> BaseSequence {
        let positions = self.positions();
        self.generate_at(&positions)
    }

    /// Materialize the random walk at explicitly supplied positions (used
    /// for correlated sequences).
    pub fn generate_at(&self, positions: &[i64]) -> BaseSequence {
        // Separate RNG stream for values so that changing density does not
        // change the price path shape.
        let mut rng = Rng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        let mut price = self.start_value;
        let entries = positions
            .iter()
            .map(|&p| {
                price += rng.gen_range(-self.volatility..=self.volatility);
                price = price.max(1.0);
                (p, record![p, price])
            })
            .collect();
        BaseSequence::from_entries(stock_schema(), entries)
            .expect("generated positions are unique and sorted")
            .with_declared_span(self.span)
    }
}

/// Generate a pair of sequences whose Null positions are correlated:
/// `correlation` = 1 makes the second sequence occupy exactly the first's
/// positions (thinned to its own density); 0 draws them independently; −1
/// prefers the complement of the first's positions.
pub fn correlated_pair(a: &SeqSpec, b: &SeqSpec, correlation: f64) -> (BaseSequence, BaseSequence) {
    let a_positions = a.positions();
    let sa = a.generate_at(&a_positions);

    let mut rng = Rng::seed_from_u64(b.seed.wrapping_add(7));
    let in_a: std::collections::HashSet<i64> = a_positions.iter().copied().collect();
    let c = correlation.clamp(-1.0, 1.0);
    // Probability of a position being chosen, conditioned on membership in A.
    // Unconditional density must stay ≈ b.density.
    let d = b.density;
    let da = a.density.clamp(1e-9, 1.0);
    let p_in = (d + c * d * (1.0 - da) / da.max(d)).clamp(0.0, 1.0);
    let p_out = if (1.0 - da) < 1e-9 { d } else { ((d - p_in * da) / (1.0 - da)).clamp(0.0, 1.0) };
    let b_positions: Vec<i64> = b
        .span
        .positions()
        .filter(|p| {
            let pr = if in_a.contains(p) { p_in } else { p_out };
            rng.gen_bool(pr)
        })
        .collect();
    let sb = b.generate_at(&b_positions);
    (sa, sb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::Sequence;

    #[test]
    fn generation_is_deterministic() {
        let spec = SeqSpec::new(Span::new(1, 500), 0.7, 42);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.record_count(), b.record_count());
        assert_eq!(a.entries(), b.entries());
        assert_eq!(a.meta().span, Span::new(1, 500));
    }

    #[test]
    fn density_is_respected_approximately() {
        let spec = SeqSpec::new(Span::new(1, 10_000), 0.3, 7);
        let s = spec.generate();
        let measured = s.record_count() as f64 / 10_000.0;
        assert!((measured - 0.3).abs() < 0.03, "measured density {measured}");
    }

    #[test]
    fn full_density_fills_every_position() {
        let spec = SeqSpec::new(Span::new(10, 20), 1.0, 3);
        let s = spec.generate();
        assert_eq!(s.record_count(), 11);
    }

    #[test]
    fn values_walk_positively() {
        let spec = SeqSpec::new(Span::new(1, 100), 1.0, 11).with_walk(50.0, 2.0);
        let s = spec.generate();
        for (_, r) in s.entries() {
            assert!(r.value(1).unwrap().as_f64().unwrap() >= 1.0);
        }
    }

    #[test]
    fn correlation_one_nests_positions() {
        let a = SeqSpec::new(Span::new(1, 5_000), 0.5, 1);
        let b = SeqSpec::new(Span::new(1, 5_000), 0.3, 2);
        let (sa, sb) = correlated_pair(&a, &b, 1.0);
        let a_set: std::collections::HashSet<i64> = sa.entries().iter().map(|(p, _)| *p).collect();
        let inside = sb.entries().iter().filter(|(p, _)| a_set.contains(p)).count();
        let frac = inside as f64 / sb.record_count() as f64;
        assert!(frac > 0.95, "positively correlated fraction {frac}");
    }

    #[test]
    fn correlation_negative_avoids_positions() {
        let a = SeqSpec::new(Span::new(1, 5_000), 0.5, 1);
        let b = SeqSpec::new(Span::new(1, 5_000), 0.3, 2);
        let (sa, sb) = correlated_pair(&a, &b, -1.0);
        let a_set: std::collections::HashSet<i64> = sa.entries().iter().map(|(p, _)| *p).collect();
        let inside = sb.entries().iter().filter(|(p, _)| a_set.contains(p)).count();
        let frac = inside as f64 / sb.record_count().max(1) as f64;
        assert!(frac < 0.25, "negatively correlated fraction {frac}");
    }

    #[test]
    fn correlation_zero_is_independent() {
        let a = SeqSpec::new(Span::new(1, 20_000), 0.5, 1);
        let b = SeqSpec::new(Span::new(1, 20_000), 0.4, 2);
        let (sa, sb) = correlated_pair(&a, &b, 0.0);
        let a_set: std::collections::HashSet<i64> = sa.entries().iter().map(|(p, _)| *p).collect();
        let inside = sb.entries().iter().filter(|(p, _)| a_set.contains(p)).count();
        let frac = inside as f64 / sb.record_count() as f64;
        // Should be ≈ density of A.
        assert!((frac - 0.5).abs() < 0.05, "independent overlap fraction {frac}");
    }
}
