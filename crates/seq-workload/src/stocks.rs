//! The Table 1 stock-market world, optionally scaled.
//!
//! | Sequence | Span      | Density |
//! |----------|-----------|---------|
//! | IBM      | 200..500  | 0.95    |
//! | DEC      | 1..350    | 0.7     |
//! | HP       | 1..750    | 1.0     |
//!
//! `scale = k` multiplies every span endpoint by `k`, preserving the
//! densities and overlap structure, so experiments can grow the data while
//! keeping the Figure 3 shape.

use seq_core::{BaseSequence, Span};
use seq_storage::Catalog;

use crate::generator::SeqSpec;

/// Table 1 spans at a given scale.
pub fn table1_spans(scale: i64) -> [(&'static str, Span, f64); 3] {
    assert!(scale >= 1);
    [
        ("IBM", Span::new(200 * scale, 500 * scale), 0.95),
        ("DEC", Span::new(scale, 350 * scale), 0.7),
        ("HP", Span::new(scale, 750 * scale), 1.0),
    ]
}

/// Generate the three Table 1 sequences at the given scale.
pub fn table1_sequences(scale: i64, seed: u64) -> Vec<(&'static str, BaseSequence)> {
    table1_spans(scale)
        .into_iter()
        .enumerate()
        .map(|(i, (name, span, density))| {
            // All three walks start at the same level so that value
            // comparisons between them (e.g. Figure 3's IBM.close >
            // HP.close) stay selective at every scale.
            let spec = SeqSpec::new(span, density, seed.wrapping_add(i as u64 * 1000))
                .with_walk(100.0, 1.5);
            (name, spec.generate())
        })
        .collect()
}

/// Register the Table 1 world into a fresh catalog.
pub fn table1_catalog(scale: i64, seed: u64, page_capacity: usize) -> Catalog {
    let mut c = Catalog::new();
    c.set_page_capacity(page_capacity);
    for (name, base) in table1_sequences(scale, seed) {
        c.register(name, &base);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::Sequence;

    #[test]
    fn spans_and_densities_match_table1() {
        let seqs = table1_sequences(1, 42);
        let ibm = &seqs[0].1;
        assert_eq!(ibm.meta().span, Span::new(200, 500));
        assert!((ibm.meta().density - 0.95).abs() < 0.05);
        let dec = &seqs[1].1;
        assert_eq!(dec.meta().span, Span::new(1, 350));
        assert!((dec.meta().density - 0.7).abs() < 0.07);
        let hp = &seqs[2].1;
        assert_eq!(hp.meta().span, Span::new(1, 750));
        assert_eq!(hp.meta().density, 1.0);
    }

    #[test]
    fn scaling_preserves_shape() {
        let seqs = table1_sequences(10, 42);
        assert_eq!(seqs[0].1.meta().span, Span::new(2000, 5000));
        assert!((seqs[0].1.meta().density - 0.95).abs() < 0.02);
    }

    #[test]
    fn catalog_contains_all_three() {
        let c = table1_catalog(1, 1, 32);
        for name in ["IBM", "DEC", "HP"] {
            assert!(c.get(name).is_ok(), "{name} missing");
        }
        assert_eq!(c.page_capacity(), 32);
    }
}
