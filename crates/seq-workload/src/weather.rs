//! The Example 1.1 weather-monitoring world: earthquakes and volcano
//! eruptions sequenced by recording time.

use crate::rng::Rng;

use seq_core::{record, AttrType, BaseSequence, Schema, Span};
use seq_storage::Catalog;

/// Schema of the earthquake sequence: `(time, strength)`.
pub fn quake_schema() -> Schema {
    seq_core::schema(&[("time", AttrType::Int), ("strength", AttrType::Float)])
}

/// Schema of the volcano-eruption sequence: `(time, name)`.
pub fn volcano_schema() -> Schema {
    seq_core::schema(&[("time", AttrType::Int), ("name", AttrType::Str)])
}

/// Parameters of the weather world.
#[derive(Debug, Clone)]
pub struct WeatherSpec {
    /// Timeline the events are scattered over.
    pub span: Span,
    /// Number of earthquake events.
    pub n_quakes: usize,
    /// Number of volcano eruptions.
    pub n_volcanos: usize,
    /// RNG seed (generation is deterministic).
    pub seed: u64,
    /// Richter strengths are drawn uniformly from this range.
    pub strength_range: (f64, f64),
}

impl WeatherSpec {
    /// A spec with the default strength range (4.0–9.0 Richter).
    pub fn new(span: Span, n_quakes: usize, n_volcanos: usize, seed: u64) -> WeatherSpec {
        WeatherSpec { span, n_quakes, n_volcanos, seed, strength_range: (4.0, 9.0) }
    }
}

/// The generated world: two base sequences over disjoint positions (events
/// are interleaved on the shared timeline; a quake and an eruption never
/// share an exact recording instant).
#[derive(Debug, Clone)]
pub struct WeatherWorld {
    /// The earthquake sequence.
    pub quakes: BaseSequence,
    /// The volcano-eruption sequence.
    pub volcanos: BaseSequence,
}

/// Generate the world: distinct, interleaved positions for all events.
pub fn generate(spec: &WeatherSpec) -> WeatherWorld {
    assert!(spec.span.is_bounded());
    let total = spec.n_quakes + spec.n_volcanos;
    assert!((total as u64) <= spec.span.len(), "span too small for {total} events");
    let mut rng = Rng::seed_from_u64(spec.seed);

    // Sample distinct positions, then split them between the event kinds.
    let mut positions = std::collections::BTreeSet::new();
    while positions.len() < total {
        positions.insert(rng.gen_range(spec.span.start()..=spec.span.end()));
    }
    let positions: Vec<i64> = positions.into_iter().collect();
    let mut is_quake: Vec<bool> = (0..total).map(|i| i < spec.n_quakes).collect();
    // Fisher–Yates interleave.
    for i in (1..total).rev() {
        let j = rng.gen_range(0..=i);
        is_quake.swap(i, j);
    }

    let (lo, hi) = spec.strength_range;
    let mut quakes = Vec::with_capacity(spec.n_quakes);
    let mut volcanos = Vec::with_capacity(spec.n_volcanos);
    for (k, &p) in positions.iter().enumerate() {
        if is_quake[k] {
            quakes.push((p, record![p, rng.gen_range(lo..hi)]));
        } else {
            let name = format!("volcano-{}", volcanos.len());
            volcanos.push((p, record![p, name.as_str()]));
        }
    }
    WeatherWorld {
        quakes: BaseSequence::from_entries(quake_schema(), quakes)
            .expect("distinct positions")
            .with_declared_span(spec.span),
        volcanos: BaseSequence::from_entries(volcano_schema(), volcanos)
            .expect("distinct positions")
            .with_declared_span(spec.span),
    }
}

/// Register the world into a fresh catalog as `Quakes` / `Volcanos`.
pub fn weather_catalog(spec: &WeatherSpec, page_capacity: usize) -> (Catalog, WeatherWorld) {
    let world = generate(spec);
    let mut c = Catalog::new();
    c.set_page_capacity(page_capacity);
    c.register("Quakes", &world.quakes);
    c.register("Volcanos", &world.volcanos);
    (c, world)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::Sequence;

    #[test]
    fn counts_and_spans() {
        let spec = WeatherSpec::new(Span::new(1, 10_000), 300, 50, 9);
        let w = generate(&spec);
        assert_eq!(w.quakes.record_count(), 300);
        assert_eq!(w.volcanos.record_count(), 50);
        assert_eq!(w.quakes.meta().span, Span::new(1, 10_000));
    }

    #[test]
    fn positions_are_disjoint() {
        let spec = WeatherSpec::new(Span::new(1, 2_000), 200, 100, 5);
        let w = generate(&spec);
        let q: std::collections::HashSet<i64> =
            w.quakes.entries().iter().map(|(p, _)| *p).collect();
        assert!(w.volcanos.entries().iter().all(|(p, _)| !q.contains(p)));
    }

    #[test]
    fn strengths_in_range() {
        let spec = WeatherSpec::new(Span::new(1, 5_000), 500, 10, 2);
        let w = generate(&spec);
        for (_, r) in w.quakes.entries() {
            let s = r.value(1).unwrap().as_f64().unwrap();
            assert!((4.0..9.0).contains(&s));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = WeatherSpec::new(Span::new(1, 1_000), 50, 20, 77);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.quakes.entries(), b.quakes.entries());
        assert_eq!(a.volcanos.entries(), b.volcanos.entries());
    }

    #[test]
    fn catalog_registration() {
        let spec = WeatherSpec::new(Span::new(1, 1_000), 50, 20, 1);
        let (c, _) = weather_catalog(&spec, 64);
        assert!(c.get("Quakes").is_ok());
        assert!(c.get("Volcanos").is_ok());
    }

    #[test]
    #[should_panic(expected = "span too small")]
    fn overfull_span_panics() {
        generate(&WeatherSpec::new(Span::new(1, 10), 20, 5, 1));
    }
}

/// Schema of the regional earthquake sequence: `(time, strength, region)`
/// — the §5.2 correlated-query extension.
pub fn regional_quake_schema() -> Schema {
    seq_core::schema(&[
        ("time", AttrType::Int),
        ("strength", AttrType::Float),
        ("region", AttrType::Str),
    ])
}

/// Schema of the regional volcano sequence: `(time, name, region)`.
pub fn regional_volcano_schema() -> Schema {
    seq_core::schema(&[("time", AttrType::Int), ("name", AttrType::Str), ("region", AttrType::Str)])
}

/// Generate the weather world with each event assigned to one of
/// `n_regions` regions — the data for "the most recent earthquake *in the
/// same region*" (§5.2).
pub fn generate_regional(spec: &WeatherSpec, n_regions: usize) -> WeatherWorld {
    assert!(n_regions >= 1);
    let plain = generate(spec);
    let mut rng = Rng::seed_from_u64(spec.seed.wrapping_add(0xBEEF));
    let mut tag = |entries: &[(i64, seq_core::Record)], name_attr: bool| {
        entries
            .iter()
            .map(|(p, r)| {
                let region = format!("region-{}", rng.gen_range(0..n_regions));
                let rec = if name_attr {
                    record![
                        r.value(0).unwrap().as_i64().unwrap(),
                        r.value(1).unwrap().as_str().unwrap(),
                        region.as_str()
                    ]
                } else {
                    record![
                        r.value(0).unwrap().as_i64().unwrap(),
                        r.value(1).unwrap().as_f64().unwrap(),
                        region.as_str()
                    ]
                };
                (*p, rec)
            })
            .collect::<Vec<_>>()
    };
    let quakes = tag(plain.quakes.entries(), false);
    let volcanos = tag(plain.volcanos.entries(), true);
    WeatherWorld {
        quakes: BaseSequence::from_entries(regional_quake_schema(), quakes)
            .expect("positions unchanged")
            .with_declared_span(spec.span),
        volcanos: BaseSequence::from_entries(regional_volcano_schema(), volcanos)
            .expect("positions unchanged")
            .with_declared_span(spec.span),
    }
}

#[cfg(test)]
mod regional_tests {
    use super::*;
    use seq_core::Sequence;

    #[test]
    fn regional_generation_tags_every_event() {
        let spec = WeatherSpec::new(Span::new(1, 5_000), 200, 50, 3);
        let w = generate_regional(&spec, 4);
        assert_eq!(w.quakes.record_count(), 200);
        assert_eq!(w.quakes.schema().arity(), 3);
        let mut seen = std::collections::HashSet::new();
        for (_, r) in w.quakes.entries() {
            seen.insert(r.value(2).unwrap().as_str().unwrap().to_string());
        }
        assert!(seen.len() > 1 && seen.len() <= 4);
    }

    #[test]
    fn regional_positions_match_plain_world() {
        let spec = WeatherSpec::new(Span::new(1, 5_000), 100, 30, 9);
        let plain = generate(&spec);
        let regional = generate_regional(&spec, 3);
        let p1: Vec<i64> = plain.quakes.entries().iter().map(|(p, _)| *p).collect();
        let p2: Vec<i64> = regional.quakes.entries().iter().map(|(p, _)| *p).collect();
        assert_eq!(p1, p2);
    }
}
