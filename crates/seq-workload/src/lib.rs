//! # seq-workload — seeded workload generation
//!
//! Deterministic generators for the data worlds the paper's examples use:
//!
//! - [`generator`] — parameterized sequences (span, density, Null-position
//!   correlation, random-walk values);
//! - [`stocks`] — the Table 1 stock-market world (IBM/DEC/HP), scalable;
//! - [`weather`] — the Example 1.1 volcano/earthquake world;
//! - [`queries`] — canned query graphs for every figure and example;
//! - [`rng`] — the in-repo seedable PRNG all generation draws from (the
//!   repository has no external dependencies, so `rand` is not used).

pub mod generator;
pub mod queries;
pub mod rng;
pub mod stocks;
pub mod weather;

pub use generator::{correlated_pair, stock_schema, SeqSpec};
pub use rng::Rng;
pub use stocks::{table1_catalog, table1_sequences, table1_spans};
pub use weather::{
    generate as generate_weather, generate_regional, weather_catalog, WeatherSpec, WeatherWorld,
};
