//! Canned query graphs for the paper's figures and examples.

use seq_core::Value;
use seq_ops::{AggFunc, Expr, QueryGraph, SeqQuery, Window};

/// Example 1.1 / Figure 1: "For which volcano eruptions was the strength of
/// the most recent earthquake greater than `threshold`?"
///
/// Volcanos ∘ Previous(Quakes), filtered on the quake strength, projected to
/// the volcano name (and kept time for verification).
pub fn example_1_1(threshold: f64) -> QueryGraph {
    SeqQuery::base("Volcanos")
        .compose_with(SeqQuery::base("Quakes").previous())
        .select(Expr::attr("strength").gt(Expr::lit(threshold)))
        .project(["name", "time"])
        .build()
}

/// Figure 3: the price of DEC when IBM's close beats HP's close.
pub fn fig3_span_query() -> QueryGraph {
    SeqQuery::base("DEC")
        .compose_with(
            SeqQuery::base("IBM").compose_filtered(
                SeqQuery::base("HP"),
                Expr::attr("close").gt(Expr::attr("close_r")),
            ),
        )
        .build()
}

/// Figure 5.A: the sum of IBM's close over a trailing window.
pub fn fig5a_moving_sum(window: u32) -> QueryGraph {
    SeqQuery::base("IBM").aggregate(AggFunc::Sum, "close", Window::trailing(window)).build()
}

/// Figure 5.B: DEC composed with Previous(σ(IBM ∘ HP)) — the derived-input
/// value offset that motivates Cache-Strategy-B.
pub fn fig5b_previous_derived() -> QueryGraph {
    SeqQuery::base("DEC")
        .compose_with(
            SeqQuery::base("IBM")
                .compose_filtered(
                    SeqQuery::base("HP"),
                    Expr::attr("close").gt(Expr::attr("close_r")),
                )
                .previous(),
        )
        .build()
}

/// A plain positional join of two named sequences, optionally filtered.
pub fn pair_join(left: &str, right: &str, predicate: Option<Expr>) -> QueryGraph {
    let l = SeqQuery::base(left);
    let r = SeqQuery::base(right);
    match predicate {
        Some(p) => l.compose_filtered(r, p).build(),
        None => l.compose_with(r).build(),
    }
}

/// An N-way positional join over the named sequences (used by the
/// Property 4.1 optimizer-complexity experiment).
pub fn n_way_join(names: &[String]) -> QueryGraph {
    assert!(!names.is_empty());
    let mut q = SeqQuery::base(&names[0]);
    for n in &names[1..] {
        q = q.compose_with(SeqQuery::base(n));
    }
    q.build()
}

/// Golden-cross detection: the short moving average of `name` crossing above
/// the long one — Compose(short-MA, long-MA) where short > long but the
/// previous short ≤ previous long would need a Previous; we express the
/// simpler "short above long" signal plus a threshold margin.
pub fn golden_cross(name: &str, short: u32, long: u32, margin: f64) -> QueryGraph {
    assert!(short < long);
    let short_ma = SeqQuery::base(name).aggregate(AggFunc::Avg, "close", Window::trailing(short));
    let long_ma = SeqQuery::base(name).aggregate(AggFunc::Avg, "close", Window::trailing(long));
    short_ma
        .compose_filtered(
            long_ma,
            Expr::attr("avg_close")
                .gt(Expr::attr("avg_close_r").add(Expr::Lit(Value::Float(margin)))),
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::{schema, AttrType, Schema};
    use std::collections::HashMap;

    fn provider() -> HashMap<String, Schema> {
        let stock = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
        let mut m: HashMap<String, Schema> = ["IBM", "HP", "DEC", "S0", "S1", "S2", "S3"]
            .iter()
            .map(|n| (n.to_string(), stock.clone()))
            .collect();
        m.insert(
            "Quakes".into(),
            schema(&[("time", AttrType::Int), ("strength", AttrType::Float)]),
        );
        m.insert("Volcanos".into(), schema(&[("time", AttrType::Int), ("name", AttrType::Str)]));
        m
    }

    #[test]
    fn all_canned_queries_resolve() {
        let p = provider();
        assert!(example_1_1(7.0).resolve(&p).is_ok());
        assert!(fig3_span_query().resolve(&p).is_ok());
        assert!(fig5a_moving_sum(6).resolve(&p).is_ok());
        assert!(fig5b_previous_derived().resolve(&p).is_ok());
        assert!(pair_join("IBM", "HP", None).resolve(&p).is_ok());
        assert!(golden_cross("IBM", 5, 20, 0.0).resolve(&p).is_ok());
        let names: Vec<String> = (0..4).map(|i| format!("S{i}")).collect();
        assert!(n_way_join(&names).resolve(&p).is_ok());
    }

    #[test]
    fn example_1_1_projects_name_and_time() {
        let p = provider();
        let r = example_1_1(7.0).resolve(&p).unwrap();
        let s = r.output_schema();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.field(0).unwrap().name, "name");
    }

    #[test]
    fn n_way_join_arity() {
        let p = provider();
        let names: Vec<String> = (0..3).map(|i| format!("S{i}")).collect();
        let r = n_way_join(&names).resolve(&p).unwrap();
        assert_eq!(r.output_schema().arity(), 6);
        assert_eq!(r.base_names().len(), 3);
    }
}
