//! The catalog: named base sequences plus the shared storage context
//! (statistics counters and optional buffer pool).

use std::collections::HashMap;
use std::sync::Arc;

use seq_core::{BaseSequence, Result, SeqError, SeqMeta, Sequence};

use crate::buffer::BufferPool;
use crate::stats::AccessStats;
use crate::store::{StoredSequence, DEFAULT_PAGE_CAPACITY};

/// A named collection of stored sequences sharing one statistics context.
pub struct Catalog {
    stats: Arc<AccessStats>,
    buffer: Option<Arc<BufferPool>>,
    page_capacity: usize,
    seqs: HashMap<String, Arc<StoredSequence>>,
    next_id: u32,
}

impl Catalog {
    /// A catalog with no buffer pool: every page touch is charged as a read.
    pub fn new() -> Catalog {
        Catalog {
            stats: AccessStats::new(),
            buffer: None,
            page_capacity: DEFAULT_PAGE_CAPACITY,
            seqs: HashMap::new(),
            next_id: 0,
        }
    }

    /// A catalog whose sequences share an LRU buffer pool of `pool_pages`.
    pub fn with_buffer_pool(pool_pages: usize) -> Catalog {
        let mut c = Catalog::new();
        c.buffer = Some(Arc::new(BufferPool::new(pool_pages)));
        c
    }

    /// Set the page capacity used for subsequently registered sequences.
    pub fn set_page_capacity(&mut self, records_per_page: usize) {
        assert!(records_per_page > 0);
        self.page_capacity = records_per_page;
    }

    /// Records per page for newly registered sequences.
    pub fn page_capacity(&self) -> usize {
        self.page_capacity
    }

    /// Register (materialize) a base sequence under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        base: &BaseSequence,
    ) -> Arc<StoredSequence> {
        let name = name.into();
        let stored = Arc::new(StoredSequence::from_base(
            self.next_id,
            name.clone(),
            base,
            self.page_capacity,
            self.stats.clone(),
            self.buffer.clone(),
        ));
        self.next_id += 1;
        self.seqs.insert(name, stored.clone());
        stored
    }

    /// Look up a sequence by name.
    pub fn get(&self, name: &str) -> Result<Arc<StoredSequence>> {
        self.seqs.get(name).cloned().ok_or_else(|| SeqError::UnknownSequence(name.to_string()))
    }

    /// Look up a sequence as the abstract [`Sequence`] trait object.
    pub fn get_sequence(&self, name: &str) -> Result<Arc<dyn Sequence>> {
        Ok(self.get(name)? as Arc<dyn Sequence>)
    }

    /// Meta-data of a registered sequence.
    pub fn meta(&self, name: &str) -> Result<SeqMeta> {
        Ok(self.get(name)?.meta().clone())
    }

    /// Names of all registered sequences.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.seqs.keys().map(|s| s.as_str())
    }

    /// The shared access counters.
    pub fn stats(&self) -> &Arc<AccessStats> {
        &self.stats
    }

    /// The shared buffer pool, when configured.
    pub fn buffer(&self) -> Option<&Arc<BufferPool>> {
        self.buffer.as_ref()
    }

    /// Reset statistics (and drop buffered pages) between measurements.
    pub fn reset_measurement(&self) {
        self.stats.reset();
        if let Some(pool) = &self.buffer {
            pool.clear();
        }
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::{record, schema, AttrType, Span};

    fn base() -> BaseSequence {
        BaseSequence::from_entries(
            schema(&[("x", AttrType::Int)]),
            (1..=10).map(|p| (p, record![p])).collect(),
        )
        .unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        c.register("IBM", &base());
        assert!(c.get("IBM").is_ok());
        assert!(c.get("DEC").is_err());
        assert_eq!(c.meta("IBM").unwrap().span, Span::new(1, 10));
        assert_eq!(c.names().count(), 1);
    }

    #[test]
    fn sequences_share_stats() {
        let mut c = Catalog::new();
        c.set_page_capacity(4);
        c.register("A", &base());
        c.register("B", &base());
        c.get("A").unwrap().get(3);
        c.get("B").unwrap().get(3);
        assert_eq!(c.stats().snapshot().probes, 2);
        c.reset_measurement();
        assert_eq!(c.stats().snapshot().probes, 0);
    }

    #[test]
    fn buffer_pool_is_shared_and_cleared() {
        let mut c = Catalog::with_buffer_pool(4);
        c.register("A", &base());
        let a = c.get("A").unwrap();
        a.get(1);
        a.get(1);
        let snap = c.stats().snapshot();
        assert_eq!(snap.page_reads, 1);
        assert_eq!(snap.page_hits, 1);
        c.reset_measurement();
        a.get(1);
        assert_eq!(c.stats().snapshot().page_reads, 1);
    }

    #[test]
    fn distinct_store_ids() {
        let mut c = Catalog::new();
        let a = c.register("A", &base());
        let b = c.register("B", &base());
        assert_ne!(a.store_id(), b.store_id());
    }

    #[test]
    fn get_sequence_trait_object() {
        let mut c = Catalog::new();
        c.register("A", &base());
        let s = c.get_sequence("A").unwrap();
        assert_eq!(s.record_count(), 10);
    }
}
