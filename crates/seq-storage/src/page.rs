//! Pages: the fixed-capacity unit of storage and of I/O accounting.
//!
//! A stored sequence is a vector of pages, each holding up to a fixed number
//! of `(position, record)` entries in position order. The paper measures
//! stream-access cost "as a product of the number of pages to be accessed and
//! the cost of each access" (§4.1.1); the page is therefore the unit the cost
//! model and the statistics counters agree on.

use std::cmp::Ordering;

use seq_core::{CmpOp, Record, Value};

/// Identifier of a page within one stored sequence.
pub type PageId = u32;

/// Per-column zone-map entry of one page: the closed `[min, max]` value
/// range the column takes on the page, plus a count of explicit nulls.
///
/// The `Value` model has no null variant ("Null records" are absent
/// positions), so `null_count` is always zero today; it is carried so the
/// skipping rule is stated in full — a page may be skipped for a predicate
/// only when the predicate rejects nulls, and with `null_count == 0` every
/// predicate trivially does.
///
/// `min`/`max` are `None` when the column's values on this page are not
/// totally ordered against each other (mixed types); such an entry is
/// unbounded and never justifies a skip.
#[derive(Debug, Clone, Default)]
pub struct ZoneEntry {
    /// Smallest value of the column on the page.
    pub min: Option<Value>,
    /// Largest value of the column on the page.
    pub max: Option<Value>,
    /// Explicit nulls on the page (always zero under the current model).
    pub null_count: u32,
}

impl ZoneEntry {
    /// Whether *some* value in `[min, max]` could satisfy `value op lit`.
    /// Conservative: unbounded entries and cross-type comparisons answer
    /// `true` (no skip). `false` proves no record on the page satisfies the
    /// term, so the page can be skipped without being read.
    pub fn may_match(&self, op: CmpOp, lit: &Value) -> bool {
        let (Some(min), Some(max)) = (&self.min, &self.max) else { return true };
        let (Ok(lo), Ok(hi)) = (min.total_cmp(lit), max.total_cmp(lit)) else { return true };
        match op {
            // lit within [min, max].
            CmpOp::Eq => lo != Ordering::Greater && hi != Ordering::Less,
            // Some value differs from lit unless the range is exactly {lit}.
            CmpOp::Ne => lo != Ordering::Equal || hi != Ordering::Equal,
            CmpOp::Lt => lo == Ordering::Less,    // min < lit
            CmpOp::Le => lo != Ordering::Greater, // min <= lit
            CmpOp::Gt => hi == Ordering::Greater, // max > lit
            CmpOp::Ge => hi != Ordering::Less,    // max >= lit
        }
    }
}

/// Fold the per-column zone map over a page's entries.
fn build_zones(entries: &[(i64, Record)]) -> Vec<ZoneEntry> {
    let Some((_, first)) = entries.first() else { return Vec::new() };
    let mut zones: Vec<ZoneEntry> = first
        .values()
        .iter()
        .map(|v| ZoneEntry { min: Some(v.clone()), max: Some(v.clone()), null_count: 0 })
        .collect();
    for (_, rec) in &entries[1..] {
        for (zone, v) in zones.iter_mut().zip(rec.values()) {
            let (Some(min), Some(max)) = (&zone.min, &zone.max) else { continue };
            match (v.total_cmp(min), v.total_cmp(max)) {
                (Ok(lo), Ok(hi)) => {
                    if lo == Ordering::Less {
                        zone.min = Some(v.clone());
                    }
                    if hi == Ordering::Greater {
                        zone.max = Some(v.clone());
                    }
                }
                // Mixed types on one column: the range is not totally
                // ordered; poison the entry to unbounded.
                _ => {
                    zone.min = None;
                    zone.max = None;
                }
            }
        }
    }
    zones
}

/// One page of a stored sequence.
#[derive(Debug, Clone)]
pub struct Page {
    id: PageId,
    /// Entries sorted by position; positions unique within the sequence.
    entries: Vec<(i64, Record)>,
    /// Per-column zone map, computed once at build/append time. Like
    /// `first_pos`, this is header metadata: consulting it is not a page
    /// read.
    zones: Vec<ZoneEntry>,
}

impl Page {
    /// A page from position-sorted entries.
    pub fn new(id: PageId, entries: Vec<(i64, Record)>) -> Page {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "page entries must be sorted");
        let zones = build_zones(&entries);
        Page { id, entries, zones }
    }

    /// Page identifier within its sequence.
    pub fn id(&self) -> PageId {
        self.id
    }

    /// The page's `(position, record)` entries.
    pub fn entries(&self) -> &[(i64, Record)] {
        &self.entries
    }

    /// Number of records on the page.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the page holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// First (lowest) position stored on this page.
    pub fn first_pos(&self) -> Option<i64> {
        self.entries.first().map(|(p, _)| *p)
    }

    /// Last (highest) position stored on this page.
    pub fn last_pos(&self) -> Option<i64> {
        self.entries.last().map(|(p, _)| *p)
    }

    /// Zone-map entry of column `col`, or `None` for an empty page or a
    /// column index past the page's arity (both mean "cannot skip").
    pub fn zone(&self, col: usize) -> Option<&ZoneEntry> {
        self.zones.get(col)
    }

    /// Binary-search for an exact position within the page.
    pub fn find(&self, pos: i64) -> Option<&Record> {
        self.entries.binary_search_by_key(&pos, |(p, _)| *p).ok().map(|i| &self.entries[i].1)
    }

    /// Index of the first entry with position `>= pos`.
    pub fn lower_bound(&self, pos: i64) -> usize {
        match self.entries.binary_search_by_key(&pos, |(p, _)| *p) {
            Ok(i) | Err(i) => i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::record;

    fn page() -> Page {
        Page::new(0, vec![(2, record![2i64]), (5, record![5i64]), (9, record![9i64])])
    }

    #[test]
    fn bounds_and_find() {
        let p = page();
        assert_eq!(p.first_pos(), Some(2));
        assert_eq!(p.last_pos(), Some(9));
        assert!(p.find(5).is_some());
        assert!(p.find(4).is_none());
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn lower_bound_seeks() {
        let p = page();
        assert_eq!(p.lower_bound(1), 0);
        assert_eq!(p.lower_bound(2), 0);
        assert_eq!(p.lower_bound(3), 1);
        assert_eq!(p.lower_bound(10), 3);
    }

    #[test]
    fn empty_page() {
        let p = Page::new(7, vec![]);
        assert!(p.is_empty());
        assert_eq!(p.first_pos(), None);
        assert_eq!(p.id(), 7);
        assert!(p.zone(0).is_none());
    }

    #[test]
    fn zone_map_tracks_min_max() {
        let p = Page::new(
            0,
            vec![(1, record![5i64, 2.0]), (2, record![3i64, 9.0]), (3, record![8i64, 4.0])],
        );
        let z0 = p.zone(0).unwrap();
        assert_eq!(z0.min, Some(Value::Int(3)));
        assert_eq!(z0.max, Some(Value::Int(8)));
        assert_eq!(z0.null_count, 0);
        let z1 = p.zone(1).unwrap();
        assert_eq!(z1.min, Some(Value::Float(2.0)));
        assert_eq!(z1.max, Some(Value::Float(9.0)));
        assert!(p.zone(2).is_none());
    }

    #[test]
    fn zone_may_match_all_operators() {
        // Column range [3, 8].
        let z = ZoneEntry { min: Some(Value::Int(3)), max: Some(Value::Int(8)), null_count: 0 };
        for (op, lit, expect) in [
            (CmpOp::Eq, 2, false),
            (CmpOp::Eq, 3, true),
            (CmpOp::Eq, 9, false),
            (CmpOp::Ne, 5, true),
            (CmpOp::Lt, 3, false),
            (CmpOp::Lt, 4, true),
            (CmpOp::Le, 2, false),
            (CmpOp::Le, 3, true),
            (CmpOp::Gt, 8, false),
            (CmpOp::Gt, 7, true),
            (CmpOp::Ge, 9, false),
            (CmpOp::Ge, 8, true),
        ] {
            assert_eq!(z.may_match(op, &Value::Int(lit)), expect, "{op:?} {lit}");
        }
        // Ne can be refuted only by a constant column equal to the literal.
        let konst = ZoneEntry { min: Some(Value::Int(5)), max: Some(Value::Int(5)), null_count: 0 };
        assert!(!konst.may_match(CmpOp::Ne, &Value::Int(5)));
        assert!(konst.may_match(CmpOp::Ne, &Value::Int(6)));
        // Numeric cross-type comparisons still refute; incomparable types never do.
        assert!(!z.may_match(CmpOp::Gt, &Value::Float(8.5)));
        assert!(z.may_match(CmpOp::Eq, &Value::Str("x".into())));
    }

    #[test]
    fn mixed_type_column_is_unbounded() {
        let p = Page::new(0, vec![(1, record![Value::Int(1)]), (2, record![Value::Bool(true)])]);
        let z = p.zone(0).unwrap();
        assert!(z.min.is_none() && z.max.is_none());
        assert!(z.may_match(CmpOp::Eq, &Value::Int(99)));
    }
}
