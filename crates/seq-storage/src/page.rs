//! Pages: the fixed-capacity unit of storage and of I/O accounting.
//!
//! A stored sequence is a vector of pages, each holding up to a fixed number
//! of `(position, record)` entries in position order. The paper measures
//! stream-access cost "as a product of the number of pages to be accessed and
//! the cost of each access" (§4.1.1); the page is therefore the unit the cost
//! model and the statistics counters agree on.

use seq_core::Record;

/// Identifier of a page within one stored sequence.
pub type PageId = u32;

/// One page of a stored sequence.
#[derive(Debug, Clone)]
pub struct Page {
    id: PageId,
    /// Entries sorted by position; positions unique within the sequence.
    entries: Vec<(i64, Record)>,
}

impl Page {
    /// A page from position-sorted entries.
    pub fn new(id: PageId, entries: Vec<(i64, Record)>) -> Page {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "page entries must be sorted");
        Page { id, entries }
    }

    /// Page identifier within its sequence.
    pub fn id(&self) -> PageId {
        self.id
    }

    /// The page's `(position, record)` entries.
    pub fn entries(&self) -> &[(i64, Record)] {
        &self.entries
    }

    /// Number of records on the page.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the page holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// First (lowest) position stored on this page.
    pub fn first_pos(&self) -> Option<i64> {
        self.entries.first().map(|(p, _)| *p)
    }

    /// Last (highest) position stored on this page.
    pub fn last_pos(&self) -> Option<i64> {
        self.entries.last().map(|(p, _)| *p)
    }

    /// Binary-search for an exact position within the page.
    pub fn find(&self, pos: i64) -> Option<&Record> {
        self.entries.binary_search_by_key(&pos, |(p, _)| *p).ok().map(|i| &self.entries[i].1)
    }

    /// Index of the first entry with position `>= pos`.
    pub fn lower_bound(&self, pos: i64) -> usize {
        match self.entries.binary_search_by_key(&pos, |(p, _)| *p) {
            Ok(i) | Err(i) => i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::record;

    fn page() -> Page {
        Page::new(0, vec![(2, record![2i64]), (5, record![5i64]), (9, record![9i64])])
    }

    #[test]
    fn bounds_and_find() {
        let p = page();
        assert_eq!(p.first_pos(), Some(2));
        assert_eq!(p.last_pos(), Some(9));
        assert!(p.find(5).is_some());
        assert!(p.find(4).is_none());
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn lower_bound_seeks() {
        let p = page();
        assert_eq!(p.lower_bound(1), 0);
        assert_eq!(p.lower_bound(2), 0);
        assert_eq!(p.lower_bound(3), 1);
        assert_eq!(p.lower_bound(10), 3);
    }

    #[test]
    fn empty_page() {
        let p = Page::new(7, vec![]);
        assert!(p.is_empty());
        assert_eq!(p.first_pos(), None);
        assert_eq!(p.id(), 7);
    }
}
