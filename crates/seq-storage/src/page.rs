//! Pages: the fixed-capacity unit of storage and of I/O accounting.
//!
//! A stored sequence is a vector of pages, each holding up to a fixed number
//! of `(position, record)` entries in position order. The paper measures
//! stream-access cost "as a product of the number of pages to be accessed and
//! the cost of each access" (§4.1.1); the page is therefore the unit the cost
//! model and the statistics counters agree on.
//!
//! Since the columnar flip, a page body is not a row vector but a set of
//! encoded arrays ([`crate::column`]): one [`PosData`] for positions and one
//! [`ColumnData`] per record column, each compressed independently with the
//! cheapest of delta / run-length / dictionary / plain. Scans bulk-decode
//! those arrays straight into `RecordBatch` columns, filter kernels evaluate
//! predicates in place over runs and dictionary codes, and the
//! tuple-at-a-time path rebuilds a row view per page via
//! [`Page::decode_rows`]. Zone maps are derived once at build time from the
//! *encoded* column arrays ([`ColumnData::value_bounds`]): frame-of-reference
//! bounds from the delta walk, run representatives for RLE, dictionary
//! entries for Dict — never a second pass over the plain values.

use std::cmp::Ordering;
use std::sync::Arc;

use seq_core::{CmpOp, Record, RecordBatch, Result, Value};

use crate::column::{column_range_error, value_bytes, ColumnData, PosData};

/// Identifier of a page within one stored sequence.
pub type PageId = u32;

/// The set of record columns a batch scan materializes — the plan's
/// referenced-column set, threaded down from the lowering layer. `All`
/// decodes every column (the default, and the only behaviour before late
/// materialization); `Only` decodes just the listed indices and leaves the
/// other destination column slots unmaterialized (empty), which the
/// `columns_pruned` counter accounts for at the scan layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnSet {
    /// Decode every column.
    All,
    /// Decode only these column indices (sorted ascending, deduplicated).
    Only(Vec<usize>),
}

impl ColumnSet {
    /// Whether column `col` is decoded under this set.
    #[inline]
    pub fn keeps(&self, col: usize) -> bool {
        match self {
            ColumnSet::All => true,
            ColumnSet::Only(cols) => cols.binary_search(&col).is_ok(),
        }
    }

    /// How many of `arity` columns this set leaves undecoded.
    pub fn pruned_of(&self, arity: usize) -> usize {
        match self {
            ColumnSet::All => 0,
            ColumnSet::Only(cols) => arity - cols.iter().filter(|&&c| c < arity).count(),
        }
    }
}

/// Per-term dictionary bitmaps for one predicate conjunction over one page,
/// built once at page entry ([`Page::dict_masks`]) and reused by every
/// batch window on the page ([`Page::filter_slots_masked`]). Terms over the
/// same dictionary-encoded column are AND-folded into a single bitmap
/// carried by the first such term, so each window pays one codes pass per
/// dict column instead of one per term — and no window ever re-evaluates a
/// term against the dictionary entries.
///
/// Mask construction evaluates every term over every entry of its dict
/// column eagerly (the same eager entry evaluation the unmasked kernels
/// already perform for Dict), so a type error any window would raise
/// surfaces at build time.
#[derive(Debug, Clone, Default)]
pub struct DictMasks {
    per_term: Vec<TermMask>,
}

#[derive(Debug, Clone)]
enum TermMask {
    /// Not a dict column on this page: evaluate the term directly.
    Direct,
    /// Dict column: match codes against this (possibly AND-folded) bitmap.
    Mask(Vec<bool>),
    /// Folded into an earlier term's mask on the same column: skip.
    Folded,
}

/// Per-column zone-map entry of one page: the closed `[min, max]` value
/// range the column takes on the page, plus a count of explicit nulls.
///
/// The `Value` model has no null variant ("Null records" are absent
/// positions), so `null_count` is always zero today; it is carried so the
/// skipping rule is stated in full — a page may be skipped for a predicate
/// only when the predicate rejects nulls, and with `null_count == 0` every
/// predicate trivially does.
///
/// `min`/`max` are `None` when the column's values on this page are not
/// totally ordered against each other (mixed types); such an entry is
/// unbounded and never justifies a skip.
#[derive(Debug, Clone, Default)]
pub struct ZoneEntry {
    /// Smallest value of the column on the page.
    pub min: Option<Value>,
    /// Largest value of the column on the page.
    pub max: Option<Value>,
    /// Explicit nulls on the page (always zero under the current model).
    pub null_count: u32,
}

impl ZoneEntry {
    /// Whether *some* value in `[min, max]` could satisfy `value op lit`.
    /// Conservative: unbounded entries and cross-type comparisons answer
    /// `true` (no skip). `false` proves no record on the page satisfies the
    /// term, so the page can be skipped without being read.
    pub fn may_match(&self, op: CmpOp, lit: &Value) -> bool {
        let (Some(min), Some(max)) = (&self.min, &self.max) else { return true };
        let (Ok(lo), Ok(hi)) = (min.total_cmp(lit), max.total_cmp(lit)) else { return true };
        match op {
            // lit within [min, max].
            CmpOp::Eq => lo != Ordering::Greater && hi != Ordering::Less,
            // Some value differs from lit unless the range is exactly {lit}.
            CmpOp::Ne => lo != Ordering::Equal || hi != Ordering::Equal,
            CmpOp::Lt => lo == Ordering::Less,    // min < lit
            CmpOp::Le => lo != Ordering::Greater, // min <= lit
            CmpOp::Gt => hi == Ordering::Greater, // max > lit
            CmpOp::Ge => hi != Ordering::Less,    // max >= lit
        }
    }
}

/// Zone entry of one column derived from its *encoded* array
/// ([`ColumnData::value_bounds`]): delta columns yield frame-of-reference
/// integer bounds from one zigzag walk, RLE/Dict columns fold over run
/// representatives / dictionary entries only, and plain columns scan values
/// with `total_cmp` exactly as the old pre-encoding fold did. Mixed
/// incomparable types (plain only) poison the entry to unbounded; INT and
/// FLOAT stay comparable cross-type.
fn zone_of(column: &ColumnData) -> ZoneEntry {
    match column.value_bounds() {
        Some((min, max)) => ZoneEntry { min: Some(min), max: Some(max), null_count: 0 },
        None => ZoneEntry::default(),
    }
}

/// One page of a stored sequence: encoded position and column arrays plus
/// header metadata (bounds and zone map) consulted without a page read.
#[derive(Debug, Clone)]
pub struct Page {
    id: PageId,
    /// Encoded positions, strictly ascending.
    positions: PosData,
    /// One encoded array per record column.
    columns: Vec<ColumnData>,
    /// Per-column zone map, derived once at build time from the encoded
    /// column arrays. Like `first_pos`, this is header metadata: consulting
    /// it is not a page read.
    zones: Vec<ZoneEntry>,
    /// Plain (decoded) byte footprint of the page body, for compression
    /// accounting and `bytes_decoded` charging.
    plain_bytes: usize,
}

impl Page {
    /// A page from position-sorted entries.
    pub fn new(id: PageId, entries: Vec<(i64, Record)>) -> Page {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "page entries must be sorted");
        let arity = entries.first().map_or(0, |(_, r)| r.arity());
        debug_assert!(
            entries.iter().all(|(_, r)| r.arity() == arity),
            "page entries must share one arity"
        );
        let positions: Vec<i64> = entries.iter().map(|(p, _)| *p).collect();
        let mut plain_bytes = 8 * positions.len();
        let mut columns = Vec::with_capacity(arity);
        let mut zones = Vec::with_capacity(arity);
        for col in 0..arity {
            let values: Vec<Value> = entries.iter().map(|(_, r)| r.values()[col].clone()).collect();
            plain_bytes += values.iter().map(value_bytes).sum::<usize>();
            // Encode first, then derive the zone entry from the encoded
            // domain — run representatives and delta frames instead of a
            // second full pass of `total_cmp` over the plain values.
            let encoded = ColumnData::encode(values);
            zones.push(zone_of(&encoded));
            columns.push(encoded);
        }
        Page { id, positions: PosData::encode(positions), columns, zones, plain_bytes }
    }

    /// Page identifier within its sequence.
    pub fn id(&self) -> PageId {
        self.id
    }

    /// Number of records on the page.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the page holds no records.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// First (lowest) position stored on this page.
    pub fn first_pos(&self) -> Option<i64> {
        self.positions.first()
    }

    /// Last (highest) position stored on this page.
    pub fn last_pos(&self) -> Option<i64> {
        self.positions.last()
    }

    /// Zone-map entry of column `col`, or `None` for an empty page or a
    /// column index past the page's arity (both mean "cannot skip").
    pub fn zone(&self, col: usize) -> Option<&ZoneEntry> {
        self.zones.get(col)
    }

    /// Number of record columns stored on the page.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Position stored at `slot` (must be `< len`).
    pub fn position_at(&self, slot: usize) -> i64 {
        self.positions.get(slot)
    }

    /// Materialize the single record stored at `slot` (must be `< len`).
    /// Returns the record and its approximate plain byte footprint.
    pub fn record_at(&self, slot: usize) -> (Record, usize) {
        let values: Vec<Value> = self.columns.iter().map(|c| c.value_at(slot)).collect();
        let bytes = 8 + values.iter().map(value_bytes).sum::<usize>();
        (Record::new(values), bytes)
    }

    /// Search for an exact position within the page, materializing the
    /// record on a hit. Returns the record and its plain byte footprint.
    pub fn find(&self, pos: i64) -> Option<(Record, usize)> {
        let slot = self.positions.lower_bound(pos);
        if slot < self.len() && self.positions.get(slot) == pos {
            Some(self.record_at(slot))
        } else {
            None
        }
    }

    /// Index of the first entry with position `>= pos`.
    pub fn lower_bound(&self, pos: i64) -> usize {
        self.positions.lower_bound(pos)
    }

    /// Index of the first entry with position `> pos` — the number of slots
    /// belonging to a span that ends (inclusively) at `pos`.
    pub fn upper_bound(&self, pos: i64) -> usize {
        self.positions.upper_bound(pos)
    }

    /// Bulk-decode slots `[slot, slot + take)` straight into `batch`'s
    /// position and column vectors, with no per-record materialization.
    /// Returns the plain byte footprint decoded (for `bytes_decoded`).
    pub fn append_range_into(&self, batch: &mut RecordBatch, slot: usize, take: usize) -> usize {
        self.append_range_into_cols(batch, slot, take, &ColumnSet::All)
    }

    /// [`Page::append_range_into`] restricted to the columns in `keep`:
    /// pruned columns are never decoded and their destination slots stay
    /// empty, so the returned byte footprint covers only positions plus the
    /// kept columns.
    pub fn append_range_into_cols(
        &self,
        batch: &mut RecordBatch,
        slot: usize,
        take: usize,
        keep: &ColumnSet,
    ) -> usize {
        debug_assert_eq!(batch.arity(), self.arity(), "batch arity must match page arity");
        if take == 0 {
            return 0;
        }
        let (positions, columns) = batch.parts_mut();
        positions.reserve(take);
        self.positions.decode_range_into(positions, slot, take);
        let mut bytes = 8 * take;
        for (col, (dst, src)) in columns.iter_mut().zip(&self.columns).enumerate() {
            if !keep.keeps(col) {
                continue;
            }
            dst.reserve(take);
            bytes += src.decode_range_into(dst, slot, take);
        }
        batch.debug_check_rectangular();
        bytes
    }

    /// Evaluate a conjunction of `col op lit` terms in place over the
    /// encoded columns of slots `[start, end)`, returning the surviving
    /// slots in ascending order. Terms refine left to right with the same
    /// short-circuit and error semantics as the row-at-a-time conjunction
    /// kernel; non-surviving rows are never decoded.
    pub fn filter_slots(
        &self,
        terms: &[(usize, CmpOp, Value)],
        start: usize,
        end: usize,
    ) -> Result<Vec<u32>> {
        let mut survivors = Vec::new();
        self.filter_slots_into(terms, start, end, &mut survivors)?;
        Ok(survivors)
    }

    /// [`Page::filter_slots`] into a caller-provided scratch vector
    /// (cleared first), so hot scan loops reuse one allocation across page
    /// windows instead of allocating a survivor vector per window.
    pub fn filter_slots_into(
        &self,
        terms: &[(usize, CmpOp, Value)],
        start: usize,
        end: usize,
        survivors: &mut Vec<u32>,
    ) -> Result<()> {
        survivors.clear();
        let Some(((col, op, lit), rest)) = terms.split_first() else {
            survivors.extend((start..end).map(|s| s as u32));
            return Ok(());
        };
        let column =
            self.columns.get(*col).ok_or_else(|| column_range_error(*col, self.arity()))?;
        column.matching_slots(start, end, *op, lit, survivors)?;
        for (col, op, lit) in rest {
            let column =
                self.columns.get(*col).ok_or_else(|| column_range_error(*col, self.arity()))?;
            column.retain_matching(survivors, *op, lit)?;
        }
        Ok(())
    }

    /// Build the per-term dictionary bitmaps for `terms` over this page's
    /// encodings: one entry-mask per term whose column is dict-encoded
    /// here, with same-column masks AND-folded into the first term's bitmap
    /// (see [`DictMasks`]). Call once per page entry; feed the result to
    /// [`Page::filter_slots_masked`] for every window on the page.
    pub fn dict_masks(&self, terms: &[(usize, CmpOp, Value)]) -> Result<DictMasks> {
        let mut per_term: Vec<TermMask> = Vec::with_capacity(terms.len());
        for (i, (col, op, lit)) in terms.iter().enumerate() {
            // An out-of-range column stays Direct; the filter pass raises
            // the schema error in term order, exactly like the unmasked path.
            let mask = self.columns.get(*col).and_then(|c| c.dict_entry_mask(*op, lit));
            match mask {
                None => per_term.push(TermMask::Direct),
                Some(mask) => {
                    let mask = mask?;
                    let earlier = (0..i)
                        .find(|&j| terms[j].0 == *col && matches!(per_term[j], TermMask::Mask(_)));
                    match earlier {
                        Some(j) => {
                            let TermMask::Mask(m) = &mut per_term[j] else { unreachable!() };
                            for (a, b) in m.iter_mut().zip(&mask) {
                                *a = *a && *b;
                            }
                            per_term.push(TermMask::Folded);
                        }
                        None => per_term.push(TermMask::Mask(mask)),
                    }
                }
            }
        }
        Ok(DictMasks { per_term })
    }

    /// [`Page::filter_slots_into`] with the page's precomputed dictionary
    /// bitmaps: dict terms match codes against their (AND-folded) masks —
    /// no entry is re-evaluated per window — and non-dict terms refine
    /// exactly as the unmasked kernel does. `masks` must come from
    /// [`Page::dict_masks`] over the same `terms`.
    pub fn filter_slots_masked(
        &self,
        terms: &[(usize, CmpOp, Value)],
        masks: &DictMasks,
        start: usize,
        end: usize,
        survivors: &mut Vec<u32>,
    ) -> Result<()> {
        debug_assert_eq!(masks.per_term.len(), terms.len(), "masks built for different terms");
        survivors.clear();
        let mut first = true;
        for (i, (col, op, lit)) in terms.iter().enumerate() {
            if matches!(masks.per_term[i], TermMask::Folded) {
                continue;
            }
            let column =
                self.columns.get(*col).ok_or_else(|| column_range_error(*col, self.arity()))?;
            match &masks.per_term[i] {
                TermMask::Mask(mask) if first => {
                    column.matching_slots_masked(start, end, mask, survivors)
                }
                TermMask::Mask(mask) => column.retain_matching_masked(survivors, mask),
                TermMask::Direct if first => {
                    column.matching_slots(start, end, *op, lit, survivors)?
                }
                TermMask::Direct => column.retain_matching(survivors, *op, lit)?,
                TermMask::Folded => unreachable!(),
            }
            first = false;
        }
        if first {
            survivors.extend((start..end).map(|s| s as u32));
        }
        Ok(())
    }

    /// Bulk-decode the given ascending `slots` into `batch`, decoding only
    /// those survivors. Returns the plain byte footprint decoded.
    pub fn append_slots_into(&self, batch: &mut RecordBatch, slots: &[u32]) -> usize {
        self.append_slots_into_cols(batch, slots, &ColumnSet::All)
    }

    /// [`Page::append_slots_into`] restricted to the columns in `keep`.
    pub fn append_slots_into_cols(
        &self,
        batch: &mut RecordBatch,
        slots: &[u32],
        keep: &ColumnSet,
    ) -> usize {
        debug_assert_eq!(batch.arity(), self.arity(), "batch arity must match page arity");
        if slots.is_empty() {
            return 0;
        }
        let (positions, columns) = batch.parts_mut();
        positions.reserve(slots.len());
        self.positions.gather_into(positions, slots);
        let mut bytes = 8 * slots.len();
        for (col, (dst, src)) in columns.iter_mut().zip(&self.columns).enumerate() {
            if !keep.keeps(col) {
                continue;
            }
            dst.reserve(slots.len());
            bytes += src.gather_into(dst, slots);
        }
        batch.debug_check_rectangular();
        bytes
    }

    /// [`Page::append_slots_into`], but contiguous survivor runs of at
    /// least [`Page::MIN_BULK_RUN`] slots are bulk-decoded with the range
    /// decoders ([`Page::append_range_into`]) instead of per-slot gathers;
    /// the short-run remainder between bulk runs is gathered in one pass.
    /// Output rows and byte accounting are identical to a plain gather —
    /// only the copy strategy differs — so high-survival filters pay close
    /// to the cost of an unfiltered decode.
    pub fn append_slot_runs_into(&self, batch: &mut RecordBatch, slots: &[u32]) -> usize {
        self.append_slot_runs_into_cols(batch, slots, &ColumnSet::All)
    }

    /// [`Page::append_slot_runs_into`] restricted to the columns in `keep`.
    pub fn append_slot_runs_into_cols(
        &self,
        batch: &mut RecordBatch,
        slots: &[u32],
        keep: &ColumnSet,
    ) -> usize {
        if slots.is_empty() {
            return 0;
        }
        // An all-contiguous survivor window is the common fast case (every
        // slot in range survived): one range decode, no run scan.
        let first = slots[0] as usize;
        let len = slots.len();
        if *slots.last().expect("non-empty") as usize == first + len - 1 {
            return self.append_range_into_cols(batch, first, len, keep);
        }
        let mut bytes = 0usize;
        let mut pending = 0usize;
        let mut i = 0usize;
        while i < len {
            let mut j = i + 1;
            while j < len && slots[j] == slots[j - 1] + 1 {
                j += 1;
            }
            if j - i >= Self::MIN_BULK_RUN {
                if pending < i {
                    bytes += self.append_slots_into_cols(batch, &slots[pending..i], keep);
                }
                bytes += self.append_range_into_cols(batch, slots[i] as usize, j - i, keep);
                pending = j;
            }
            i = j;
        }
        if pending < len {
            bytes += self.append_slots_into_cols(batch, &slots[pending..], keep);
        }
        bytes
    }

    /// Shortest contiguous survivor run worth a dedicated range decode in
    /// [`Page::append_slot_runs_into`]; shorter runs fold into the
    /// neighbouring gather pass.
    pub const MIN_BULK_RUN: usize = 8;

    /// Whether *any* value of column `col` could satisfy `value op lit`,
    /// judged from the encoded representation alone (RLE run
    /// representatives, dictionary entries) without decoding a single slot.
    /// Columns past the page's arity answer `true` (cannot refute).
    pub fn column_may_match(&self, col: usize, op: CmpOp, lit: &Value) -> bool {
        self.columns.get(col).is_none_or(|c| c.may_match(op, lit))
    }

    /// Decode the whole page into a row view for the tuple-at-a-time path:
    /// one position vector plus one shared row-major value buffer, so each
    /// yielded `Record` is an allocation-free slice view.
    pub fn decode_rows(&self) -> DecodedRows {
        let len = self.len();
        let arity = self.arity();
        let mut positions = Vec::with_capacity(len);
        self.positions.decode_range_into(&mut positions, 0, len);
        let mut cols: Vec<Vec<Value>> = Vec::with_capacity(arity);
        for c in &self.columns {
            let mut v = Vec::with_capacity(len);
            c.decode_range_into(&mut v, 0, len);
            cols.push(v);
        }
        let mut rows = Vec::with_capacity(len * arity);
        for slot in 0..len {
            for c in &cols {
                rows.push(c[slot].clone());
            }
        }
        DecodedRows { positions, rows: Arc::from(rows), arity, bytes: self.plain_bytes }
    }

    /// Plain (decoded) byte footprint of the page body.
    pub fn plain_bytes(&self) -> usize {
        self.plain_bytes
    }

    /// Encoded byte footprint of the page body.
    pub fn encoded_bytes(&self) -> usize {
        self.positions.byte_size() + self.columns.iter().map(|c| c.byte_size()).sum::<usize>()
    }

    /// Encoding chosen for the position array.
    pub fn pos_encoding(&self) -> &'static str {
        self.positions.label()
    }

    /// Encoding chosen for each record column.
    pub fn column_encodings(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.columns.iter().map(|c| c.label())
    }
}

/// A fully decoded row view of one page, produced once per page entry by the
/// tuple-at-a-time scan. Rows share a single row-major buffer, so yielding a
/// record clones an `Arc`, not the values.
#[derive(Debug, Clone)]
pub struct DecodedRows {
    positions: Vec<i64>,
    rows: Arc<[Value]>,
    arity: usize,
    bytes: usize,
}

impl DecodedRows {
    /// Number of rows decoded.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the view holds no rows.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Position of row `slot`.
    pub fn pos(&self, slot: usize) -> i64 {
        self.positions[slot]
    }

    /// Record view of row `slot` (shares the page's decoded buffer).
    pub fn record(&self, slot: usize) -> Record {
        Record::from_shared_slice(&self.rows, slot * self.arity, self.arity)
    }

    /// Plain byte footprint that was decoded to build this view.
    pub fn byte_size(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::record;

    fn page() -> Page {
        Page::new(0, vec![(2, record![2i64]), (5, record![5i64]), (9, record![9i64])])
    }

    #[test]
    fn bounds_and_find() {
        let p = page();
        assert_eq!(p.first_pos(), Some(2));
        assert_eq!(p.last_pos(), Some(9));
        assert!(p.find(5).is_some());
        assert!(p.find(4).is_none());
        assert_eq!(p.find(9).unwrap().0, record![9i64]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn lower_bound_seeks() {
        let p = page();
        assert_eq!(p.lower_bound(1), 0);
        assert_eq!(p.lower_bound(2), 0);
        assert_eq!(p.lower_bound(3), 1);
        assert_eq!(p.lower_bound(10), 3);
        assert_eq!(p.upper_bound(1), 0);
        assert_eq!(p.upper_bound(2), 1);
        assert_eq!(p.upper_bound(9), 3);
    }

    #[test]
    fn empty_page() {
        let p = Page::new(7, vec![]);
        assert!(p.is_empty());
        assert_eq!(p.first_pos(), None);
        assert_eq!(p.id(), 7);
        assert!(p.zone(0).is_none());
        assert_eq!(p.decode_rows().len(), 0);
        assert_eq!(p.encoded_bytes(), 0);
    }

    #[test]
    fn zone_map_tracks_min_max() {
        let p = Page::new(
            0,
            vec![(1, record![5i64, 2.0]), (2, record![3i64, 9.0]), (3, record![8i64, 4.0])],
        );
        let z0 = p.zone(0).unwrap();
        assert_eq!(z0.min, Some(Value::Int(3)));
        assert_eq!(z0.max, Some(Value::Int(8)));
        assert_eq!(z0.null_count, 0);
        let z1 = p.zone(1).unwrap();
        assert_eq!(z1.min, Some(Value::Float(2.0)));
        assert_eq!(z1.max, Some(Value::Float(9.0)));
        assert!(p.zone(2).is_none());
    }

    #[test]
    fn zone_may_match_all_operators() {
        // Column range [3, 8].
        let z = ZoneEntry { min: Some(Value::Int(3)), max: Some(Value::Int(8)), null_count: 0 };
        for (op, lit, expect) in [
            (CmpOp::Eq, 2, false),
            (CmpOp::Eq, 3, true),
            (CmpOp::Eq, 9, false),
            (CmpOp::Ne, 5, true),
            (CmpOp::Lt, 3, false),
            (CmpOp::Lt, 4, true),
            (CmpOp::Le, 2, false),
            (CmpOp::Le, 3, true),
            (CmpOp::Gt, 8, false),
            (CmpOp::Gt, 7, true),
            (CmpOp::Ge, 9, false),
            (CmpOp::Ge, 8, true),
        ] {
            assert_eq!(z.may_match(op, &Value::Int(lit)), expect, "{op:?} {lit}");
        }
        // Ne can be refuted only by a constant column equal to the literal.
        let konst = ZoneEntry { min: Some(Value::Int(5)), max: Some(Value::Int(5)), null_count: 0 };
        assert!(!konst.may_match(CmpOp::Ne, &Value::Int(5)));
        assert!(konst.may_match(CmpOp::Ne, &Value::Int(6)));
        // Numeric cross-type comparisons still refute; incomparable types never do.
        assert!(!z.may_match(CmpOp::Gt, &Value::Float(8.5)));
        assert!(z.may_match(CmpOp::Eq, &Value::Str("x".into())));
    }

    #[test]
    fn mixed_type_column_is_unbounded() {
        let p = Page::new(0, vec![(1, record![Value::Int(1)]), (2, record![Value::Bool(true)])]);
        let z = p.zone(0).unwrap();
        assert!(z.min.is_none() && z.max.is_none());
        assert!(z.may_match(CmpOp::Eq, &Value::Int(99)));
    }

    #[test]
    fn decode_rows_round_trips_entries() {
        let entries: Vec<(i64, Record)> =
            (0..20).map(|i| (i * 3 + 1, record![i, i as f64 / 2.0, "tick"])).collect();
        let p = Page::new(0, entries.clone());
        let rows = p.decode_rows();
        assert_eq!(rows.len(), entries.len());
        for (slot, (pos, rec)) in entries.iter().enumerate() {
            assert_eq!(rows.pos(slot), *pos);
            assert_eq!(rows.record(slot), *rec);
            assert_eq!(p.position_at(slot), *pos);
            assert_eq!(p.record_at(slot).0, *rec);
        }
        assert!(rows.byte_size() > 0);
        assert!(p.encoded_bytes() < p.plain_bytes(), "page should compress");
    }

    #[test]
    fn append_range_matches_rows() {
        let entries: Vec<(i64, Record)> =
            (0..16).map(|i| (i + 10, record![i % 3, (i % 2) as f64])).collect();
        let p = Page::new(0, entries.clone());
        let mut batch = RecordBatch::with_capacity(2, 8);
        let bytes = p.append_range_into(&mut batch, 4, 8);
        assert!(bytes > 0);
        assert_eq!(batch.len(), 8);
        for (i, (pos, rec)) in entries[4..12].iter().enumerate() {
            assert_eq!(batch.record(i), (*pos, rec.clone()));
        }
    }

    #[test]
    fn filter_slots_refines_terms_in_order() {
        let entries: Vec<(i64, Record)> =
            (0..24).map(|i| (i, record![i % 4, (i / 6) as f64])).collect();
        let p = Page::new(0, entries.clone());
        // col0 == 1 AND col1 >= 2.0 over the full page.
        let terms =
            vec![(0usize, CmpOp::Eq, Value::Int(1)), (1usize, CmpOp::Ge, Value::Float(2.0))];
        let slots = p.filter_slots(&terms, 0, 24).unwrap();
        let want: Vec<u32> = (0u32..24).filter(|i| i % 4 == 1 && i / 6 >= 2).collect();
        assert_eq!(slots, want);
        // Decoding the survivors matches the filtered entries.
        let mut batch = RecordBatch::new(2);
        p.append_slots_into(&mut batch, &slots);
        assert_eq!(batch.len(), want.len());
        for (i, s) in want.iter().enumerate() {
            assert_eq!(batch.record(i), entries[*s as usize]);
        }
        // No terms: every slot in range survives.
        assert_eq!(p.filter_slots(&[], 3, 7).unwrap(), vec![3, 4, 5, 6]);
        // Bad column index is a schema error.
        assert!(p.filter_slots(&[(9, CmpOp::Eq, Value::Int(0))], 0, 24).is_err());
    }

    #[test]
    fn filter_slots_into_reuses_scratch() {
        let entries: Vec<(i64, Record)> = (0..24).map(|i| (i, record![i % 4])).collect();
        let p = Page::new(0, entries);
        let mut scratch = vec![99u32; 5];
        p.filter_slots_into(&[(0, CmpOp::Eq, Value::Int(2))], 0, 24, &mut scratch).unwrap();
        let want: Vec<u32> = (0u32..24).filter(|i| i % 4 == 2).collect();
        assert_eq!(scratch, want);
        // A second window clears the previous survivors.
        p.filter_slots_into(&[], 1, 3, &mut scratch).unwrap();
        assert_eq!(scratch, vec![1, 2]);
    }

    #[test]
    fn slot_runs_match_per_slot_gather() {
        let entries: Vec<(i64, Record)> =
            (0..60).map(|i| (i * 2 + 1, record![i, (i % 5) as f64, "tag"])).collect();
        let p = Page::new(0, entries);
        // Mixed pattern: a long contiguous run, scattered singletons, a
        // short run, and a trailing long run.
        let patterns: Vec<Vec<u32>> = vec![
            (0..60).collect(),                               // fully contiguous
            vec![3, 9, 17, 31],                              // all scattered
            (2..14).chain([20, 23]).chain(30..45).collect(), // mixed
            (50..60).collect(),                              // contiguous tail
            vec![7],                                         // singleton
        ];
        for slots in patterns {
            let mut gathered = RecordBatch::new(3);
            let b1 = p.append_slots_into(&mut gathered, &slots);
            let mut bulk = RecordBatch::new(3);
            let b2 = p.append_slot_runs_into(&mut bulk, &slots);
            assert_eq!(b1, b2, "byte accounting must not depend on copy strategy");
            assert_eq!(gathered.len(), bulk.len());
            for i in 0..gathered.len() {
                assert_eq!(gathered.record(i), bulk.record(i), "slots {slots:?} row {i}");
            }
        }
        assert_eq!(p.append_slot_runs_into(&mut RecordBatch::new(3), &[]), 0);
    }

    #[test]
    fn dict_masks_match_unmasked_filter_across_windows() {
        // Two dict columns (strings, small ints) plus one delta column;
        // conjunction has two terms on dict col 0 (AND-folded into one
        // bitmap), one on dict col 1, one on the non-dict col 2.
        let entries: Vec<(i64, Record)> = (0..48)
            .map(|i| {
                (
                    i,
                    record![
                        ["aa", "bb", "cc", "dd"][(i % 4) as usize],
                        ["x", "y", "z"][(i % 3) as usize],
                        i * 2
                    ],
                )
            })
            .collect();
        let p = Page::new(0, entries);
        assert_eq!(p.column_encodings().take(2).collect::<Vec<_>>(), vec!["dict", "dict"]);
        let terms = vec![
            (0usize, CmpOp::Ge, Value::str("bb")),
            (0usize, CmpOp::Ne, Value::str("cc")),
            (1usize, CmpOp::Eq, Value::str("y")),
            (2usize, CmpOp::Lt, Value::Int(80)),
        ];
        let masks = p.dict_masks(&terms).unwrap();
        for (start, end) in [(0usize, 48usize), (5, 29), (12, 12), (40, 48)] {
            let mut masked = Vec::new();
            p.filter_slots_masked(&terms, &masks, start, end, &mut masked).unwrap();
            let mut unmasked = Vec::new();
            p.filter_slots_into(&terms, start, end, &mut unmasked).unwrap();
            assert_eq!(masked, unmasked, "window [{start}, {end})");
        }
        // Empty conjunctions pass everything through either path.
        let empty = p.dict_masks(&[]).unwrap();
        let mut all = Vec::new();
        p.filter_slots_masked(&[], &empty, 3, 7, &mut all).unwrap();
        assert_eq!(all, vec![3, 4, 5, 6]);
        // A type error any window would raise surfaces at mask build time.
        assert!(p.dict_masks(&[(0, CmpOp::Eq, Value::Int(9))]).is_err());
    }

    #[test]
    fn pruned_decode_skips_columns_and_bytes() {
        let entries: Vec<(i64, Record)> =
            (0..32).map(|i| (i, record![i, "payload-string-wide", i as f64])).collect();
        let p = Page::new(0, entries);
        let keep = ColumnSet::Only(vec![0]);
        assert!(keep.keeps(0) && !keep.keeps(1) && !keep.keeps(2));
        assert_eq!(keep.pruned_of(3), 2);
        assert_eq!(ColumnSet::All.pruned_of(3), 0);

        let mut full = RecordBatch::new(3);
        let full_bytes = p.append_range_into(&mut full, 4, 20);
        let mut pruned = RecordBatch::new(3);
        let pruned_bytes = p.append_range_into_cols(&mut pruned, 4, 20, &keep);
        assert!(pruned_bytes < full_bytes, "{pruned_bytes} !< {full_bytes}");
        assert_eq!(pruned.len(), 20);
        assert!(pruned.column_is_materialized(0));
        assert!(!pruned.column_is_materialized(1));
        assert_eq!(pruned.column(0).unwrap(), full.column(0).unwrap());
        assert_eq!(pruned.positions(), full.positions());

        // Slot gathers and run-splitting agree with the range decode.
        let slots: Vec<u32> = vec![1, 2, 3, 9, 14, 15, 16, 17, 18, 19, 20, 21, 22, 30];
        let mut a = RecordBatch::new(3);
        let ba = p.append_slots_into_cols(&mut a, &slots, &keep);
        let mut b = RecordBatch::new(3);
        let bb = p.append_slot_runs_into_cols(&mut b, &slots, &keep);
        assert_eq!(ba, bb);
        assert_eq!(a.column(0).unwrap(), b.column(0).unwrap());
        assert_eq!(a.positions(), b.positions());
        assert!(!a.column_is_materialized(2) && !b.column_is_materialized(2));
    }

    #[test]
    fn encoded_domain_refutes_what_zones_cannot() {
        // Column 0 dictionary-encodes {"aa", "zz"}, column 1 run-length
        // encodes {1.0, 9.0}. The zone ranges ["aa","zz"] and [1.0,9.0]
        // cannot refute an Eq literal strictly inside them, but the encoded
        // entries can: no dictionary entry or run value equals it.
        let entries: Vec<(i64, Record)> = (0..40)
            .map(|i| {
                (i, record![if i % 2 == 0 { "aa" } else { "zz" }, (i / 20) as f64 * 8.0 + 1.0])
            })
            .collect();
        let p = Page::new(0, entries);
        assert_eq!(p.column_encodings().collect::<Vec<_>>(), vec!["dict", "rle"]);
        assert!(p.zone(0).unwrap().may_match(CmpOp::Eq, &Value::str("mm")));
        assert!(!p.column_may_match(0, CmpOp::Eq, &Value::str("mm")));
        assert!(p.column_may_match(0, CmpOp::Eq, &Value::str("zz")));
        assert!(p.zone(1).unwrap().may_match(CmpOp::Eq, &Value::Float(5.0)));
        assert!(!p.column_may_match(1, CmpOp::Eq, &Value::Float(5.0)));
        assert!(p.column_may_match(1, CmpOp::Gt, &Value::Float(5.0)));
        // Cross-type literal and out-of-range column: conservative.
        assert!(p.column_may_match(0, CmpOp::Eq, &Value::Int(3)));
        assert!(p.column_may_match(7, CmpOp::Eq, &Value::Int(25)));
    }
}
