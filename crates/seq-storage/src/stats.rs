//! Access statistics.
//!
//! The optimizations the paper studies (span restriction §3.2, access-mode
//! selection §3.3, caching §3.5) manifest physically as differences in page
//! and record access counts. Every storage-level operation increments shared
//! atomic counters; the benchmark harness snapshots them to report the same
//! quantities the paper's cost model prices.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared atomic counters for one storage context (typically one catalog).
///
/// A scoped handle ([`AccessStats::scoped`]) tees every charge into a parent
/// context, so a profiler can attribute page traffic to a single operator
/// while the catalog-wide totals stay exactly what they would be unscoped.
#[derive(Debug, Default)]
pub struct AccessStats {
    /// Pages fetched from "disk" (buffer-pool misses, or every page access
    /// when no buffer pool is attached).
    pub page_reads: AtomicU64,
    /// Page accesses satisfied by the buffer pool.
    pub page_hits: AtomicU64,
    /// Pages a filtered scan proved irrelevant from their zone map and
    /// skipped without materializing. A skipped page is *entered* by the
    /// scan (it advances past it in order, cf. §3.3's stream access) but
    /// never fetched, so it is charged here instead of `page_reads`.
    pub pages_skipped: AtomicU64,
    /// Probed (positional) record lookups.
    pub probes: AtomicU64,
    /// Records yielded by stream scans.
    pub stream_records: AtomicU64,
    /// Stream scans opened.
    pub scans_opened: AtomicU64,
    /// Folded (per-batch) counter updates performed. The vectorized scan
    /// charges `stream_records` once per batch instead of once per record;
    /// this counts those folds so tests can verify the batching contract.
    pub stat_folds: AtomicU64,
    /// Plain bytes materialized from encoded page columns. The in-place
    /// filter path decodes only surviving rows, so this counter is *meant*
    /// to differ between execution paths — it measures decode work saved,
    /// and is deliberately excluded from the cross-path equality contracts
    /// the other counters obey.
    pub bytes_decoded: AtomicU64,
    /// Column slots a batch scan left undecoded because the plan never
    /// references them (late materialization). Counted per page visit per
    /// pruned column. Like `bytes_decoded`, this measures decode work
    /// *saved* and is path-dependent by design: it is excluded from the
    /// cross-path equality contracts the access counters obey.
    pub columns_pruned: AtomicU64,
    /// Parent context every charge is forwarded to (profiling scopes).
    parent: Option<Arc<AccessStats>>,
}

impl AccessStats {
    /// Fresh shared counters.
    pub fn new() -> Arc<AccessStats> {
        Arc::new(AccessStats::default())
    }

    /// A scoped child of `parent`: charges accumulate here *and* forward to
    /// the parent, so scoping never changes the parent's totals.
    pub fn scoped(parent: &Arc<AccessStats>) -> Arc<AccessStats> {
        Arc::new(AccessStats { parent: Some(Arc::clone(parent)), ..AccessStats::default() })
    }

    /// Charge one page read (buffer miss).
    pub fn record_page_read(&self) {
        self.page_reads.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = &self.parent {
            p.record_page_read();
        }
    }

    /// Charge one buffer hit.
    pub fn record_page_hit(&self) {
        self.page_hits.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = &self.parent {
            p.record_page_hit();
        }
    }

    /// Charge one page skipped by a zone-map-filtered scan.
    pub fn record_page_skipped(&self) {
        self.pages_skipped.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = &self.parent {
            p.record_page_skipped();
        }
    }

    /// Charge one positional probe.
    pub fn record_probe(&self) {
        self.probes.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = &self.parent {
            p.record_probe();
        }
    }

    /// Charge one record yielded by a stream scan.
    pub fn record_stream_record(&self) {
        self.stream_records.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = &self.parent {
            p.record_stream_record();
        }
    }

    /// Charge one scan opening.
    pub fn record_scan_opened(&self) {
        self.scans_opened.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = &self.parent {
            p.record_scan_opened();
        }
    }

    /// Charge `n` stream records with a single atomic add (batch path).
    pub fn record_stream_records(&self, n: u64) {
        if n > 0 {
            self.stream_records.fetch_add(n, Ordering::Relaxed);
            self.stat_folds.fetch_add(1, Ordering::Relaxed);
            if let Some(p) = &self.parent {
                p.record_stream_records(n);
            }
        }
    }

    /// Charge `n` plain bytes decoded from encoded page columns. A plain
    /// add with no fold accounting: decode volume is workload bookkeeping,
    /// not part of the per-batch fold contract.
    pub fn record_bytes_decoded(&self, n: u64) {
        if n > 0 {
            self.bytes_decoded.fetch_add(n, Ordering::Relaxed);
            if let Some(p) = &self.parent {
                p.record_bytes_decoded(n);
            }
        }
    }

    /// Charge `n` column slots skipped by a pruned batch decode. A plain
    /// add with no fold accounting, mirroring `record_bytes_decoded`.
    pub fn record_columns_pruned(&self, n: u64) {
        if n > 0 {
            self.columns_pruned.fetch_add(n, Ordering::Relaxed);
            if let Some(p) = &self.parent {
                p.record_columns_pruned(n);
            }
        }
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            page_reads: self.page_reads.load(Ordering::Relaxed),
            page_hits: self.page_hits.load(Ordering::Relaxed),
            pages_skipped: self.pages_skipped.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            stream_records: self.stream_records.load(Ordering::Relaxed),
            scans_opened: self.scans_opened.load(Ordering::Relaxed),
            stat_folds: self.stat_folds.load(Ordering::Relaxed),
            bytes_decoded: self.bytes_decoded.load(Ordering::Relaxed),
            columns_pruned: self.columns_pruned.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero (between benchmark iterations).
    pub fn reset(&self) {
        self.page_reads.store(0, Ordering::Relaxed);
        self.page_hits.store(0, Ordering::Relaxed);
        self.pages_skipped.store(0, Ordering::Relaxed);
        self.probes.store(0, Ordering::Relaxed);
        self.stream_records.store(0, Ordering::Relaxed);
        self.scans_opened.store(0, Ordering::Relaxed);
        self.stat_folds.store(0, Ordering::Relaxed);
        self.bytes_decoded.store(0, Ordering::Relaxed);
        self.columns_pruned.store(0, Ordering::Relaxed);
    }
}

/// An immutable snapshot of [`AccessStats`], with difference arithmetic so
/// harnesses can measure deltas around a region of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Pages fetched from storage.
    pub page_reads: u64,
    /// Page accesses served by the buffer pool.
    pub page_hits: u64,
    /// Pages skipped wholesale by zone-map-filtered scans.
    pub pages_skipped: u64,
    /// Positional record lookups.
    pub probes: u64,
    /// Records yielded by stream scans.
    pub stream_records: u64,
    /// Stream scans opened.
    pub scans_opened: u64,
    /// Folded (per-batch) counter updates performed.
    pub stat_folds: u64,
    /// Plain bytes materialized from encoded page columns.
    pub bytes_decoded: u64,
    /// Column slots left undecoded by plan-driven pruning.
    pub columns_pruned: u64,
}

impl StatsSnapshot {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            page_reads: self.page_reads.saturating_sub(earlier.page_reads),
            page_hits: self.page_hits.saturating_sub(earlier.page_hits),
            pages_skipped: self.pages_skipped.saturating_sub(earlier.pages_skipped),
            probes: self.probes.saturating_sub(earlier.probes),
            stream_records: self.stream_records.saturating_sub(earlier.stream_records),
            scans_opened: self.scans_opened.saturating_sub(earlier.scans_opened),
            stat_folds: self.stat_folds.saturating_sub(earlier.stat_folds),
            bytes_decoded: self.bytes_decoded.saturating_sub(earlier.bytes_decoded),
            columns_pruned: self.columns_pruned.saturating_sub(earlier.columns_pruned),
        }
    }

    /// Total page accesses (hits + reads).
    pub fn page_accesses(&self) -> u64 {
        self.page_reads + self.page_hits
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "page_reads={} page_hits={} pages_skipped={} probes={} stream_records={} scans={} bytes_decoded={} columns_pruned={}",
            self.page_reads,
            self.page_hits,
            self.pages_skipped,
            self.probes,
            self.stream_records,
            self.scans_opened,
            self.bytes_decoded,
            self.columns_pruned
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = AccessStats::new();
        s.record_page_read();
        s.record_page_read();
        s.record_page_hit();
        s.record_page_skipped();
        s.record_probe();
        s.record_stream_record();
        s.record_scan_opened();
        let snap = s.snapshot();
        assert_eq!(snap.page_reads, 2);
        assert_eq!(snap.page_hits, 1);
        assert_eq!(snap.pages_skipped, 1);
        assert_eq!(snap.probes, 1);
        assert_eq!(snap.page_accesses(), 3); // skips are not accesses
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn folded_add_is_one_fold_per_batch() {
        let s = AccessStats::new();
        s.record_stream_records(1000);
        s.record_stream_records(24);
        s.record_stream_records(0); // empty batches charge nothing
        let snap = s.snapshot();
        assert_eq!(snap.stream_records, 1024);
        assert_eq!(snap.stat_folds, 2);
    }

    #[test]
    fn snapshot_difference() {
        let s = AccessStats::new();
        s.record_probe();
        let before = s.snapshot();
        s.record_probe();
        s.record_probe();
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.probes, 2);
        assert_eq!(delta.page_reads, 0);
    }

    #[test]
    fn scoped_stats_tee_into_parent() {
        let parent = AccessStats::new();
        let a = AccessStats::scoped(&parent);
        let b = AccessStats::scoped(&parent);
        a.record_page_read();
        a.record_stream_records(10);
        b.record_probe();
        parent.record_page_hit(); // direct charges still work
        let (sa, sb, sp) = (a.snapshot(), b.snapshot(), parent.snapshot());
        assert_eq!(sa.page_reads, 1);
        assert_eq!(sa.stream_records, 10);
        assert_eq!(sa.probes, 0);
        assert_eq!(sb.probes, 1);
        // Parent sees the union: its own charge plus both scopes.
        assert_eq!(sp.page_reads, 1);
        assert_eq!(sp.page_hits, 1);
        assert_eq!(sp.probes, 1);
        assert_eq!(sp.stream_records, 10);
        assert_eq!(sp.stat_folds, 1);
        // Resetting a scope leaves the parent untouched.
        a.reset();
        assert_eq!(a.snapshot(), StatsSnapshot::default());
        assert_eq!(parent.snapshot().stream_records, 10);
    }

    #[test]
    fn bytes_decoded_tees_without_folds() {
        let parent = AccessStats::new();
        let s = AccessStats::scoped(&parent);
        s.record_bytes_decoded(128);
        s.record_bytes_decoded(0);
        assert_eq!(s.snapshot().bytes_decoded, 128);
        assert_eq!(parent.snapshot().bytes_decoded, 128);
        // Decode accounting is plain adds: it never counts as a fold.
        assert_eq!(s.snapshot().stat_folds, 0);
        s.reset();
        assert_eq!(s.snapshot().bytes_decoded, 0);
        assert!(s.snapshot().to_string().contains("bytes_decoded=0"));
    }

    #[test]
    fn display_lists_all_counters() {
        let s = AccessStats::new();
        s.record_probe();
        let text = s.snapshot().to_string();
        assert!(text.contains("probes=1"));
        assert!(text.contains("page_reads=0"));
    }
}
