//! # seq-storage — paged physical storage for sequences
//!
//! The physical substrate the paper assumes: base sequences materialized on
//! fixed-capacity pages with a sparse position index, supporting the two
//! access modes of §3.3 —
//!
//! - **stream** access via [`seq_core::Sequence::scan`], touching each page
//!   at most once per scan, and
//! - **probed** access via [`seq_core::Sequence::get`], touching the one page
//!   that can hold the requested position;
//!
//! with every page touch charged against shared [`stats::AccessStats`]
//! counters, optionally filtered through an LRU [`buffer::BufferPool`].
//! These counters are what the benchmark harness reports: the paper's
//! optimizations (span restriction, access-mode selection, caching) all
//! manifest as page/probe-count differences.

pub mod buffer;
pub mod catalog;
pub mod column;
pub mod filter;
pub mod index;
pub mod page;
pub mod stats;
pub mod store;

pub use buffer::{BufferPool, PageAccess, StoreId, StripeStats};
pub use catalog::Catalog;
pub use column::{strict_eq, ColumnData, PosData};
pub use filter::ScanFilter;
pub use index::SparseIndex;
pub use page::{ColumnSet, DecodedRows, DictMasks, Page, PageId, ZoneEntry};
pub use stats::{AccessStats, StatsSnapshot};
pub use store::{OwnedBatchScan, OwnedScan, StoredSequence, DEFAULT_PAGE_CAPACITY};
