//! Scan-level predicate pushdown: zone-map page skipping.
//!
//! A [`ScanFilter`] is a conjunction of `column op literal` terms handed down
//! into a storage scan. Before a page is materialized the scan consults the
//! page's zone map ([`crate::page::ZoneEntry`]); if any term provably matches
//! no value on the page, the whole page is skipped without being read — the
//! value-domain complement of the paper's positional span restriction (§3.2).
//!
//! Skipping is sound only because the pushed terms are (a) not
//! position-dependent — they look at attribute values alone, so page order
//! does not matter — and (b) null-rejecting — a page's zone map says nothing
//! about records the predicate could accept *without* looking at the column.
//! Under the current model "Null records" are absent positions (there is no
//! null value), so (b) holds for every term.
//!
//! The filter only *skips*; it does not filter rows of surviving pages. The
//! executor re-applies the full predicate to every materialized record, so a
//! conservative zone map (unbounded entries, cross-type literals) costs
//! nothing but a missed skip.

use seq_core::{CmpOp, Value};

use crate::page::Page;

/// A conjunction of `column op literal` terms a scan can use to skip pages.
#[derive(Debug, Clone, Default)]
pub struct ScanFilter {
    terms: Vec<(usize, CmpOp, Value)>,
}

impl ScanFilter {
    /// A filter from conjunctive terms (empty means "never skip").
    pub fn new(terms: Vec<(usize, CmpOp, Value)>) -> ScanFilter {
        ScanFilter { terms }
    }

    /// The conjunctive terms.
    pub fn terms(&self) -> &[(usize, CmpOp, Value)] {
        &self.terms
    }

    /// Whether the filter has no terms (and therefore never skips).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Whether any record on `page` could satisfy every term, judged from
    /// header metadata alone: the zone map's `[min, max]` first, then the
    /// encoded column representation (RLE run representatives, dictionary
    /// entries — compared in the encoded domain, never decoded per slot).
    /// The second check can refute pages the zone map cannot: a literal
    /// inside `[min, max]` that equals no run value or dictionary entry.
    /// `false` proves the page is irrelevant.
    pub fn page_may_match(&self, page: &Page) -> bool {
        self.terms.iter().all(|(col, op, lit)| {
            page.zone(*col).is_none_or(|z| z.may_match(*op, lit))
                && page.column_may_match(*col, *op, lit)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::record;

    fn page() -> Page {
        // Column 0 spans [10, 30], column 1 spans [1.0, 3.0].
        Page::new(
            0,
            vec![(1, record![10i64, 3.0]), (2, record![30i64, 1.0]), (3, record![20i64, 2.0])],
        )
    }

    #[test]
    fn conjunction_skips_only_when_a_term_refutes() {
        let p = page();
        // Both terms satisfiable.
        let f = ScanFilter::new(vec![
            (0, CmpOp::Ge, Value::Int(15)),
            (1, CmpOp::Le, Value::Float(2.5)),
        ]);
        assert!(f.page_may_match(&p));
        // Second term refuted by the zone map: the page can be skipped.
        let f = ScanFilter::new(vec![
            (0, CmpOp::Ge, Value::Int(15)),
            (1, CmpOp::Gt, Value::Float(3.0)),
        ]);
        assert!(!f.page_may_match(&p));
    }

    #[test]
    fn encoded_domain_check_skips_inside_zone_range() {
        // A dictionary column {"aa", "zz"}: the zone range ["aa", "zz"]
        // admits Eq "mm", but no dictionary entry matches — the page is
        // refuted without decoding a single slot.
        let p = Page::new(
            0,
            (0..40).map(|i| (i, record![if i % 2 == 0 { "aa" } else { "zz" }])).collect(),
        );
        let f = ScanFilter::new(vec![(0, CmpOp::Eq, Value::str("mm"))]);
        assert!(!f.page_may_match(&p));
        let f = ScanFilter::new(vec![(0, CmpOp::Eq, Value::str("zz"))]);
        assert!(f.page_may_match(&p));
    }

    #[test]
    fn empty_filter_and_out_of_range_column_never_skip() {
        let p = page();
        assert!(ScanFilter::default().page_may_match(&p));
        let f = ScanFilter::new(vec![(9, CmpOp::Eq, Value::Int(0))]);
        assert!(f.page_may_match(&p));
        // An empty page has no zones: conservative, no skip.
        let empty = Page::new(1, vec![]);
        let f = ScanFilter::new(vec![(0, CmpOp::Eq, Value::Int(0))]);
        assert!(f.page_may_match(&empty));
    }
}
